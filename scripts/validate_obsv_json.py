#!/usr/bin/env python3
"""Schema validation for the observability JSON artifacts (CI smoke job).

Usage: validate_obsv_json.py results/fig13_tail.json results/obsv_report.json \\
           results/trace_chrome.json results/trace_summary.jsonl

Validates by the embedded "schema" tag:

* ``fig13_tail/v1`` — per-mix, per-index, per-op-kind latency percentiles
  from the shared histogram type. All five indexes must be present for
  every mix, every histogram must carry the percentile keys, and
  percentiles must be monotone (p50 <= p90 <= ... <= max).
* ``obsv_report/v1`` — registry time series. Needs a non-empty sample
  list; every sample carries ts_ns/gauges/hists; the final (post-quiesce)
  sample must show the SMO replay-lag and epoch-backlog gauges drained to
  zero and the pmem gauges present.
* ``trace_chrome/v1`` — Chrome trace-event JSON from ``trace-report``.
  Every complete ("X") event needs ts/dur/pid/tid and span args; every
  trace (pid) needs a root span whose interval covers its children.
* ``trace_summary/v1`` — one JSON object per line (``.jsonl``); each
  needs trace_id/outcome/root_ns, per-kind stall totals, and a span list
  containing exactly one root span.
* ``bench_node_search/v1`` — SIMD probe-kernel A/B from
  ``bench-node-search``. Needs per-shape ns-per-probe for all three
  kernel sets (positive, scalar slowest), the forced-SWAR vs dispatched
  end-to-end arms, and a provenance stamp with a git commit.
* ``mvcc_bench/v1`` — versioning-layer acceptance numbers from
  ``mvcc-bench``. Needs the per-size snapshot-cost rows (positive ns),
  the flatness ratio, the writer A/B block (baseline / held-snapshot /
  after-release throughput with retention and ab_ratio), the scan
  interference block, and a provenance stamp.
* ``pacsrv_bench/v2`` — service-mode throughput from ``pacsrv-bench``;
  v2 adds the ``scan_interference`` phase (writer retention under live
  vs snapshot-isolated scans through the wire protocol).
"""

import json
import sys

INDEXES = ["PACTree", "PDL-ART", "BzTree", "FastFair", "FPTree"]
HIST_KEYS = ["count", "mean", "p50", "p90", "p99", "p999", "p9999", "max"]
PERCENTILE_ORDER = ["p50", "p90", "p99", "p999", "p9999", "max"]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_hist(h, where):
    for k in HIST_KEYS:
        if not isinstance(h.get(k), (int, float)):
            fail(f"{where}: missing/non-numeric '{k}': {h.get(k)!r}")
    seq = [h[k] for k in PERCENTILE_ORDER]
    if seq != sorted(seq):
        fail(f"{where}: percentiles not monotone: {seq}")
    if h["count"] < 0:
        fail(f"{where}: negative count")


def validate_fig13(doc, path):
    for k in ["keys", "ops", "threads", "dilation", "unit", "mixes"]:
        if k not in doc:
            fail(f"{path}: missing top-level '{k}'")
    if not doc["mixes"]:
        fail(f"{path}: no mixes")
    for mix, per_index in doc["mixes"].items():
        for idx in INDEXES:
            if idx not in per_index:
                fail(f"{path}: mix {mix} missing index {idx}")
            hists = per_index[idx]
            if "all" not in hists:
                fail(f"{path}: {mix}/{idx} missing merged 'all' histogram")
            for kind, h in hists.items():
                check_hist(h, f"{path}: {mix}/{idx}/{kind}")
            if hists["all"]["count"] <= 0:
                fail(f"{path}: {mix}/{idx} recorded no operations")
    print(f"OK: {path} (fig13_tail/v1, {len(doc['mixes'])} mixes x {len(INDEXES)} indexes)")


def validate_report(doc, path):
    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail(f"{path}: empty or missing 'samples'")
    for i, s in enumerate(samples):
        for k in ["ts_ns", "gauges", "hists"]:
            if k not in s:
                fail(f"{path}: sample {i} missing '{k}'")
    final = samples[-1]
    gauges = final["gauges"]
    if not any(k.startswith("pmem.") for k in gauges):
        fail(f"{path}: final sample has no pmem.* gauges")
    for drained in ["smo.pending", "epoch.backlog"]:
        matches = [k for k in gauges if k.endswith(drained)]
        if not matches:
            fail(f"{path}: final sample has no *.{drained} gauge")
        for k in matches:
            if gauges[k] != 0:
                fail(f"{path}: {k} = {gauges[k]} after quiesce (want 0)")
    if doc.get("drained") is not True:
        fail(f"{path}: quiesce reported drained={doc.get('drained')!r}")
    for source, hists in final["hists"].items():
        for kind, h in hists.items():
            check_hist(h, f"{path}: {source}/{kind}")
    print(f"OK: {path} (obsv_report/v1, {len(samples)} samples)")


STALL_KINDS = ["read", "flush", "fence", "throttle"]
SPAN_KINDS = ["root", "admission", "queue", "batch", "index_op", "smo", "epoch"]


def validate_trace_chrome(doc, path):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty or missing 'traceEvents'")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    by_pid = {}
    for i, e in enumerate(spans):
        where = f"{path}: event {i} ({e.get('name')!r})"
        if e.get("name") not in SPAN_KINDS:
            fail(f"{where}: unknown span name")
        for k in ["ts", "dur", "pid", "tid"]:
            if not isinstance(e.get(k), (int, float)):
                fail(f"{where}: missing/non-numeric '{k}'")
        if e["dur"] < 0:
            fail(f"{where}: negative duration")
        args = e.get("args")
        if not isinstance(args, dict):
            fail(f"{where}: missing 'args'")
        for k in ["trace_id", "span_id", "parent"] + [f"stall_{s}_ns" for s in STALL_KINDS]:
            if not isinstance(args.get(k), int):
                fail(f"{where}: args missing/non-integer '{k}'")
        by_pid.setdefault(e["pid"], []).append(e)
    for pid, evs in by_pid.items():
        roots = [e for e in evs if e["name"] == "root"]
        if len(roots) != 1:
            fail(f"{path}: pid {pid} has {len(roots)} root spans (want 1)")
        root = roots[0]
        r0, r1 = root["ts"], root["ts"] + root["dur"]
        for e in evs:
            # 1us slack: ts/dur are microseconds rounded to 3 decimals.
            if e["ts"] < r0 - 1.0 or e["ts"] + e["dur"] > r1 + 1.0:
                fail(
                    f"{path}: pid {pid} span {e['name']!r} "
                    f"[{e['ts']}, {e['ts'] + e['dur']}] outside root [{r0}, {r1}]"
                )
    print(f"OK: {path} (trace_chrome/v1, {len(by_pid)} traces, {len(spans)} spans)")


def validate_trace_summary_line(doc, where):
    if doc.get("schema") != "trace_summary/v1":
        fail(f"{where}: bad schema {doc.get('schema')!r}")
    for k in ["trace_id", "root_ns"]:
        if not isinstance(doc.get(k), int):
            fail(f"{where}: missing/non-integer '{k}'")
    if not isinstance(doc.get("outcome"), str):
        fail(f"{where}: missing 'outcome'")
    stalls = doc.get("stall_ns")
    if not isinstance(stalls, dict):
        fail(f"{where}: missing 'stall_ns'")
    for s in STALL_KINDS:
        if not isinstance(stalls.get(s), int):
            fail(f"{where}: stall_ns missing/non-integer '{s}'")
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        fail(f"{where}: empty or missing 'spans'")
    for i, s in enumerate(spans):
        if s.get("kind") not in SPAN_KINDS:
            fail(f"{where}: span {i} has unknown kind {s.get('kind')!r}")
        for k in ["span_id", "parent", "tid", "start_ns", "dur_ns", "stall_ns"]:
            if not isinstance(s.get(k), int):
                fail(f"{where}: span {i} missing/non-integer '{k}'")
    if sum(1 for s in spans if s["kind"] == "root") != 1:
        fail(f"{where}: want exactly one root span")


def validate_trace_summary(path):
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail(f"{path}: empty summary")
    for i, ln in enumerate(lines):
        try:
            doc = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i + 1} is not valid JSON: {e}")
        validate_trace_summary_line(doc, f"{path}: line {i + 1}")
    print(f"OK: {path} (trace_summary/v1, {len(lines)} traces)")


def validate_node_search(doc, path):
    kernel = doc.get("kernel")
    if not isinstance(kernel, str) or not kernel:
        fail(f"{path}: missing 'kernel'")
    micro = doc.get("micro_ns_per_probe")
    if not isinstance(micro, dict):
        fail(f"{path}: missing 'micro_ns_per_probe'")
    for shape in ["fp64", "node16"]:
        row = micro.get(shape)
        if not isinstance(row, dict):
            fail(f"{path}: micro missing shape '{shape}'")
        for k in ["scalar", "swar", "simd"]:
            v = row.get(k)
            if not isinstance(v, (int, float)) or v <= 0:
                fail(f"{path}: {shape}/{k} not a positive number: {v!r}")
        if row["scalar"] < row["swar"]:
            fail(f"{path}: {shape} scalar ({row['scalar']}) beat swar ({row['swar']})")
    if not isinstance(doc.get("fp64_speedup_simd_vs_swar"), (int, float)):
        fail(f"{path}: missing 'fp64_speedup_simd_vs_swar'")
    for arm, keys in [("ycsb_c", ["swar_mops", "simd_mops", "delta_pct"]),
                      ("scan", ["swar_mkeys", "simd_mkeys", "delta_pct"])]:
        a = doc.get(arm)
        if not isinstance(a, dict):
            fail(f"{path}: missing '{arm}'")
        for k in keys:
            if not isinstance(a.get(k), (int, float)):
                fail(f"{path}: {arm} missing/non-numeric '{k}'")
    stamp = doc.get("stamp")
    if not isinstance(stamp, dict) or not stamp.get("git_commit"):
        fail(f"{path}: missing provenance stamp with git_commit")
    print(f"OK: {path} (bench_node_search/v1, kernel {kernel}, "
          f"fp64 {doc['fp64_speedup_simd_vs_swar']}x vs swar)")


def check_num(doc, key, where, positive=False):
    v = doc.get(key)
    if not isinstance(v, (int, float)) or (positive and v <= 0):
        fail(f"{where}: missing/invalid '{key}': {v!r}")
    return v


def check_stamp(doc, path):
    stamp = doc.get("stamp")
    if not isinstance(stamp, dict) or not stamp.get("git_commit"):
        fail(f"{path}: missing provenance stamp with git_commit")


def validate_scan_interference(si, where):
    for k in ["scanners", "scan_len", "live_scans", "snapshot_scans"]:
        if not isinstance(si.get(k), int) or si[k] < 0:
            fail(f"{where}: missing/invalid '{k}': {si.get(k)!r}")
    for k in ["live_mops", "live_retention", "snapshot_mops", "snapshot_retention"]:
        check_num(si, k, where, positive=True)
    if si["live_scans"] == 0 or si["snapshot_scans"] == 0:
        fail(f"{where}: a scan mode made no progress: {si}")


def validate_mvcc_bench(doc, path):
    costs = doc.get("snapshot_cost")
    if not isinstance(costs, list) or len(costs) < 2:
        fail(f"{path}: need >= 2 snapshot_cost sizes, got {costs!r}")
    for i, c in enumerate(costs):
        check_num(c, "keys", f"{path}: snapshot_cost[{i}]", positive=True)
        check_num(c, "ns", f"{path}: snapshot_cost[{i}]", positive=True)
    flatness = check_num(doc, "flatness", path, positive=True)
    if flatness < 1.0:
        fail(f"{path}: flatness {flatness} < 1 (must be max/min)")
    writer = doc.get("writer")
    if not isinstance(writer, dict):
        fail(f"{path}: missing 'writer'")
    for k in ["baseline_mops", "held_snapshot_mops", "retention",
              "after_release_mops", "ab_ratio"]:
        check_num(writer, k, f"{path}: writer", positive=True)
    si = doc.get("interference")
    if not isinstance(si, dict):
        fail(f"{path}: missing 'interference'")
    validate_scan_interference(si, f"{path}: interference")
    check_stamp(doc, path)
    print(f"OK: {path} (mvcc_bench/v1, flatness {flatness}x, "
          f"retention {writer['retention']})")


def validate_pacsrv_bench(doc, path):
    for block in ["embedded", "service", "overload_2x"]:
        if not isinstance(doc.get(block), dict):
            fail(f"{path}: missing '{block}'")
    svc = doc["service"]
    for k in ["mops", "ratio", "p50_us", "p99_us", "p999_us"]:
        check_num(svc, k, f"{path}: service", positive=True)
    si = doc.get("scan_interference")
    if not isinstance(si, dict):
        fail(f"{path}: missing 'scan_interference'")
    check_num(si, "baseline_mops", f"{path}: scan_interference", positive=True)
    validate_scan_interference(si, f"{path}: scan_interference")
    if doc.get("drained") is not True:
        fail(f"{path}: drained={doc.get('drained')!r}")
    check_stamp(doc, path)
    print(f"OK: {path} (pacsrv_bench/v2, ratio {svc['ratio']}, "
          f"snapshot-scan retention {si['snapshot_retention']})")


def main():
    if len(sys.argv) < 2:
        fail("usage: validate_obsv_json.py <file.json|file.jsonl>...")
    for path in sys.argv[1:]:
        if path.endswith(".jsonl"):
            validate_trace_summary(path)
            continue
        with open(path) as f:
            doc = json.load(f)
        schema = doc.get("schema")
        if schema == "fig13_tail/v1":
            validate_fig13(doc, path)
        elif schema == "obsv_report/v1":
            validate_report(doc, path)
        elif schema == "trace_chrome/v1":
            validate_trace_chrome(doc, path)
        elif schema == "bench_node_search/v1":
            validate_node_search(doc, path)
        elif schema == "mvcc_bench/v1":
            validate_mvcc_bench(doc, path)
        elif schema == "pacsrv_bench/v2":
            validate_pacsrv_bench(doc, path)
        else:
            fail(f"{path}: unknown schema {schema!r}")
    print("all observability artifacts valid")


if __name__ == "__main__":
    main()
