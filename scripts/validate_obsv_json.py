#!/usr/bin/env python3
"""Schema validation for the observability JSON artifacts (CI smoke job).

Usage: validate_obsv_json.py results/fig13_tail.json results/obsv_report.json

Validates by the embedded "schema" tag:

* ``fig13_tail/v1`` — per-mix, per-index, per-op-kind latency percentiles
  from the shared histogram type. All five indexes must be present for
  every mix, every histogram must carry the percentile keys, and
  percentiles must be monotone (p50 <= p90 <= ... <= max).
* ``obsv_report/v1`` — registry time series. Needs a non-empty sample
  list; every sample carries ts_ns/gauges/hists; the final (post-quiesce)
  sample must show the SMO replay-lag and epoch-backlog gauges drained to
  zero and the pmem gauges present.
"""

import json
import sys

INDEXES = ["PACTree", "PDL-ART", "BzTree", "FastFair", "FPTree"]
HIST_KEYS = ["count", "mean", "p50", "p90", "p99", "p999", "p9999", "max"]
PERCENTILE_ORDER = ["p50", "p90", "p99", "p999", "p9999", "max"]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_hist(h, where):
    for k in HIST_KEYS:
        if not isinstance(h.get(k), (int, float)):
            fail(f"{where}: missing/non-numeric '{k}': {h.get(k)!r}")
    seq = [h[k] for k in PERCENTILE_ORDER]
    if seq != sorted(seq):
        fail(f"{where}: percentiles not monotone: {seq}")
    if h["count"] < 0:
        fail(f"{where}: negative count")


def validate_fig13(doc, path):
    for k in ["keys", "ops", "threads", "dilation", "unit", "mixes"]:
        if k not in doc:
            fail(f"{path}: missing top-level '{k}'")
    if not doc["mixes"]:
        fail(f"{path}: no mixes")
    for mix, per_index in doc["mixes"].items():
        for idx in INDEXES:
            if idx not in per_index:
                fail(f"{path}: mix {mix} missing index {idx}")
            hists = per_index[idx]
            if "all" not in hists:
                fail(f"{path}: {mix}/{idx} missing merged 'all' histogram")
            for kind, h in hists.items():
                check_hist(h, f"{path}: {mix}/{idx}/{kind}")
            if hists["all"]["count"] <= 0:
                fail(f"{path}: {mix}/{idx} recorded no operations")
    print(f"OK: {path} (fig13_tail/v1, {len(doc['mixes'])} mixes x {len(INDEXES)} indexes)")


def validate_report(doc, path):
    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail(f"{path}: empty or missing 'samples'")
    for i, s in enumerate(samples):
        for k in ["ts_ns", "gauges", "hists"]:
            if k not in s:
                fail(f"{path}: sample {i} missing '{k}'")
    final = samples[-1]
    gauges = final["gauges"]
    if not any(k.startswith("pmem.") for k in gauges):
        fail(f"{path}: final sample has no pmem.* gauges")
    for drained in ["smo.pending", "epoch.backlog"]:
        matches = [k for k in gauges if k.endswith(drained)]
        if not matches:
            fail(f"{path}: final sample has no *.{drained} gauge")
        for k in matches:
            if gauges[k] != 0:
                fail(f"{path}: {k} = {gauges[k]} after quiesce (want 0)")
    if doc.get("drained") is not True:
        fail(f"{path}: quiesce reported drained={doc.get('drained')!r}")
    for source, hists in final["hists"].items():
        for kind, h in hists.items():
            check_hist(h, f"{path}: {source}/{kind}")
    print(f"OK: {path} (obsv_report/v1, {len(samples)} samples)")


def main():
    if len(sys.argv) < 2:
        fail("usage: validate_obsv_json.py <file.json>...")
    for path in sys.argv[1:]:
        with open(path) as f:
            doc = json.load(f)
        schema = doc.get("schema")
        if schema == "fig13_tail/v1":
            validate_fig13(doc, path)
        elif schema == "obsv_report/v1":
            validate_report(doc, path)
        else:
            fail(f"{path}: unknown schema {schema!r}")
    print("all observability artifacts valid")


if __name__ == "__main__":
    main()
