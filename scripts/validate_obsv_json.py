#!/usr/bin/env python3
"""Schema validation for the observability JSON artifacts (CI smoke job).

Usage: validate_obsv_json.py results/fig13_tail.json results/obsv_report.json \\
           results/trace_chrome.json results/trace_summary.jsonl

Validates by the embedded "schema" tag:

* ``fig13_tail/v1`` — per-mix, per-index, per-op-kind latency percentiles
  from the shared histogram type. All five indexes must be present for
  every mix, every histogram must carry the percentile keys, and
  percentiles must be monotone (p50 <= p90 <= ... <= max).
* ``obsv_report/v1`` — registry time series. Needs a non-empty sample
  list; every sample carries ts_ns/gauges/hists; the final (post-quiesce)
  sample must show the SMO replay-lag, epoch-backlog (count and age) and
  MVCC (live snapshots, version-chain length) gauges drained to zero, the
  structural node gauges (count, occupancy) sane, and the pmem gauges
  present; somewhere in the series a snapshot must have been live (the
  report's MVCC exercise).
* ``trace_chrome/v1`` — Chrome trace-event JSON from ``trace-report``.
  Every complete ("X") event needs ts/dur/pid/tid and span args; every
  trace (pid) needs a root span whose interval covers its children.
* ``trace_summary/v1`` — one JSON object per line (``.jsonl``); each
  needs trace_id/outcome/root_ns, per-kind stall totals, and a span list
  containing exactly one root span.
* ``bench_node_search/v1`` — SIMD probe-kernel A/B from
  ``bench-node-search``. Needs per-shape ns-per-probe for all three
  kernel sets (positive, scalar slowest), the forced-SWAR vs dispatched
  end-to-end arms, and a provenance stamp with a git commit.
* ``mvcc_bench/v1`` — versioning-layer acceptance numbers from
  ``mvcc-bench``. Needs the per-size snapshot-cost rows (positive ns),
  the flatness ratio, the writer A/B block (baseline / held-snapshot /
  after-release throughput with retention and ab_ratio), the scan
  interference block, and a provenance stamp.
* ``pacsrv_bench/v2`` — service-mode throughput from ``pacsrv-bench``;
  v2 adds the ``scan_interference`` phase (writer retention under live
  vs snapshot-isolated scans through the wire protocol).
* ``obsv_overhead/v1`` — observability-overhead A/B from
  ``bench_obsv_overhead``. Needs the three toggle-arm medians plus the
  scraper arm (raw and 1 s-rescaled overhead, on/off throughput) and
  both verdicts.
* ``paccluster_bench/v1`` — cluster-rebalance acceptance numbers from
  ``paccluster-bench``. Needs the three latency windows (steady /
  migration / post, each with ops and monotone p50<=p99), migration
  accounting (pairs moved, seal/rebalance durations), the p99 ratio
  within its limit, a converged router block (final epoch >= 2, zero
  sweep bounces), per-node bounce counts, zero errors, clean=true, and
  a provenance stamp.
* ``fleet_heat/v1`` — per-partition heat telemetry from
  ``paccluster-bench``: per-partition op/byte/p99 rows, the
  rebalance-advisor verdict, and the fleet-merged-vs-direct p99 gate
  (within the documented histogram reconstruction bound).
* ``slo_events/v1`` — one JSON object per line from an
  ``obsv::SloEngine`` or ``obsv::fleet::FleetScraper`` event sink;
  fire/clear must alternate per objective, starting with fire, with
  monotone timestamps.
* tsdb dumps (``.jsonl`` lines with ``ts_ns``/``gauges``/``hists`` and
  no ``schema`` tag) — from ``Tsdb::dump_jsonl`` or the background
  sampler; timestamps must be monotone. If SLO gauges are present, some
  ``slo.*.firing`` gauge must both fire and end clear (the health-demo
  alert episode).
* ``.txt`` files — Prometheus text exposition from the health endpoint:
  well-formed ``# TYPE``/sample lines, the scrape timestamp family, and
  sane ``slo_firing`` values when present.

``.jsonl`` files are dispatched by the ``schema`` tag of their first
line (``trace_summary/v1``, ``slo_events/v1``, or none -> tsdb dump).
"""

import json
import sys

INDEXES = ["PACTree", "PDL-ART", "BzTree", "FastFair", "FPTree"]
HIST_KEYS = ["count", "mean", "p50", "p90", "p99", "p999", "p9999", "max"]
PERCENTILE_ORDER = ["p50", "p90", "p99", "p999", "p9999", "max"]


def fail(msg):
    print(f"FAIL: {msg}")
    sys.exit(1)


def check_hist(h, where):
    for k in HIST_KEYS:
        if not isinstance(h.get(k), (int, float)):
            fail(f"{where}: missing/non-numeric '{k}': {h.get(k)!r}")
    seq = [h[k] for k in PERCENTILE_ORDER]
    if seq != sorted(seq):
        fail(f"{where}: percentiles not monotone: {seq}")
    if h["count"] < 0:
        fail(f"{where}: negative count")


def validate_fig13(doc, path):
    for k in ["keys", "ops", "threads", "dilation", "unit", "mixes"]:
        if k not in doc:
            fail(f"{path}: missing top-level '{k}'")
    if not doc["mixes"]:
        fail(f"{path}: no mixes")
    for mix, per_index in doc["mixes"].items():
        for idx in INDEXES:
            if idx not in per_index:
                fail(f"{path}: mix {mix} missing index {idx}")
            hists = per_index[idx]
            if "all" not in hists:
                fail(f"{path}: {mix}/{idx} missing merged 'all' histogram")
            for kind, h in hists.items():
                check_hist(h, f"{path}: {mix}/{idx}/{kind}")
            if hists["all"]["count"] <= 0:
                fail(f"{path}: {mix}/{idx} recorded no operations")
    print(f"OK: {path} (fig13_tail/v1, {len(doc['mixes'])} mixes x {len(INDEXES)} indexes)")


def validate_report(doc, path):
    samples = doc.get("samples")
    if not isinstance(samples, list) or not samples:
        fail(f"{path}: empty or missing 'samples'")
    for i, s in enumerate(samples):
        for k in ["ts_ns", "gauges", "hists"]:
            if k not in s:
                fail(f"{path}: sample {i} missing '{k}'")
    final = samples[-1]
    gauges = final["gauges"]
    if not any(k.startswith("pmem.") for k in gauges):
        fail(f"{path}: final sample has no pmem.* gauges")
    for drained in ["smo.pending", "epoch.backlog", "epoch.backlog_age_ns",
                    "mvcc.live_snapshots", "mvcc.chain_max"]:
        matches = [k for k in gauges if k.endswith(drained)]
        if not matches:
            fail(f"{path}: final sample has no *.{drained} gauge")
        for k in matches:
            if gauges[k] != 0:
                fail(f"{path}: {k} = {gauges[k]} after quiesce (want 0)")
    counts = [k for k in gauges if k.endswith("node.count")]
    if not counts or any(gauges[k] <= 0 for k in counts):
        fail(f"{path}: final sample missing positive *.node.count gauge")
    for k in [k for k in gauges if k.endswith("node.occupancy")]:
        if not 0.0 < gauges[k] <= 1.0:
            fail(f"{path}: {k} = {gauges[k]} not a fraction in (0, 1]")
    # The report holds a snapshot open across part of the run, so the MVCC
    # gauges must have moved somewhere in the series, not just existed.
    if not any(v > 0 for s in samples
               for k, v in s["gauges"].items()
               if k.endswith("mvcc.live_snapshots")):
        fail(f"{path}: no sample ever saw a live snapshot (mvcc exercise missing)")
    if doc.get("drained") is not True:
        fail(f"{path}: quiesce reported drained={doc.get('drained')!r}")
    for source, hists in final["hists"].items():
        for kind, h in hists.items():
            check_hist(h, f"{path}: {source}/{kind}")
    print(f"OK: {path} (obsv_report/v1, {len(samples)} samples)")


STALL_KINDS = ["read", "flush", "fence", "throttle"]
SPAN_KINDS = ["root", "admission", "queue", "batch", "index_op", "smo", "epoch",
              "rpc_call", "map_refresh", "bounce_resend", "migrate_phase",
              "remote"]


def validate_trace_chrome(doc, path):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: empty or missing 'traceEvents'")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{path}: no complete ('X') span events")
    by_pid = {}
    for i, e in enumerate(spans):
        where = f"{path}: event {i} ({e.get('name')!r})"
        if e.get("name") not in SPAN_KINDS:
            fail(f"{where}: unknown span name")
        for k in ["ts", "dur", "pid", "tid"]:
            if not isinstance(e.get(k), (int, float)):
                fail(f"{where}: missing/non-numeric '{k}'")
        if e["dur"] < 0:
            fail(f"{where}: negative duration")
        args = e.get("args")
        if not isinstance(args, dict):
            fail(f"{where}: missing 'args'")
        for k in ["trace_id", "span_id", "parent"] + [f"stall_{s}_ns" for s in STALL_KINDS]:
            if not isinstance(args.get(k), int):
                fail(f"{where}: args missing/non-integer '{k}'")
        by_pid.setdefault(e["pid"], []).append(e)
    for pid, evs in by_pid.items():
        roots = [e for e in evs if e["name"] == "root"]
        if len(roots) != 1:
            fail(f"{path}: pid {pid} has {len(roots)} root spans (want 1)")
        root = roots[0]
        r0, r1 = root["ts"], root["ts"] + root["dur"]
        for e in evs:
            # 1us slack: ts/dur are microseconds rounded to 3 decimals.
            if e["ts"] < r0 - 1.0 or e["ts"] + e["dur"] > r1 + 1.0:
                fail(
                    f"{path}: pid {pid} span {e['name']!r} "
                    f"[{e['ts']}, {e['ts'] + e['dur']}] outside root [{r0}, {r1}]"
                )
    print(f"OK: {path} (trace_chrome/v1, {len(by_pid)} traces, {len(spans)} spans)")


def validate_trace_summary_line(doc, where):
    if doc.get("schema") != "trace_summary/v1":
        fail(f"{where}: bad schema {doc.get('schema')!r}")
    for k in ["trace_id", "root_ns"]:
        if not isinstance(doc.get(k), int):
            fail(f"{where}: missing/non-integer '{k}'")
    if not isinstance(doc.get("outcome"), str):
        fail(f"{where}: missing 'outcome'")
    stalls = doc.get("stall_ns")
    if not isinstance(stalls, dict):
        fail(f"{where}: missing 'stall_ns'")
    for s in STALL_KINDS:
        if not isinstance(stalls.get(s), int):
            fail(f"{where}: stall_ns missing/non-integer '{s}'")
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        fail(f"{where}: empty or missing 'spans'")
    for i, s in enumerate(spans):
        if s.get("kind") not in SPAN_KINDS:
            fail(f"{where}: span {i} has unknown kind {s.get('kind')!r}")
        for k in ["span_id", "parent", "tid", "start_ns", "dur_ns", "stall_ns"]:
            if not isinstance(s.get(k), int):
                fail(f"{where}: span {i} missing/non-integer '{k}'")
    if sum(1 for s in spans if s["kind"] == "root") != 1:
        fail(f"{where}: want exactly one root span")


def validate_trace_summary(path):
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail(f"{path}: empty summary")
    for i, ln in enumerate(lines):
        try:
            doc = json.loads(ln)
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i + 1} is not valid JSON: {e}")
        validate_trace_summary_line(doc, f"{path}: line {i + 1}")
    print(f"OK: {path} (trace_summary/v1, {len(lines)} traces)")


def validate_node_search(doc, path):
    kernel = doc.get("kernel")
    if not isinstance(kernel, str) or not kernel:
        fail(f"{path}: missing 'kernel'")
    micro = doc.get("micro_ns_per_probe")
    if not isinstance(micro, dict):
        fail(f"{path}: missing 'micro_ns_per_probe'")
    for shape in ["fp64", "node16"]:
        row = micro.get(shape)
        if not isinstance(row, dict):
            fail(f"{path}: micro missing shape '{shape}'")
        for k in ["scalar", "swar", "simd"]:
            v = row.get(k)
            if not isinstance(v, (int, float)) or v <= 0:
                fail(f"{path}: {shape}/{k} not a positive number: {v!r}")
        if row["scalar"] < row["swar"]:
            fail(f"{path}: {shape} scalar ({row['scalar']}) beat swar ({row['swar']})")
    if not isinstance(doc.get("fp64_speedup_simd_vs_swar"), (int, float)):
        fail(f"{path}: missing 'fp64_speedup_simd_vs_swar'")
    for arm, keys in [("ycsb_c", ["swar_mops", "simd_mops", "delta_pct"]),
                      ("scan", ["swar_mkeys", "simd_mkeys", "delta_pct"])]:
        a = doc.get(arm)
        if not isinstance(a, dict):
            fail(f"{path}: missing '{arm}'")
        for k in keys:
            if not isinstance(a.get(k), (int, float)):
                fail(f"{path}: {arm} missing/non-numeric '{k}'")
    stamp = doc.get("stamp")
    if not isinstance(stamp, dict) or not stamp.get("git_commit"):
        fail(f"{path}: missing provenance stamp with git_commit")
    print(f"OK: {path} (bench_node_search/v1, kernel {kernel}, "
          f"fp64 {doc['fp64_speedup_simd_vs_swar']}x vs swar)")


def check_num(doc, key, where, positive=False):
    v = doc.get(key)
    if not isinstance(v, (int, float)) or (positive and v <= 0):
        fail(f"{where}: missing/invalid '{key}': {v!r}")
    return v


def check_stamp(doc, path):
    stamp = doc.get("stamp")
    if not isinstance(stamp, dict) or not stamp.get("git_commit"):
        fail(f"{path}: missing provenance stamp with git_commit")


def validate_scan_interference(si, where):
    for k in ["scanners", "scan_len", "live_scans", "snapshot_scans"]:
        if not isinstance(si.get(k), int) or si[k] < 0:
            fail(f"{where}: missing/invalid '{k}': {si.get(k)!r}")
    for k in ["live_mops", "live_retention", "snapshot_mops", "snapshot_retention"]:
        check_num(si, k, where, positive=True)
    if si["live_scans"] == 0 or si["snapshot_scans"] == 0:
        fail(f"{where}: a scan mode made no progress: {si}")


def validate_mvcc_bench(doc, path):
    costs = doc.get("snapshot_cost")
    if not isinstance(costs, list) or len(costs) < 2:
        fail(f"{path}: need >= 2 snapshot_cost sizes, got {costs!r}")
    for i, c in enumerate(costs):
        check_num(c, "keys", f"{path}: snapshot_cost[{i}]", positive=True)
        check_num(c, "ns", f"{path}: snapshot_cost[{i}]", positive=True)
    flatness = check_num(doc, "flatness", path, positive=True)
    if flatness < 1.0:
        fail(f"{path}: flatness {flatness} < 1 (must be max/min)")
    writer = doc.get("writer")
    if not isinstance(writer, dict):
        fail(f"{path}: missing 'writer'")
    for k in ["baseline_mops", "held_snapshot_mops", "retention",
              "after_release_mops", "ab_ratio"]:
        check_num(writer, k, f"{path}: writer", positive=True)
    si = doc.get("interference")
    if not isinstance(si, dict):
        fail(f"{path}: missing 'interference'")
    validate_scan_interference(si, f"{path}: interference")
    check_stamp(doc, path)
    print(f"OK: {path} (mvcc_bench/v1, flatness {flatness}x, "
          f"retention {writer['retention']})")


def validate_pacsrv_bench(doc, path):
    for block in ["embedded", "service", "overload_2x"]:
        if not isinstance(doc.get(block), dict):
            fail(f"{path}: missing '{block}'")
    svc = doc["service"]
    for k in ["mops", "ratio", "p50_us", "p99_us", "p999_us"]:
        check_num(svc, k, f"{path}: service", positive=True)
    si = doc.get("scan_interference")
    if not isinstance(si, dict):
        fail(f"{path}: missing 'scan_interference'")
    check_num(si, "baseline_mops", f"{path}: scan_interference", positive=True)
    validate_scan_interference(si, f"{path}: scan_interference")
    if doc.get("drained") is not True:
        fail(f"{path}: drained={doc.get('drained')!r}")
    check_stamp(doc, path)
    print(f"OK: {path} (pacsrv_bench/v2, ratio {svc['ratio']}, "
          f"snapshot-scan retention {si['snapshot_retention']})")


def validate_obsv_overhead(doc, path):
    for k in ["keys", "threads", "slices", "slice_ops", "trials"]:
        check_num(doc, k, path, positive=True)
    for k in ["sampled_pct", "full_fidelity_pct", "tracing_pct"]:
        check_num(doc, k, path)
    if not isinstance(doc.get("tracing_compiled"), bool):
        fail(f"{path}: missing boolean 'tracing_compiled'")
    scraper = doc.get("scraper")
    if not isinstance(scraper, dict):
        fail(f"{path}: missing 'scraper' arm")
    check_num(scraper, "interval_ms", f"{path}: scraper", positive=True)
    for k in ["raw_pct", "scaled_1s_pct"]:
        check_num(scraper, k, f"{path}: scraper")
    for k in ["on_mops", "off_mops"]:
        check_num(scraper, k, f"{path}: scraper", positive=True)
    for k in ["verdict", "scraper_verdict"]:
        if doc.get(k) not in ("PASS", "FAIL"):
            fail(f"{path}: '{k}' is {doc.get(k)!r} (want PASS|FAIL)")
    if not doc.get("git_commit"):
        fail(f"{path}: missing git_commit")
    print(f"OK: {path} (obsv_overhead/v1, scraper {scraper['scaled_1s_pct']:.4f}% "
          f"at 1 s, verdict {doc['scraper_verdict']})")


def validate_paccluster_bench(doc, path):
    for k in ["nodes", "partitions", "clients"]:
        check_num(doc, k, path, positive=True)
    check_num(doc, "hot_fraction", path, positive=True)
    if not isinstance(doc.get("hot_partition"), int) or doc["hot_partition"] < 0:
        fail(f"{path}: missing/invalid 'hot_partition'")
    for window in ["steady", "migration", "post"]:
        w = doc.get(window)
        if not isinstance(w, dict):
            fail(f"{path}: missing '{window}' window")
        check_num(w, "ops", f"{path}: {window}", positive=True)
        for k in ["p50_us", "p99_us"]:
            check_num(w, k, f"{path}: {window}", positive=True)
        if w["p50_us"] > w["p99_us"]:
            fail(f"{path}: {window} p50 {w['p50_us']} > p99 {w['p99_us']}")
    mig = doc["migration"]
    for k in ["rebalance_ms", "seal_ms", "moved_pairs", "delta_pairs"]:
        if not isinstance(mig.get(k), (int, float)) or mig[k] < 0:
            fail(f"{path}: migration missing/invalid '{k}': {mig.get(k)!r}")
    if mig["moved_pairs"] <= 0:
        fail(f"{path}: migration moved no pairs")
    ratio = check_num(doc, "p99_ratio", path, positive=True)
    limit = check_num(doc, "p99_ratio_limit", path, positive=True)
    check_num(doc, "p99_floor_us", path, positive=True)
    router = doc.get("router")
    if not isinstance(router, dict):
        fail(f"{path}: missing 'router'")
    for k in ["final_epoch", "refreshes", "wrong_partition_seen",
              "retried_reads", "sweep_bounces"]:
        if not isinstance(router.get(k), int) or router[k] < 0:
            fail(f"{path}: router missing/invalid '{k}': {router.get(k)!r}")
    if router["final_epoch"] < 2:
        fail(f"{path}: final_epoch {router['final_epoch']} (migration never flipped)")
    if router["sweep_bounces"] != 0:
        fail(f"{path}: convergence sweep bounced {router['sweep_bounces']} times")
    wp = doc.get("wrong_partition_total")
    if not isinstance(wp, list) or len(wp) != doc["nodes"]:
        fail(f"{path}: wrong_partition_total must list all {doc.get('nodes')} nodes")
    if not isinstance(doc.get("errors"), int) or doc["errors"] != 0:
        fail(f"{path}: errors={doc.get('errors')!r}")
    if doc.get("clean") is not True:
        fail(f"{path}: clean={doc.get('clean')!r}")
    if ratio > limit:
        fail(f"{path}: p99_ratio {ratio} exceeds limit {limit}")
    check_stamp(doc, path)
    print(f"OK: {path} (paccluster_bench/v1, p99 ratio {ratio}x <= {limit}x, "
          f"epoch {router['final_epoch']}, seal {mig['seal_ms']} ms)")


def validate_fleet_heat(doc, path):
    """``fleet_heat/v1`` — per-partition heat telemetry from
    ``paccluster-bench``: per-partition op/byte counters with a batch-p99,
    the rebalance advisor's pick, and the fleet-vs-direct p99 gate."""
    if not isinstance(doc.get("hot_partition"), int) or doc["hot_partition"] < 0:
        fail(f"{path}: missing/invalid 'hot_partition'")
    parts = doc.get("partitions")
    if not isinstance(parts, list) or not parts:
        fail(f"{path}: empty or missing 'partitions'")
    total_ops = 0
    for i, p in enumerate(parts):
        where = f"{path}: partition {i}"
        if p.get("id") != i:
            fail(f"{where}: id {p.get('id')!r} out of order")
        for k in ["ops", "bytes", "p99_ns"]:
            if not isinstance(p.get(k), int) or p[k] < 0:
                fail(f"{where}: missing/invalid '{k}': {p.get(k)!r}")
        if p["ops"] > 0 and p["bytes"] == 0:
            fail(f"{where}: {p['ops']} ops moved zero bytes")
        total_ops += p["ops"]
    if total_ops == 0:
        fail(f"{path}: no partition recorded any ops")
    advisor = doc.get("advisor")
    if not isinstance(advisor, dict):
        fail(f"{path}: missing 'advisor'")
    hottest = advisor.get("hottest")
    if not isinstance(hottest, int) or not 0 <= hottest < len(parts):
        fail(f"{path}: advisor hottest {hottest!r} not a partition id")
    if parts[hottest]["ops"] != max(p["ops"] for p in parts):
        fail(f"{path}: advisor picked partition {hottest}, which is not the "
             f"hottest by ops")
    if advisor.get("ok") is not True:
        fail(f"{path}: advisor ok={advisor.get('ok')!r}")
    fleet = doc.get("fleet")
    if not isinstance(fleet, dict):
        fail(f"{path}: missing 'fleet'")
    check_num(fleet, "nodes", f"{path}: fleet", positive=True)
    p99 = check_num(fleet, "p99_ns", f"{path}: fleet", positive=True)
    direct = check_num(fleet, "direct_p99_ns", f"{path}: fleet", positive=True)
    bound = check_num(fleet, "rel_error_bound", f"{path}: fleet", positive=True)
    diff = abs(p99 - direct) / max(direct, 1)
    if diff > bound:
        fail(f"{path}: fleet p99 {p99} vs direct merge {direct} differs by "
             f"{diff:.4f} > bound {bound}")
    check_stamp(doc, path)
    print(f"OK: {path} (fleet_heat/v1, {len(parts)} partitions, hottest "
          f"{hottest}, fleet p99 within {bound * 100:.3f}% of direct merge)")


def jsonl_lines(path):
    with open(path) as f:
        raw = [ln for ln in f.read().splitlines() if ln.strip()]
    if not raw:
        fail(f"{path}: empty jsonl file")
    out = []
    for i, ln in enumerate(raw):
        try:
            out.append((i + 1, json.loads(ln)))
        except json.JSONDecodeError as e:
            fail(f"{path}: line {i + 1} is not valid JSON: {e}")
    return out


def validate_slo_events(path):
    lines = jsonl_lines(path)
    last_event = {}
    last_ts = 0
    for n, doc in lines:
        where = f"{path}: line {n}"
        if doc.get("schema") != "slo_events/v1":
            fail(f"{where}: bad schema {doc.get('schema')!r}")
        if not isinstance(doc.get("slo"), str) or not doc["slo"]:
            fail(f"{where}: missing 'slo'")
        if doc.get("event") not in ("fire", "clear"):
            fail(f"{where}: event {doc.get('event')!r} (want fire|clear)")
        if not isinstance(doc.get("ts_ns"), int) or doc["ts_ns"] < last_ts:
            fail(f"{where}: ts_ns {doc.get('ts_ns')!r} not monotone")
        last_ts = doc["ts_ns"]
        for k in ["burn_fast", "burn_slow", "burn_threshold"]:
            if not isinstance(doc.get(k), (int, float)) or doc[k] < 0:
                fail(f"{where}: missing/invalid '{k}': {doc.get(k)!r}")
        slo = doc["slo"]
        expected = "clear" if last_event.get(slo) == "fire" else "fire"
        if doc["event"] != expected:
            fail(f"{where}: {slo} got '{doc['event']}' (want '{expected}': "
                 f"fire/clear must alternate, starting with fire)")
        last_event[slo] = doc["event"]
    print(f"OK: {path} (slo_events/v1, {len(lines)} transitions, "
          f"{len(last_event)} objectives)")


def validate_tsdb_dump(path):
    lines = jsonl_lines(path)
    last_ts = 0
    samples = 0
    firing = {}
    for n, doc in lines:
        where = f"{path}: line {n}"
        if doc.get("rotated") is True:
            continue  # sampler rotation marker
        for k in ["ts_ns", "gauges", "hists"]:
            if k not in doc:
                fail(f"{where}: sample missing '{k}'")
        if not isinstance(doc["ts_ns"], int) or doc["ts_ns"] < last_ts:
            fail(f"{where}: ts_ns not monotone")
        last_ts = doc["ts_ns"]
        samples += 1
        for k, v in doc["gauges"].items():
            if k.startswith("slo.") and k.endswith(".firing"):
                firing.setdefault(k, []).append(v)
    if samples == 0:
        fail(f"{path}: no samples (only rotation markers)")
    if firing:
        # The alert episode must be visible: some objective fired inside
        # the retained window and every objective ended clear.
        if not any(any(v > 0.5 for v in vs) for vs in firing.values()):
            fail(f"{path}: slo firing gauges present but none ever fired")
        for k, vs in firing.items():
            if vs[-1] > 0.5:
                fail(f"{path}: {k} still firing in the final sample")
    note = f", {len(firing)} slo objectives" if firing else ""
    print(f"OK: {path} (tsdb dump, {samples} samples{note})")


PROM_TYPES = ("gauge", "counter", "summary", "histogram", "untyped")


def validate_prom_text(path):
    with open(path) as f:
        lines = [ln for ln in f.read().splitlines() if ln.strip()]
    if not lines:
        fail(f"{path}: empty exposition")
    families = set()
    samples = 0
    for n, ln in enumerate(lines, 1):
        where = f"{path}: line {n}"
        if ln.startswith("# TYPE "):
            parts = ln.split()
            if len(parts) != 4 or parts[3] not in PROM_TYPES:
                fail(f"{where}: malformed TYPE line: {ln!r}")
            families.add(parts[2])
            continue
        if ln.startswith("#"):
            continue
        name_labels, _, value = ln.rpartition(" ")
        if not name_labels:
            fail(f"{where}: sample line has no value: {ln!r}")
        try:
            v = float(value)
        except ValueError:
            fail(f"{where}: non-numeric value {value!r}")
        name = name_labels.split("{", 1)[0]
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            fail(f"{where}: invalid metric name {name!r}")
        samples += 1
        if name == "slo_firing" and v not in (0.0, 1.0):
            fail(f"{where}: slo_firing must be 0 or 1, got {v}")
    if "obsv_scrape_timestamp_ns" not in families:
        fail(f"{path}: missing obsv_scrape_timestamp_ns family")
    if len(families) < 2 or samples < 2:
        fail(f"{path}: exposition carries no metrics beyond the timestamp")
    print(f"OK: {path} (prometheus text, {len(families)} families, "
          f"{samples} samples)")


def main():
    if len(sys.argv) < 2:
        fail("usage: validate_obsv_json.py <file.json|file.jsonl|file.txt>...")
    for path in sys.argv[1:]:
        if path.endswith(".txt"):
            validate_prom_text(path)
            continue
        if path.endswith(".jsonl"):
            _, first = jsonl_lines(path)[0]
            schema = first.get("schema")
            if schema == "trace_summary/v1":
                validate_trace_summary(path)
            elif schema == "slo_events/v1":
                validate_slo_events(path)
            elif schema is None:
                validate_tsdb_dump(path)
            else:
                fail(f"{path}: unknown jsonl schema {schema!r}")
            continue
        with open(path) as f:
            doc = json.load(f)
        schema = doc.get("schema")
        if schema == "fig13_tail/v1":
            validate_fig13(doc, path)
        elif schema == "obsv_report/v1":
            validate_report(doc, path)
        elif schema == "trace_chrome/v1":
            validate_trace_chrome(doc, path)
        elif schema == "bench_node_search/v1":
            validate_node_search(doc, path)
        elif schema == "mvcc_bench/v1":
            validate_mvcc_bench(doc, path)
        elif schema == "pacsrv_bench/v2":
            validate_pacsrv_bench(doc, path)
        elif schema == "obsv_overhead/v1":
            validate_obsv_overhead(doc, path)
        elif schema == "paccluster_bench/v1":
            validate_paccluster_bench(doc, path)
        elif schema == "fleet_heat/v1":
            validate_fleet_heat(doc, path)
        else:
            fail(f"{path}: unknown schema {schema!r}")
    print("all observability artifacts valid")


if __name__ == "__main__":
    main()
