//! The PACTree data layer: slotted data nodes (paper §5.2, Figure 8).
//!
//! The data layer is a doubly linked list of fixed-size *data nodes*, each
//! holding up to 64 unsorted key-value pairs plus:
//!
//! * an **anchor key** — the smallest key of the node when it was created;
//!   immutable for the node's lifetime (splits move the upper half out);
//! * an 8-byte **validity bitmap** — the single-atomic-store linearization
//!   point for every insert/update/delete (§5.5);
//! * a **fingerprint array** (one byte per slot) filtering full key
//!   comparisons on lookup;
//! * a **permutation array** giving sorted order for scans — deliberately
//!   *not* persisted (§4.4 selective persistence): it is rebuilt on demand
//!   and versioned against the node's lock;
//! * an optimistic persistent **version lock** (§5.7) and sibling pointers.
//!
//! Keys up to 32 bytes are stored inline (one 48-byte slot); longer keys
//! spill to an out-of-node allocation, matching the paper's variable-length
//! key handling.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use pmem::persist;
use pmem::pool::PmemPool;
use pmem::pptr::PmPtr;
use pmem::Result;

use crate::key::fingerprint_of;
use crate::lock::VersionLock;
use crate::simd;

/// Key-value slots per data node (64 so the bitmap is one atomic word and
/// the fingerprint/permutation arrays are exactly one cache line, §5.2).
pub const NODE_SLOTS: usize = 64;

/// A delete that leaves `live(node) + live(right) <= MERGE_THRESHOLD`
/// triggers a merge (half the key-array capacity, §5.6).
pub const MERGE_THRESHOLD: usize = 32;

/// Key bytes stored inline in a slot.
pub const INLINE_KEY: usize = 32;

/// 8-byte words per slot: `[klen, value, key0..key3]`.
const ENTRY_WORDS: usize = 6;

/// Packed permutation metadata: `(version << 16) | (count << 8) | valid`.
#[inline]
fn pack_perm_meta(version: u32, count: u8) -> u64 {
    ((version as u64) << 16) | ((count as u64) << 8) | 1
}

#[inline]
fn unpack_perm_meta(m: u64) -> Option<(u32, u8)> {
    if m & 1 == 0 {
        return None;
    }
    Some(((m >> 16) as u32, (m >> 8) as u8))
}

/// One data node. Allocated from a data-layer pool; the total size fits the
/// 4 KiB allocator class.
#[repr(C)]
pub struct DataNode {
    /// Optimistic persistent version lock (§5.7).
    pub lock: VersionLock,
    /// Validity bitmap: bit i set ⇔ slot i holds a live pair. The single
    /// atomic linearization point of all common-case writes (§5.5).
    pub bitmap: AtomicU64,
    /// Right sibling (raw `PmPtr`), 0 at the tail.
    pub next: AtomicU64,
    /// Left sibling (raw `PmPtr`), 0 at the head.
    pub prev: AtomicU64,
    /// Logical-deletion mark set by merges (§5.6).
    pub deleted: AtomicU64,
    /// Anchor key length.
    anchor_len: u32,
    _pad0: u32,
    /// Anchor bytes (inline part).
    anchor_inline: [u8; INLINE_KEY],
    /// Overflow allocation for anchors longer than [`INLINE_KEY`].
    anchor_overflow: AtomicU64,
    /// Permutation metadata (version + count + valid bit); *not* persisted.
    perm_meta: AtomicU64,
    /// Fingerprints, one byte per slot (exactly one cache line).
    pub fingerprints: [AtomicU8; NODE_SLOTS],
    /// Permutation array: slot indices in sorted key order; *not* persisted.
    perm: [AtomicU8; NODE_SLOTS],
    /// MVCC era stamp: the version-counter value current when this node's
    /// live state last changed under a live snapshot; *never* persisted
    /// (snapshots are process-lifetime objects — see `mvcc_effective_ver`
    /// for why stale post-crash values are harmless).
    mvcc_ver: AtomicU64,
    /// Process generation that wrote `mvcc_ver` (see
    /// [`crate::lock::global_generation`]); guards against stale stamps
    /// surviving a crash via adjacent-cache-line flushes.
    mvcc_gen: AtomicU64,
    /// Key-value slots.
    entries: [[AtomicU64; ENTRY_WORDS]; NODE_SLOTS],
}

/// Bytes to allocate for a data node.
pub const DATA_NODE_SIZE: usize = std::mem::size_of::<DataNode>();

/// A slot's decoded key-value pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pair {
    pub key: Vec<u8>,
    pub value: u64,
}

impl DataNode {
    /// Initializes a fresh node in place.
    ///
    /// Long anchors allocate their overflow from `pool`. The node starts
    /// *write-locked* when `locked` is set (splits hand the new node to the
    /// world only after they finish, §5.6).
    ///
    /// # Safety
    ///
    /// `raw` must be an exclusive, 8-byte-aligned allocation of at least
    /// [`DATA_NODE_SIZE`] bytes.
    pub unsafe fn init(raw: *mut u8, anchor: &[u8], pool: &PmemPool, locked: bool) -> Result<()> {
        // SAFETY: exclusive fresh allocation per caller contract; zero is a
        // valid initial bit pattern for the whole struct.
        unsafe {
            raw.write_bytes(0, DATA_NODE_SIZE);
            let node = &mut *(raw as *mut DataNode);
            node.lock = VersionLock::new();
            if locked {
                let guard = node.lock.try_write_lock().expect("fresh lock is free");
                // Released explicitly via `unlock_initial` when the split
                // completes.
                std::mem::forget(guard);
            }
            node.anchor_len = anchor.len() as u32;
            if anchor.len() <= INLINE_KEY {
                node.anchor_inline[..anchor.len()].copy_from_slice(anchor);
            } else {
                node.anchor_inline.copy_from_slice(&anchor[..INLINE_KEY]);
                let ov = pool.allocator().alloc(anchor.len())?;
                std::ptr::copy_nonoverlapping(anchor.as_ptr(), ov.as_mut_ptr(), anchor.len());
                persist::persist(ov.as_ptr(), anchor.len());
                node.anchor_overflow = AtomicU64::new(ov.raw());
            }
        }
        Ok(())
    }

    /// Releases the construction-time lock taken by [`init`](Self::init)
    /// with `locked = true`.
    pub fn unlock_initial(&self) {
        debug_assert!(self.lock.is_locked());
        self.lock.force_unlock();
    }

    /// The node's anchor key.
    pub fn anchor(&self) -> Vec<u8> {
        let len = self.anchor_len as usize;
        if len <= INLINE_KEY {
            self.anchor_inline[..len].to_vec()
        } else {
            let ov = PmPtr::<u8>::from_raw(self.anchor_overflow.load(Ordering::Acquire));
            debug_assert!(!ov.is_null());
            // SAFETY: overflow block of `len` bytes written during init;
            // anchors are immutable.
            unsafe { std::slice::from_raw_parts(ov.as_ptr(), len) }.to_vec()
        }
    }

    /// Whether `key` is below this node's anchor (i.e. left of its range).
    pub fn key_below_anchor(&self, key: &[u8]) -> bool {
        let len = self.anchor_len as usize;
        if len <= INLINE_KEY {
            key < &self.anchor_inline[..len]
        } else {
            key < self.anchor().as_slice()
        }
    }

    /// Whether `key` is at or above this node's anchor.
    pub fn key_in_or_after(&self, key: &[u8]) -> bool {
        !self.key_below_anchor(key)
    }

    /// Number of live pairs.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.bitmap.load(Ordering::Acquire).count_ones() as usize
    }

    /// Lowest free slot index, if any.
    #[inline]
    pub fn free_slot(&self) -> Option<usize> {
        let bm = self.bitmap.load(Ordering::Acquire);
        if bm == u64::MAX {
            None
        } else {
            Some(bm.trailing_ones() as usize)
        }
    }

    // -- Slot access --------------------------------------------------------

    /// Reads a slot's key into `buf`. All loads are atomic (seqlock
    /// discipline: optimistic readers validate the node version afterwards).
    pub fn read_key(&self, slot: usize, buf: &mut Vec<u8>) {
        buf.clear();
        let words = &self.entries[slot];
        let klen = words[0].load(Ordering::Acquire) as usize;
        if klen <= INLINE_KEY {
            for w in 0..4 {
                let v = words[2 + w].load(Ordering::Acquire).to_le_bytes();
                buf.extend_from_slice(&v);
            }
            buf.truncate(klen);
        } else {
            let ov = PmPtr::<u8>::from_raw(words[2].load(Ordering::Acquire));
            if ov.is_null() {
                return; // torn read; version validation will catch it
            }
            // SAFETY: overflow blocks are immutable once the slot is
            // published, and epoch protection prevents reuse under readers.
            buf.extend_from_slice(unsafe { std::slice::from_raw_parts(ov.as_ptr(), klen) });
        }
    }

    /// Whether a slot's key equals `key` (atomic reads, caller validates).
    fn key_eq(&self, slot: usize, key: &[u8]) -> bool {
        let words = &self.entries[slot];
        let klen = words[0].load(Ordering::Acquire) as usize;
        if klen != key.len() {
            return false;
        }
        if klen <= INLINE_KEY {
            let mut padded = [0u8; INLINE_KEY];
            padded[..klen].copy_from_slice(key);
            for w in 0..4 {
                let want = u64::from_le_bytes(padded[w * 8..w * 8 + 8].try_into().unwrap());
                if words[2 + w].load(Ordering::Acquire) != want {
                    return false;
                }
            }
            true
        } else {
            let ov = PmPtr::<u8>::from_raw(words[2].load(Ordering::Acquire));
            if ov.is_null() {
                return false;
            }
            // SAFETY: see `read_key`.
            let stored = unsafe { std::slice::from_raw_parts(ov.as_ptr(), klen) };
            stored == key
        }
    }

    /// A slot's value word.
    #[inline]
    pub fn value_at(&self, slot: usize) -> u64 {
        self.entries[slot][1].load(Ordering::Acquire)
    }

    /// Decodes one slot into an owned pair.
    pub fn pair_at(&self, slot: usize) -> Pair {
        let mut key = Vec::new();
        self.read_key(slot, &mut key);
        Pair {
            key,
            value: self.value_at(slot),
        }
    }

    /// Finds the live slot holding `key`, fingerprint-filtered (§5.3).
    pub fn find(&self, key: &[u8]) -> Option<usize> {
        self.find_counting(key).0
    }

    /// [`find`](Self::find) plus the number of fingerprint *false hits*:
    /// candidate slots whose fingerprint matched but whose full key did not
    /// (probe-quality signal for the `fp.false_hit_ratio` gauge).
    pub fn find_counting(&self, key: &[u8]) -> (Option<usize>, u32) {
        let fp = fingerprint_of(key);
        let bm = self.bitmap.load(Ordering::Acquire);
        let mut candidates = fingerprint_matches(&self.fingerprints, fp) & bm;
        let mut false_hits = 0u32;
        while candidates != 0 {
            let slot = candidates.trailing_zeros() as usize;
            candidates &= candidates - 1;
            if self.key_eq(slot, key) {
                return (Some(slot), false_hits);
            }
            false_hits += 1;
        }
        (None, false_hits)
    }

    /// Writes `key`/`value` into a free slot and persists the payload and
    /// fingerprint; the caller publishes via [`publish`](Self::publish).
    /// Long keys allocate overflow from `pool`.
    ///
    /// Requires the node's write lock.
    pub fn write_slot(&self, slot: usize, key: &[u8], value: u64, pool: &PmemPool) -> Result<()> {
        debug_assert_eq!(self.bitmap.load(Ordering::Relaxed) & (1 << slot), 0);
        let words = &self.entries[slot];
        if key.len() <= INLINE_KEY {
            let mut padded = [0u8; INLINE_KEY];
            padded[..key.len()].copy_from_slice(key);
            for w in 0..4 {
                words[2 + w].store(
                    u64::from_le_bytes(padded[w * 8..w * 8 + 8].try_into().unwrap()),
                    Ordering::Relaxed,
                );
            }
        } else {
            let ov = pool.allocator().alloc(key.len())?;
            // SAFETY: fresh allocation of `key.len()` bytes.
            unsafe {
                std::ptr::copy_nonoverlapping(key.as_ptr(), ov.as_mut_ptr(), key.len());
            }
            persist::persist(ov.as_ptr(), key.len());
            words[2].store(ov.raw(), Ordering::Relaxed);
        }
        words[1].store(value, Ordering::Relaxed);
        words[0].store(key.len() as u64, Ordering::Release);
        self.fingerprints[slot].store(fingerprint_of(key), Ordering::Release);
        persist::persist(words.as_ptr() as *const u8, ENTRY_WORDS * 8);
        persist::persist_obj(&self.fingerprints[slot]);
        Ok(())
    }

    /// Copies an already-published slot of `src` into a free slot of `self`
    /// (split/merge data movement; overflow ownership transfers with the
    /// pointer).
    ///
    /// Requires write locks on (or exclusivity over) both nodes.
    pub fn copy_slot_from(&self, slot: usize, src: &DataNode, src_slot: usize) {
        let d = &self.entries[slot];
        let s = &src.entries[src_slot];
        for w in 0..ENTRY_WORDS {
            d[w].store(s[w].load(Ordering::Acquire), Ordering::Relaxed);
        }
        self.fingerprints[slot].store(
            src.fingerprints[src_slot].load(Ordering::Acquire),
            Ordering::Release,
        );
        persist::persist(d.as_ptr() as *const u8, ENTRY_WORDS * 8);
        persist::persist_obj(&self.fingerprints[slot]);
    }

    /// Publishes slot changes with one atomic bitmap store + persist: sets
    /// the bits of `set`, clears the bits of `clear` (the §5.5 linearization
    /// point). Requires the node's write lock.
    pub fn publish(&self, set: u64, clear: u64) {
        persist::fence();
        let bm = self.bitmap.load(Ordering::Acquire);
        self.bitmap.store((bm & !clear) | set, Ordering::Release);
        persist::persist_obj_fenced(&self.bitmap);
    }

    /// Returns a cleared slot's overflow key allocation, if any (callers
    /// defer the free through the epoch collector).
    pub fn overflow_of(&self, slot: usize) -> Option<(PmPtr<u8>, usize)> {
        let words = &self.entries[slot];
        let klen = words[0].load(Ordering::Acquire) as usize;
        if klen > INLINE_KEY {
            let ov = PmPtr::<u8>::from_raw(words[2].load(Ordering::Acquire));
            (!ov.is_null()).then_some((ov, klen))
        } else {
            None
        }
    }

    // -- Permutation array (§5.4) -------------------------------------------

    /// Returns slots in sorted key order, using the cached permutation array
    /// when its version matches `lock_version` and rebuilding it otherwise.
    ///
    /// The permutation array is volatile data living in NVM: it is never
    /// persisted (selective persistence, §4.4) unless `persist_perm` is set
    /// (the Figure 12 factor-analysis ablation flips this).
    pub fn sorted_slots(&self, lock_version: u32, persist_perm: bool) -> Vec<usize> {
        // Cached fast path, seqlock-style: the meta word must be valid with
        // the right version both before and after reading the slot bytes, so
        // a concurrent (possibly stale) rebuilder can never hand us mixed
        // content.
        let m1 = self.perm_meta.load(Ordering::Acquire);
        if let Some((ver, count)) = unpack_perm_meta(m1) {
            if ver == lock_version {
                let mut out = Vec::with_capacity(count as usize);
                for i in 0..count as usize {
                    out.push(self.perm[i].load(Ordering::Acquire) as usize);
                }
                if self.perm_meta.load(Ordering::Acquire) == m1 {
                    return out;
                }
            }
        }
        // Rebuild: invalidate, write, publish. The caller always gets the
        // locally computed order, so even a lost publish race is harmless.
        let keyed = self.sorted_pairs_raw();
        self.perm_meta.store(0, Ordering::Release);
        for (i, (_, slot)) in keyed.iter().enumerate() {
            self.perm[i].store(*slot as u8, Ordering::Relaxed);
        }
        self.perm_meta.store(
            pack_perm_meta(lock_version, keyed.len() as u8),
            Ordering::Release,
        );
        if persist_perm {
            persist::persist(self.perm.as_ptr() as *const u8, NODE_SLOTS);
            persist::persist_obj_fenced(&self.perm_meta);
        }
        keyed.into_iter().map(|(_, s)| s).collect()
    }

    // -- MVCC era stamps (see `crate::mvcc`) --------------------------------

    /// The version era this node's live state has been current since, or 0
    /// ("since the beginning") when the stamp was written by a previous
    /// process incarnation. The fields are never deliberately persisted, but
    /// a crash can leak them to media via adjacent-line flushes; the
    /// generation check makes any such leak read as 0, which is correct
    /// because snapshots never survive the process that created them.
    #[inline]
    pub fn mvcc_effective_ver(&self) -> u64 {
        if self.mvcc_gen.load(Ordering::Acquire) != u64::from(crate::lock::global_generation()) {
            return 0;
        }
        self.mvcc_ver.load(Ordering::Acquire)
    }

    /// Stamps the node as "live state current since era `ver`". Requires the
    /// node's write lock (or construction-time exclusivity).
    #[inline]
    pub fn mvcc_stamp(&self, ver: u64) {
        self.mvcc_gen.store(
            u64::from(crate::lock::global_generation()),
            Ordering::Release,
        );
        self.mvcc_ver.store(ver, Ordering::Release);
    }

    /// Live `(key, value)` pairs in sorted key order, fully materialized
    /// (MVCC freeze capture; the caller holds the lock or is inside a
    /// validated seqlock read).
    pub fn sorted_pairs_owned(&self) -> Vec<(Vec<u8>, u64)> {
        self.sorted_pairs_raw()
            .into_iter()
            .map(|(k, slot)| {
                let v = self.value_at(slot);
                (k, v)
            })
            .collect()
    }

    /// Live `(key, slot)` pairs in sorted order (split/merge and recovery
    /// helper; the caller holds the lock or has exclusivity).
    ///
    /// When every live key is inline, the sort runs on SIMD-gathered
    /// byte-swapped key words ([`simd::Kernels::key_rank`]) instead of
    /// materialized byte vectors: inline keys are stored zero-padded as
    /// little-endian words, so (bswap word 2, …, bswap word 5, klen)
    /// compares exactly like the raw bytes — a shorter key that is a
    /// prefix pads with zeros, which only the klen tie-break can order.
    /// Any overflow key falls back to the materialize-and-sort path.
    pub fn sorted_pairs_raw(&self) -> Vec<(Vec<u8>, usize)> {
        let bm = self.bitmap.load(Ordering::Acquire);
        let mut slots = [0u8; NODE_SLOTS];
        let mut lens = [0u64; NODE_SLOTS];
        let mut n = 0usize;
        let mut all_inline = true;
        let mut bits = bm;
        while bits != 0 {
            let slot = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            slots[n] = slot as u8;
            lens[n] = self.entries[slot][0].load(Ordering::Acquire);
            all_inline &= lens[n] as usize <= INLINE_KEY;
            n += 1;
        }
        if all_inline {
            let kernels = simd::active();
            let base = self.entries.as_ptr() as *const u8;
            let mut ranks = [[0u64; NODE_SLOTS]; 4];
            for (w, rank) in ranks.iter_mut().enumerate() {
                // SAFETY: `base` spans NODE_SLOTS aligned ENTRY_WORDS-u64
                // entries and every slot id is < NODE_SLOTS, so each
                // addressed word is in bounds; this method requires the
                // lock (or exclusivity), satisfying the tearing contract.
                unsafe {
                    kernels.key_rank(base, ENTRY_WORDS * 8, (2 + w) * 8, &slots[..n], rank);
                }
            }
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by_key(|&i| {
                (ranks[0][i], ranks[1][i], ranks[2][i], ranks[3][i], lens[i])
            });
            let mut buf = Vec::new();
            return order
                .into_iter()
                .map(|i| {
                    let slot = slots[i] as usize;
                    self.read_key(slot, &mut buf);
                    (buf.clone(), slot)
                })
                .collect();
        }
        let mut keyed = Vec::with_capacity(n);
        let mut buf = Vec::new();
        for &slot in &slots[..n] {
            self.read_key(slot as usize, &mut buf);
            keyed.push((buf.clone(), slot as usize));
        }
        keyed.sort();
        keyed
    }
}

/// Fingerprint matcher: returns a 64-bit mask of slots whose fingerprint
/// byte equals `fp` — the paper's single AVX512 comparison over the 64-byte
/// fingerprint array (§5.2), served by the runtime-dispatched
/// [`crate::simd`] kernels (SSE2/AVX2/NEON, SWAR fallback).
#[inline]
pub fn fingerprint_matches(fps: &[AtomicU8; NODE_SLOTS], fp: u8) -> u64 {
    crate::simd::fingerprint_match64(fps, fp)
}

/// Dereferences a raw data-node pointer.
///
/// # Safety
///
/// `raw` must point to an initialized `DataNode` that outlives the returned
/// reference (epoch protection or exclusivity).
#[inline]
pub unsafe fn node_ref<'a>(raw: u64) -> &'a DataNode {
    debug_assert_ne!(raw, 0);
    // SAFETY: per caller contract.
    unsafe { &*(PmPtr::<DataNode>::from_raw(raw).as_ptr()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::pool::{destroy_pool, PoolConfig};
    use std::sync::Arc;

    fn mk_node(name: &str) -> (Arc<PmemPool>, u64) {
        let pool = PmemPool::create(PoolConfig::volatile(name, 16 << 20)).unwrap();
        let ptr = pool.allocator().alloc(DATA_NODE_SIZE).unwrap();
        // SAFETY: fresh allocation of DATA_NODE_SIZE bytes.
        unsafe { DataNode::init(ptr.as_mut_ptr(), b"anchor", &pool, false).unwrap() };
        (pool, ptr.raw())
    }

    #[test]
    fn node_size_fits_allocator_class() {
        const {
            assert!(DATA_NODE_SIZE <= 4096, "node too big for allocator class");
            assert!(DATA_NODE_SIZE >= 3000, "node unexpectedly small");
        }
    }

    #[test]
    fn insert_find_roundtrip() {
        let (pool, raw) = mk_node("dn-basic");
        // SAFETY: node just initialized; pool alive.
        let node = unsafe { node_ref(raw) };
        let g = node.lock.write_lock();
        let slot = node.free_slot().unwrap();
        node.write_slot(slot, b"hello", 42, &pool).unwrap();
        node.publish(1 << slot, 0);
        drop(g);
        assert_eq!(node.find(b"hello"), Some(slot));
        assert_eq!(node.value_at(slot), 42);
        assert_eq!(node.find(b"world"), None);
        assert_eq!(node.live_count(), 1);
        destroy_pool(pool.id());
    }

    #[test]
    fn fills_to_capacity() {
        let (pool, raw) = mk_node("dn-full");
        // SAFETY: initialized node.
        let node = unsafe { node_ref(raw) };
        let _g = node.lock.write_lock();
        for i in 0..NODE_SLOTS {
            let slot = node.free_slot().expect("has space");
            node.write_slot(slot, &(i as u64).to_be_bytes(), i as u64, &pool)
                .unwrap();
            node.publish(1 << slot, 0);
        }
        assert_eq!(node.free_slot(), None);
        assert_eq!(node.live_count(), NODE_SLOTS);
        for i in 0..NODE_SLOTS {
            let s = node.find(&(i as u64).to_be_bytes()).unwrap();
            assert_eq!(node.value_at(s), i as u64);
        }
        destroy_pool(pool.id());
    }

    #[test]
    fn update_swaps_slots_atomically() {
        let (pool, raw) = mk_node("dn-update");
        // SAFETY: initialized node.
        let node = unsafe { node_ref(raw) };
        let _g = node.lock.write_lock();
        node.write_slot(0, b"k", 1, &pool).unwrap();
        node.publish(1, 0);
        // Update protocol (§5.5): write the new pair to a free slot, then
        // flip both bits in one atomic store.
        node.write_slot(1, b"k", 2, &pool).unwrap();
        node.publish(1 << 1, 1);
        assert_eq!(node.find(b"k"), Some(1));
        assert_eq!(node.value_at(1), 2);
        assert_eq!(node.live_count(), 1);
        destroy_pool(pool.id());
    }

    #[test]
    fn long_keys_overflow() {
        let (pool, raw) = mk_node("dn-longkey");
        // SAFETY: initialized node.
        let node = unsafe { node_ref(raw) };
        let _g = node.lock.write_lock();
        let long_key = vec![9u8; 200];
        node.write_slot(0, &long_key, 7, &pool).unwrap();
        node.publish(1, 0);
        assert_eq!(node.find(&long_key), Some(0));
        assert_eq!(node.pair_at(0).key, long_key);
        assert!(node.overflow_of(0).is_some());
        let mut other = long_key.clone();
        other[199] = 8;
        assert_eq!(node.find(&other), None);
        destroy_pool(pool.id());
    }

    #[test]
    fn long_anchor_overflow() {
        let pool = PmemPool::create(PoolConfig::volatile("dn-longanchor", 16 << 20)).unwrap();
        let ptr = pool.allocator().alloc(DATA_NODE_SIZE).unwrap();
        let anchor = vec![3u8; 100];
        // SAFETY: fresh allocation.
        unsafe { DataNode::init(ptr.as_mut_ptr(), &anchor, &pool, false).unwrap() };
        // SAFETY: initialized node.
        let node = unsafe { node_ref(ptr.raw()) };
        assert_eq!(node.anchor(), anchor);
        assert!(!node.key_below_anchor(&anchor));
        let mut below = anchor.clone();
        below[99] = 2;
        assert!(node.key_below_anchor(&below));
        destroy_pool(pool.id());
    }

    #[test]
    fn init_locked_for_splits() {
        let pool = PmemPool::create(PoolConfig::volatile("dn-locked", 16 << 20)).unwrap();
        let ptr = pool.allocator().alloc(DATA_NODE_SIZE).unwrap();
        // SAFETY: fresh allocation.
        unsafe { DataNode::init(ptr.as_mut_ptr(), b"a", &pool, true).unwrap() };
        // SAFETY: initialized node.
        let node = unsafe { node_ref(ptr.raw()) };
        assert!(node.lock.is_locked());
        node.unlock_initial();
        assert!(!node.lock.is_locked());
        destroy_pool(pool.id());
    }

    #[test]
    fn fingerprint_swar_matches_scalar() {
        let (pool, raw) = mk_node("dn-swar");
        // SAFETY: initialized node.
        let node = unsafe { node_ref(raw) };
        for i in 0..NODE_SLOTS {
            node.fingerprints[i].store((i % 7) as u8 * 3, Ordering::Relaxed);
        }
        for fp in 0..32u8 {
            let mask = fingerprint_matches(&node.fingerprints, fp);
            for i in 0..NODE_SLOTS {
                let expect = node.fingerprints[i].load(Ordering::Relaxed) == fp;
                assert_eq!(mask & (1 << i) != 0, expect, "fp {fp} slot {i}");
            }
        }
        destroy_pool(pool.id());
    }

    #[test]
    fn sorted_slots_and_caching() {
        let (pool, raw) = mk_node("dn-perm");
        // SAFETY: initialized node.
        let node = unsafe { node_ref(raw) };
        let g = node.lock.write_lock();
        for (i, k) in [b"delta", b"alpha", b"gamma", b"bravo"].iter().enumerate() {
            node.write_slot(i, *k, i as u64, &pool).unwrap();
            node.publish(1 << i, 0);
        }
        drop(g);
        let v = node.lock.version();
        let order = node.sorted_slots(v, false);
        let keys: Vec<Vec<u8>> = order.iter().map(|&s| node.pair_at(s).key).collect();
        assert_eq!(
            keys,
            vec![
                b"alpha".to_vec(),
                b"bravo".to_vec(),
                b"delta".to_vec(),
                b"gamma".to_vec()
            ]
        );
        // Cached path returns the same order.
        assert_eq!(node.sorted_slots(v, false), order);
        // A write invalidates the cache (version moves on).
        let g = node.lock.write_lock();
        node.write_slot(4, b"aaaa", 9, &pool).unwrap();
        node.publish(1 << 4, 0);
        drop(g);
        let v2 = node.lock.version();
        assert_ne!(v2, v);
        let order2 = node.sorted_slots(v2, false);
        assert_eq!(order2.len(), 5);
        assert_eq!(node.pair_at(order2[0]).key, b"aaaa".to_vec());
        destroy_pool(pool.id());
    }

    // Differential check of the SIMD-ranked sorted-slot build against the
    // naive materialize-and-sort: random distinct keys of mixed lengths,
    // covering the all-inline fast path (≤ 32 bytes) and the overflow
    // fallback (> 32 bytes) in the same sweep.
    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(48))]

        #[test]
        fn sorted_pairs_raw_matches_naive_sort(
            keys in proptest::collection::btree_set(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 1..40),
                1..NODE_SLOTS,
            ),
        ) {
            static CASE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let name = format!("dn-sortprop-{}", CASE.fetch_add(1, Ordering::Relaxed));
            let (pool, raw) = mk_node(&name);
            // SAFETY: initialized node.
            let node = unsafe { node_ref(raw) };
            {
                let _g = node.lock.write_lock();
                for (i, k) in keys.iter().enumerate() {
                    node.write_slot(i, k, i as u64, &pool).unwrap();
                    node.publish(1 << i, 0);
                }
                let got = node.sorted_pairs_raw();
                let mut want: Vec<(Vec<u8>, usize)> =
                    keys.iter().enumerate().map(|(i, k)| (k.clone(), i)).collect();
                want.sort();
                proptest::prop_assert_eq!(&got, &want);
            }
            destroy_pool(pool.id());
        }
    }

    #[test]
    fn publish_set_and_clear_is_one_store() {
        let (pool, raw) = mk_node("dn-pub");
        // SAFETY: initialized node.
        let node = unsafe { node_ref(raw) };
        let _g = node.lock.write_lock();
        node.write_slot(0, b"a", 1, &pool).unwrap();
        node.publish(1, 0);
        node.write_slot(1, b"b", 2, &pool).unwrap();
        node.publish(0b10, 0b01);
        assert_eq!(node.bitmap.load(Ordering::Relaxed), 0b10);
        destroy_pool(pool.id());
    }
}
