//! Optimistic persistent version lock (paper §5.7).
//!
//! An 8-byte word composed of a 4-byte *generation id* and a 4-byte
//! *version number*. An odd version means write-locked. Readers never write
//! the word (GA2: reads must not consume NVM write bandwidth); they sample
//! the version before and after the optimistic read and retry on mismatch.
//!
//! The generation id makes recovery O(1): the process-wide
//! [`global_generation`] is bumped on every restart, which logically resets
//! every lock at once — a lock word whose generation differs from the global
//! one is treated as *free* and lazily reinitialized by the next thread that
//! touches it, so crashed lock holders can never wedge the index.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Process-wide generation id, bumped on every index (re)start.
static GLOBAL_GENERATION: AtomicU32 = AtomicU32::new(1);

/// Current global generation id.
#[inline]
pub fn global_generation() -> u32 {
    GLOBAL_GENERATION.load(Ordering::Acquire)
}

/// Bumps the global generation, logically resetting every persistent lock.
/// Returns the new generation. Called once per recovery (§5.9).
pub fn bump_global_generation() -> u32 {
    GLOBAL_GENERATION.fetch_add(1, Ordering::AcqRel) + 1
}

#[inline]
fn pack(generation: u32, version: u32) -> u64 {
    ((generation as u64) << 32) | version as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// The result of a successful optimistic read begin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadToken {
    version: u32,
}

impl ReadToken {
    /// The version observed at read begin (used to tag derived caches such
    /// as the data-node permutation array, §5.4).
    #[inline]
    pub fn version_hint(&self) -> u32 {
        self.version
    }
}

/// An 8-byte optimistic persistent version lock, stored in NVM.
///
/// The lock word itself is *not* flushed on every transition: lock state
/// need not survive a crash (the generation bump invalidates it), which is
/// exactly why the paper pairs version locks with generation ids (GA4 —
/// don't persist what recovery can reconstruct).
#[repr(transparent)]
#[derive(Debug)]
pub struct VersionLock {
    word: AtomicU64,
}

impl Default for VersionLock {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionLock {
    /// A fresh, unlocked lock in the current generation.
    pub fn new() -> Self {
        VersionLock {
            word: AtomicU64::new(pack(global_generation(), 0)),
        }
    }

    /// Reinterprets 8 bytes of pool memory as a lock.
    ///
    /// # Safety
    ///
    /// `ptr` must be valid, 8-byte aligned, and only ever accessed as a lock
    /// word for the returned reference's lifetime.
    pub unsafe fn from_raw<'a>(ptr: *mut u64) -> &'a VersionLock {
        debug_assert_eq!(ptr as usize % 8, 0);
        // SAFETY: guaranteed by the caller; VersionLock is repr(transparent)
        // over AtomicU64.
        unsafe { &*(ptr as *const VersionLock) }
    }

    /// Loads the word, lazily resetting it if its generation is stale.
    ///
    /// Returns the *current-generation* word value.
    #[inline]
    fn load_fresh(&self) -> u64 {
        let gen = global_generation();
        loop {
            let w = self.word.load(Ordering::Acquire);
            let (g, _) = unpack(w);
            if g == gen {
                return w;
            }
            // Stale generation: the previous holder died in a crash. Reset
            // to unlocked in the current generation (§5.7).
            let fresh = pack(gen, 0);
            match self
                .word
                .compare_exchange_weak(w, fresh, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return fresh,
                Err(_) => continue,
            }
        }
    }

    /// Begins an optimistic read; returns `None` while a writer holds the
    /// lock (caller should back off and retry).
    #[inline]
    pub fn read_begin(&self) -> Option<ReadToken> {
        let (_, v) = unpack(self.load_fresh());
        if v & 1 == 1 {
            return None;
        }
        Some(ReadToken { version: v })
    }

    /// Spins until a read can begin.
    #[inline]
    pub fn read_begin_spin(&self) -> ReadToken {
        let mut spins = 0u32;
        loop {
            if let Some(t) = self.read_begin() {
                return t;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Validates an optimistic read: true iff no writer intervened.
    #[inline]
    pub fn read_validate(&self, token: ReadToken) -> bool {
        std::sync::atomic::fence(Ordering::Acquire);
        let w = self.word.load(Ordering::Acquire);
        let (g, v) = unpack(w);
        g == global_generation() && v == token.version
    }

    /// Attempts to acquire the write lock; returns a guard token on success.
    #[inline]
    pub fn try_write_lock(&self) -> Option<WriteGuard<'_>> {
        let w = self.load_fresh();
        let (g, v) = unpack(w);
        if v & 1 == 1 {
            return None;
        }
        let locked = pack(g, v.wrapping_add(1));
        self.word
            .compare_exchange(w, locked, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| WriteGuard { lock: self })
    }

    /// Spins until the write lock is acquired.
    #[inline]
    pub fn write_lock(&self) -> WriteGuard<'_> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_write_lock() {
                return g;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Upgrades an optimistic read to a write lock, failing if any writer
    /// intervened since `token` was taken.
    #[inline]
    pub fn try_upgrade(&self, token: ReadToken) -> Option<WriteGuard<'_>> {
        let g = global_generation();
        let cur = pack(g, token.version);
        let locked = pack(g, token.version.wrapping_add(1));
        self.word
            .compare_exchange(cur, locked, Ordering::AcqRel, Ordering::Acquire)
            .ok()
            .map(|_| WriteGuard { lock: self })
    }

    /// Current version (for permutation-array version checks, §5.4).
    #[inline]
    pub fn version(&self) -> u32 {
        unpack(self.load_fresh()).1
    }

    /// Whether a writer currently holds the lock.
    #[inline]
    pub fn is_locked(&self) -> bool {
        unpack(self.load_fresh()).1 & 1 == 1
    }

    fn unlock(&self) {
        let w = self.word.load(Ordering::Relaxed);
        let (g, v) = unpack(w);
        debug_assert_eq!(v & 1, 1, "unlocking an unlocked lock");
        self.word
            .store(pack(g, v.wrapping_add(1)), Ordering::Release);
    }

    /// Releases a lock whose guard was intentionally leaked (split-created
    /// nodes start life locked, §5.6).
    ///
    /// # Panics
    ///
    /// Debug-panics if the lock is not currently held.
    pub fn force_unlock(&self) {
        self.unlock();
    }
}

/// RAII write guard; releases (version bump to even) on drop.
#[must_use = "dropping the guard releases the lock"]
pub struct WriteGuard<'a> {
    lock: &'a VersionLock,
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn optimistic_read_validates_when_quiet() {
        let l = VersionLock::new();
        let t = l.read_begin().unwrap();
        assert!(l.read_validate(t));
    }

    #[test]
    fn write_invalidates_concurrent_read() {
        let l = VersionLock::new();
        let t = l.read_begin().unwrap();
        {
            let _g = l.write_lock();
            assert!(!l.read_validate(t), "held lock invalidates");
        }
        assert!(!l.read_validate(t), "version moved on");
        let t2 = l.read_begin().unwrap();
        assert!(l.read_validate(t2));
    }

    #[test]
    fn read_blocked_while_locked() {
        let l = VersionLock::new();
        let _g = l.write_lock();
        assert!(l.read_begin().is_none());
        assert!(l.is_locked());
    }

    #[test]
    fn try_lock_fails_under_contention() {
        let l = VersionLock::new();
        let g = l.write_lock();
        assert!(l.try_write_lock().is_none());
        drop(g);
        assert!(l.try_write_lock().is_some());
    }

    #[test]
    fn upgrade_succeeds_only_without_intervening_writer() {
        let l = VersionLock::new();
        let t = l.read_begin().unwrap();
        let g = l.try_upgrade(t).expect("clean upgrade");
        drop(g);
        // Stale token now: a write happened.
        assert!(l.try_upgrade(t).is_none());
    }

    #[test]
    fn generation_bump_frees_stale_lock() {
        let l = VersionLock::new();
        let g = l.write_lock();
        std::mem::forget(g); // simulate a crash with the lock held
        assert!(l.read_begin().is_none());
        bump_global_generation();
        // The stale lock resets lazily; readers and writers proceed.
        assert!(l.read_begin().is_some());
        let _w = l
            .try_write_lock()
            .expect("lock usable after generation bump");
    }

    #[test]
    fn writers_are_mutually_exclusive() {
        let l = Arc::new(VersionLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let l = Arc::clone(&l);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    let _g = l.write_lock();
                    // Non-atomic RMW protected by the lock.
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 80_000);
    }
}
