//! The PACTree index (paper §4-§5).
//!
//! [`PacTree`] glues the layers together:
//!
//! * **locate** — traverse the PDL-ART search layer to a *jump node*, then
//!   walk the data-layer doubly linked list, comparing anchor keys, until
//!   the node whose range covers the key is found (§5.3). The walk distance
//!   is recorded for the §6.7 experiment.
//! * **lookup/scan** — optimistic reads against data nodes (§5.3-§5.4).
//! * **insert/update/delete** — write-locked data-node slot protocols with
//!   the bitmap as linearization point (§5.5), triggering asynchronous
//!   split/merge SMOs (§5.6).
//! * **recovery** — generation bump, allocator and PDL-ART log recovery,
//!   and idempotent SMO log replay (§5.9).
//!
//! Pools: the search layer, data layer, and logs each get their own pool
//! set, with one data pool per logical NUMA node (§5.8); allocation is
//! NUMA-local.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

use obsv::{OpKind, OpTimer};

use pmem::epoch::Collector;
use pmem::model;
use pmem::persist;
use pmem::pool::{self, PmemPool, PoolConfig};
use pmem::pptr::PmPtr;
use pmem::{AllocMode, PmemError, Result};

use crate::data::{node_ref, DataNode, Pair, DATA_NODE_SIZE, MERGE_THRESHOLD, NODE_SLOTS};
use crate::mvcc::{DiffEntry, MvccState, Resolved};
use crate::search::Art;
use crate::smo::{SmoKind, SmoLog, SmoRecord};
use crate::stats::TreeStats;
use crate::updater::Updater;

/// Escalating backoff for the optimistic retry loops: free on the first
/// pass, then spins, yields, and finally sleeps, so retries don't burn the
/// host CPU while a lock holder sleeps through time-dilated NVM stalls.
struct RetryBackoff(u32);

impl RetryBackoff {
    fn new() -> RetryBackoff {
        RetryBackoff(0)
    }

    fn pause_if_retrying(&mut self) {
        let n = self.0;
        self.0 = self.0.saturating_add(1);
        match n {
            0 => {}
            1..=8 => std::hint::spin_loop(),
            9..=64 => std::thread::yield_now(),
            _ => std::thread::sleep(std::time::Duration::from_micros(50)),
        }
    }
}

/// Root-directory slots used by PACTree inside its pools.
const ROOT_ART: usize = 0; // search pool: ART root (slot 1 = ART alloc log)
const ROOT_HEAD: usize = 0; // data pool 0: head data node
const ROOT_SMO: usize = 0; // log pool: SMO log area

/// Configuration for creating or recovering a [`PacTree`].
#[derive(Debug, Clone)]
pub struct PacTreeConfig {
    /// Pool name prefix (pools are `{name}-search`, `{name}-data{n}`,
    /// `{name}-log`).
    pub name: String,
    /// Data pool count = logical NUMA nodes to spread over (GS2).
    pub numa_pools: u16,
    /// Size of each pool in bytes.
    pub pool_size: usize,
    /// Keep media images for crash simulation.
    pub crash_sim: bool,
    /// Allocator mode for all pools.
    pub alloc_mode: AllocMode,
    /// Replay SMOs in a background thread (the paper's asynchronous
    /// search-layer update). When false, writers replay synchronously in
    /// the critical path (the Figure 12 "+Async Update" ablation's off
    /// state).
    pub async_smo: bool,
    /// Persist the permutation array on rebuild (paper: *off* — selective
    /// persistence §4.4; the Figure 12 ablation turns it on to measure).
    pub persist_permutation: bool,
    /// Place the search layer in emulated DRAM (no NVM model charging),
    /// like FPTree-style hybrids; the paper measures <10% gain (§6.3).
    pub search_layer_dram: bool,
}

impl PacTreeConfig {
    /// Reasonable defaults for tests and examples: one NUMA pool, crash
    /// simulation off, asynchronous SMOs on.
    pub fn named(name: &str) -> Self {
        PacTreeConfig {
            name: name.to_string(),
            numa_pools: 1,
            pool_size: 256 << 20,
            crash_sim: false,
            alloc_mode: AllocMode::Transient,
            async_smo: true,
            persist_permutation: false,
            search_layer_dram: false,
        }
    }

    /// Paper-faithful durable configuration: crash simulation, crash
    /// consistent allocation, per-NUMA data pools.
    pub fn durable(name: &str) -> Self {
        PacTreeConfig {
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
            numa_pools: pmem::numa::nodes(),
            ..Self::named(name)
        }
    }

    /// Sets the per-pool size.
    pub fn with_pool_size(mut self, bytes: usize) -> Self {
        self.pool_size = bytes;
        self
    }

    /// Sets the number of per-NUMA data pools.
    pub fn with_numa_pools(mut self, n: u16) -> Self {
        self.numa_pools = n.max(1);
        self
    }

    /// Toggles asynchronous SMO replay.
    pub fn with_async_smo(mut self, on: bool) -> Self {
        self.async_smo = on;
        self
    }
}

/// The PACTree persistent range index. Thread-safe; share via `Arc`.
pub struct PacTree {
    config: PacTreeConfig,
    search_pool: Arc<PmemPool>,
    data_pools: Vec<Arc<PmemPool>>,
    log_pool: Arc<PmemPool>,
    pub(crate) art: Art,
    pub(crate) smo: SmoLog,
    /// Versioning subsystem (DESIGN.md §13): snapshot registry, frozen
    /// data-node chains, era counter.
    mvcc: Arc<MvccState>,
    collector: Arc<Collector>,
    stats: TreeStats,
    /// Per-operation latency histograms (obsv recorder).
    ops: obsv::OpHistograms,
    /// Registry guards for this tree's gauges; dropped (and the gauges
    /// unregistered) with the tree.
    obsv_guards: OnceLock<Vec<obsv::Registration>>,
    updater: Updater,
    /// Sum of pool crash counts at assembly; used to detect that a crash
    /// was simulated underneath this instance (its deferred frees are then
    /// invalid and must be discarded, not run).
    birth_crash_count: u64,
}

impl PacTree {
    /// Creates a fresh PACTree (fails if pools with these names exist).
    pub fn create(config: PacTreeConfig) -> Result<Arc<PacTree>> {
        let mk = |suffix: &str, node: u16, dram: bool| {
            let mut pc = PoolConfig {
                name: format!("{}-{}", config.name, suffix),
                size: config.pool_size,
                numa_node: node,
                crash_sim: config.crash_sim,
                alloc_mode: config.alloc_mode,
            };
            if dram {
                pc.crash_sim = false;
                pc.alloc_mode = AllocMode::Transient;
            }
            PmemPool::create(pc).inspect(|p| {
                if dram {
                    pool::set_dram(p.id(), true);
                }
            })
        };
        let search_pool = mk("search", 0, config.search_layer_dram)?;
        let mut data_pools = Vec::new();
        for n in 0..config.numa_pools {
            data_pools.push(mk(&format!("data{n}"), n, false)?);
        }
        let log_pool = mk("log", 0, false)?;
        Self::assemble(config, search_pool, data_pools, log_pool, true)
    }

    /// Reattaches to existing pools after a (simulated) crash: bumps the
    /// lock generation, recovers allocator and ART allocation logs, replays
    /// pending SMO log entries, and resumes (§5.9).
    pub fn recover(config: PacTreeConfig) -> Result<Arc<PacTree>> {
        crate::lock::bump_global_generation();
        let get = |suffix: &str| {
            pool::pool_by_name(&format!("{}-{}", config.name, suffix))
                .ok_or_else(|| PmemError::PoolNotFound(format!("{}-{}", config.name, suffix)))
        };
        let search_pool = get("search")?;
        let mut data_pools = Vec::new();
        for n in 0..config.numa_pools {
            data_pools.push(get(&format!("data{n}"))?);
        }
        let log_pool = get("log")?;
        for p in std::iter::once(&search_pool)
            .chain(data_pools.iter())
            .chain(std::iter::once(&log_pool))
        {
            p.allocator().recover_logs();
        }
        Self::assemble(config, search_pool, data_pools, log_pool, false)
    }

    fn assemble(
        config: PacTreeConfig,
        search_pool: Arc<PmemPool>,
        data_pools: Vec<Arc<PmemPool>>,
        log_pool: Arc<PmemPool>,
        fresh: bool,
    ) -> Result<Arc<PacTree>> {
        let collector = Arc::new(Collector::new());
        let art = Art::create(Arc::clone(&search_pool), ROOT_ART, Arc::clone(&collector))?;
        let smo = SmoLog::create(&log_pool, log_pool.allocator().root(ROOT_SMO))?;

        if fresh {
            // The head data node covers the whole key space with the empty
            // anchor and is indexed by the search layer from the start, so
            // `locate` always finds a jump node.
            let head_cell = data_pools[0].allocator().root(ROOT_HEAD);
            let dp = Arc::clone(&data_pools[0]);
            data_pools[0]
                .allocator()
                .malloc_to(DATA_NODE_SIZE, head_cell, |raw| {
                    // SAFETY: fresh DATA_NODE_SIZE allocation.
                    unsafe {
                        DataNode::init(raw, b"", &dp, false).expect("head node init");
                    }
                })?;
            art.insert(b"", head_cell.load(Ordering::Acquire))?;
        } else {
            art.recover();
        }

        let birth_crash_count = std::iter::once(&search_pool)
            .chain(data_pools.iter())
            .chain(std::iter::once(&log_pool))
            .map(|p| p.crash_count())
            .sum();
        let tree = Arc::new(PacTree {
            config,
            search_pool,
            data_pools,
            log_pool,
            art,
            smo,
            mvcc: Arc::new(MvccState::new()),
            collector,
            stats: TreeStats::default(),
            ops: obsv::OpHistograms::new(),
            obsv_guards: OnceLock::new(),
            updater: Updater::new(),
            birth_crash_count,
        });

        if !fresh {
            tree.replay_pending_smos_inner(false);
        }
        if tree.config.async_smo {
            tree.updater.start(Arc::downgrade(&tree));
        }
        tree.register_obsv_gauges();
        Ok(tree)
    }

    /// Registers this tree's pipeline gauges (SMO log occupancy and replay
    /// lag, epoch-reclamation backlog, jump-hop histogram, retry count) and
    /// its per-op latency histograms with the global [`obsv::registry`],
    /// under `pactree.<name>.*`. Callbacks capture a `Weak`, so registration
    /// never extends the tree's lifetime; once the tree drops, the gauges
    /// report nothing and the guards unregister them.
    fn register_obsv_gauges(self: &Arc<Self>) {
        let reg = obsv::registry::global();
        let prefix = format!("pactree.{}", self.config.name);
        let mut guards = Vec::new();
        let gauge = |guards: &mut Vec<obsv::Registration>,
                     name: String,
                     f: Box<dyn Fn(&PacTree) -> f64 + Send + Sync>| {
            let w = Arc::downgrade(self);
            guards.push(reg.register_gauge(name, move || w.upgrade().map(|t| f(&t))));
        };
        gauge(
            &mut guards,
            format!("{prefix}.smo.pending"),
            Box::new(|t| t.smo.replay_lag().0 as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.smo.replay_lag_max_slot"),
            Box::new(|t| t.smo.replay_lag().1 as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.epoch.backlog"),
            Box::new(|t| t.collector.queued().saturating_sub(t.collector.executed()) as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.epoch.current"),
            Box::new(|t| t.collector.epoch() as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.jump.direct_hit_ratio"),
            Box::new(|t| t.stats.direct_hit_ratio()),
        );
        for (bucket, label) in ["h0", "h1", "h2", "h3", "h4plus"].into_iter().enumerate() {
            gauge(
                &mut guards,
                format!("{prefix}.jump_hops.{label}"),
                Box::new(move |t| t.stats.jump_histogram()[bucket].1 as f64),
            );
        }
        gauge(
            &mut guards,
            format!("{prefix}.retries"),
            Box::new(|t| t.stats.retries.load(Ordering::Relaxed) as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.fp.false_hit_ratio"),
            Box::new(|t| t.stats.false_hit_ratio()),
        );
        gauge(
            &mut guards,
            format!("{prefix}.mvcc.live_snapshots"),
            Box::new(|t| t.mvcc.live_snapshots() as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.mvcc.cow_nodes"),
            Box::new(|t| (t.mvcc.frozen_nodes() + t.art.cow_copied()) as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.epoch.backlog_age_ns"),
            Box::new(|t| t.collector.backlog_age_ns() as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.mvcc.chain_max"),
            Box::new(|t| t.mvcc.chain_stats().0 as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.mvcc.chain_mean"),
            Box::new(|t| t.mvcc.chain_stats().1),
        );
        // Structural health of the data layer: one O(n) epoch-pinned walk
        // per sample. Only scrape threads pay it (gauges run on sample(),
        // never on an index hot path).
        gauge(
            &mut guards,
            format!("{prefix}.node.count"),
            Box::new(|t| t.occupancy().0 as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.node.occupancy"),
            Box::new(|t| {
                let (nodes, live) = t.occupancy();
                if nodes == 0 {
                    0.0
                } else {
                    live as f64 / (nodes * NODE_SLOTS) as f64
                }
            }),
        );
        gauge(
            &mut guards,
            format!("{prefix}.mvcc.pinned_backlog"),
            Box::new(|t| {
                // Reclamation work deferred behind snapshot epoch pins;
                // reads zero whenever no snapshot is live.
                if t.mvcc.live_snapshots() == 0 {
                    0.0
                } else {
                    t.collector.queued().saturating_sub(t.collector.executed()) as f64
                }
            }),
        );
        let w = Arc::downgrade(self);
        guards.push(reg.register_hists(prefix, move || w.upgrade().map(|t| t.ops.snapshot())));
        let _ = self.obsv_guards.set(guards);
    }

    /// The tree's configuration.
    pub fn config(&self) -> &PacTreeConfig {
        &self.config
    }

    /// Operation statistics (jump distances, SMO counts).
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// The epoch collector (exposed for tests).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// SMO log entries not yet replayed into the search layer.
    pub fn pending_smo_count(&self) -> usize {
        self.smo.pending_count()
    }

    /// Stops the background updater without draining the SMO log. Crash
    /// tests call this before simulating a power failure so no thread of the
    /// pre-crash instance touches the remounted pools (a real crash kills
    /// the process; a simulated one cannot kill threads).
    pub fn stop_updater(&self) {
        self.updater.stop();
    }

    /// Drains the background pipelines after the workload has stopped
    /// issuing operations: waits until the SMO log is empty (nudging the
    /// updater, or replaying inline when `async_smo` is off) and until the
    /// epoch-reclamation backlog has fully executed, so the
    /// `pactree.*.smo.pending` and `pactree.*.epoch.backlog` gauges read
    /// zero. Returns `false` if `timeout` elapsed first (e.g. the updater
    /// was stopped while entries were pending).
    pub fn quiesce(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.pending_smo_count() > 0 {
            if self.config.async_smo {
                self.updater.nudge();
            } else {
                // No background thread exists to race with: replay inline.
                self.replay_pending_smos();
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        // Two-epoch rule: deferred frees need the epoch to advance past
        // their birth epoch plus the grace window, so keep advancing.
        while self.collector.queued() != self.collector.executed() {
            self.collector.try_advance();
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        true
    }

    /// Fraction of locates that reached the target node directly (§6.7).
    pub fn direct_hit_ratio(&self) -> f64 {
        self.stats.direct_hit_ratio()
    }

    /// All pools backing this tree (search, data..., log).
    pub fn pools(&self) -> Vec<Arc<PmemPool>> {
        let mut v = vec![Arc::clone(&self.search_pool)];
        v.extend(self.data_pools.iter().cloned());
        v.push(Arc::clone(&self.log_pool));
        v
    }

    /// Stops the updater and unregisters every pool. Consumes the tree
    /// handle; persistent pointers into the pools dangle afterwards.
    pub fn destroy(self: Arc<Self>) {
        self.updater.stop();
        let ids: Vec<_> = self.pools().iter().map(|p| p.id()).collect();
        drop(self);
        for id in ids {
            pool::destroy_pool(id);
        }
    }

    /// NUMA-local data pool for the calling thread (GS2).
    fn my_data_pool(&self) -> &Arc<PmemPool> {
        let node = pmem::numa::current_node() as usize;
        &self.data_pools[node % self.data_pools.len()]
    }

    fn head_raw(&self) -> u64 {
        self.data_pools[0]
            .allocator()
            .root(ROOT_HEAD)
            .load(Ordering::Acquire)
    }

    // -- Locate (§5.3) -------------------------------------------------------

    /// Finds the data node whose range covers `key`: search-layer floor to a
    /// jump node, then an anchor-guided walk of the data-layer list.
    fn locate(&self, key: &[u8]) -> u64 {
        let jump = self.art.floor(key).unwrap_or_else(|| self.head_raw());
        let mut raw = jump;
        let mut hops = 0usize;
        loop {
            // SAFETY: data nodes are epoch-protected; callers pin before
            // calling locate.
            let node = unsafe { node_ref(raw) };
            if node.deleted.load(Ordering::Acquire) != 0 {
                // Merged away: its prev pointer still leads back into the
                // list (§5.6).
                let prev = node.prev.load(Ordering::Acquire);
                raw = if prev != 0 { prev } else { self.head_raw() };
                hops += 1;
                continue;
            }
            if node.key_below_anchor(key) {
                let prev = node.prev.load(Ordering::Acquire);
                if prev == 0 {
                    break; // head node covers everything below
                }
                raw = prev;
                hops += 1;
                continue;
            }
            let next = node.next.load(Ordering::Acquire);
            if next != 0 {
                // SAFETY: sibling pointers lead to initialized nodes.
                let next_node = unsafe { node_ref(next) };
                if next_node.key_in_or_after(key) {
                    // key >= next.anchor: target is further right. Warm its
                    // fingerprint line while the chase re-checks anchors.
                    crate::simd::prefetch_read(next_node.fingerprints.as_ptr());
                    raw = next;
                    hops += 1;
                    continue;
                }
            }
            break;
        }
        self.stats.record_jump(hops);
        raw
    }

    /// Charges a data-node read to the NVM model.
    #[inline]
    fn charge_node_read(&self, raw: u64, bytes: usize) {
        let p = PmPtr::<u8>::from_raw(raw);
        model::on_read(p.pool_id(), p.offset(), bytes);
    }

    // -- Reads ---------------------------------------------------------------

    /// Counts one optimistic retry, both in the per-tree counter and the
    /// per-operation count fed to the flight recorder.
    #[inline]
    fn note_retry(&self, retries: &mut u32) {
        *retries += 1;
        self.stats.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Point lookup (§5.3).
    pub fn lookup(&self, key: &[u8]) -> Option<u64> {
        let timer = OpTimer::start();
        let mut retries = 0u32;
        let result = self.lookup_inner(key, &mut retries);
        self.ops.finish(OpKind::Lookup, timer, retries);
        result
    }

    fn lookup_inner(&self, key: &[u8], retries: &mut u32) -> Option<u64> {
        let _g = self.collector.pin();
        let mut backoff = RetryBackoff::new();
        loop {
            backoff.pause_if_retrying();
            let raw = self.locate(key);
            // SAFETY: epoch-pinned.
            let node = unsafe { node_ref(raw) };
            // Warm the fingerprint line while the range checks run (§5.3
            // touches the header and sibling anchors before probing).
            crate::simd::prefetch_read(node.fingerprints.as_ptr());
            let Some(token) = node.lock.read_begin() else {
                self.note_retry(retries);
                continue;
            };
            // Range re-check under the token: a concurrent split may have
            // moved the key range.
            if node.deleted.load(Ordering::Acquire) != 0 || node.key_below_anchor(key) {
                self.note_retry(retries);
                continue;
            }
            let next = node.next.load(Ordering::Acquire);
            if next != 0 {
                // SAFETY: epoch-pinned sibling.
                if !unsafe { node_ref(next) }.key_below_anchor(key) {
                    // key >= next anchor: the locate result was stale —
                    // every relocate is a retry, whether or not the version
                    // also moved (the token tells us nothing extra here).
                    self.note_retry(retries);
                    continue;
                }
            }
            // Header + fingerprint line + a couple of candidate slots.
            self.charge_node_read(raw, 192 + key.len().min(64));
            let (slot, false_hits) = node.find_counting(key);
            let result = slot.map(|slot| node.value_at(slot));
            if node.lock.read_validate(token) {
                // Only validated probes feed the quality gauge — a torn
                // read could report phantom mismatches.
                self.stats.record_fp(false_hits, slot.is_some());
                return result;
            }
            self.note_retry(retries);
        }
    }

    /// Range scan: up to `count` pairs with keys ≥ `start`, sorted (§5.4).
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<Pair> {
        let timer = OpTimer::start();
        let mut retries = 0u32;
        let result = self.scan_inner(start, count, &mut retries);
        self.ops.finish(OpKind::Scan, timer, retries);
        result
    }

    fn scan_inner(&self, start: &[u8], count: usize, retries: &mut u32) -> Vec<Pair> {
        let _g = self.collector.pin();
        let mut out: Vec<Pair> = Vec::with_capacity(count.min(4096));
        if count == 0 {
            return out;
        }
        'relocate: loop {
            out.clear();
            let mut raw = self.locate(start);
            loop {
                // SAFETY: epoch-pinned.
                let node = unsafe { node_ref(raw) };
                let Some(token) = node.lock.read_begin() else {
                    self.note_retry(retries);
                    continue 'relocate;
                };
                if node.deleted.load(Ordering::Acquire) != 0 {
                    self.note_retry(retries);
                    continue 'relocate;
                }
                // Whole-node sequential read (GA5): data nodes scan at
                // XPLine-friendly granularity.
                self.charge_node_read(raw, DATA_NODE_SIZE);
                let next = node.next.load(Ordering::Acquire);
                if next != 0 {
                    // Stream the next sorted data node in while this one is
                    // ordered and copied out (§5.4 sequential scans).
                    let np = PmPtr::<u8>::from_raw(next).as_ptr();
                    crate::simd::prefetch_read(np);
                    crate::simd::prefetch_read(np.wrapping_add(64));
                }
                let order =
                    node.sorted_slots(token.version_hint(), self.config.persist_permutation);
                let mut page: Vec<Pair> = Vec::with_capacity(order.len());
                for slot in order {
                    let p = node.pair_at(slot);
                    if p.key.as_slice() >= start {
                        page.push(p);
                    }
                }
                if !node.lock.read_validate(token) {
                    self.note_retry(retries);
                    continue 'relocate;
                }
                for p in page {
                    out.push(p);
                    if out.len() >= count {
                        return out;
                    }
                }
                if next == 0 {
                    return out;
                }
                raw = next;
            }
        }
    }

    // -- Writes (§5.5) --------------------------------------------------------

    /// Inserts or updates `key -> value`; returns the previous value if the
    /// key existed.
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let timer = OpTimer::start();
        let mut retries = 0u32;
        let result = self.write_op(key, value, true, &mut retries);
        self.ops.finish(OpKind::Insert, timer, retries);
        result
    }

    /// Updates an existing key; returns the previous value, or `None` if the
    /// key is absent (no insertion happens).
    pub fn update(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let timer = OpTimer::start();
        let mut retries = 0u32;
        let result = self.write_op(key, value, false, &mut retries);
        self.ops.finish(OpKind::Update, timer, retries);
        result
    }

    fn write_op(
        &self,
        key: &[u8],
        value: u64,
        insert_if_absent: bool,
        retries: &mut u32,
    ) -> Result<Option<u64>> {
        let guard = self.collector.pin();
        let mut backoff = RetryBackoff::new();
        loop {
            backoff.pause_if_retrying();
            let raw = self.locate(key);
            // SAFETY: epoch-pinned.
            let node = unsafe { node_ref(raw) };
            let Some(wg) = node.lock.try_write_lock() else {
                self.note_retry(retries);
                std::thread::yield_now();
                continue;
            };
            if node.deleted.load(Ordering::Acquire) != 0 || node.key_below_anchor(key) {
                drop(wg);
                self.note_retry(retries);
                continue;
            }
            let next = node.next.load(Ordering::Acquire);
            if next != 0 {
                // SAFETY: epoch-pinned sibling; anchors immutable.
                if !unsafe { node_ref(next) }.key_below_anchor(key) {
                    drop(wg);
                    self.note_retry(retries);
                    continue;
                }
            }
            self.charge_node_read(raw, 192 + key.len().min(64));

            let (existing, false_hits) = node.find_counting(key);
            self.stats.record_fp(false_hits, existing.is_some());
            if let Some(old_slot) = existing {
                let old_value = node.value_at(old_slot);
                // Update protocol (§5.5): new pair into a free slot, then
                // one atomic bitmap store swaps old for new.
                let Some(slot) = node.free_slot() else {
                    // Full node: split first, then retry against the halves.
                    self.split(raw, node, &wg, &guard)?;
                    drop(wg);
                    continue;
                };
                self.mvcc.prepare_mutation(raw, node);
                node.write_slot(slot, key, value, self.my_data_pool())?;
                node.publish(1 << slot, 1 << old_slot);
                self.defer_overflow_free(node, old_slot, &guard);
                drop(wg);
                return Ok(Some(old_value));
            }
            if !insert_if_absent {
                drop(wg);
                return Ok(None);
            }
            let Some(slot) = node.free_slot() else {
                self.split(raw, node, &wg, &guard)?;
                drop(wg);
                continue;
            };
            self.mvcc.prepare_mutation(raw, node);
            node.write_slot(slot, key, value, self.my_data_pool())?;
            node.publish(1 << slot, 0);
            drop(wg);
            return Ok(None);
        }
    }

    /// Removes `key`; returns its value if it was present.
    pub fn remove(&self, key: &[u8]) -> Result<Option<u64>> {
        let timer = OpTimer::start();
        let mut retries = 0u32;
        let result = self.remove_inner(key, &mut retries);
        self.ops.finish(OpKind::Remove, timer, retries);
        result
    }

    fn remove_inner(&self, key: &[u8], retries: &mut u32) -> Result<Option<u64>> {
        let guard = self.collector.pin();
        let mut backoff = RetryBackoff::new();
        loop {
            backoff.pause_if_retrying();
            let raw = self.locate(key);
            // SAFETY: epoch-pinned.
            let node = unsafe { node_ref(raw) };
            let Some(wg) = node.lock.try_write_lock() else {
                self.note_retry(retries);
                std::thread::yield_now();
                continue;
            };
            if node.deleted.load(Ordering::Acquire) != 0 || node.key_below_anchor(key) {
                drop(wg);
                self.note_retry(retries);
                continue;
            }
            let next = node.next.load(Ordering::Acquire);
            if next != 0 {
                // SAFETY: epoch-pinned sibling.
                if !unsafe { node_ref(next) }.key_below_anchor(key) {
                    drop(wg);
                    self.note_retry(retries);
                    continue;
                }
            }
            self.charge_node_read(raw, 192 + key.len().min(64));
            let (found, false_hits) = node.find_counting(key);
            self.stats.record_fp(false_hits, found.is_some());
            let Some(slot) = found else {
                drop(wg);
                return Ok(None);
            };
            let old = node.value_at(slot);
            // Delete protocol (§5.5): one atomic bitmap clear.
            self.mvcc.prepare_mutation(raw, node);
            node.publish(0, 1 << slot);
            self.defer_overflow_free(node, slot, &guard);

            // Merge check (§5.6): combined occupancy at most half capacity.
            // Try the right neighbour first (keeps the rightward lock
            // order), then opportunistically the left one.
            let mut merged = false;
            if next != 0 {
                // SAFETY: epoch-pinned sibling.
                let right = unsafe { node_ref(next) };
                if node.live_count() + right.live_count() <= MERGE_THRESHOLD {
                    // Lock order is strictly rightward: we hold `node`.
                    if let Some(rg) = right.lock.try_write_lock() {
                        if right.deleted.load(Ordering::Acquire) == 0
                            && node.next.load(Ordering::Acquire) == next
                        {
                            self.merge(raw, node, next, right)?;
                            merged = true;
                        }
                        drop(rg);
                    }
                }
            }
            let prev = node.prev.load(Ordering::Acquire);
            if !merged && prev != 0 {
                // SAFETY: epoch-pinned sibling.
                let left = unsafe { node_ref(prev) };
                if left.live_count() + node.live_count() <= MERGE_THRESHOLD {
                    // Left-of-held-lock acquisition must stay non-blocking
                    // (all writers use try-locks, so no deadlock — a failed
                    // try just skips the merge).
                    if let Some(lg) = left.lock.try_write_lock() {
                        if left.deleted.load(Ordering::Acquire) == 0
                            && left.next.load(Ordering::Acquire) == raw
                        {
                            // `node` becomes the merge victim.
                            self.merge(prev, left, raw, node)?;
                        }
                        drop(lg);
                    }
                }
            }
            drop(wg);
            return Ok(Some(old));
        }
    }

    fn defer_overflow_free(&self, node: &DataNode, slot: usize, guard: &pmem::epoch::Guard<'_>) {
        if let Some((ov, len)) = node.overflow_of(slot) {
            let pool_id = ov.pool_id();
            self.collector.defer(guard, move || {
                pool::with_pool(pool_id, |p| p.allocator().free(ov, len));
            });
        }
    }

    // -- Split (§5.6) ---------------------------------------------------------

    /// Splits a full, write-locked data node. On return the data layer holds
    /// both halves; the search-layer update is deferred to the SMO log.
    fn split(
        &self,
        raw: u64,
        node: &DataNode,
        _wg: &crate::lock::WriteGuard<'_>,
        _guard: &pmem::epoch::Guard<'_>,
    ) -> Result<()> {
        // Attaches to the active request span when a traced request pays
        // for the split inline; inert otherwise (detail 0 = split).
        let _smo_span = obsv::trace::span_here(obsv::trace::SpanKind::Smo, 0);
        // 1. Persist the split intention.
        let ticket = self.smo.append(SmoKind::Split, raw);

        // 2. Allocate the new right node via malloc-to into the log entry's
        //    placeholder (leak freedom): it is born locked and fully
        //    populated with the upper half.
        let sorted = node.sorted_pairs_raw();
        debug_assert_eq!(sorted.len(), NODE_SLOTS);
        let moved = &sorted[NODE_SLOTS / 2..];
        let anchor = moved[0].0.clone();
        let pool = self.my_data_pool();
        let old_next = node.next.load(Ordering::Acquire);
        {
            let pool2 = Arc::clone(pool);
            let moved_slots: Vec<usize> = moved.iter().map(|&(_, s)| s).collect();
            pool.allocator()
                .malloc_to(DATA_NODE_SIZE, ticket.aux_cell(), |ptr| {
                    // SAFETY: fresh DATA_NODE_SIZE allocation.
                    unsafe {
                        DataNode::init(ptr, &anchor, &pool2, true).expect("split node init");
                        let new_node = &*(ptr as *const DataNode);
                        for (i, &src_slot) in moved_slots.iter().enumerate() {
                            new_node.copy_slot_from(i, node, src_slot);
                        }
                        let mask = (1u64 << moved_slots.len()) - 1;
                        new_node.bitmap.store(mask, Ordering::Release);
                        new_node.next.store(old_next, Ordering::Release);
                        new_node.prev.store(raw, Ordering::Release);
                    }
                })?;
        }
        let new_raw = ticket.aux_cell().load(Ordering::Acquire);
        // SAFETY: just initialized by malloc_to.
        let new_node = unsafe { node_ref(new_raw) };

        // Versioning (§13): read the era *before* the freeze decision, so a
        // snapshot registering in between sees either a fully-included or a
        // fully-excluded split; freeze the pre-split left state for any live
        // snapshot; stamp the new node into the current era so no older
        // snapshot resolves it as live (its pairs are still present in the
        // left node's frozen capture).
        let era = self.mvcc.current_version();
        self.mvcc.prepare_mutation(raw, node);
        new_node.mvcc_stamp(era);

        // 3. Link the new node to the right of the splitting node; this is
        //    the point where it becomes reachable.
        node.next.store(new_raw, Ordering::Release);
        persist::persist_obj_fenced(&node.next);

        // 4. Drop the moved pairs from the splitting node with one atomic
        //    bitmap update.
        let clear_mask: u64 = moved.iter().map(|&(_, s)| 1u64 << s).sum();
        node.publish(0, clear_mask);

        // 5. Fix the right neighbour's back pointer.
        if old_next != 0 {
            // SAFETY: epoch-pinned sibling.
            let right = unsafe { node_ref(old_next) };
            right.prev.store(new_raw, Ordering::Release);
            persist::persist_obj_fenced(&right.prev);
        }

        // 6. Open the new node for business; the SMO log entry stays until
        //    the updater inserts the anchor into the search layer.
        new_node.unlock_initial();
        self.stats.splits.fetch_add(1, Ordering::Relaxed);

        if self.config.async_smo {
            self.updater.nudge();
        } else {
            self.art.insert(&anchor, new_raw)?;
            self.smo.clear(ticket.thread, ticket.index);
            self.stats.smo_replayed.fetch_add(1, Ordering::Relaxed);
        }
        // Entry ownership moved to the updater; forget keeps that explicit even
        // though the ticket has no Drop today.
        #[allow(clippy::forget_non_drop)]
        std::mem::forget(ticket);
        Ok(())
    }

    // -- Merge (§5.6) ----------------------------------------------------------

    /// Merges `right` (locked) into `node` (locked): copies live pairs,
    /// marks `right` logically deleted, unlinks it, and defers the
    /// search-layer removal and physical free to the SMO log/updater.
    fn merge(&self, raw: u64, node: &DataNode, right_raw: u64, right: &DataNode) -> Result<()> {
        // As in `split`: spans the merge when a traced request pays for it
        // inline (detail 1 = merge).
        let _smo_span = obsv::trace::span_here(obsv::trace::SpanKind::Smo, 1);
        // 1. Persist the merge intention.
        let ticket = self.smo.append(SmoKind::Merge, raw);
        ticket.set_aux(right_raw);

        // Versioning (§13): both write locks are held; freeze both
        // pre-merge states — the left node's pair set and the victim's
        // liveness and link both change below.
        self.mvcc.prepare_mutation(raw, node);
        self.mvcc.prepare_mutation(right_raw, right);

        // 2. Copy the right node's live pairs into free slots, publish all
        //    of them with one bitmap update.
        let mut set_mask = 0u64;
        let bm = right.bitmap.load(Ordering::Acquire);
        let mut bits = bm;
        let mut buf = Vec::new();
        while bits != 0 {
            let src = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            right.read_key(src, &mut buf);
            if node.find(&buf).is_some() {
                continue; // idempotent re-copy during recovery
            }
            let dst = (node.bitmap.load(Ordering::Acquire) | set_mask).trailing_ones() as usize;
            debug_assert!(dst < NODE_SLOTS, "merge target has room by precondition");
            node.copy_slot_from(dst, right, src);
            set_mask |= 1 << dst;
        }
        node.publish(set_mask, 0);

        // 3. Logically delete the right node.
        right.deleted.store(1, Ordering::Release);
        persist::persist_obj_fenced(&right.deleted);

        // 4. Unlink it from the list.
        let rr = right.next.load(Ordering::Acquire);
        node.next.store(rr, Ordering::Release);
        persist::persist_obj_fenced(&node.next);
        if rr != 0 {
            // SAFETY: epoch-pinned sibling.
            let rr_node = unsafe { node_ref(rr) };
            rr_node.prev.store(raw, Ordering::Release);
            persist::persist_obj_fenced(&rr_node.prev);
        }
        self.stats.merges.fetch_add(1, Ordering::Relaxed);

        // 5. Search-layer removal + physical free via the updater.
        if self.config.async_smo {
            self.updater.nudge();
        } else {
            self.finish_merge_smo(right_raw)?;
            self.smo.clear(ticket.thread, ticket.index);
            self.stats.smo_replayed.fetch_add(1, Ordering::Relaxed);
        }
        #[allow(clippy::forget_non_drop)]
        std::mem::forget(ticket);
        Ok(())
    }

    /// Removes the merged node's anchor from the search layer and defers its
    /// physical free by two epochs (§5.6).
    fn finish_merge_smo(&self, victim_raw: u64) -> Result<()> {
        // SAFETY: victim is logically deleted but not freed (we free it
        // below, after two epochs).
        let victim = unsafe { node_ref(victim_raw) };
        let anchor = victim.anchor();
        self.art.remove(&anchor)?;
        let guard = self.collector.pin();
        let ptr = PmPtr::<u8>::from_raw(victim_raw);
        let pool_id = ptr.pool_id();
        let mvcc = Arc::clone(&self.mvcc);
        self.collector.defer(&guard, move || {
            // The frozen chain must die in the same closure as the node: a
            // reallocated raw must never alias a stale version chain. Any
            // snapshot that could still resolve the victim pinned an epoch
            // before this free was queued, so the free (and this drop)
            // cannot run while that snapshot lives.
            mvcc.forget_node(victim_raw);
            pool::with_pool(pool_id, |p| p.allocator().free(ptr, DATA_NODE_SIZE));
        });
        Ok(())
    }

    // -- SMO replay (updater thread & recovery, §5.6/§5.9) ---------------------

    /// Replays every pending SMO log entry in timestamp order. Called by the
    /// background updater (`live = true`) and during single-threaded
    /// recovery (`live = false`). Returns entries processed.
    pub(crate) fn replay_pending_smos_inner(&self, live: bool) -> usize {
        let pending = self.smo.pending();
        let n = pending.len();
        for rec in pending {
            match self.replay_one(&rec, live) {
                Ok(true) => {
                    self.smo.clear(rec.thread, rec.index);
                    self.stats.smo_replayed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(false) => {} // in flight; a later pass retries silently
                Err(e) => {
                    if !live {
                        eprintln!("pactree: SMO recovery deferred: {e}");
                    }
                }
            }
        }
        self.collector.try_advance();
        n
    }

    /// Live-updater entry point.
    pub(crate) fn replay_pending_smos(&self) -> usize {
        self.replay_pending_smos_inner(true)
    }

    /// Returns `Ok(true)` when the entry is fully reflected and may be
    /// cleared, `Ok(false)` when the owning writer is still executing the
    /// SMO (live mode only).
    fn replay_one(&self, rec: &SmoRecord, live: bool) -> Result<bool> {
        match rec.kind {
            SmoKind::Split => {
                if rec.aux == 0 {
                    // Live: the writer persisted the intent but has not yet
                    // allocated the new node — still in flight, do not touch
                    // the entry. Recovery: the split never happened and the
                    // insert was never acknowledged — discard.
                    return Ok(!live);
                }
                // SAFETY: aux was published by malloc_to, so the node is
                // fully initialized; it is reachable or about to be.
                let new_node = unsafe { node_ref(rec.aux) };
                if live && new_node.lock.is_locked() {
                    // The writer still holds the construction lock: the
                    // data-layer steps are not finished. Wait for the next
                    // pass.
                    return Ok(false);
                }
                // SAFETY: the splitting node is never freed by a split.
                let old_node = unsafe { node_ref(rec.node) };
                // Recovery path: complete any unfinished data-layer steps
                // idempotently (§5.9).
                if old_node.next.load(Ordering::Acquire) != rec.aux
                    && new_node.prev.load(Ordering::Acquire) == rec.node
                    && old_node.deleted.load(Ordering::Acquire) == 0
                {
                    // Crash between allocation and linking.
                    old_node.next.store(rec.aux, Ordering::Release);
                    persist::persist_obj_fenced(&old_node.next);
                }
                // Trim moved keys from the old node (idempotent: clears the
                // bits of keys at or above the new anchor). The mask must be
                // computed under the node's write lock — a concurrent writer
                // could be rewriting a reused slot, and a torn key read here
                // would clear a live pair. The optimistic pre-check keeps
                // the common (nothing to trim) path lock-free.
                let anchor = new_node.anchor();
                let stale = {
                    let Some(token) = old_node.lock.read_begin() else {
                        return Err(PmemError::Corruption("split node busy"));
                    };
                    let any = old_node
                        .sorted_pairs_raw()
                        .iter()
                        .any(|(k, _)| k.as_slice() >= anchor.as_slice());
                    if !old_node.lock.read_validate(token) {
                        return Err(PmemError::Corruption("split node contended"));
                    }
                    any
                };
                if stale {
                    let Some(g) = old_node.lock.try_write_lock() else {
                        return Err(PmemError::Corruption("split node busy"));
                    };
                    self.mvcc.prepare_mutation(rec.node, old_node);
                    let mut clear = 0u64;
                    for (k, slot) in old_node.sorted_pairs_raw() {
                        if k.as_slice() >= anchor.as_slice() {
                            clear |= 1 << slot;
                        }
                    }
                    if clear != 0 {
                        old_node.publish(0, clear);
                    }
                    drop(g);
                }
                // Fix the right neighbour's back pointer.
                let rr = new_node.next.load(Ordering::Acquire);
                if rr != 0 {
                    // SAFETY: epoch-protected sibling.
                    let rr_node = unsafe { node_ref(rr) };
                    if rr_node.prev.load(Ordering::Acquire) == rec.node {
                        rr_node.prev.store(rec.aux, Ordering::Release);
                        persist::persist_obj_fenced(&rr_node.prev);
                    }
                }
                if new_node.lock.is_locked() {
                    // Crash while the split held the construction lock; the
                    // generation bump already voided it, nothing to do.
                }
                // Finally make it reachable from the search layer.
                self.art.insert(&anchor, rec.aux)?;
                Ok(true)
            }
            SmoKind::Merge => {
                if rec.aux == 0 {
                    // Same in-flight rule as splits.
                    return Ok(!live);
                }
                // SAFETY: the victim is freed only after this entry clears.
                let victim = unsafe { node_ref(rec.aux) };
                // SAFETY: left node outlives the merge.
                let left = unsafe { node_ref(rec.node) };
                if live && victim.deleted.load(Ordering::Acquire) == 0 {
                    // The writer is still mid-merge (it holds both node
                    // locks until the protocol completes).
                    return Ok(false);
                }
                if victim.deleted.load(Ordering::Acquire) == 0 {
                    // Crash mid-copy (recovery path): redo the copy under
                    // locks, then finish the protocol.
                    if let Some(lg) = left.lock.try_write_lock() {
                        // Snapshots never survive a crash, so this freeze is
                        // a no-op on the recovery path that reaches here; it
                        // documents (and keeps) the mutate-under-lock rule.
                        self.mvcc.prepare_mutation(rec.node, left);
                        let mut set_mask = 0u64;
                        let mut buf = Vec::new();
                        let mut bits = victim.bitmap.load(Ordering::Acquire);
                        while bits != 0 {
                            let src = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            victim.read_key(src, &mut buf);
                            if left.find(&buf).is_some() {
                                continue;
                            }
                            let dst = (left.bitmap.load(Ordering::Acquire) | set_mask)
                                .trailing_ones() as usize;
                            if dst >= NODE_SLOTS {
                                // No room (writers raced in): abandon the
                                // merge; the entry clears and the victim
                                // stays live.
                                drop(lg);
                                return Ok(true);
                            }
                            left.copy_slot_from(dst, victim, src);
                            set_mask |= 1 << dst;
                        }
                        left.publish(set_mask, 0);
                        victim.deleted.store(1, Ordering::Release);
                        persist::persist_obj_fenced(&victim.deleted);
                        drop(lg);
                    } else {
                        return Err(PmemError::Corruption("merge left node busy"));
                    }
                }
                // Unlink idempotently.
                if left.next.load(Ordering::Acquire) == rec.aux {
                    let rr = victim.next.load(Ordering::Acquire);
                    left.next.store(rr, Ordering::Release);
                    persist::persist_obj_fenced(&left.next);
                    if rr != 0 {
                        // SAFETY: epoch-protected sibling.
                        let rr_node = unsafe { node_ref(rr) };
                        if rr_node.prev.load(Ordering::Acquire) == rec.aux {
                            rr_node.prev.store(rec.node, Ordering::Release);
                            persist::persist_obj_fenced(&rr_node.prev);
                        }
                    }
                }
                self.finish_merge_smo(rec.aux)?;
                Ok(true)
            }
        }
    }

    // -- Snapshots & versioning (DESIGN.md §13) --------------------------------

    /// The versioning subsystem (gauges, tests, diagnostics).
    pub fn mvcc(&self) -> &MvccState {
        &self.mvcc
    }

    /// Current era counter value.
    pub fn current_version(&self) -> u64 {
        self.mvcc.current_version()
    }

    /// Advances the era counter; pacsrv calls this at batch boundaries so
    /// snapshot versions align with acknowledged batches.
    pub fn advance_version(&self) -> u64 {
        self.mvcc.advance_version()
    }

    /// Takes an O(1) snapshot of the current state and returns its id.
    ///
    /// No tree walk, no copying: the snapshot pins the reclamation epoch
    /// (nothing it may reach is freed while it lives), captures the
    /// search-layer root (subsequent search-layer mutations copy-on-write
    /// around it), and registers its version so writers freeze data-node
    /// states on first mutation. Cost is independent of tree size.
    ///
    /// Note: a live snapshot holds the epoch, so [`quiesce`](Self::quiesce)
    /// cannot drain the reclamation backlog until it is released.
    pub fn snapshot(&self) -> u64 {
        // Enter COW mode *before* capturing the root: any search-layer
        // mutation serialized after the flip copies its path instead of
        // editing nodes the captured root can reach.
        self.art.cow_enter();
        let pin = self.collector.pin_owned();
        let root = self.art.current_root();
        let (id, _version) = self.mvcc.register(root, pin);
        id
    }

    /// Releases a snapshot; returns `false` for an unknown id.
    pub fn release_snapshot(&self, id: u64) -> bool {
        if self.mvcc.release(id) {
            self.art.cow_exit();
            true
        } else {
            false
        }
    }

    /// Snapshot-isolated range scan: up to `count` pairs with keys ≥
    /// `start`, exactly as of snapshot `snap`'s version. Returns `None`
    /// for an unknown (or already released) snapshot id.
    pub fn scan_at(&self, snap: u64, start: &[u8], count: usize) -> Option<Vec<Pair>> {
        let timer = OpTimer::start();
        let mut retries = 0u32;
        let result = self.scan_at_inner(snap, start, count, &mut retries);
        self.ops.finish(OpKind::Scan, timer, retries);
        result
    }

    fn scan_at_inner(
        &self,
        snap: u64,
        start: &[u8],
        count: usize,
        retries: &mut u32,
    ) -> Option<Vec<Pair>> {
        let (v, root) = self.mvcc.snap_info(snap)?;
        let _g = self.collector.pin();
        let mut out: Vec<Pair> = Vec::with_capacity(count.min(4096));
        if count == 0 {
            return Some(out);
        }
        // Position via the *captured* search layer: its floor yields a node
        // whose immutable anchor is ≤ start. Nodes that don't resolve at
        // `v` (merged away, or stale jumps) are corrected by stepping left
        // over live prev links — the head always resolves and anchors "".
        let mut raw = if root != 0 {
            self.art
                .floor_from(root, start)
                .unwrap_or_else(|| self.head_raw())
        } else {
            self.head_raw()
        };
        let mut state = loop {
            match self.mvcc.resolve_at(raw, v) {
                Some(s) if !s.deleted => break s,
                _ => {
                    self.note_retry(retries);
                    // SAFETY: epoch-pinned, and the snapshot's own pin keeps
                    // everything its version can reach allocated.
                    let prev = unsafe { node_ref(raw) }.prev.load(Ordering::Acquire);
                    raw = if prev != 0 { prev } else { self.head_raw() };
                }
            }
        };
        loop {
            self.charge_node_read(raw, DATA_NODE_SIZE);
            if !state.deleted {
                for (k, val) in &state.pairs {
                    if k.as_slice() >= start {
                        out.push(Pair {
                            key: k.clone(),
                            value: *val,
                        });
                        if out.len() >= count {
                            return Some(out);
                        }
                    }
                }
            }
            if state.next == 0 {
                return Some(out);
            }
            raw = state.next;
            state = match self.mvcc.resolve_at(raw, v) {
                Some(s) => s,
                // Defensive: the version-`v` list cannot reach a node born
                // after `v`; stop rather than mix eras.
                None => return Some(out),
            };
        }
    }

    /// Structural diff from snapshot `a` to snapshot `b`: pairs added,
    /// removed, or changed. Shared structure is skipped wholesale — while
    /// both version walks sit on the same data node and resolve it to the
    /// same state (the same frozen capture, or both live), the node is
    /// stepped over without touching its pairs. This is the seed of
    /// incremental backup: unchanged regions cost one resolution each.
    pub fn diff(&self, a: u64, b: u64) -> Option<Vec<DiffEntry>> {
        let (va, _) = self.mvcc.snap_info(a)?;
        let (vb, _) = self.mvcc.snap_info(b)?;
        let _g = self.collector.pin();
        let head = self.head_raw();
        let mut out = Vec::new();
        // One cursor per side: current node raw (0 = past the tail) plus
        // pairs from visited nodes not yet matched against the other side.
        let (mut ra, mut rb) = (head, head);
        let mut pa: VecDeque<(Vec<u8>, u64)> = VecDeque::new();
        let mut pb: VecDeque<(Vec<u8>, u64)> = VecDeque::new();
        while ra != 0 || rb != 0 {
            if ra != 0 && ra == rb && pa.is_empty() && pb.is_empty() {
                // Aligned on one node with nothing pending: the only place
                // sharing is detectable.
                match (
                    self.mvcc.resolve_shared(ra, va),
                    self.mvcc.resolve_shared(rb, vb),
                ) {
                    (Some(sa), Some(sb)) if sa.same_state(&sb) => {
                        ra = sa.next();
                        rb = sb.next();
                        continue;
                    }
                    (sa, sb) => {
                        diff_step(&mut ra, &mut pa, sa);
                        diff_step(&mut rb, &mut pb, sb);
                    }
                }
            } else {
                // Advance whichever side is behind in anchor order (anchors
                // are immutable, so reading them needs no lock).
                // SAFETY: epoch-pinned; the snapshots' pins keep every node
                // either version can reach allocated.
                let a_behind = rb == 0
                    || (ra != 0
                        && unsafe { node_ref(ra) }.anchor() <= unsafe { node_ref(rb) }.anchor());
                if a_behind {
                    let s = self.mvcc.resolve_shared(ra, va);
                    diff_step(&mut ra, &mut pa, s);
                } else {
                    let s = self.mvcc.resolve_shared(rb, vb);
                    diff_step(&mut rb, &mut pb, s);
                }
            }
            drain_diff(&mut pa, &mut pb, ra == 0, rb == 0, &mut out);
        }
        drain_diff(&mut pa, &mut pb, true, true, &mut out);
        Some(out)
    }

    // -- Convenience API ---------------------------------------------------------

    /// Scans the half-open key range `[start, end)`, up to `limit` pairs.
    pub fn range(&self, start: &[u8], end: &[u8], limit: usize) -> Vec<Pair> {
        let mut out = self.scan(start, limit);
        if let Some(cut) = out.iter().position(|p| p.key.as_slice() >= end) {
            out.truncate(cut);
        }
        out
    }

    /// The smallest pair in the index, if any.
    pub fn first(&self) -> Option<Pair> {
        self.scan(b"", 1).into_iter().next()
    }

    /// The largest pair in the index, if any (walks the data-layer list to
    /// the tail; O(nodes), intended for diagnostics and tail consumers).
    pub fn last(&self) -> Option<Pair> {
        let _g = self.collector.pin();
        loop {
            // Jump near the tail via the search layer's maximum anchor.
            let mut raw = self
                .art
                .max_entry()
                .map(|(_, v)| v)
                .unwrap_or_else(|| self.head_raw());
            // Walk right to the true tail, then take the last sorted pair of
            // the rightmost non-empty node.
            let mut best: Option<Pair> = None;
            loop {
                // SAFETY: epoch-pinned list walk.
                let node = unsafe { node_ref(raw) };
                let Some(token) = node.lock.read_begin() else {
                    break;
                };
                if node.deleted.load(Ordering::Acquire) != 0 {
                    break;
                }
                let pairs = node.sorted_pairs_raw();
                let next = node.next.load(Ordering::Acquire);
                if !node.lock.read_validate(token) {
                    break;
                }
                if let Some((k, slot)) = pairs.last() {
                    best = Some(Pair {
                        key: k.clone(),
                        value: node.value_at(*slot),
                    });
                }
                if next == 0 {
                    return best;
                }
                raw = next;
            }
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether the index holds no pairs — O(nodes).
    pub fn is_empty(&self) -> bool {
        self.count_pairs() == 0
    }

    // -- Diagnostics -----------------------------------------------------------

    /// One epoch-pinned data-layer walk returning `(nodes, live_pairs)` —
    /// the basis of the `node.count` / `node.occupancy` health gauges.
    /// O(n): meant for scrape threads and tests, never hot paths.
    pub fn occupancy(&self) -> (usize, usize) {
        let _g = self.collector.pin();
        let mut raw = self.head_raw();
        let (mut nodes, mut live) = (0usize, 0usize);
        while raw != 0 {
            // SAFETY: epoch-pinned list walk.
            let node = unsafe { node_ref(raw) };
            nodes += 1;
            live += node.live_count();
            raw = node.next.load(Ordering::Acquire);
        }
        (nodes, live)
    }

    /// Walks the data layer counting live pairs (O(n); tests only).
    pub fn count_pairs(&self) -> usize {
        let _g = self.collector.pin();
        let mut raw = self.head_raw();
        let mut n = 0;
        while raw != 0 {
            // SAFETY: epoch-pinned list walk.
            let node = unsafe { node_ref(raw) };
            n += node.live_count();
            raw = node.next.load(Ordering::Acquire);
        }
        n
    }

    /// Number of data nodes in the list (tests only).
    pub fn node_count(&self) -> usize {
        let _g = self.collector.pin();
        let mut raw = self.head_raw();
        let mut n = 0;
        while raw != 0 {
            n += 1;
            // SAFETY: epoch-pinned list walk.
            raw = unsafe { node_ref(raw) }.next.load(Ordering::Acquire);
        }
        n
    }

    /// Verifies data-layer invariants (anchors ascending, pairs in range,
    /// back pointers consistent); panics on violation. Tests only.
    pub fn check_invariants(&self) {
        let _g = self.collector.pin();
        let mut raw = self.head_raw();
        let mut prev_raw = 0u64;
        let mut prev_anchor: Option<Vec<u8>> = None;
        while raw != 0 {
            // SAFETY: epoch-pinned walk.
            let node = unsafe { node_ref(raw) };
            assert_eq!(
                node.deleted.load(Ordering::Acquire),
                0,
                "live list has deleted node"
            );
            let anchor = node.anchor();
            if let Some(pa) = &prev_anchor {
                assert!(pa < &anchor, "anchors must ascend");
            }
            assert_eq!(
                node.prev.load(Ordering::Acquire),
                prev_raw,
                "prev link broken"
            );
            for (k, _) in node.sorted_pairs_raw() {
                assert!(k >= anchor, "pair below anchor");
            }
            let next = node.next.load(Ordering::Acquire);
            if next != 0 {
                // SAFETY: epoch-pinned.
                let na = unsafe { node_ref(next) }.anchor();
                for (k, _) in node.sorted_pairs_raw() {
                    assert!(k < na, "pair at or above next anchor");
                }
            }
            prev_anchor = Some(anchor);
            prev_raw = raw;
            raw = next;
        }
    }
}

/// Feeds one resolved node into a diff cursor: queues its live pairs and
/// advances the cursor along the version's own next chain.
fn diff_step(raw: &mut u64, pending: &mut VecDeque<(Vec<u8>, u64)>, s: Option<Resolved>) {
    match s {
        Some(s) => {
            if !s.deleted() {
                pending.extend(s.pairs().iter().cloned());
            }
            *raw = s.next();
        }
        // A version walk never reaches a node born after it; stop the side
        // defensively if it somehow does.
        None => *raw = 0,
    }
}

/// Merges the two pending pair streams (both ascending) into diff entries.
/// A side's sole pending pair can only be classified once the other side
/// has a pair beyond it or its walk has finished.
fn drain_diff(
    pa: &mut VecDeque<(Vec<u8>, u64)>,
    pb: &mut VecDeque<(Vec<u8>, u64)>,
    a_done: bool,
    b_done: bool,
    out: &mut Vec<DiffEntry>,
) {
    loop {
        match (pa.front(), pb.front()) {
            (Some(a), Some(b)) => match a.0.cmp(&b.0) {
                std::cmp::Ordering::Equal => {
                    let (k, va) = pa.pop_front().expect("front checked");
                    let (_, vb) = pb.pop_front().expect("front checked");
                    if va != vb {
                        out.push(DiffEntry::Changed(k, va, vb));
                    }
                }
                std::cmp::Ordering::Less => {
                    let (k, v) = pa.pop_front().expect("front checked");
                    out.push(DiffEntry::Removed(k, v));
                }
                std::cmp::Ordering::Greater => {
                    let (k, v) = pb.pop_front().expect("front checked");
                    out.push(DiffEntry::Added(k, v));
                }
            },
            (Some(_), None) if b_done => {
                let (k, v) = pa.pop_front().expect("front checked");
                out.push(DiffEntry::Removed(k, v));
            }
            (None, Some(_)) if a_done => {
                let (k, v) = pb.pop_front().expect("front checked");
                out.push(DiffEntry::Added(k, v));
            }
            _ => return,
        }
    }
}

impl obsv::OpRecorder for PacTree {
    fn op_histograms(&self) -> &obsv::OpHistograms {
        &self.ops
    }
}

impl Drop for PacTree {
    fn drop(&mut self) {
        self.updater.stop();
        // Pending SMOs are deliberately left in the log: the next
        // [`PacTree::recover`] replays them, exactly like restart after a
        // real crash (§5.9).
        let now: u64 = self.pools().iter().map(|p| p.crash_count()).sum();
        if now != self.birth_crash_count {
            // A crash was simulated underneath this instance: deferred
            // frees refer to pre-crash state the remount resurrected.
            self.collector.discard_all();
        } else {
            self.collector.flush();
        }
    }
}
