//! Key representation.
//!
//! PACTree indexes byte-string keys ordered lexicographically. The data node
//! stores up to 32 key bytes inline (paper §5.2); longer keys spill their
//! tail into an out-of-node allocation. Integer keys are encoded big-endian
//! so that byte-wise order equals numeric order — this is also what makes a
//! radix trie (the search layer) order-preserving over `u64` keys.

use std::cmp::Ordering as CmpOrdering;

/// Maximum key bytes stored inline in a data-node slot.
pub const INLINE_KEY_LEN: usize = 32;

/// Maximum supported key length in bytes.
pub const MAX_KEY_LEN: usize = 1024;

/// An owned index key: an ordered byte string.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key {
    bytes: Vec<u8>,
}

impl Key {
    /// The empty key (lower bound of the whole key space; used as the
    /// anchor of the leftmost data node).
    pub const fn min() -> Key {
        Key { bytes: Vec::new() }
    }

    /// Builds a key from raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds [`MAX_KEY_LEN`].
    pub fn from_bytes(bytes: &[u8]) -> Key {
        assert!(bytes.len() <= MAX_KEY_LEN, "key too long");
        Key {
            bytes: bytes.to_vec(),
        }
    }

    /// Encodes a `u64` big-endian, preserving numeric order byte-wise.
    pub fn from_u64(v: u64) -> Key {
        Key {
            bytes: v.to_be_bytes().to_vec(),
        }
    }

    /// Decodes a key produced by [`from_u64`](Self::from_u64).
    ///
    /// Returns `None` if the key is not exactly 8 bytes.
    pub fn to_u64(&self) -> Option<u64> {
        let arr: [u8; 8] = self.bytes.as_slice().try_into().ok()?;
        Some(u64::from_be_bytes(arr))
    }

    /// The raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Key length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether this is the empty (minimum) key.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// One-byte hash used by the data-node fingerprint array (§5.2). Never 0
    /// so that 0 can mean "empty slot" in debugging dumps.
    #[inline]
    pub fn fingerprint(&self) -> u8 {
        fingerprint_of(&self.bytes)
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key::from_u64(v)
    }
}

impl From<&[u8]> for Key {
    fn from(b: &[u8]) -> Self {
        Key::from_bytes(b)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_bytes(s.as_bytes())
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

/// FNV-1a reduced to one byte; cheap and well distributed for fingerprints.
#[inline]
pub fn fingerprint_of(bytes: &[u8]) -> u8 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let f = (h ^ (h >> 32)) as u8;
    if f == 0 {
        1
    } else {
        f
    }
}

/// Lexicographic comparison of raw key bytes.
#[inline]
pub fn compare(a: &[u8], b: &[u8]) -> CmpOrdering {
    a.cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_preserves_order() {
        let vals = [0u64, 1, 255, 256, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        let keys: Vec<Key> = vals.iter().map(|&v| Key::from_u64(v)).collect();
        for i in 0..keys.len() {
            assert_eq!(keys[i].to_u64(), Some(vals[i]));
            for j in 0..keys.len() {
                assert_eq!(
                    keys[i].cmp(&keys[j]),
                    vals[i].cmp(&vals[j]),
                    "byte order must equal numeric order"
                );
            }
        }
    }

    #[test]
    fn min_key_sorts_first() {
        assert!(Key::min() < Key::from_u64(0));
        assert!(Key::min() < Key::from_bytes(&[0]));
        assert!(Key::min().is_empty());
    }

    #[test]
    fn fingerprint_never_zero() {
        for i in 0..10_000u64 {
            assert_ne!(Key::from_u64(i).fingerprint(), 0);
        }
    }

    #[test]
    fn fingerprint_distributes() {
        let mut counts = [0u32; 256];
        for i in 0..100_000u64 {
            counts[Key::from_u64(i).fingerprint() as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 200, "fingerprints should cover most byte values");
    }

    #[test]
    #[should_panic(expected = "key too long")]
    fn oversized_key_rejected() {
        let _ = Key::from_bytes(&vec![0u8; MAX_KEY_LEN + 1]);
    }

    #[test]
    fn str_keys_order_lexicographically() {
        assert!(Key::from("abc") < Key::from("abd"));
        assert!(Key::from("ab") < Key::from("abc"));
        assert!(Key::from("user100") < Key::from("user99")); // lexicographic!
    }
}
