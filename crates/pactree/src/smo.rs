//! Per-thread persistent SMO (structural modification operation) logs
//! (paper §4.3, §5.6).
//!
//! When an insert splits a data node, or a delete merges two, the writer
//! records the fact in its per-thread SMO log *before* touching the data
//! layer and returns without updating the search layer; the background
//! updater thread replays log entries in timestamp order to synchronize the
//! search layer (asynchronous SMO, the paper's core GC2 mechanism).
//!
//! A log entry also serves as the crash-consistency anchor of the whole
//! split/merge protocol (§5.9): the new node of a split is allocated with
//! *malloc-to* semantics directly into the entry's placeholder field, so a
//! crash anywhere in the protocol either finds enough state in the entry to
//! complete the operation or proves it never started.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pmem::persist;
use pmem::pool::PmemPool;
use pmem::pptr::PmPtr;
use pmem::Result;

/// SMO kinds recorded in a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum SmoKind {
    /// `node` split; the new right node lives in `aux`.
    Split = 1,
    /// `aux` (the right node) merged into `node` (the left node).
    Merge = 2,
}

/// Entry states.
const STATE_FREE: u64 = 0;
/// The data-layer part is (being) executed; the search layer may lag.
const STATE_PENDING: u64 = 1;

/// 8-byte words per entry: `[seq, kind, node, aux, state, pad, pad, pad]`
/// (padded to a cache line so entries flush independently).
const ENTRY_WORDS: usize = 8;
const W_SEQ: usize = 0;
const W_KIND: usize = 1;
const W_NODE: usize = 2;
const W_AUX: usize = 3;
const W_STATE: usize = 4;

/// Entries per thread ring.
pub const ENTRIES_PER_THREAD: usize = 64;
/// Number of per-thread rings.
pub const LOG_THREADS: usize = 256;

/// Bytes of the whole log area.
pub const LOG_AREA_SIZE: usize = LOG_THREADS * ENTRIES_PER_THREAD * ENTRY_WORDS * 8;

static NEXT_SMO_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SMO_THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn smo_thread_slot() -> usize {
    SMO_THREAD_SLOT.with(|s| {
        if s.get() == usize::MAX {
            s.set(NEXT_SMO_THREAD.fetch_add(1, Ordering::Relaxed) % LOG_THREADS);
        }
        s.get()
    })
}

/// A decoded, pending SMO log entry.
#[derive(Debug, Clone, Copy)]
pub struct SmoRecord {
    pub seq: u64,
    pub kind: SmoKind,
    /// The split/left node.
    pub node: u64,
    /// The new node (split) or merged-away victim (merge).
    pub aux: u64,
    /// Location for clearing.
    pub thread: usize,
    pub index: usize,
}

/// Handle over the persistent SMO log area of one tree.
pub struct SmoLog {
    /// Raw `PmPtr` to the log area.
    area: PmPtr<AtomicU64>,
    /// Global timestamp source.
    seq: AtomicU64,
}

impl SmoLog {
    /// Creates (or attaches to) the log area anchored at root-directory cell
    /// `cell` of `pool`.
    pub fn create(pool: &PmemPool, cell: &AtomicU64) -> Result<SmoLog> {
        if cell.load(Ordering::Acquire) == 0 {
            pool.allocator().malloc_to(LOG_AREA_SIZE, cell, |raw| {
                // SAFETY: fresh allocation of LOG_AREA_SIZE bytes.
                unsafe { raw.write_bytes(0, LOG_AREA_SIZE) };
            })?;
        }
        let area = PmPtr::<AtomicU64>::from_raw(cell.load(Ordering::Acquire));
        let log = SmoLog {
            area,
            seq: AtomicU64::new(1),
        };
        // Resume the timestamp above any surviving entry.
        let max_seq = log.pending().iter().map(|r| r.seq).max().unwrap_or(0);
        log.seq.store(max_seq + 1, Ordering::Release);
        Ok(log)
    }

    fn word(&self, thread: usize, index: usize, w: usize) -> &AtomicU64 {
        debug_assert!(thread < LOG_THREADS && index < ENTRIES_PER_THREAD && w < ENTRY_WORDS);
        let off = (((thread * ENTRIES_PER_THREAD + index) * ENTRY_WORDS + w) * 8) as u64;
        // SAFETY: in bounds of the LOG_AREA_SIZE allocation; 8-byte aligned.
        unsafe { &*self.area.byte_add(off).as_ptr() }
    }

    /// Claims a free entry in the calling thread's ring and records a split
    /// or merge intention; returns the entry handle. Spins (with the caller
    /// expected to be rare) when the ring is full — natural back-pressure on
    /// writers when the updater falls behind.
    pub fn append(&self, kind: SmoKind, node: u64) -> SmoTicket<'_> {
        let thread = smo_thread_slot();
        loop {
            for index in 0..ENTRIES_PER_THREAD {
                if self.word(thread, index, W_STATE).load(Ordering::Acquire) == STATE_FREE {
                    let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                    self.word(thread, index, W_SEQ)
                        .store(seq, Ordering::Relaxed);
                    self.word(thread, index, W_KIND)
                        .store(kind as u64, Ordering::Relaxed);
                    self.word(thread, index, W_NODE)
                        .store(node, Ordering::Relaxed);
                    self.word(thread, index, W_AUX).store(0, Ordering::Relaxed);
                    self.word(thread, index, W_STATE)
                        .store(STATE_PENDING, Ordering::Release);
                    persist::persist(
                        self.word(thread, index, 0) as *const AtomicU64 as *const u8,
                        ENTRY_WORDS * 8,
                    );
                    persist::fence();
                    return SmoTicket {
                        log: self,
                        thread,
                        index,
                        seq,
                    };
                }
            }
            std::thread::yield_now();
        }
    }

    /// Clears an entry (the SMO is fully reflected in the search layer).
    pub fn clear(&self, thread: usize, index: usize) {
        self.word(thread, index, W_STATE)
            .store(STATE_FREE, Ordering::Release);
        persist::persist_obj_fenced(self.word(thread, index, W_STATE));
    }

    /// Snapshot of all pending entries, sorted by timestamp (the updater's
    /// replay order, §5.6).
    pub fn pending(&self) -> Vec<SmoRecord> {
        let mut out = Vec::new();
        for t in 0..LOG_THREADS {
            for i in 0..ENTRIES_PER_THREAD {
                if self.word(t, i, W_STATE).load(Ordering::Acquire) != STATE_PENDING {
                    continue;
                }
                let kind = match self.word(t, i, W_KIND).load(Ordering::Acquire) {
                    1 => SmoKind::Split,
                    2 => SmoKind::Merge,
                    _ => continue, // torn entry: state persisted last, skip
                };
                out.push(SmoRecord {
                    seq: self.word(t, i, W_SEQ).load(Ordering::Acquire),
                    kind,
                    node: self.word(t, i, W_NODE).load(Ordering::Acquire),
                    aux: self.word(t, i, W_AUX).load(Ordering::Acquire),
                    thread: t,
                    index: i,
                });
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Number of pending entries (diagnostics, back-pressure tests).
    pub fn pending_count(&self) -> usize {
        self.pending().len()
    }

    /// Replay lag: `(total_pending, max_pending_in_one_thread_slot)`.
    ///
    /// The per-slot maximum is the interesting tail signal — one writer
    /// thread outrunning the updater fills *its* ring (capacity
    /// [`ENTRIES_PER_THREAD`]) and hits the append back-pressure spin even
    /// while the log as a whole looks empty.
    pub fn replay_lag(&self) -> (usize, usize) {
        let mut total = 0usize;
        let mut max_slot = 0usize;
        for t in 0..LOG_THREADS {
            let mut slot = 0usize;
            for i in 0..ENTRIES_PER_THREAD {
                if self.word(t, i, W_STATE).load(Ordering::Acquire) == STATE_PENDING {
                    slot += 1;
                }
            }
            total += slot;
            max_slot = max_slot.max(slot);
        }
        (total, max_slot)
    }
}

/// A claimed, persisted SMO log entry being executed by a writer.
pub struct SmoTicket<'a> {
    log: &'a SmoLog,
    pub thread: usize,
    pub index: usize,
    pub seq: u64,
}

impl SmoTicket<'_> {
    /// The entry's `aux` cell — the malloc-to destination for a split's new
    /// node, or the victim pointer cell for a merge.
    pub fn aux_cell(&self) -> &AtomicU64 {
        self.log.word(self.thread, self.index, W_AUX)
    }

    /// Records the merge victim (persisted immediately).
    pub fn set_aux(&self, raw: u64) {
        self.aux_cell().store(raw, Ordering::Release);
        persist::persist_obj_fenced(self.aux_cell());
    }

    /// Abandons the ticket (the SMO turned out unnecessary): frees the slot.
    pub fn cancel(self) {
        self.log.clear(self.thread, self.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::pool::{destroy_pool, PmemPool, PoolConfig};

    #[test]
    fn append_pending_clear_cycle() {
        let pool = PmemPool::create(PoolConfig::volatile("smo-basic", 64 << 20)).unwrap();
        let log = SmoLog::create(&pool, pool.allocator().root(0)).unwrap();
        assert_eq!(log.pending_count(), 0);
        let t1 = log.append(SmoKind::Split, 111);
        let t2 = log.append(SmoKind::Merge, 222);
        t2.set_aux(333);
        let pending = log.pending();
        assert_eq!(pending.len(), 2);
        assert!(pending[0].seq < pending[1].seq, "sorted by timestamp");
        assert_eq!(pending[0].kind, SmoKind::Split);
        assert_eq!(pending[0].node, 111);
        assert_eq!(pending[1].aux, 333);
        log.clear(t1.thread, t1.index);
        log.clear(t2.thread, t2.index);
        assert_eq!(log.pending_count(), 0);
        destroy_pool(pool.id());
    }

    #[test]
    fn survives_crash_and_resumes_seq() {
        let pool = PmemPool::create(PoolConfig::durable("smo-crash", 64 << 20)).unwrap();
        let log = SmoLog::create(&pool, pool.allocator().root(0)).unwrap();
        let t = log.append(SmoKind::Split, 42);
        let seq_before = t.seq;
        pool.simulate_crash(false);
        // Reattach.
        let log2 = SmoLog::create(&pool, pool.allocator().root(0)).unwrap();
        let pending = log2.pending();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].node, 42);
        assert_eq!(pending[0].seq, seq_before);
        // New timestamps continue above the survivor.
        let t2 = log2.append(SmoKind::Merge, 1);
        assert!(t2.seq > seq_before);
        destroy_pool(pool.id());
    }

    #[test]
    fn cancel_frees_slot() {
        let pool = PmemPool::create(PoolConfig::volatile("smo-cancel", 64 << 20)).unwrap();
        let log = SmoLog::create(&pool, pool.allocator().root(0)).unwrap();
        let t = log.append(SmoKind::Split, 7);
        t.cancel();
        assert_eq!(log.pending_count(), 0);
        destroy_pool(pool.id());
    }
}
