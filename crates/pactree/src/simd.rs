//! Runtime-dispatched SIMD kernels for the hot probe paths (paper §5.2).
//!
//! The paper's data-node probe is *one* AVX-512 comparison over the 64-byte
//! fingerprint array. This module provides the closest thing each host
//! supports — SSE2/AVX2 on x86_64, NEON on aarch64 — plus the portable SWAR
//! fallback, selected **once** per process behind a function-pointer table:
//!
//! * [`fingerprint_match64`] — the PACTree data-node probe (64 slots);
//! * [`fingerprint_match32`] — the FPTree-baseline leaf probe (32 slots);
//! * [`node16_match`] — PDL-ART `Node16` child search (splat + compare +
//!   movemask, bounded by the node's live count);
//! * [`Kernels::key_rank`] — gather + byte-swap of one inline-key word per
//!   live slot, the rank extraction behind the data node's sorted-slot
//!   build (lexicographic byte order becomes plain integer order);
//! * [`prefetch_read`] — best-effort software prefetch for pointer chases.
//!
//! Setting `PACTREE_NO_SIMD=1` forces the SWAR kernels (and disables
//! software prefetch), which is how CI exercises the fallback path and how
//! the `bench_node_search` harness measures the end-to-end delta.
//!
//! # Safety: wide loads over `AtomicU8` arrays
//!
//! Every kernel reads 8/16/32 bytes at a time from arrays declared as
//! `[AtomicU8; N]`, i.e. wider than the declared atomic granule and (for the
//! vector kernels) non-atomically. This is sound for the same reason the
//! pre-existing `AtomicU64`-at-a-time SWAR trick was: every caller sits
//! inside a seqlock-style optimistic read protocol (`read_begin` /
//! `read_validate` on the owning node's version lock) or holds the node's
//! write lock outright, so a value computed from a torn or stale load is
//! discarded by the failed validation and never acted upon. The bytes
//! themselves are always initialized (nodes are zero-initialized at
//! allocation), so the loads cannot read uninitialized memory — the worst
//! case is a stale/mixed snapshot, which validation rejects. See DESIGN.md
//! §12 for the full argument.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// One set of probe kernels. Obtain via [`active`] (runtime-dispatched),
/// or [`swar`]/[`best`]/[`scalar`] for A/B harnesses and tests.
pub struct Kernels {
    name: &'static str,
    id: u8,
    /// 64-byte fingerprint probe → one mask bit per matching slot.
    fp_match64: unsafe fn(*const u8, u8) -> u64,
    /// 32-byte fingerprint probe → one mask bit per matching slot.
    fp_match32: unsafe fn(*const u8, u8) -> u32,
    /// 16-byte key probe, mask truncated to the first `count` slots.
    key_match16: unsafe fn(*const u8, u8, usize) -> u32,
    /// 256-byte `Node48` index walk → occupancy bitmap (bit i of word i/64
    /// set iff byte i != `N48_EMPTY`).
    n48_occupied: unsafe fn(*const u8) -> [u64; 4],
    /// Strided gather + per-lane byte swap: one 8-byte key word per listed
    /// slot (base, stride, offset, slots, n, out).
    key_rank: unsafe fn(*const u8, usize, usize, *const u8, usize, *mut u64),
    /// Whether [`prefetch_read`] issues a real prefetch instruction.
    prefetch: bool,
}

impl Kernels {
    /// Kernel-set name (`"scalar"`, `"swar"`, `"sse2"`, `"avx2"`, `"neon"`).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stable numeric id for gauges/JSON (0 swar, 1 sse2, 2 avx2, 3 neon,
    /// 255 scalar reference).
    #[inline]
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Probes a 64-slot fingerprint array for `fp`.
    #[inline]
    pub fn fp64(&self, fps: &[AtomicU8; 64], fp: u8) -> u64 {
        // SAFETY: the reference guarantees 64 readable, initialized bytes.
        // `[AtomicU8; N]` only promises 1-byte alignment; each kernel copes
        // on its own — SWAR checks at runtime and falls back to the scalar
        // per-byte path when misaligned, the vector kernels use unaligned
        // loads. See module docs for why wide loads are sound here.
        unsafe { (self.fp_match64)(fps.as_ptr() as *const u8, fp) }
    }

    /// Probes a 32-slot fingerprint array for `fp`.
    #[inline]
    pub fn fp32(&self, fps: &[AtomicU8; 32], fp: u8) -> u32 {
        // SAFETY: as for `fp64`, with 32 bytes.
        unsafe { (self.fp_match32)(fps.as_ptr() as *const u8, fp) }
    }

    /// Probes a `Node16` key array for `b`, bounded by `count`.
    #[inline]
    pub fn match16(&self, keys: &[AtomicU8; 16], b: u8, count: usize) -> u32 {
        // SAFETY: as for `fp64`, with 16 bytes.
        unsafe { (self.key_match16)(keys.as_ptr() as *const u8, b, count.min(16)) }
    }

    /// Walks a `Node48` child index: occupancy bitmap over all 256 bytes,
    /// bit `i % 64` of word `i / 64` set iff byte `i` is not `0xFF`.
    #[inline]
    pub fn n48(&self, index: &[AtomicU8; 256]) -> [u64; 4] {
        // SAFETY: as for `fp64`, with 256 bytes.
        unsafe { (self.n48_occupied)(index.as_ptr() as *const u8) }
    }

    /// Extracts the big-endian rank of one inline-key word for each listed
    /// slot: `out[i] = bswap(load_u64(base + slots[i] * stride + offset))`.
    /// Inline keys are stored zero-padded as little-endian words, so the
    /// byte-swapped word compares like the raw key bytes — the data node's
    /// sorted-slot build sorts on these ranks instead of materialized keys.
    ///
    /// # Safety
    ///
    /// For every `i < slots.len()`, `base + slots[i] * stride + offset`
    /// must point to 8 readable, initialized bytes at an 8-byte-aligned
    /// address. The wide-load caveats of the module docs apply: callers
    /// sit behind the owning node's lock (or a validated seqlock read), so
    /// a torn gather is never acted upon.
    pub unsafe fn key_rank(
        &self,
        base: *const u8,
        stride: usize,
        offset: usize,
        slots: &[u8],
        out: &mut [u64],
    ) {
        assert!(out.len() >= slots.len());
        // SAFETY: per this method's contract.
        unsafe {
            (self.key_rank)(
                base,
                stride,
                offset,
                slots.as_ptr(),
                slots.len(),
                out.as_mut_ptr(),
            )
        }
    }
}

// -- SWAR (portable fallback) -----------------------------------------------

/// Bytes of `x` that are zero, flagged in their high bit. The carry-free
/// form (not the classic `(x - 0x01…) & !x & 0x80…`, whose borrow out of a
/// zero byte false-flags a `0x01` byte above it): `(x & 0x7F…) + 0x7F…`
/// sets a byte's high bit iff its low seven bits are nonzero and cannot
/// carry across bytes, so or-ing `x` back in and inverting flags exactly
/// the zero bytes.
#[inline]
fn zero_byte_flags(x: u64) -> u64 {
    !(((x & 0x7F7F_7F7F_7F7F_7F7F) + 0x7F7F_7F7F_7F7F_7F7F) | x | 0x7F7F_7F7F_7F7F_7F7F)
}

/// Folds per-byte high-bit flags into one bit per byte (bit i set ⇔ byte i
/// flagged): a single multiply gathers the eight flag bits into the top
/// byte. Collision-free: flag bits sit at positions 8i, the multiplier has
/// bits at 56-7j, and 8i-7j ∈ 0..8 only for i == j.
#[inline]
fn movemask8(flags: u64) -> u64 {
    ((flags >> 7).wrapping_mul(0x0102_0408_1020_4080)) >> 56
}

/// One 8-byte SWAR probe step: matching bytes of the word at `p` → low mask
/// bits. Loaded as a single `AtomicU64` (the original seqlock-friendly
/// trick — 8 declared atomics observed in one wider atomic load).
///
/// # Safety
///
/// `p` must point to 8 readable bytes at an 8-byte-aligned address.
#[inline]
unsafe fn swar_step(p: *const u8, broadcast: u64) -> u64 {
    debug_assert_eq!(p as usize % 8, 0);
    // SAFETY: per caller contract.
    let word = unsafe { (*(p as *const AtomicU64)).load(Ordering::Acquire) };
    movemask8(zero_byte_flags(word ^ broadcast))
}

unsafe fn fp_match64_swar(p: *const u8, fp: u8) -> u64 {
    if !(p as usize).is_multiple_of(8) {
        // Every in-tree array is 8-aligned by node layout; a stray unaligned
        // caller (e.g. a stack array in tests) gets the per-byte path rather
        // than a misaligned atomic load.
        // SAFETY: forwards the caller's 64-byte contract.
        return unsafe { fp_match64_scalar(p, fp) };
    }
    let broadcast = 0x0101_0101_0101_0101u64.wrapping_mul(fp as u64);
    let mut mask = 0u64;
    for chunk in 0..8 {
        // SAFETY: 64 readable aligned bytes per the kernel contract.
        mask |= unsafe { swar_step(p.add(chunk * 8), broadcast) } << (chunk * 8);
    }
    mask
}

unsafe fn fp_match32_swar(p: *const u8, fp: u8) -> u32 {
    if !(p as usize).is_multiple_of(8) {
        // SAFETY: forwards the caller's 32-byte contract.
        return unsafe { fp_match32_scalar(p, fp) };
    }
    let broadcast = 0x0101_0101_0101_0101u64.wrapping_mul(fp as u64);
    let mut mask = 0u32;
    for chunk in 0..4 {
        // SAFETY: 32 readable aligned bytes per the kernel contract.
        mask |= (unsafe { swar_step(p.add(chunk * 8), broadcast) } as u32) << (chunk * 8);
    }
    mask
}

unsafe fn key_match16_swar(p: *const u8, b: u8, count: usize) -> u32 {
    if !(p as usize).is_multiple_of(8) {
        // SAFETY: forwards the caller's 16-byte contract.
        return unsafe { key_match16_scalar(p, b, count) };
    }
    let broadcast = 0x0101_0101_0101_0101u64.wrapping_mul(b as u64);
    // SAFETY: 16 readable aligned bytes per the kernel contract.
    let mask = unsafe { swar_step(p, broadcast) | (swar_step(p.add(8), broadcast) << 8) };
    mask as u32 & ((1u32 << count.min(16)) - 1)
}

unsafe fn n48_occupied_swar(p: *const u8) -> [u64; 4] {
    if !(p as usize).is_multiple_of(8) {
        // SAFETY: forwards the caller's 256-byte contract.
        return unsafe { n48_occupied_scalar(p) };
    }
    // A byte is *empty* iff it equals N48_EMPTY (0xFF), i.e. `byte ^ 0xFF`
    // is zero — so the existing zero-byte probe finds the empties and the
    // complement (within each 8-bit lane group) is the occupancy mask.
    let mut out = [0u64; 4];
    for (w, word_mask) in out.iter_mut().enumerate() {
        let mut empty = 0u64;
        for chunk in 0..8 {
            // SAFETY: 256 readable aligned bytes per the kernel contract.
            empty |= unsafe { swar_step(p.add(w * 64 + chunk * 8), u64::MAX) } << (chunk * 8);
        }
        *word_mask = !empty;
    }
    out
}

// -- Scalar reference (tests and the microbench baseline only) --------------

unsafe fn fp_match64_scalar(p: *const u8, fp: u8) -> u64 {
    let mut mask = 0u64;
    for i in 0..64 {
        // SAFETY: 64 readable bytes per the kernel contract.
        let byte = unsafe { (*(p.add(i) as *const AtomicU8)).load(Ordering::Acquire) };
        mask |= u64::from(byte == fp) << i;
    }
    mask
}

unsafe fn fp_match32_scalar(p: *const u8, fp: u8) -> u32 {
    let mut mask = 0u32;
    for i in 0..32 {
        // SAFETY: 32 readable bytes per the kernel contract.
        let byte = unsafe { (*(p.add(i) as *const AtomicU8)).load(Ordering::Acquire) };
        mask |= u32::from(byte == fp) << i;
    }
    mask
}

unsafe fn key_match16_scalar(p: *const u8, b: u8, count: usize) -> u32 {
    let mut mask = 0u32;
    for i in 0..count.min(16) {
        // SAFETY: 16 readable bytes per the kernel contract.
        let byte = unsafe { (*(p.add(i) as *const AtomicU8)).load(Ordering::Acquire) };
        mask |= u32::from(byte == b) << i;
    }
    mask
}

unsafe fn n48_occupied_scalar(p: *const u8) -> [u64; 4] {
    let mut out = [0u64; 4];
    for i in 0..256 {
        // SAFETY: 256 readable bytes per the kernel contract.
        let byte = unsafe { (*(p.add(i) as *const AtomicU8)).load(Ordering::Acquire) };
        out[i / 64] |= u64::from(byte != 0xFF) << (i % 64);
    }
    out
}

/// One aligned atomic load + `swap_bytes` per slot. The stored word is
/// `u64::from_le_bytes(key bytes)`, so `swap_bytes` yields the big-endian
/// rank on every platform. Also the shared tail/fallback for the vector
/// gathers — a per-word loop the compiler turns into load+`bswap` pairs,
/// which is already close to memory-bound; only AVX2's hardware gather
/// buys more.
unsafe fn key_rank_scalar(
    base: *const u8,
    stride: usize,
    offset: usize,
    slots: *const u8,
    n: usize,
    out: *mut u64,
) {
    for i in 0..n {
        // SAFETY: `n` readable slot ids and out words, and an aligned
        // readable u64 per addressed entry, per the kernel contract.
        unsafe {
            let s = *slots.add(i) as usize;
            let q = base.add(s * stride + offset) as *const AtomicU64;
            *out.add(i) = (*q).load(Ordering::Acquire).swap_bytes();
        }
    }
}

// -- x86_64 vector kernels ---------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// 4×16B compare + movemask (SSE2 is part of the x86_64 baseline).
    pub unsafe fn fp_match64_sse2(p: *const u8, fp: u8) -> u64 {
        // SAFETY: 64 readable bytes per the kernel contract; loadu has no
        // alignment requirement.
        unsafe {
            let needle = _mm_set1_epi8(fp as i8);
            let mut mask = 0u64;
            for i in 0..4 {
                let v = _mm_loadu_si128(p.add(i * 16) as *const __m128i);
                let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
                mask |= ((eq as u32) as u64) << (i * 16);
            }
            mask
        }
    }

    pub unsafe fn fp_match32_sse2(p: *const u8, fp: u8) -> u32 {
        // SAFETY: 32 readable bytes per the kernel contract.
        unsafe {
            let needle = _mm_set1_epi8(fp as i8);
            let lo = _mm_loadu_si128(p as *const __m128i);
            let hi = _mm_loadu_si128(p.add(16) as *const __m128i);
            let ml = _mm_movemask_epi8(_mm_cmpeq_epi8(lo, needle)) as u32;
            let mh = _mm_movemask_epi8(_mm_cmpeq_epi8(hi, needle)) as u32;
            ml | (mh << 16)
        }
    }

    /// The classic ART `Node16` probe: one splat-compare-movemask.
    pub unsafe fn key_match16_sse2(p: *const u8, b: u8, count: usize) -> u32 {
        // SAFETY: 16 readable bytes per the kernel contract.
        unsafe {
            let needle = _mm_set1_epi8(b as i8);
            let v = _mm_loadu_si128(p as *const __m128i);
            let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle)) as u32;
            eq & ((1u32 << count.min(16)) - 1)
        }
    }

    /// 16×16B compare-against-0xFF + movemask, inverted per 64-byte group.
    pub unsafe fn n48_occupied_sse2(p: *const u8) -> [u64; 4] {
        // SAFETY: 256 readable bytes per the kernel contract.
        unsafe {
            let empty = _mm_set1_epi8(-1);
            let mut out = [0u64; 4];
            for (w, word_mask) in out.iter_mut().enumerate() {
                let mut m = 0u64;
                for i in 0..4 {
                    let v = _mm_loadu_si128(p.add(w * 64 + i * 16) as *const __m128i);
                    let eq = _mm_movemask_epi8(_mm_cmpeq_epi8(v, empty));
                    m |= ((eq as u32) as u64) << (i * 16);
                }
                *word_mask = !m;
            }
            out
        }
    }

    /// 2×32B compare + movemask.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fp_match64_avx2(p: *const u8, fp: u8) -> u64 {
        // SAFETY: 64 readable bytes per the kernel contract; the dispatcher
        // verified AVX2 support.
        unsafe {
            let needle = _mm256_set1_epi8(fp as i8);
            let lo = _mm256_loadu_si256(p as *const __m256i);
            let hi = _mm256_loadu_si256(p.add(32) as *const __m256i);
            let ml = _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, needle)) as u32 as u64;
            let mh = _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, needle)) as u32 as u64;
            // Dirty upper YMM state slows every legacy-SSE instruction that
            // follows (compiler-generated SSE in the tree code is non-VEX);
            // clear it before returning to scalar code.
            _mm256_zeroupper();
            ml | (mh << 32)
        }
    }

    /// One 32B compare + movemask.
    #[target_feature(enable = "avx2")]
    pub unsafe fn fp_match32_avx2(p: *const u8, fp: u8) -> u32 {
        // SAFETY: 32 readable bytes per the kernel contract; AVX2 verified.
        unsafe {
            let needle = _mm256_set1_epi8(fp as i8);
            let v = _mm256_loadu_si256(p as *const __m256i);
            let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)) as u32;
            _mm256_zeroupper();
            m
        }
    }

    /// 4-lane hardware gather of the strided key words + in-register
    /// byte swap (`_mm256_shuffle_epi8` with a per-lane reversal pattern).
    /// Byte offsets are formed scalar (AVX2 has no 64-bit multiply) and
    /// fed to a scale-1 gather; x86_64 is little-endian, so the gathered
    /// lane bytes are the raw key bytes and the reversal is the rank.
    #[target_feature(enable = "avx2")]
    pub unsafe fn key_rank_avx2(
        base: *const u8,
        stride: usize,
        offset: usize,
        slots: *const u8,
        n: usize,
        out: *mut u64,
    ) {
        // SAFETY: per the kernel contract (each addressed word readable);
        // gathers have no alignment requirement, AVX2 verified by dispatch.
        unsafe {
            let rev = _mm256_setr_epi8(
                7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8, //
                7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
            );
            let mut i = 0;
            while i + 4 <= n {
                let at = |j: usize| (*slots.add(i + j) as usize * stride + offset) as i64;
                let idx = _mm256_setr_epi64x(at(0), at(1), at(2), at(3));
                let g = _mm256_i64gather_epi64::<1>(base as *const i64, idx);
                _mm256_storeu_si256(out.add(i) as *mut __m256i, _mm256_shuffle_epi8(g, rev));
                i += 4;
            }
            _mm256_zeroupper();
            super::key_rank_scalar(base, stride, offset, slots.add(i), n - i, out.add(i));
        }
    }

    /// 8×32B compare-against-0xFF + movemask, inverted per 64-byte group.
    #[target_feature(enable = "avx2")]
    pub unsafe fn n48_occupied_avx2(p: *const u8) -> [u64; 4] {
        // SAFETY: 256 readable bytes per the kernel contract; AVX2 verified.
        unsafe {
            let empty = _mm256_set1_epi8(-1);
            let mut out = [0u64; 4];
            for (w, word_mask) in out.iter_mut().enumerate() {
                let lo = _mm256_loadu_si256(p.add(w * 64) as *const __m256i);
                let hi = _mm256_loadu_si256(p.add(w * 64 + 32) as *const __m256i);
                let ml = _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, empty)) as u32 as u64;
                let mh = _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, empty)) as u32 as u64;
                *word_mask = !(ml | (mh << 32));
            }
            _mm256_zeroupper();
            out
        }
    }
}

// -- aarch64 vector kernels --------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// NEON lacks movemask; narrow each 16-bit lane pair by 4 (`vshrn`) to
    /// get one nibble per byte lane, then gather nibble low bits.
    #[inline]
    unsafe fn movemask16(eq: uint8x16_t) -> u32 {
        // SAFETY: pure register ops.
        unsafe {
            let nib = vshrn_n_u16::<4>(vreinterpretq_u16_u8(eq));
            let packed: u64 = vget_lane_u64::<0>(vreinterpret_u64_u8(nib));
            let mut mask = 0u32;
            let mut i = 0;
            while i < 16 {
                mask |= (((packed >> (4 * i)) & 1) as u32) << i;
                i += 1;
            }
            mask
        }
    }

    pub unsafe fn fp_match64_neon(p: *const u8, fp: u8) -> u64 {
        // SAFETY: 64 readable bytes per the kernel contract.
        unsafe {
            let needle = vdupq_n_u8(fp);
            let mut mask = 0u64;
            let mut i = 0;
            while i < 4 {
                let v = vld1q_u8(p.add(i * 16));
                mask |= (movemask16(vceqq_u8(v, needle)) as u64) << (i * 16);
                i += 1;
            }
            mask
        }
    }

    pub unsafe fn fp_match32_neon(p: *const u8, fp: u8) -> u32 {
        // SAFETY: 32 readable bytes per the kernel contract.
        unsafe {
            let needle = vdupq_n_u8(fp);
            let lo = movemask16(vceqq_u8(vld1q_u8(p), needle));
            let hi = movemask16(vceqq_u8(vld1q_u8(p.add(16)), needle));
            lo | (hi << 16)
        }
    }

    pub unsafe fn key_match16_neon(p: *const u8, b: u8, count: usize) -> u32 {
        // SAFETY: 16 readable bytes per the kernel contract.
        unsafe {
            let eq = movemask16(vceqq_u8(vld1q_u8(p), vdupq_n_u8(b)));
            let count = count.min(16);
            let lim = if count >= 16 {
                0xFFFF
            } else {
                (1u32 << count) - 1
            };
            eq & lim
        }
    }

    /// 16×16B compare-against-0xFF, inverted per 64-byte group.
    pub unsafe fn n48_occupied_neon(p: *const u8) -> [u64; 4] {
        // SAFETY: 256 readable bytes per the kernel contract.
        unsafe {
            let empty = vdupq_n_u8(0xFF);
            let mut out = [0u64; 4];
            for (w, word_mask) in out.iter_mut().enumerate() {
                let mut m = 0u64;
                let mut i = 0;
                while i < 4 {
                    let v = vld1q_u8(p.add(w * 64 + i * 16));
                    m |= (movemask16(vceqq_u8(v, empty)) as u64) << (i * 16);
                    i += 1;
                }
                *word_mask = !m;
            }
            out
        }
    }
}

// -- Kernel sets and dispatch ------------------------------------------------

static SCALAR: Kernels = Kernels {
    name: "scalar",
    id: 255,
    fp_match64: fp_match64_scalar,
    fp_match32: fp_match32_scalar,
    key_match16: key_match16_scalar,
    n48_occupied: n48_occupied_scalar,
    key_rank: key_rank_scalar,
    prefetch: false,
};

static SWAR: Kernels = Kernels {
    name: "swar",
    id: 0,
    fp_match64: fp_match64_swar,
    fp_match32: fp_match32_swar,
    key_match16: key_match16_swar,
    n48_occupied: n48_occupied_swar,
    key_rank: key_rank_scalar,
    prefetch: false,
};

#[cfg(target_arch = "x86_64")]
static SSE2: Kernels = Kernels {
    name: "sse2",
    id: 1,
    fp_match64: x86::fp_match64_sse2,
    fp_match32: x86::fp_match32_sse2,
    key_match16: x86::key_match16_sse2,
    n48_occupied: x86::n48_occupied_sse2,
    key_rank: key_rank_scalar,
    prefetch: true,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    name: "avx2",
    id: 2,
    fp_match64: x86::fp_match64_avx2,
    fp_match32: x86::fp_match32_avx2,
    key_match16: x86::key_match16_sse2,
    n48_occupied: x86::n48_occupied_avx2,
    key_rank: x86::key_rank_avx2,
    prefetch: true,
};

#[cfg(target_arch = "aarch64")]
static NEON: Kernels = Kernels {
    name: "neon",
    id: 3,
    fp_match64: neon::fp_match64_neon,
    fp_match32: neon::fp_match32_neon,
    key_match16: neon::key_match16_neon,
    n48_occupied: neon::n48_occupied_neon,
    key_rank: key_rank_scalar,
    prefetch: true,
};

/// The naive per-byte reference kernels (differential-test baseline).
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// The portable SWAR kernels (the forced-fallback dispatch target).
pub fn swar() -> &'static Kernels {
    &SWAR
}

/// The best kernel set this host supports, ignoring the env override.
pub fn best() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &AVX2
        } else {
            &SSE2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        &NEON
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        &SWAR
    }
}

/// Whether `PACTREE_NO_SIMD` requests the SWAR fallback (any value but `0`
/// or empty counts as set).
fn forced_fallback() -> bool {
    std::env::var("PACTREE_NO_SIMD").is_ok_and(|v| !v.is_empty() && v != "0")
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
static KERNEL_GAUGE: OnceLock<obsv::Registration> = OnceLock::new();

/// The process-wide kernel set: chosen once, on first use, honoring
/// `PACTREE_NO_SIMD=1`. The choice is exported as the obsv gauge
/// `pactree.simd.kernel.<name>` (value = kernel id) so every results
/// artifact records which ISA actually ran.
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(|| {
        let k = if forced_fallback() { &SWAR } else { best() };
        let gauge_name = format!("pactree.simd.kernel.{}", k.name);
        let id = k.id;
        let _ = KERNEL_GAUGE.set(
            obsv::registry::global()
                .register_gauge(gauge_name.clone(), move || Some(f64::from(id))),
        );
        // Observability must not be able to abort the data path, so this is
        // a debug-only check rather than a hard assert.
        debug_assert!(
            obsv::registry::global()
                .sample()
                .gauges
                .contains_key(&gauge_name),
            "dispatched SIMD kernel must be visible as an obsv gauge"
        );
        k
    })
}

// -- Safe entry points -------------------------------------------------------

/// Probes a 64-slot fingerprint array (the PACTree data-node probe, §5.2):
/// bit i of the result is set iff `fps[i] == fp`.
#[inline]
pub fn fingerprint_match64(fps: &[AtomicU8; 64], fp: u8) -> u64 {
    active().fp64(fps, fp)
}

/// Probes a 32-slot fingerprint array (the FPTree-baseline leaf probe).
#[inline]
pub fn fingerprint_match32(fps: &[AtomicU8; 32], fp: u8) -> u32 {
    active().fp32(fps, fp)
}

/// Probes a `Node16` key array for `b`; mask bits at or beyond `count` are
/// cleared.
#[inline]
pub fn node16_match(keys: &[AtomicU8; 16], b: u8, count: usize) -> u32 {
    active().match16(keys, b, count)
}

/// Walks a `Node48` child index in one pass: returns a 256-bit occupancy
/// bitmap (`[u64; 4]`, bit `i % 64` of word `i / 64` set iff slot `i` maps
/// to a live child, i.e. `index[i] != N48_EMPTY`). Callers iterate set bits
/// instead of testing all 256 bytes individually.
#[inline]
pub fn node48_occupied(index: &[AtomicU8; 256]) -> [u64; 4] {
    active().n48(index)
}

/// Best-effort L1 prefetch of the cache line holding `p`, for pointer
/// chases whose next dereference is a few dozen cycles away. A no-op on the
/// SWAR fallback (so `PACTREE_NO_SIMD=1` A/B runs isolate the whole
/// module's effect) and on architectures without a prefetch hint.
#[inline]
pub fn prefetch_read<T>(p: *const T) {
    if !active().prefetch {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, for any address.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm is a hint; it never faults and writes nothing.
    unsafe {
        std::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p as *const u8,
                        options(nostack, preserves_flags, readonly))
    };
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-aligned like every in-tree fingerprint/key array, so the tests
    /// exercise the SWAR word path rather than its unaligned fallback.
    #[repr(align(8))]
    struct Aligned<T>(T);

    fn mk64(seed: u64) -> Aligned<[AtomicU8; 64]> {
        let mut x = seed | 1;
        Aligned(std::array::from_fn(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            AtomicU8::new((x >> 33) as u8)
        }))
    }

    fn mk16(seed: u64) -> Aligned<[AtomicU8; 16]> {
        let a = mk64(seed);
        Aligned(std::array::from_fn(|i| {
            AtomicU8::new(a.0[i].load(Ordering::Relaxed))
        }))
    }

    fn mk32(seed: u64) -> Aligned<[AtomicU8; 32]> {
        let a = mk64(seed);
        Aligned(std::array::from_fn(|i| {
            AtomicU8::new(a.0[i].load(Ordering::Relaxed))
        }))
    }

    #[test]
    fn all_kernel_sets_agree_on_all_probe_bytes() {
        for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
            let (a64, a32, a16) = (mk64(seed), mk32(seed ^ 0x55), mk16(seed ^ 0xAA));
            let (a64, a32, a16) = (&a64.0, &a32.0, &a16.0);
            for fp in 0..=255u8 {
                let want64 = scalar().fp64(a64, fp);
                let want32 = scalar().fp32(a32, fp);
                for k in [swar(), best(), active()] {
                    assert_eq!(k.fp64(a64, fp), want64, "{} fp64 fp={fp}", k.name());
                    assert_eq!(k.fp32(a32, fp), want32, "{} fp32 fp={fp}", k.name());
                    for count in 0..=16 {
                        assert_eq!(
                            k.match16(a16, fp, count),
                            scalar().match16(a16, fp, count),
                            "{} match16 fp={fp} count={count}",
                            k.name()
                        );
                    }
                }
            }
        }
    }

    fn mk256(seed: u64, density: u64) -> Aligned<[AtomicU8; 256]> {
        // `density`/16 of the slots occupied (byte != 0xFF), rest empty.
        let mut x = seed | 1;
        Aligned(std::array::from_fn(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = if (x >> 33) % 16 < density {
                ((x >> 41) % 48) as u8
            } else {
                0xFF
            };
            AtomicU8::new(b)
        }))
    }

    #[test]
    fn all_kernel_sets_agree_on_n48_occupancy() {
        for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
            for density in [0, 1, 8, 15, 16] {
                let a = mk256(seed, density);
                let a = &a.0;
                let want = scalar().n48(a);
                // Cross-check the reference against a trivial re-derivation.
                for (w, word) in want.iter().enumerate() {
                    for bit in 0..64 {
                        let occupied = a[w * 64 + bit].load(Ordering::Relaxed) != 0xFF;
                        assert_eq!((word >> bit) & 1 == 1, occupied, "word {w} bit {bit}");
                    }
                }
                for k in [swar(), best(), active()] {
                    assert_eq!(k.n48(a), want, "{} seed={seed} density={density}", k.name());
                }
            }
        }
    }

    #[test]
    fn n48_occupancy_edges() {
        let empty: Aligned<[AtomicU8; 256]> = Aligned(std::array::from_fn(|_| AtomicU8::new(0xFF)));
        let full: Aligned<[AtomicU8; 256]> =
            Aligned(std::array::from_fn(|i| AtomicU8::new((i % 48) as u8)));
        let alternating: Aligned<[AtomicU8; 256]> = Aligned(std::array::from_fn(|i| {
            AtomicU8::new(if i % 2 == 0 { 3 } else { 0xFF })
        }));
        for k in [scalar(), swar(), best()] {
            assert_eq!(k.n48(&empty.0), [0u64; 4], "{} empty", k.name());
            assert_eq!(k.n48(&full.0), [u64::MAX; 4], "{} full", k.name());
            assert_eq!(
                k.n48(&alternating.0),
                [0x5555_5555_5555_5555u64; 4],
                "{} alternating",
                k.name()
            );
        }
        // 0xFE (one bit off empty) must still read as occupied.
        let near: Aligned<[AtomicU8; 256]> = Aligned(std::array::from_fn(|i| {
            AtomicU8::new(if i == 200 { 0xFE } else { 0xFF })
        }));
        for k in [scalar(), swar(), best()] {
            let mut want = [0u64; 4];
            want[200 / 64] = 1 << (200 % 64);
            assert_eq!(k.n48(&near.0), want, "{} near-empty byte", k.name());
        }
    }

    #[test]
    fn match16_respects_count_bound() {
        let keys: [AtomicU8; 16] = std::array::from_fn(|_| AtomicU8::new(9));
        for k in [scalar(), swar(), best()] {
            assert_eq!(k.match16(&keys, 9, 0), 0, "{}", k.name());
            assert_eq!(k.match16(&keys, 9, 4), 0b1111, "{}", k.name());
            assert_eq!(k.match16(&keys, 9, 16), 0xFFFF, "{}", k.name());
            // Out-of-range counts clamp rather than shift past the lane.
            assert_eq!(k.match16(&keys, 9, 64), 0xFFFF, "{}", k.name());
        }
    }

    #[test]
    fn movemask8_folds_every_flag_pattern() {
        // Every subset of flagged bytes must map to exactly its bit set.
        for pat in 0..256u64 {
            let mut flags = 0u64;
            for i in 0..8 {
                if pat & (1 << i) != 0 {
                    flags |= 0x80 << (8 * i);
                }
            }
            assert_eq!(movemask8(flags), pat, "pattern {pat:#x}");
        }
    }

    #[test]
    fn dispatch_registers_kernel_gauge() {
        let k = active();
        let sample = obsv::registry::global().sample();
        let name = format!("pactree.simd.kernel.{}", k.name());
        assert_eq!(sample.gauges.get(&name).copied(), Some(f64::from(k.id())));
    }

    #[test]
    fn prefetch_is_safe_on_arbitrary_pointers() {
        let v = [0u8; 64];
        prefetch_read(v.as_ptr());
        prefetch_read(std::ptr::null::<u8>());
    }
}
