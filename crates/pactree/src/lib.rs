//! PACTree: a high-performance persistent range index following the PAC
//! (Packed, Asynchronous Concurrency) guidelines — a Rust reproduction of
//! the SOSP 2021 paper.
//!
//! PACTree is a hybrid persistent index:
//!
//! * the **search layer** ([`search`]) is PDL-ART, a persistent
//!   durable-linearizable adaptive radix tree that packs partial keys into
//!   internal nodes (GA1: lookups consume minimal NVM bandwidth);
//! * the **data layer** ([`data`]) is a doubly linked list of B+-tree-style
//!   slotted *data nodes* holding 64 key-value pairs each, with fingerprint
//!   and permutation arrays (GA3: writes amortize NVM allocation; GA5: scans
//!   are sequential and prefetch-friendly);
//! * the two layers are **decoupled**: structural modifications log their
//!   effect to per-thread SMO logs ([`smo`]) and a background updater thread
//!   ([`updater`]) replays them into the search layer asynchronously (GC2:
//!   SMOs never block the critical path). Lookups tolerate the resulting
//!   *ephemeral inconsistency* by range-checking anchors and walking the
//!   data-layer list.
//!
//! The top-level handle is [`PacTree`].
//!
//! # Example
//!
//! ```
//! use pactree::{PacTree, PacTreeConfig};
//!
//! let tree = PacTree::create(PacTreeConfig::named("doc-example")).unwrap();
//! tree.insert(&42u64.to_be_bytes(), 420).unwrap();
//! assert_eq!(tree.lookup(&42u64.to_be_bytes()), Some(420));
//! let scanned = tree.scan(&0u64.to_be_bytes(), 10);
//! assert_eq!(scanned.len(), 1);
//! ```

pub mod data;
pub mod key;
pub mod lock;
pub mod mvcc;
pub mod search;
pub mod simd;
pub mod smo;
pub mod stats;
pub mod tree;
pub mod updater;

pub use key::Key;

pub use tree::{PacTree, PacTreeConfig};
