//! The background search-layer updater thread (paper §4.3, §5.6).
//!
//! PACTree's defining concurrency trick: splits and merges finish their
//! data-layer work and return; a single background thread replays the
//! per-thread SMO logs in timestamp order, inserting new anchors into (and
//! removing merged anchors from) the PDL-ART search layer. Writers *nudge*
//! the updater after logging an SMO; the updater also wakes periodically to
//! advance the epoch collector.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::tree::PacTree;

struct Shared {
    stop: AtomicBool,
    work: Mutex<bool>,
    cv: Condvar,
}

/// Handle owning the updater thread.
pub struct Updater {
    shared: Arc<Shared>,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Default for Updater {
    fn default() -> Self {
        Self::new()
    }
}

impl Updater {
    /// Creates a stopped updater.
    pub fn new() -> Updater {
        Updater {
            shared: Arc::new(Shared {
                stop: AtomicBool::new(false),
                work: Mutex::new(false),
                cv: Condvar::new(),
            }),
            handle: Mutex::new(None),
        }
    }

    /// Starts the background thread against a weak tree handle (weak so the
    /// updater never keeps a dropped tree alive).
    pub fn start(&self, tree: Weak<PacTree>) {
        let shared = Arc::clone(&self.shared);
        shared.stop.store(false, Ordering::Release);
        let handle = std::thread::Builder::new()
            .name("pactree-updater".into())
            .spawn(move || loop {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let Some(t) = tree.upgrade() else { break };
                t.replay_pending_smos();
                drop(t);
                let mut work = shared.work.lock();
                if !*work {
                    // Periodic wakeup keeps the epoch collector advancing
                    // even without SMO traffic.
                    shared.cv.wait_for(&mut work, Duration::from_millis(2));
                }
                *work = false;
            })
            .expect("spawn updater");
        *self.handle.lock() = Some(handle);
    }

    /// Wakes the updater (called by writers right after logging an SMO).
    pub fn nudge(&self) {
        let mut work = self.shared.work.lock();
        *work = true;
        self.shared.cv.notify_one();
    }

    /// Stops and joins the thread (idempotent).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.nudge();
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Updater {
    fn drop(&mut self) {
        self.stop();
    }
}
