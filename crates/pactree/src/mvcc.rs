//! Multi-version state for PACTree: O(1) snapshots and snapshot-isolated
//! reads over the data layer (DESIGN.md §13).
//!
//! # Design
//!
//! A tree-wide **version counter** advances on every snapshot registration
//! (and at pacsrv batch boundaries via
//! [`PacTree::advance_version`](crate::PacTree::advance_version)). Every
//! data node carries an *era stamp* (`DataNode::mvcc_ver`): the counter
//! value current when its live state last changed **while a snapshot was
//! live**. A writer about to mutate a node under its write lock calls
//! [`MvccState::prepare_mutation`]:
//!
//! * **no snapshot live (fast path)** — one atomic load and a branch;
//!   nothing is stamped, nothing is copied;
//! * **a snapshot might still need the node's current state** (its version
//!   ≥ the node's era stamp) — the state is **frozen**: pairs, `next` link
//!   and the deleted flag are materialized into a DRAM-side [`FrozenNode`]
//!   pushed onto the node's *version chain*, and the node is stamped with
//!   the current era. Each node freezes at most once per snapshot era, so
//!   the copy cost amortizes to one node capture per mutated node per
//!   snapshot — `snapshot()` itself copies nothing and is O(1).
//!
//! Reads at version `v` resolve a node with [`MvccState::resolve_at`]: if
//! the node's era stamp ≤ `v` the *live* state is the answer (read under
//! the node's seqlock); otherwise the chain holds the newest frozen state
//! with version ≤ `v`. The frozen `next` pointers of the states resolved at
//! `v` reconstruct exactly the data-node list as it existed at `v`, because
//! every list mutation happens under the owning node's write lock *after*
//! the freeze captured the pre-mutation link.
//!
//! Frozen chains live in DRAM, keyed by the node's raw `PmPtr` — they hold
//! owned key bytes and no NVM host pointers, so crash consistency is
//! trivial: snapshots (and their chains) simply die with the process, and
//! the durable state is exactly the live tree, which the existing recovery
//! path already proves durably linearizable. The per-node era stamps are
//! never flushed; a stale stamp leaking to media through an adjacent-line
//! flush is neutralized by the process-generation check in
//! `DataNode::mvcc_effective_ver`.
//!
//! # The registration race
//!
//! Writers decide "freeze or not" from two loads (`version`, then
//! `max_snap`); registration stores a *pending* marker (`u64::MAX`) into
//! `max_snap` before bumping the counter and finalizing. With all four
//! accesses SeqCst, a writer that misses a registering snapshot in
//! `max_snap` must have loaded the counter before the snapshot's bump — so
//! its mutation stamps an era ≤ the snapshot's version and is *included*
//! in the snapshot, which is the legal outcome for an operation concurrent
//! with `snapshot()`. A writer that starts after `snapshot()` returns
//! always sees the registered (or pending) `max_snap` and freezes first,
//! so acked-then-snapshotted state can never be lost.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use pmem::epoch::OwnedPin;

use crate::data::{node_ref, DataNode};

/// One captured (immutable) data-node state.
#[derive(Debug)]
pub struct FrozenNode {
    /// Era this state became current (validity starts here; it ends where
    /// the next-newer chain entry or the live stamp begins).
    pub version: u64,
    /// Right sibling at capture time (raw `PmPtr`), 0 at the tail.
    pub next: u64,
    /// Whether the node was already logically deleted at capture time.
    pub deleted: bool,
    /// Live pairs at capture time, sorted by key, fully owned.
    pub pairs: Vec<(Vec<u8>, u64)>,
}

/// A registered snapshot.
struct SnapEntry {
    id: u64,
    version: u64,
    /// Search-layer root at registration (navigation hint for `scan_at`).
    root_raw: u64,
    /// Epoch pin keeping every node the snapshot may reach allocated.
    _pin: OwnedPin,
}

/// A node state resolved at some snapshot version.
#[derive(Debug)]
pub struct NodeStateAt {
    pub next: u64,
    pub deleted: bool,
    pub pairs: Vec<(Vec<u8>, u64)>,
}

/// A resolution that exposes *sharing*: when two versions resolve the same
/// node to the same state — the same frozen capture, or both to the live
/// state — a structural diff can step over the whole node without touching
/// its pairs.
#[derive(Debug)]
pub enum Resolved {
    Live(NodeStateAt),
    Frozen(Arc<FrozenNode>),
}

impl Resolved {
    pub fn next(&self) -> u64 {
        match self {
            Resolved::Live(s) => s.next,
            Resolved::Frozen(f) => f.next,
        }
    }

    pub fn deleted(&self) -> bool {
        match self {
            Resolved::Live(s) => s.deleted,
            Resolved::Frozen(f) => f.deleted,
        }
    }

    pub fn pairs(&self) -> &[(Vec<u8>, u64)] {
        match self {
            Resolved::Live(s) => &s.pairs,
            Resolved::Frozen(f) => &f.pairs,
        }
    }

    /// Whether two aligned resolutions (same node, one per diffed version)
    /// denote the same state. `Frozen`/`Frozen` compares capture identity.
    /// `Live`/`Live` is sound because both versions are held live by the
    /// diff: any writer mutating the node between the two seqlock reads
    /// must freeze-and-stamp it past both versions (`max_snap` covers
    /// them), which would have turned the second resolution `Frozen`.
    pub fn same_state(&self, other: &Resolved) -> bool {
        match (self, other) {
            (Resolved::Live(_), Resolved::Live(_)) => true,
            (Resolved::Frozen(a), Resolved::Frozen(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// One entry of a [`diff`](crate::PacTree::diff) between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffEntry {
    /// Present at `v2` but not `v1`.
    Added(Vec<u8>, u64),
    /// Present at `v1` but not `v2`.
    Removed(Vec<u8>, u64),
    /// Present at both with different values (`old`, `new`).
    Changed(Vec<u8>, u64, u64),
}

/// The versioning subsystem state, shared by one tree.
pub struct MvccState {
    /// Monotone version counter; the *next* era. Starts at 1 so era 0 can
    /// mean "since the beginning".
    version: AtomicU64,
    /// Highest live snapshot version; 0 = none, `u64::MAX` = registration
    /// pending (writers freeze conservatively).
    max_snap: AtomicU64,
    /// Live snapshots.
    snaps: Mutex<Vec<SnapEntry>>,
    /// Frozen version chains, newest first, keyed by node raw pointer.
    chains: RwLock<HashMap<u64, Vec<Arc<FrozenNode>>>>,
    next_id: AtomicU64,
    /// Total data-node states frozen (COW captures) so far.
    frozen_total: AtomicU64,
}

impl Default for MvccState {
    fn default() -> Self {
        Self::new()
    }
}

impl MvccState {
    pub fn new() -> Self {
        MvccState {
            version: AtomicU64::new(1),
            max_snap: AtomicU64::new(0),
            snaps: Mutex::new(Vec::new()),
            chains: RwLock::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            frozen_total: AtomicU64::new(0),
        }
    }

    /// Current era (diagnostics).
    pub fn current_version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Advances the era counter (pacsrv stamps batch boundaries with this).
    pub fn advance_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Number of live snapshots.
    pub fn live_snapshots(&self) -> usize {
        self.snaps.lock().len()
    }

    /// Total frozen data-node captures so far.
    pub fn frozen_nodes(&self) -> u64 {
        self.frozen_total.load(Ordering::Relaxed)
    }

    /// Frozen chain entries currently retained.
    pub fn chain_entries(&self) -> usize {
        self.chains.read().values().map(|c| c.len()).sum()
    }

    /// `(max, mean)` length of the retained frozen version chains
    /// (`(0, 0.0)` with none). Structural health: chains that only grow
    /// mean live snapshots are pinning ever more frozen node states —
    /// degradation that surfaces here long before throughput moves.
    pub fn chain_stats(&self) -> (usize, f64) {
        let chains = self.chains.read();
        if chains.is_empty() {
            return (0, 0.0);
        }
        let (mut max, mut total) = (0usize, 0usize);
        for c in chains.values() {
            max = max.max(c.len());
            total += c.len();
        }
        (max, total as f64 / chains.len() as f64)
    }

    /// Registers a snapshot: O(1) — no tree walk, no copying. Returns
    /// `(id, version)`.
    ///
    /// The pending-marker protocol (module docs) closes the race against
    /// concurrent writers deciding whether to freeze.
    pub fn register(&self, root_raw: u64, pin: OwnedPin) -> (u64, u64) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let mut snaps = self.snaps.lock();
        self.max_snap.store(u64::MAX, Ordering::SeqCst);
        let version = self.version.fetch_add(1, Ordering::SeqCst);
        snaps.push(SnapEntry {
            id,
            version,
            root_raw,
            _pin: pin,
        });
        let ms = snaps.iter().map(|s| s.version).max().unwrap_or(0);
        self.max_snap.store(ms, Ordering::SeqCst);
        (id, version)
    }

    /// Releases a snapshot by id; prunes chain entries no remaining
    /// snapshot can reach. Returns false for an unknown id.
    pub fn release(&self, id: u64) -> bool {
        let live: Vec<u64>;
        {
            let mut snaps = self.snaps.lock();
            let before = snaps.len();
            snaps.retain(|s| s.id != id);
            if snaps.len() == before {
                return false;
            }
            let ms = snaps.iter().map(|s| s.version).max().unwrap_or(0);
            self.max_snap.store(ms, Ordering::SeqCst);
            live = snaps.iter().map(|s| s.version).collect();
            // The entry's OwnedPin drops here, releasing the epoch.
        }
        let mut chains = self.chains.write();
        if live.is_empty() {
            chains.clear();
        } else {
            chains.retain(|_, chain| {
                prune_chain(chain, &live);
                !chain.is_empty()
            });
        }
        true
    }

    /// Looks up a live snapshot: `(version, captured search-layer root)`.
    pub fn snap_info(&self, id: u64) -> Option<(u64, u64)> {
        self.snaps
            .lock()
            .iter()
            .find(|s| s.id == id)
            .map(|s| (s.version, s.root_raw))
    }

    /// Called by a writer holding `node`'s write lock, *before its first
    /// visible mutation*. Freezes the node's current state if any live
    /// snapshot can still reach it, then stamps the node with the current
    /// era. The load order (counter first, then `max_snap`) is what makes
    /// skipping safe — see the module docs.
    #[inline]
    pub fn prepare_mutation(&self, raw: u64, node: &DataNode) {
        let cur = self.version.load(Ordering::SeqCst);
        let ms = self.max_snap.load(Ordering::SeqCst);
        if ms == 0 {
            return;
        }
        let nv = node.mvcc_effective_ver();
        if ms < nv {
            return;
        }
        self.freeze(raw, node, nv, cur);
    }

    /// Cold path of [`prepare_mutation`]: capture + stamp.
    fn freeze(&self, raw: u64, node: &DataNode, nv: u64, cur: u64) {
        let frozen = Arc::new(FrozenNode {
            version: nv,
            next: node.next.load(Ordering::Acquire),
            deleted: node.deleted.load(Ordering::Acquire) != 0,
            pairs: node.sorted_pairs_owned(),
        });
        {
            let mut chains = self.chains.write();
            let chain = chains.entry(raw).or_default();
            chain.insert(0, frozen);
            let live: Vec<u64> = self.snaps.lock().iter().map(|s| s.version).collect();
            if !live.is_empty() {
                prune_chain(chain, &live);
            }
        }
        self.frozen_total.fetch_add(1, Ordering::Relaxed);
        // Stamp *after* the chain entry is visible: a reader that observes
        // the new era (and therefore goes to the chain) is ordered after
        // the chain insert via the node's seqlock release/acquire.
        node.mvcc_stamp(cur);
    }

    /// Drops the chain of a node whose memory is about to be freed (merge
    /// victims). Must run inside the same deferred-free closure as the
    /// free itself so a reused raw can never alias a stale chain.
    pub fn forget_node(&self, raw: u64) {
        self.chains.write().remove(&raw);
    }

    /// Resolves `raw` at snapshot version `v`, exposing state identity for
    /// structural-sharing checks. `None` means the node did not exist at
    /// `v` (born in a later era).
    ///
    /// The caller must hold the snapshot for `v` live (its chain entries
    /// are then pin-protected from pruning) and be epoch-pinned.
    pub fn resolve_shared(&self, raw: u64, v: u64) -> Option<Resolved> {
        // SAFETY: caller is epoch-pinned and the raw came from a live walk
        // or a frozen next pointer whose validity the snapshot pin holds.
        let node = unsafe { node_ref(raw) };
        loop {
            let Some(token) = node.lock.read_begin() else {
                std::hint::spin_loop();
                continue;
            };
            let nv = node.mvcc_effective_ver();
            if nv <= v {
                // Live state is the state at `v`: read it under the seqlock.
                let pairs = node.sorted_pairs_owned();
                let next = node.next.load(Ordering::Acquire);
                let deleted = node.deleted.load(Ordering::Acquire) != 0;
                if node.lock.read_validate(token) {
                    return Some(Resolved::Live(NodeStateAt {
                        next,
                        deleted,
                        pairs,
                    }));
                }
                continue;
            }
            // Era is newer than `v`: the chain has every state back to the
            // one visible at `v` (each mutation under a live snapshot froze
            // its predecessor). Validate the era read before trusting it.
            if !node.lock.read_validate(token) {
                continue;
            }
            let chains = self.chains.read();
            return chains
                .get(&raw)
                .and_then(|chain| chain.iter().find(|f| f.version <= v))
                .cloned()
                .map(Resolved::Frozen);
        }
    }

    /// Resolves `raw` at snapshot version `v` into an owned state (see
    /// [`resolve_shared`](Self::resolve_shared)).
    pub fn resolve_at(&self, raw: u64, v: u64) -> Option<NodeStateAt> {
        self.resolve_shared(raw, v).map(|r| match r {
            Resolved::Live(s) => s,
            Resolved::Frozen(f) => NodeStateAt {
                next: f.next,
                deleted: f.deleted,
                pairs: f.pairs.clone(),
            },
        })
    }
}

/// Keeps only chain entries some live snapshot can still resolve. Entry `i`
/// (newest first) is visible to versions in `[chain[i].version,
/// chain[i-1].version)`; the newest entry's window is open-ended here
/// (conservative — its true end is the node's live era stamp).
fn prune_chain(chain: &mut Vec<Arc<FrozenNode>>, live: &[u64]) {
    let mut upper = u64::MAX;
    chain.retain(|f| {
        let needed = live.iter().any(|&v| f.version <= v && v < upper);
        upper = f.version;
        needed
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frozen(version: u64) -> Arc<FrozenNode> {
        Arc::new(FrozenNode {
            version,
            next: 0,
            deleted: false,
            pairs: Vec::new(),
        })
    }

    #[test]
    fn prune_keeps_only_reachable_windows() {
        // Chain (newest first): states valid from eras 30, 20, 10.
        let mut chain = vec![frozen(30), frozen(20), frozen(10)];
        // Snapshots at 25 and 12: windows [20,30) and [10,20) are needed;
        // [30,∞) is needed by nothing ≥ 30.
        prune_chain(&mut chain, &[25, 12]);
        let versions: Vec<u64> = chain.iter().map(|f| f.version).collect();
        assert_eq!(versions, vec![20, 10]);

        // A snapshot beyond every state keeps only the newest entry.
        let mut chain = vec![frozen(30), frozen(20), frozen(10)];
        prune_chain(&mut chain, &[99]);
        let versions: Vec<u64> = chain.iter().map(|f| f.version).collect();
        assert_eq!(versions, vec![30]);

        // A snapshot older than every state keeps nothing.
        let mut chain = vec![frozen(30), frozen(20)];
        prune_chain(&mut chain, &[5]);
        assert!(chain.is_empty());
    }

    #[test]
    fn register_release_roundtrip() {
        let c = pmem::epoch::Collector::new();
        let m = MvccState::new();
        assert_eq!(m.live_snapshots(), 0);
        let (id1, v1) = m.register(0, c.pin_owned());
        let (id2, v2) = m.register(0, c.pin_owned());
        assert!(v2 > v1, "versions are strictly ordered");
        assert_ne!(id1, id2);
        assert_eq!(m.live_snapshots(), 2);
        assert_eq!(m.snap_info(id1), Some((v1, 0)));
        assert!(m.release(id1));
        assert!(!m.release(id1), "double release is rejected");
        assert_eq!(m.live_snapshots(), 1);
        assert!(m.release(id2));
        assert_eq!(m.max_snap.load(Ordering::SeqCst), 0);
        assert_eq!(m.chain_entries(), 0);
    }
}
