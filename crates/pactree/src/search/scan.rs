//! PDL-ART ordered range scans.
//!
//! Scans collect up to `limit` entries with keys ≥ `start` in key order.
//! Each scan is optimistic: per-node version validation, with a coarse
//! whole-scan restart on conflict (scans in the standalone PDL-ART baseline
//! are exactly the "multiple random NVM reads" the paper's GA5 analysis
//! criticizes — one pointer chase per leaf).

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::Ordering;

use super::insert::leaf_ref;
use super::node::{header_of, is_leaf};
use super::{collect_children, Art, MAX_RESTARTS};

enum WalkOut {
    Continue,
    Stop,
    Restart,
}

impl Art {
    /// Collects up to `limit` `(key, value)` entries with `key >= start`,
    /// in ascending key order.
    pub fn scan(&self, start: &[u8], limit: usize) -> Vec<(Vec<u8>, u64)> {
        let _guard = self.collector().pin();
        if limit == 0 {
            return Vec::new();
        }
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            let mut out = Vec::with_capacity(limit.min(4096));
            let root = self.root_cell().load(Ordering::Acquire);
            match self.walk(root, Some(start), 0, limit, &mut out) {
                WalkOut::Restart => backoff.pause(),
                _ => return out,
            }
        }
        unreachable!("scan livelocked");
    }

    /// Like [`scan`](Self::scan), but walks from a caller-captured root
    /// instead of the live root pointer — the read side of a standalone
    /// PDL-ART snapshot (DESIGN.md §13). The caller must hold an epoch pin
    /// predating the capture so the subtree stays mapped; per-node version
    /// validation still runs, so a root that is *not* actually frozen
    /// degrades to an ordinary racy scan rather than misbehaving.
    pub fn scan_from(&self, root: u64, start: &[u8], limit: usize) -> Vec<(Vec<u8>, u64)> {
        let _guard = self.collector().pin();
        if limit == 0 || root == 0 {
            return Vec::new();
        }
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            let mut out = Vec::with_capacity(limit.min(4096));
            match self.walk(root, Some(start), 0, limit, &mut out) {
                WalkOut::Restart => backoff.pause(),
                _ => return out,
            }
        }
        unreachable!("scan_from livelocked");
    }

    /// In-order walk. `bound` is `Some(start)` while the start key still
    /// constrains the subtree, `None` once the whole subtree qualifies.
    fn walk(
        &self,
        raw: u64,
        bound: Option<&[u8]>,
        depth: usize,
        limit: usize,
        out: &mut Vec<(Vec<u8>, u64)>,
    ) -> WalkOut {
        if raw == 0 {
            return WalkOut::Continue;
        }
        self.charge_read(raw, 128);
        // SAFETY: reachable node; public entry holds the epoch pin.
        if unsafe { is_leaf(raw) } {
            // SAFETY: leaf keys immutable, value atomic.
            let leaf = unsafe { leaf_ref(raw) };
            // SAFETY: initialized leaf.
            let k = unsafe { leaf.key() };
            self.charge_read(raw, 64 + k.len());
            if bound.is_none_or(|s| k >= s) {
                out.push((k.to_vec(), leaf.value.load(Ordering::Acquire)));
                if out.len() >= limit {
                    return WalkOut::Stop;
                }
            }
            return WalkOut::Continue;
        }
        // SAFETY: inner node.
        let hdr = unsafe { header_of(raw) };
        let Some(token) = hdr.lock.read_begin() else {
            return WalkOut::Restart;
        };
        let (_, _, plen) = hdr.meta3();
        let plen = plen as usize;
        let mut prefix = [0u8; super::node::PREFIX_CAP];
        prefix[..plen].copy_from_slice(&hdr.prefix[..plen]);
        // SAFETY: live inner node.
        let children = unsafe { collect_children(raw) };
        let ec = hdr.end_child.load(Ordering::Acquire);
        if !hdr.lock.read_validate(token) {
            return WalkOut::Restart;
        }
        // Warm the first few child lines before the in-order visits chase
        // them one random NVM read at a time (GA5's criticism of this path).
        for &(_, c) in children.iter().take(8) {
            crate::simd::prefetch_read(pmem::pptr::PmPtr::<u8>::from_raw(c).as_ptr());
        }
        let prefix = &prefix[..plen];

        // Work out how the bound constrains this subtree.
        let mut sub_bound: Option<&[u8]> = None;
        let mut start_byte: Option<u8> = None;
        let mut include_end = true;
        if let Some(s) = bound {
            let rest = &s[depth..];
            let l = plen.min(rest.len());
            match prefix[..l].cmp(&rest[..l]) {
                CmpOrdering::Less => return WalkOut::Continue, // subtree < start
                CmpOrdering::Greater => {}                     // subtree > start: all in
                CmpOrdering::Equal => {
                    if rest.len() <= plen {
                        // start is a (proper or full) prefix of the subtree
                        // path: every key here is >= start.
                    } else {
                        sub_bound = Some(s);
                        start_byte = Some(rest[plen]);
                        include_end = false; // a key ending here is shorter < start
                    }
                }
            }
        }

        if include_end && ec != 0 {
            match self.walk(ec, None, 0, limit, out) {
                WalkOut::Continue => {}
                other => return other,
            }
        }
        let depth2 = depth + plen;
        for &(b, c) in &children {
            let (child_bound, child_depth) = match start_byte {
                Some(sb) if b < sb => continue,
                Some(sb) if b == sb => (sub_bound, depth2 + 1),
                _ => (None, 0),
            };
            match self.walk(c, child_bound, child_depth, limit, out) {
                WalkOut::Continue => {}
                other => return other,
            }
        }
        // Validate once more so the collected snapshot of this node's
        // children was stable across the subtree visits.
        if !hdr.lock.read_validate(token) {
            return WalkOut::Restart;
        }
        WalkOut::Continue
    }
}
