//! PDL-ART insert (upsert) with optimistic lock coupling.
//!
//! Crash-consistency invariants upheld here (paper §5.1(2)):
//!
//! * new leaves and subtrees are fully persisted *before* the single atomic
//!   pointer store that links them (and that store is persisted right away);
//! * in-node child additions persist the payload (key byte + child pointer)
//!   first, then publish with the atomic meta-word store;
//! * nodes are never mutated in ways a crashed reader could misparse —
//!   prefix changes and arity changes copy the node and swap the parent
//!   pointer.

use std::sync::atomic::Ordering;

use pmem::persist;
use pmem::Result;

use super::node::{classify, header_of, is_leaf, ArtLeaf, NodeRef, NodeType};
use super::{collect_children, find_child, lcp_len, Art, ParentCtx, Step, MAX_RESTARTS};

/// Next-larger node arity for growth.
pub(super) fn grown(ty: NodeType) -> NodeType {
    match ty {
        NodeType::Node4 => NodeType::Node16,
        NodeType::Node16 => NodeType::Node48,
        NodeType::Node48 => NodeType::Node256,
        _ => unreachable!("Node256 never grows"),
    }
}

/// Returns a shared reference to a leaf.
///
/// # Safety
///
/// `raw` must point to an initialized, epoch-protected leaf.
pub(super) unsafe fn leaf_ref<'a>(raw: u64) -> &'a ArtLeaf {
    debug_assert!(unsafe { is_leaf(raw) });
    // SAFETY: per caller contract.
    unsafe { &*(pmem::pptr::PmPtr::<ArtLeaf>::from_raw(raw).as_ptr()) }
}

/// Adds a child to a node that has spare capacity, with the crash-safe
/// persist order (payload first, meta-word publish last).
///
/// # Safety
///
/// The caller must hold the node's write lock, and the node must have spare
/// capacity with no existing child for `b`.
pub(super) unsafe fn insert_child_persist(raw: u64, b: u8, child: u64) {
    // SAFETY: exclusive access per caller contract.
    unsafe {
        match classify(raw) {
            NodeRef::N4(n) => {
                let (ty, count, plen) = n.header.meta3();
                let i = count as usize;
                n.keys[i].store(b, Ordering::Relaxed);
                n.children[i].store(child, Ordering::Relaxed);
                persist::persist_obj(&n.keys[i]);
                persist::persist_obj(&n.children[i]);
                persist::fence();
                n.header.meta.store(
                    super::node::pack_meta(ty, count + 1, plen),
                    Ordering::Release,
                );
                persist::persist_obj_fenced(&n.header.meta);
            }
            NodeRef::N16(n) => {
                let (ty, count, plen) = n.header.meta3();
                let i = count as usize;
                n.keys[i].store(b, Ordering::Relaxed);
                n.children[i].store(child, Ordering::Relaxed);
                persist::persist_obj(&n.keys[i]);
                persist::persist_obj(&n.children[i]);
                persist::fence();
                n.header.meta.store(
                    super::node::pack_meta(ty, count + 1, plen),
                    Ordering::Release,
                );
                persist::persist_obj_fenced(&n.header.meta);
            }
            NodeRef::N48(n) => {
                let slot = (0..48)
                    .find(|&i| n.children[i].load(Ordering::Relaxed) == 0)
                    .expect("caller checked capacity");
                n.children[slot].store(child, Ordering::Relaxed);
                persist::persist_obj(&n.children[slot]);
                persist::fence();
                // The index store is the visibility (linearization) point.
                n.child_index[b as usize].store(slot as u8, Ordering::Release);
                persist::persist_obj(&n.child_index[b as usize]);
                persist::fence();
                super::bump_count(&n.header, 1);
                persist::persist_obj_fenced(&n.header.meta);
            }
            NodeRef::N256(n) => {
                n.children[b as usize].store(child, Ordering::Release);
                persist::persist_obj(&n.children[b as usize]);
                persist::fence();
                super::bump_count(&n.header, 1);
                persist::persist_obj_fenced(&n.header.meta);
            }
            NodeRef::Leaf(_) => unreachable!("cannot add child to leaf"),
        }
    }
}

impl Art {
    /// Inserts or updates `key -> value`; returns the previous value if the
    /// key was present.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero (reserved as the empty marker).
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        assert_ne!(value, 0, "value 0 is reserved");
        self.run_mutation(
            || self.insert_inplace(key, value),
            || self.cow_insert(key, value),
        )
    }

    fn insert_inplace(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            match self.try_insert(key, value, &guard)? {
                Step::Done(old) => return Ok(old),
                Step::Restart => backoff.pause(),
            }
        }
        unreachable!("insert livelocked");
    }

    fn try_insert(
        &self,
        key: &[u8],
        value: u64,
        guard: &pmem::epoch::Guard<'_>,
    ) -> Result<Step<Option<u64>>> {
        let mut oplog = self.oplog();
        let root_cell = self.root_cell();
        let root_token = match self.root_lock.read_begin() {
            Some(t) => t,
            None => return Ok(Step::Restart),
        };
        let mut parent = ParentCtx {
            lock: &self.root_lock,
            token: root_token,
            slot: root_cell,
        };
        let mut raw = root_cell.load(Ordering::Acquire);
        if !self.root_lock.read_validate(root_token) {
            return Ok(Step::Restart);
        }
        debug_assert_ne!(raw, 0, "root always exists");
        let mut depth = 0usize;

        loop {
            self.charge_read(raw, 128);
            // SAFETY: `raw` is a reachable inner node (we never descend into
            // leaves) and we are epoch-pinned.
            let hdr = unsafe { header_of(raw) };
            let token = match hdr.lock.read_begin() {
                Some(t) => t,
                None => return Ok(Step::Restart),
            };
            let (ty, count, plen) = hdr.meta3();
            let plen = plen as usize;
            let mut prefix = [0u8; super::node::PREFIX_CAP];
            prefix[..plen].copy_from_slice(&hdr.prefix[..plen]);
            if !hdr.lock.read_validate(token) {
                return Ok(Step::Restart);
            }
            let prefix = &prefix[..plen];
            let rest = &key[depth..];
            let m = lcp_len(prefix, rest);

            if m < plen {
                // Diverge inside the compressed prefix: copy-on-write split.
                let Some(_pg) = parent.lock.try_upgrade(parent.token) else {
                    return Ok(Step::Restart);
                };
                let Some(_ng) = hdr.lock.try_upgrade(token) else {
                    return Ok(Step::Restart);
                };
                let node2 = self.copy_node(&mut oplog, raw, ty, &prefix[m + 1..])?;
                let leaf = self.new_leaf(&mut oplog, key, value)?;
                let new_parent = if depth + m == key.len() {
                    // The key ends inside the prefix: it becomes the split
                    // node's end child.
                    self.new_node4(&mut oplog, &prefix[..m], &[(prefix[m], node2)], leaf)?
                } else {
                    self.new_node4(
                        &mut oplog,
                        &prefix[..m],
                        &[(prefix[m], node2), (key[depth + m], leaf)],
                        0,
                    )?
                };
                self.link(parent.slot, new_parent);
                self.retire(raw, guard);
                oplog.commit();
                return Ok(Step::Done(None));
            }

            depth += plen;
            if depth == key.len() {
                // Key ends at this node: end-child slot.
                let ec = hdr.end_child.load(Ordering::Acquire);
                if !hdr.lock.read_validate(token) {
                    return Ok(Step::Restart);
                }
                let Some(_ng) = hdr.lock.try_upgrade(token) else {
                    return Ok(Step::Restart);
                };
                if ec != 0 {
                    let old = self.upsert_leaf(ec, value);
                    oplog.commit();
                    return Ok(Step::Done(Some(old)));
                }
                let leaf = self.new_leaf(&mut oplog, key, value)?;
                self.link(&hdr.end_child, leaf);
                oplog.commit();
                return Ok(Step::Done(None));
            }

            let b = key[depth];
            // SAFETY: `raw` is a live inner node; slot references stay valid
            // while we are epoch-pinned.
            let found = unsafe { find_child(raw, b) };
            if !hdr.lock.read_validate(token) {
                return Ok(Step::Restart);
            }

            match found {
                Some((child, slot)) => {
                    // SAFETY: `child` was read under a validated token and we
                    // are epoch-pinned, so it is initialized and not freed.
                    if unsafe { is_leaf(child) } {
                        // SAFETY: see above; leaf keys are immutable.
                        let lkey = unsafe { leaf_ref(child).key() }.to_vec();
                        if !hdr.lock.read_validate(token) {
                            return Ok(Step::Restart);
                        }
                        let Some(_ng) = hdr.lock.try_upgrade(token) else {
                            return Ok(Step::Restart);
                        };
                        if lkey == key {
                            let old = self.upsert_leaf(child, value);
                            oplog.commit();
                            return Ok(Step::Done(Some(old)));
                        }
                        let sub =
                            self.build_join(&mut oplog, &lkey, child, key, value, depth + 1)?;
                        self.link(slot, sub);
                        oplog.commit();
                        return Ok(Step::Done(None));
                    }
                    parent = ParentCtx {
                        lock: &hdr.lock,
                        token,
                        slot,
                    };
                    raw = child;
                    depth += 1;
                }
                None => {
                    if (count as usize) < ty.capacity() {
                        let Some(_ng) = hdr.lock.try_upgrade(token) else {
                            return Ok(Step::Restart);
                        };
                        let leaf = self.new_leaf(&mut oplog, key, value)?;
                        // SAFETY: write lock held; capacity re-checked under
                        // the unchanged version.
                        unsafe { insert_child_persist(raw, b, leaf) };
                        oplog.commit();
                        return Ok(Step::Done(None));
                    }
                    // Full node: grow by copying into the next arity.
                    // An ART structural modification on the request path —
                    // spans under the active request trace (detail 2 =
                    // node grow), for PACTree's search layer and PDL-ART
                    // alike; inert when untraced.
                    let _smo_span = obsv::trace::span_here(obsv::trace::SpanKind::Smo, 2);
                    let Some(_pg) = parent.lock.try_upgrade(parent.token) else {
                        return Ok(Step::Restart);
                    };
                    let Some(_ng) = hdr.lock.try_upgrade(token) else {
                        return Ok(Step::Restart);
                    };
                    let leaf = self.new_leaf(&mut oplog, key, value)?;
                    // SAFETY: node write lock held.
                    let mut entries = unsafe { collect_children(raw) };
                    entries.push((b, leaf));
                    let end = hdr.end_child.load(Ordering::Acquire);
                    let bigger =
                        self.alloc_inner_with(&mut oplog, grown(ty), prefix, &entries, end)?;
                    self.link(parent.slot, bigger);
                    self.retire(raw, guard);
                    oplog.commit();
                    return Ok(Step::Done(None));
                }
            }
        }
    }

    /// In-place value update on a leaf (8-byte atomic store is the
    /// linearization point; persisted before the caller releases the node
    /// lock, preserving durable linearizability).
    fn upsert_leaf(&self, leaf_raw: u64, value: u64) -> u64 {
        // SAFETY: caller holds the owning node's write lock and is pinned.
        let leaf = unsafe { leaf_ref(leaf_raw) };
        let old = leaf.value.load(Ordering::Acquire);
        leaf.value.store(value, Ordering::Release);
        persist::persist_obj_fenced(&leaf.value);
        old
    }
}
