//! PDL-ART floor (predecessor) search.
//!
//! PACTree's search layer must find the data node whose anchor-key range
//! covers a search key, i.e. the *greatest anchor key ≤ search key* (§5.3).
//! This module implements that predecessor lookup directly on the trie:
//! descend matching the key; wherever the key diverges, either the whole
//! subtree is smaller (take its maximum leaf) or larger (backtrack to the
//! largest smaller sibling, or the node's end child).
//!
//! The result is used as a *jump node* hint: PACTree tolerates a slightly
//! stale answer (the data layer walk corrects it), but the returned leaf is
//! always one that was reachable during the call.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::Ordering;

use super::insert::leaf_ref;
use super::node::{header_of, is_leaf};
use super::{collect_children, find_child, Art, MAX_RESTARTS};

/// Internal outcome of a floor descent.
enum FloorOut {
    /// Found the floor leaf (raw pointer).
    Found(u64),
    /// No key ≤ the bound exists in this subtree.
    Empty,
    /// Version conflict: restart the whole query.
    Restart,
}

impl Art {
    /// Returns the value of the greatest key ≤ `key`, if any.
    pub fn floor(&self, key: &[u8]) -> Option<u64> {
        self.floor_entry(key).map(|(_, v)| v)
    }

    /// Returns `(key, value)` of the greatest key ≤ `key`, if any.
    pub fn floor_entry(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        let _guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            let root = self.root_cell().load(Ordering::Acquire);
            match self.floor_rec(root, key, 0) {
                FloorOut::Found(leaf_raw) => {
                    // SAFETY: leaf reached through validated reads and
                    // epoch-pinned; keys immutable, value atomic.
                    let leaf = unsafe { leaf_ref(leaf_raw) };
                    // SAFETY: initialized leaf.
                    let k = unsafe { leaf.key() }.to_vec();
                    let v = leaf.value.load(Ordering::Acquire);
                    return Some((k, v));
                }
                FloorOut::Empty => return None,
                FloorOut::Restart => backoff.pause(),
            }
        }
        unreachable!("floor livelocked");
    }

    /// Floor lookup against a *captured* root (a PACTree snapshot).
    ///
    /// Identical descent to [`floor`](Art::floor), but starting from `root`
    /// instead of the live root cell — so the answer reflects the tree as it
    /// was when `root` was captured. The caller must hold an epoch pin that
    /// predates the capture (a snapshot's `OwnedPin`): nodes of the captured
    /// tree are then retired-but-not-freed, and COW mutations never modify
    /// them, so the descent sees immutable, allocated nodes throughout.
    /// Version validation still runs (some captured nodes may also still be
    /// live and mutated in place before the first COW freeze).
    pub fn floor_from(&self, root: u64, key: &[u8]) -> Option<u64> {
        if root == 0 {
            return None;
        }
        let _guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            match self.floor_rec(root, key, 0) {
                FloorOut::Found(leaf_raw) => {
                    // SAFETY: the snapshot pin keeps the captured subtree
                    // allocated; leaf values are atomic.
                    return Some(unsafe { leaf_ref(leaf_raw) }.value.load(Ordering::Acquire));
                }
                FloorOut::Empty => return None,
                FloorOut::Restart => backoff.pause(),
            }
        }
        unreachable!("floor_from livelocked");
    }

    /// Returns the entry with the greatest key in the tree, if any.
    pub fn max_entry(&self) -> Option<(Vec<u8>, u64)> {
        let _guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            let root = self.root_cell().load(Ordering::Acquire);
            match self.max_leaf(root) {
                FloorOut::Found(leaf_raw) => {
                    // SAFETY: as in `floor_entry`.
                    let leaf = unsafe { leaf_ref(leaf_raw) };
                    // SAFETY: initialized leaf.
                    let k = unsafe { leaf.key() }.to_vec();
                    return Some((k, leaf.value.load(Ordering::Acquire)));
                }
                FloorOut::Empty => return None,
                FloorOut::Restart => backoff.pause(),
            }
        }
        unreachable!("max livelocked");
    }

    fn floor_rec(&self, raw: u64, key: &[u8], depth: usize) -> FloorOut {
        if raw == 0 {
            return FloorOut::Empty;
        }
        self.charge_read(raw, 128);
        // SAFETY: reachable node, epoch-pinned by the public entry points.
        if unsafe { is_leaf(raw) } {
            // SAFETY: leaf keys are immutable.
            let lkey = unsafe { leaf_ref(raw).key() };
            return if lkey <= key {
                FloorOut::Found(raw)
            } else {
                FloorOut::Empty
            };
        }
        // SAFETY: inner node.
        let hdr = unsafe { header_of(raw) };
        let Some(token) = hdr.lock.read_begin() else {
            return FloorOut::Restart;
        };
        let (_, _, plen) = hdr.meta3();
        let plen = plen as usize;
        let mut prefix = [0u8; super::node::PREFIX_CAP];
        prefix[..plen].copy_from_slice(&hdr.prefix[..plen]);
        if !hdr.lock.read_validate(token) {
            return FloorOut::Restart;
        }
        let prefix = &prefix[..plen];
        let rest = &key[depth..];
        let l = plen.min(rest.len());

        match prefix[..l].cmp(&rest[..l]) {
            CmpOrdering::Less => {
                // Every key below this node is smaller than the bound.
                self.max_leaf(raw)
            }
            CmpOrdering::Greater => FloorOut::Empty,
            CmpOrdering::Equal => {
                if rest.len() < plen {
                    // The bound is a proper prefix of every key below here,
                    // so every key below here is greater.
                    return FloorOut::Empty;
                }
                let depth2 = depth + plen;
                if depth2 == key.len() {
                    // The bound ends exactly at this node: only its end
                    // child (the key equal to the bound) can qualify.
                    let ec = hdr.end_child.load(Ordering::Acquire);
                    if !hdr.lock.read_validate(token) {
                        return FloorOut::Restart;
                    }
                    return if ec != 0 {
                        FloorOut::Found(ec)
                    } else {
                        FloorOut::Empty
                    };
                }
                let b = key[depth2];
                // SAFETY: live inner node.
                let found = unsafe { find_child(raw, b) };
                if !hdr.lock.read_validate(token) {
                    return FloorOut::Restart;
                }
                if let Some((child, _)) = found {
                    match self.floor_rec(child, key, depth2 + 1) {
                        FloorOut::Found(l) => return FloorOut::Found(l),
                        FloorOut::Restart => return FloorOut::Restart,
                        FloorOut::Empty => {
                            if !hdr.lock.read_validate(token) {
                                return FloorOut::Restart;
                            }
                        }
                    }
                }
                // Largest child strictly below `b`, in descending order.
                // SAFETY: live inner node.
                let mut siblings = unsafe { collect_children(raw) };
                if !hdr.lock.read_validate(token) {
                    return FloorOut::Restart;
                }
                siblings.retain(|&(cb, _)| cb < b);
                for &(_, c) in siblings.iter().rev() {
                    match self.max_leaf(c) {
                        FloorOut::Found(l) => return FloorOut::Found(l),
                        FloorOut::Restart => return FloorOut::Restart,
                        FloorOut::Empty => continue, // husk subtree
                    }
                }
                // Finally the end child (key ending at this node < bound).
                let ec = hdr.end_child.load(Ordering::Acquire);
                if !hdr.lock.read_validate(token) {
                    return FloorOut::Restart;
                }
                if ec != 0 {
                    FloorOut::Found(ec)
                } else {
                    FloorOut::Empty
                }
            }
        }
    }

    /// Maximum (rightmost) leaf in the subtree.
    fn max_leaf(&self, raw: u64) -> FloorOut {
        if raw == 0 {
            return FloorOut::Empty;
        }
        self.charge_read(raw, 128);
        // SAFETY: reachable node, epoch-pinned by callers.
        if unsafe { is_leaf(raw) } {
            return FloorOut::Found(raw);
        }
        // SAFETY: inner node.
        let hdr = unsafe { header_of(raw) };
        let Some(token) = hdr.lock.read_begin() else {
            return FloorOut::Restart;
        };
        // SAFETY: live inner node.
        let children = unsafe { collect_children(raw) };
        let ec = hdr.end_child.load(Ordering::Acquire);
        if !hdr.lock.read_validate(token) {
            return FloorOut::Restart;
        }
        for &(_, c) in children.iter().rev() {
            match self.max_leaf(c) {
                FloorOut::Found(l) => return FloorOut::Found(l),
                FloorOut::Restart => return FloorOut::Restart,
                FloorOut::Empty => continue,
            }
        }
        if ec != 0 {
            FloorOut::Found(ec)
        } else {
            FloorOut::Empty
        }
    }
}
