//! PDL-ART node layouts.
//!
//! The adaptive radix tree stores four inner-node arities (4, 16, 48, 256)
//! plus out-of-node leaves carrying the full key and an 8-byte value. All
//! nodes live in NVM and begin with a common [`NodeHeader`] whose `meta`
//! word (type, child count, prefix length) is an 8-byte atomic — updating it
//! is the linearization point for in-node structural changes (paper §5.1's
//! "stores modifying multiple cache lines" rule).
//!
//! Path compression is *pessimistic*: every inner node stores its complete
//! compressed prefix (up to [`PREFIX_CAP`] bytes; longer runs become chains
//! of single-child nodes). Prefix bytes are immutable after node creation —
//! operations that would change a prefix (split inside a prefix, splice
//! merges) copy the node instead, which keeps every reachable node
//! self-consistent at any crash point.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use pmem::pptr::PmPtr;

use crate::lock::VersionLock;

/// Maximum compressed-prefix bytes stored in one inner node.
pub const PREFIX_CAP: usize = 30;

/// Node kinds, stored in the `meta` word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NodeType {
    Leaf = 1,
    Node4 = 4,
    Node16 = 16,
    Node48 = 48,
    Node256 = 255,
}

impl NodeType {
    /// Decodes from the meta byte.
    ///
    /// # Panics
    ///
    /// Panics on an invalid tag (would indicate corruption).
    pub fn from_tag(tag: u8) -> NodeType {
        match tag {
            1 => NodeType::Leaf,
            4 => NodeType::Node4,
            16 => NodeType::Node16,
            48 => NodeType::Node48,
            255 => NodeType::Node256,
            other => panic!("corrupt ART node tag {other}"),
        }
    }

    /// Inner-node fan-out capacity (0 for leaves).
    pub fn capacity(self) -> usize {
        match self {
            NodeType::Leaf => 0,
            NodeType::Node4 => 4,
            NodeType::Node16 => 16,
            NodeType::Node48 => 48,
            NodeType::Node256 => 256,
        }
    }
}

/// Packs the atomic meta word: type, child count, prefix length.
#[inline]
pub fn pack_meta(ty: NodeType, count: u16, prefix_len: u8) -> u64 {
    ((ty as u64) << 32) | ((count as u64) << 8) | prefix_len as u64
}

/// Unpacks the meta word.
#[inline]
pub fn unpack_meta(meta: u64) -> (NodeType, u16, u8) {
    (
        NodeType::from_tag((meta >> 32) as u8),
        (meta >> 8) as u16,
        meta as u8,
    )
}

/// Common header of every inner node.
///
/// `end_child` points to the leaf whose key is fully consumed at this node
/// (the trie equivalent of a string terminator), so keys may be prefixes of
/// one another.
#[repr(C)]
pub struct NodeHeader {
    /// Atomic meta word: see [`pack_meta`]. Linearization point for in-node
    /// structural changes.
    pub meta: AtomicU64,
    /// Optimistic persistent version lock (§5.7).
    pub lock: VersionLock,
    /// Leaf for the key ending exactly at this node (null if none).
    pub end_child: AtomicU64,
    /// Compressed prefix bytes; immutable after creation.
    pub prefix: [u8; PREFIX_CAP],
    _pad: [u8; 2],
}

impl NodeHeader {
    /// Reads type, count and prefix length in one atomic load.
    #[inline]
    pub fn meta3(&self) -> (NodeType, u16, u8) {
        unpack_meta(self.meta.load(Ordering::Acquire))
    }

    /// The node's compressed prefix.
    #[inline]
    pub fn prefix_bytes(&self) -> &[u8] {
        let (_, _, plen) = self.meta3();
        &self.prefix[..plen as usize]
    }
}

/// A leaf: full key bytes plus an 8-byte value, allocated out of node
/// (exactly the PDL-ART trait the paper's GA3/GA5 analysis calls out).
#[repr(C)]
pub struct ArtLeaf {
    /// Meta word with `NodeType::Leaf`; count/prefix fields unused.
    pub meta: AtomicU64,
    /// The value; an atomic 8-byte store to it is the in-place update
    /// linearization point.
    pub value: AtomicU64,
    /// Key length in bytes.
    pub key_len: u32,
    _pad: u32,
    // key bytes follow inline (dynamically sized).
}

impl ArtLeaf {
    /// Bytes to allocate for a leaf holding `key_len` key bytes.
    pub fn alloc_size(key_len: usize) -> usize {
        std::mem::size_of::<ArtLeaf>() + key_len
    }

    /// The leaf's key bytes.
    ///
    /// # Safety
    ///
    /// `self` must be a fully initialized leaf inside a pool allocation of
    /// at least [`alloc_size`](Self::alloc_size)`(self.key_len)` bytes.
    #[inline]
    pub unsafe fn key(&self) -> &[u8] {
        let base = (self as *const ArtLeaf).add(1) as *const u8;
        // SAFETY: key bytes were written inline right after the struct.
        unsafe { std::slice::from_raw_parts(base, self.key_len as usize) }
    }

    /// Writes key bytes inline (used during initialization only).
    ///
    /// # Safety
    ///
    /// Same allocation requirement as [`key`](Self::key); the leaf must not
    /// be shared yet.
    pub unsafe fn write_key(&mut self, key: &[u8]) {
        self.key_len = key.len() as u32;
        let base = (self as *mut ArtLeaf).add(1) as *mut u8;
        // SAFETY: allocation is large enough by the caller's contract.
        unsafe { std::ptr::copy_nonoverlapping(key.as_ptr(), base, key.len()) };
    }
}

/// Inner node with up to 4 children: parallel unsorted key/child arrays.
#[repr(C)]
pub struct Node4 {
    pub header: NodeHeader,
    pub keys: [AtomicU8; 4],
    _pad: [u8; 4],
    pub children: [AtomicU64; 4],
}

/// Inner node with up to 16 children: parallel unsorted key/child arrays.
#[repr(C)]
pub struct Node16 {
    pub header: NodeHeader,
    pub keys: [AtomicU8; 16],
    pub children: [AtomicU64; 16],
}

/// Index byte marking "no child" in [`Node48::child_index`].
pub const N48_EMPTY: u8 = 0xFF;

/// Inner node with up to 48 children: a 256-entry index into a child array.
#[repr(C)]
pub struct Node48 {
    pub header: NodeHeader,
    pub child_index: [AtomicU8; 256],
    pub children: [AtomicU64; 48],
}

/// Inner node with direct 256-way dispatch.
#[repr(C)]
pub struct Node256 {
    pub header: NodeHeader,
    pub children: [AtomicU64; 256],
}

/// A typed view over an untyped node pointer.
pub enum NodeRef<'a> {
    Leaf(&'a ArtLeaf),
    N4(&'a Node4),
    N16(&'a Node16),
    N48(&'a Node48),
    N256(&'a Node256),
}

/// Classifies a raw node pointer by reading its meta tag.
///
/// # Safety
///
/// `raw` must be a non-null `PmPtr` to an initialized ART node.
#[inline]
pub unsafe fn classify<'a>(raw: u64) -> NodeRef<'a> {
    debug_assert_ne!(raw, 0);
    let p = PmPtr::<AtomicU64>::from_raw(raw);
    // SAFETY: every node starts with its atomic meta word.
    let meta = unsafe { p.deref() }.load(Ordering::Acquire);
    let (ty, _, _) = unpack_meta(meta);
    let base = p.as_ptr() as *const u8;
    // SAFETY: the tag identifies the layout; nodes are initialized before
    // they become reachable.
    unsafe {
        match ty {
            NodeType::Leaf => NodeRef::Leaf(&*(base as *const ArtLeaf)),
            NodeType::Node4 => NodeRef::N4(&*(base as *const Node4)),
            NodeType::Node16 => NodeRef::N16(&*(base as *const Node16)),
            NodeType::Node48 => NodeRef::N48(&*(base as *const Node48)),
            NodeType::Node256 => NodeRef::N256(&*(base as *const Node256)),
        }
    }
}

/// Returns the header of an inner node pointer.
///
/// # Safety
///
/// `raw` must point to an initialized *inner* node (not a leaf).
#[inline]
pub unsafe fn header_of<'a>(raw: u64) -> &'a NodeHeader {
    // SAFETY: all inner nodes start with a NodeHeader.
    unsafe { &*(PmPtr::<NodeHeader>::from_raw(raw).as_ptr()) }
}

/// Whether a raw node pointer refers to a leaf.
///
/// # Safety
///
/// `raw` must point to an initialized ART node.
#[inline]
pub unsafe fn is_leaf(raw: u64) -> bool {
    let p = PmPtr::<AtomicU64>::from_raw(raw);
    // SAFETY: meta word is the first field of every node kind.
    let meta = unsafe { p.deref() }.load(Ordering::Acquire);
    unpack_meta(meta).0 == NodeType::Leaf
}

/// Allocation size of each inner node type.
pub fn inner_alloc_size(ty: NodeType) -> usize {
    match ty {
        NodeType::Leaf => unreachable!("leaves are sized by key length"),
        NodeType::Node4 => std::mem::size_of::<Node4>(),
        NodeType::Node16 => std::mem::size_of::<Node16>(),
        NodeType::Node48 => std::mem::size_of::<Node48>(),
        NodeType::Node256 => std::mem::size_of::<Node256>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip() {
        for ty in [
            NodeType::Leaf,
            NodeType::Node4,
            NodeType::Node16,
            NodeType::Node48,
            NodeType::Node256,
        ] {
            let m = pack_meta(ty, 37, 21);
            assert_eq!(unpack_meta(m), (ty, 37, 21));
        }
    }

    #[test]
    fn layout_sizes_are_reasonable() {
        // Header: 8 (meta) + 8 (lock) + 8 (end_child) + 30 (prefix) + pad.
        assert_eq!(std::mem::size_of::<NodeHeader>() % 8, 0);
        assert!(std::mem::size_of::<Node4>() <= 128);
        assert!(std::mem::size_of::<Node16>() <= 256);
        assert!(std::mem::size_of::<Node48>() <= 1024);
        assert!(std::mem::size_of::<Node256>() <= 2304);
        assert_eq!(std::mem::align_of::<Node48>(), 8);
    }

    #[test]
    #[should_panic(expected = "corrupt")]
    fn bad_tag_panics() {
        let _ = NodeType::from_tag(99);
    }
}
