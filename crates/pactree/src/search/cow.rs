//! Copy-on-write (path-copying) mutations for the search layer.
//!
//! While any PACTree snapshot is live (`Art::cow_active > 0`), search-layer
//! mutations stop editing reachable nodes in place. Instead the root →
//! mutation-point path is rebuilt *functionally*: every node on the path is
//! replaced by a fresh copy (built and persisted off to the side through
//! the usual allocation log), children off the path are shared with the old
//! tree, and the new root is swapped in with one pointer store. The
//! replaced originals are retired through the epoch collector, whose
//! snapshot pins keep them allocated — so a root captured at snapshot time
//! keeps denoting the exact tree of that moment, readable lock-free via
//! [`Art::floor_from`](super::Art).
//!
//! This is the PaC-trees / versioned-ART idiom (PAPERS.md): persistence by
//! path copying with structural sharing, paying O(depth) copies per
//! mutation only while a version is actually held.
//!
//! # Exclusivity
//!
//! [`Art::run_mutation`](super::Art) guarantees a COW mutation runs with
//! **no concurrent mutation of any kind** (other COW ops queue on the COW
//! mutex; in-place ops are drained and cannot re-enter while the flag is
//! raised). Reads here therefore need no lock tokens; concurrent *readers*
//! are unaffected because originals are never modified and the root swap
//! is a single release store. Structural maintenance (shrinking, husk
//! removal) is skipped under COW — readers tolerate husks, and later
//! in-place operations redo it.

use std::sync::atomic::Ordering;

use pmem::Result;

use super::insert::{grown, leaf_ref};
use super::node::{header_of, is_leaf, NodeType, PREFIX_CAP};
use super::{collect_children, lcp_len, Art, OpLog, MAX_RESTARTS};

impl Art {
    /// COW insert/upsert; the counterpart of the in-place `try_insert`.
    pub(super) fn cow_insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            let mut oplog = self.oplog();
            let root = self.current_root();
            let mut replaced = Vec::new();
            let (new_root, old) =
                self.cow_insert_rec(&mut oplog, root, key, value, 0, &mut replaced)?;
            if self.swap_root(root, new_root, &replaced, &guard) {
                oplog.commit();
                return Ok(old);
            }
            // Root moved under us (possible only for an in-place mutation
            // that overlapped the flag flip): drop the copies and retry.
            drop(oplog);
            backoff.pause();
        }
        unreachable!("cow insert livelocked");
    }

    /// COW remove; the counterpart of the in-place `try_remove`.
    pub(super) fn cow_remove(&self, key: &[u8]) -> Result<Option<u64>> {
        let guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            let mut oplog = self.oplog();
            let root = self.current_root();
            let mut replaced = Vec::new();
            let Some((new_root, old)) =
                self.cow_remove_rec(&mut oplog, root, key, 0, &mut replaced)?
            else {
                return Ok(None); // absent: nothing allocated, tree unchanged
            };
            if self.swap_root(root, new_root, &replaced, &guard) {
                oplog.commit();
                return Ok(Some(old));
            }
            drop(oplog);
            backoff.pause();
        }
        unreachable!("cow remove livelocked");
    }

    /// Publishes a rebuilt tree: links `new_root` if the root is still
    /// `expected`, then retires every replaced original. The persistence
    /// order is the usual one — the new subtree is fully persisted (each
    /// copy persists at construction), then the single root-pointer store
    /// linearizes the mutation.
    fn swap_root(
        &self,
        expected: u64,
        new_root: u64,
        replaced: &[u64],
        guard: &pmem::epoch::Guard<'_>,
    ) -> bool {
        loop {
            let Some(_rg) = self.root_lock.try_write_lock() else {
                std::thread::yield_now();
                continue;
            };
            if self.root_cell().load(Ordering::Acquire) != expected {
                return false;
            }
            self.link(self.root_cell(), new_root);
            break;
        }
        for &raw in replaced {
            self.retire(raw, guard);
        }
        self.cow_copied
            .fetch_add(replaced.len() as u64, Ordering::Relaxed);
        true
    }

    /// Rebuilds the path for an insert below `raw` (an inner node), sharing
    /// everything off the path. Returns the replacement node and the prior
    /// value, recording replaced originals in `replaced`.
    fn cow_insert_rec(
        &self,
        oplog: &mut OpLog<'_>,
        raw: u64,
        key: &[u8],
        value: u64,
        depth: usize,
        replaced: &mut Vec<u64>,
    ) -> Result<(u64, Option<u64>)> {
        self.charge_read(raw, 128);
        // SAFETY: COW mutations are exclusive (see module docs); `raw` is
        // reachable and epoch-pinned.
        let hdr = unsafe { header_of(raw) };
        let (ty, _, plen) = hdr.meta3();
        let plen = plen as usize;
        let mut prefix_buf = [0u8; PREFIX_CAP];
        prefix_buf[..plen].copy_from_slice(&hdr.prefix[..plen]);
        let prefix = &prefix_buf[..plen];
        let rest = &key[depth..];
        let m = lcp_len(prefix, rest);

        if m < plen {
            // Diverge inside the compressed prefix: split it, exactly like
            // the in-place path (which already copies here).
            let node2 = self.copy_node(oplog, raw, ty, &prefix[m + 1..])?;
            let leaf = self.new_leaf(oplog, key, value)?;
            let new_parent = if depth + m == key.len() {
                self.new_node4(oplog, &prefix[..m], &[(prefix[m], node2)], leaf)?
            } else {
                self.new_node4(
                    oplog,
                    &prefix[..m],
                    &[(prefix[m], node2), (key[depth + m], leaf)],
                    0,
                )?
            };
            replaced.push(raw);
            return Ok((new_parent, None));
        }

        let depth2 = depth + plen;
        // SAFETY: exclusive COW access — a stable snapshot without locks.
        let children = unsafe { collect_children(raw) };
        let end = hdr.end_child.load(Ordering::Acquire);

        if depth2 == key.len() {
            // Key ends at this node: the end-child slot. The old end leaf
            // (if any) may be shared with a captured tree, so the value
            // update is a fresh leaf, not an in-place store.
            let (new_end, old) = if end != 0 {
                // SAFETY: end children are leaves; keys immutable, value atomic.
                let old = unsafe { leaf_ref(end) }.value.load(Ordering::Acquire);
                replaced.push(end);
                (self.new_leaf(oplog, key, value)?, Some(old))
            } else {
                (self.new_leaf(oplog, key, value)?, None)
            };
            let copy = self.alloc_inner_with(oplog, ty, prefix, &children, new_end)?;
            replaced.push(raw);
            return Ok((copy, old));
        }

        let b = key[depth2];
        let child = children.iter().find(|&&(cb, _)| cb == b).map(|&(_, c)| c);
        match child {
            // SAFETY: children of a reachable inner node are initialized.
            Some(child) if unsafe { is_leaf(child) } => {
                // SAFETY: leaf keys are immutable.
                let lkey = unsafe { leaf_ref(child).key() }.to_vec();
                if lkey == key {
                    // SAFETY: as above.
                    let old = unsafe { leaf_ref(child) }.value.load(Ordering::Acquire);
                    let leaf = self.new_leaf(oplog, key, value)?;
                    let copy = self.copy_replacing(oplog, ty, prefix, &children, end, b, leaf)?;
                    replaced.push(raw);
                    replaced.push(child);
                    return Ok((copy, Some(old)));
                }
                // The existing leaf is *shared* into the join subtree.
                let sub = self.build_join(oplog, &lkey, child, key, value, depth2 + 1)?;
                let copy = self.copy_replacing(oplog, ty, prefix, &children, end, b, sub)?;
                replaced.push(raw);
                Ok((copy, None))
            }
            Some(child) => {
                let (new_child, old) =
                    self.cow_insert_rec(oplog, child, key, value, depth2 + 1, replaced)?;
                let copy = self.copy_replacing(oplog, ty, prefix, &children, end, b, new_child)?;
                replaced.push(raw);
                Ok((copy, old))
            }
            None => {
                let leaf = self.new_leaf(oplog, key, value)?;
                let ty2 = if children.len() < ty.capacity() {
                    ty
                } else {
                    grown(ty)
                };
                let mut entries = children;
                entries.push((b, leaf));
                let copy = self.alloc_inner_with(oplog, ty2, prefix, &entries, end)?;
                replaced.push(raw);
                Ok((copy, None))
            }
        }
    }

    /// Rebuilds the path for a remove below `raw`. `None` means the key is
    /// absent and nothing was allocated; husks (childless copies) are
    /// tolerated — readers skip them and later in-place maintenance
    /// collapses them.
    fn cow_remove_rec(
        &self,
        oplog: &mut OpLog<'_>,
        raw: u64,
        key: &[u8],
        depth: usize,
        replaced: &mut Vec<u64>,
    ) -> Result<Option<(u64, u64)>> {
        self.charge_read(raw, 128);
        // SAFETY: exclusive COW access over a reachable, pinned node.
        let hdr = unsafe { header_of(raw) };
        let (ty, _, plen) = hdr.meta3();
        let plen = plen as usize;
        let mut prefix_buf = [0u8; PREFIX_CAP];
        prefix_buf[..plen].copy_from_slice(&hdr.prefix[..plen]);
        let prefix = &prefix_buf[..plen];
        let rest = &key[depth..];
        if lcp_len(prefix, rest) < plen {
            return Ok(None);
        }
        let depth2 = depth + plen;
        // SAFETY: exclusive COW access.
        let children = unsafe { collect_children(raw) };
        let end = hdr.end_child.load(Ordering::Acquire);

        if depth2 == key.len() {
            if end == 0 {
                return Ok(None);
            }
            // SAFETY: end children are leaves.
            let old = unsafe { leaf_ref(end) }.value.load(Ordering::Acquire);
            let copy = self.alloc_inner_with(oplog, ty, prefix, &children, 0)?;
            replaced.push(raw);
            replaced.push(end);
            return Ok(Some((copy, old)));
        }

        let b = key[depth2];
        let Some(&(_, child)) = children.iter().find(|&&(cb, _)| cb == b) else {
            return Ok(None);
        };
        // SAFETY: children of a reachable inner node are initialized.
        if unsafe { is_leaf(child) } {
            // SAFETY: leaf keys are immutable.
            if unsafe { leaf_ref(child).key() } != key {
                return Ok(None);
            }
            // SAFETY: as above.
            let old = unsafe { leaf_ref(child) }.value.load(Ordering::Acquire);
            let entries: Vec<(u8, u64)> = children.into_iter().filter(|&(cb, _)| cb != b).collect();
            let copy = self.alloc_inner_with(oplog, ty, prefix, &entries, end)?;
            replaced.push(raw);
            replaced.push(child);
            return Ok(Some((copy, old)));
        }
        match self.cow_remove_rec(oplog, child, key, depth2 + 1, replaced)? {
            None => Ok(None),
            Some((new_child, old)) => {
                let copy = self.copy_replacing(oplog, ty, prefix, &children, end, b, new_child)?;
                replaced.push(raw);
                Ok(Some((copy, old)))
            }
        }
    }

    /// Copies an inner node with the child at byte `b` replaced (or added).
    #[allow(clippy::too_many_arguments)]
    fn copy_replacing(
        &self,
        oplog: &mut OpLog<'_>,
        ty: NodeType,
        prefix: &[u8],
        children: &[(u8, u64)],
        end: u64,
        b: u8,
        child: u64,
    ) -> Result<u64> {
        let mut entries = children.to_vec();
        match entries.iter_mut().find(|e| e.0 == b) {
            Some(e) => e.1 = child,
            None => entries.push((b, child)),
        }
        self.alloc_inner_with(oplog, ty, prefix, &entries, end)
    }
}
