//! PDL-ART: Persistent Durable-Linearizable Adaptive Radix Tree (paper §5.1).
//!
//! This is PACTree's search layer and, wrapped by the `pdl-art` crate, the
//! standalone PDL-ART baseline index. It maps byte-string keys to non-zero
//! 8-byte values (PACTree stores data-node pointers).
//!
//! Design properties, following the paper:
//!
//! * **Optimistic persistent version locks** instead of ROWEX: readers never
//!   write NVM (GA2) and writers release a node's lock only after persisting
//!   their update, so a validated read never observes unpersisted data —
//!   durable linearizability.
//! * **Log-free crash consistency**: inside a node, payload stores are
//!   persisted before the single-atomic-word metadata store that makes them
//!   visible; across nodes, new subtrees are fully persisted before the
//!   single pointer store that links them.
//! * **Allocation logs**: every node allocated during an operation is first
//!   recorded in a persistent per-thread log and the log is cleared after
//!   the linearizing link; recovery frees logged nodes that are not
//!   reachable from the root (leak freedom, §5.1(3)).
//! * **Generation ids** (see [`crate::lock`]) make all lock words
//!   self-resetting across restarts.
//! * **Immutable prefixes**: operations that would rewrite a node's
//!   compressed prefix copy the node instead (see [`node`]), so every
//!   reachable node is self-consistent at any crash point.

pub mod node;

mod cow;
mod floor;
mod insert;
mod lookup;
mod remove;
mod scan;

#[cfg(test)]
mod tests;

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use pmem::epoch::Collector;
use pmem::model;
use pmem::persist;
use pmem::pool::PmemPool;
use pmem::pptr::PmPtr;
use pmem::{PmemError, Result};

use crate::lock::{ReadToken, VersionLock};
use node::{
    classify, header_of, inner_alloc_size, pack_meta, ArtLeaf, Node4, Node48, NodeHeader, NodeRef,
    NodeType, N48_EMPTY, PREFIX_CAP,
};

/// Per-thread allocation-log capacity (covers the deepest prefix chain a
/// maximum-length key can create, plus slack).
const OPLOG_ENTRIES: usize = 48;
/// Number of per-thread allocation-log slots.
const OPLOG_THREADS: usize = 256;
const OPLOG_ENTRY_BYTES: usize = 16; // ptr + size

/// Operations restart this many times before declaring livelock (debug aid).
const MAX_RESTARTS: usize = 100_000_000;

/// Escalating backoff for optimistic-retry loops: spin briefly, then yield,
/// then sleep — so contenders don't burn the host CPU while a lock holder
/// sleeps through time-dilated NVM stalls.
pub(crate) struct Backoff(u32);

impl Backoff {
    pub(crate) fn new() -> Backoff {
        Backoff(0)
    }

    pub(crate) fn pause(&mut self) {
        self.0 = self.0.saturating_add(1);
        match self.0 {
            0..=8 => std::hint::spin_loop(),
            9..=64 => std::thread::yield_now(),
            _ => std::thread::sleep(std::time::Duration::from_micros(50)),
        }
    }
}

static NEXT_ART_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static ART_THREAD_SLOT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn art_thread_slot() -> usize {
    ART_THREAD_SLOT.with(|s| {
        if s.get() == usize::MAX {
            s.set(NEXT_ART_THREAD.fetch_add(1, Ordering::Relaxed) % OPLOG_THREADS);
        }
        s.get()
    })
}

/// The persistent adaptive radix tree.
pub struct Art {
    pool: Arc<PmemPool>,
    /// Allocator root-directory slot holding the root node pointer.
    root_slot: usize,
    /// Allocator root-directory slot holding the allocation-log area pointer.
    log_slot: usize,
    /// Volatile lock guarding replacement of the root node pointer.
    root_lock: VersionLock,
    collector: Arc<Collector>,
    /// Live tree-snapshot count (PACTree MVCC, DESIGN.md §13): while > 0,
    /// mutations switch to copy-on-write path copying (see [`cow`]).
    cow_active: AtomicU64,
    /// In-flight in-place mutations; COW mutations drain this to zero
    /// before touching the tree, so the two modes never overlap.
    inplace_ops: AtomicU64,
    /// Serializes COW mutations against each other and against the flag
    /// dropping to zero mid-mutation (see [`Art::cow_exit`]).
    cow_mutex: parking_lot::Mutex<()>,
    /// Total nodes replaced by COW copies (obsv gauge).
    cow_copied: AtomicU64,
}

/// Decrements an op counter on scope exit (panic-safe sign-out).
struct OpCount<'a>(&'a AtomicU64);

impl Drop for OpCount<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Result alias used by internal restartable steps.
enum Step<T> {
    Done(T),
    Restart,
}

/// Context of the pointer slot we descended through: the owning node's lock,
/// the read token taken on it, and the raw slot address.
#[derive(Clone, Copy)]
struct ParentCtx<'a> {
    lock: &'a VersionLock,
    token: ReadToken,
    slot: &'a AtomicU64,
}

impl Art {
    /// Creates a new empty tree in `pool`, anchoring its persistent state at
    /// root-directory slots `root_slot` (root pointer) and `root_slot + 1`
    /// (allocation-log area). If the slots are already populated (remount),
    /// attaches to the existing tree instead.
    pub fn create(pool: Arc<PmemPool>, root_slot: usize, collector: Arc<Collector>) -> Result<Art> {
        let art = Art {
            pool,
            root_slot,
            log_slot: root_slot + 1,
            root_lock: VersionLock::new(),
            collector,
            cow_active: AtomicU64::new(0),
            inplace_ops: AtomicU64::new(0),
            cow_mutex: parking_lot::Mutex::new(()),
            cow_copied: AtomicU64::new(0),
        };
        if art.root_cell().load(Ordering::Acquire) == 0 {
            // Allocation-log area first.
            let log_size = OPLOG_THREADS * OPLOG_ENTRIES * OPLOG_ENTRY_BYTES;
            let alloc = art.pool.allocator();
            alloc.malloc_to(log_size, art.log_cell(), |raw| {
                // SAFETY: fresh `log_size`-byte allocation.
                unsafe { raw.write_bytes(0, log_size) };
            })?;
            // Empty Node4 root.
            alloc.malloc_to(inner_alloc_size(NodeType::Node4), art.root_cell(), |raw| {
                // SAFETY: fresh Node4-sized allocation, 8-byte aligned.
                unsafe { init_inner(raw, NodeType::Node4, &[], 0) };
            })?;
        }
        Ok(art)
    }

    /// The persistent cell holding the root node pointer.
    fn root_cell(&self) -> &AtomicU64 {
        self.pool.allocator().root(self.root_slot)
    }

    /// The persistent cell holding the allocation-log area pointer.
    fn log_cell(&self) -> &AtomicU64 {
        self.pool.allocator().root(self.log_slot)
    }

    /// The epoch collector reclaiming replaced nodes.
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    // -- Copy-on-write mode (PACTree snapshots, DESIGN.md §13) -------------

    /// Raises the COW flag: mutations serialized after this call copy
    /// their root→mutation path instead of editing nodes in place, so a
    /// root captured *after* the call denotes an immutable tree (modulo
    /// in-place mutations already in flight, which are legal concurrent
    /// operations for a snapshot being taken).
    pub fn cow_enter(&self) {
        self.cow_active.fetch_add(1, Ordering::SeqCst);
    }

    /// Lowers the COW flag. Takes the COW mutex so the flag cannot reach
    /// zero while a COW mutation is mid-flight — an in-place mutation
    /// could otherwise start and race its tail.
    pub fn cow_exit(&self) {
        let _serial = self.cow_mutex.lock();
        let prev = self.cow_active.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "cow_exit without cow_enter");
    }

    /// Waits until no in-place mutation is in flight. Callable only with
    /// the COW flag raised (otherwise new in-place ops keep signing in and
    /// the wait need not terminate). After this returns, a captured root
    /// denotes a fully immutable tree — used by standalone PDL-ART
    /// snapshots, which have no data-layer backstop to absorb stragglers.
    pub fn quiesce_inplace(&self) {
        debug_assert!(
            self.cow_active.load(Ordering::SeqCst) > 0,
            "quiesce_inplace without cow_enter"
        );
        let _serial = self.cow_mutex.lock();
        while self.inplace_ops.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
    }

    /// Total nodes replaced by COW copies so far.
    pub fn cow_copied(&self) -> u64 {
        self.cow_copied.load(Ordering::Relaxed)
    }

    /// The current root node pointer (captured by snapshot registration).
    pub fn current_root(&self) -> u64 {
        self.root_cell().load(Ordering::Acquire)
    }

    /// Runs a mutation in the mode the COW flag dictates, with mutual
    /// exclusion between the modes:
    ///
    /// * **in-place** (flag 0): sign in to `inplace_ops`, re-check the flag
    ///   (a registering snapshot may have raced the sign-in), run;
    /// * **COW** (flag > 0): take the COW mutex, re-check the flag (the
    ///   last snapshot may have been released while queueing), drain
    ///   in-place stragglers — none can newly sign in while the flag is
    ///   raised, so the drain terminates — then run exclusively.
    ///
    /// The result: at any instant the tree is mutated either by in-place
    /// operations (all of which signed in under flag 0) or by one COW
    /// operation, never both.
    fn run_mutation<T>(
        &self,
        inplace: impl Fn() -> Result<T>,
        cow: impl Fn() -> Result<T>,
    ) -> Result<T> {
        loop {
            if self.cow_active.load(Ordering::SeqCst) == 0 {
                self.inplace_ops.fetch_add(1, Ordering::SeqCst);
                let signed_in = OpCount(&self.inplace_ops);
                if self.cow_active.load(Ordering::SeqCst) != 0 {
                    // A snapshot registered while we signed in: a COW
                    // mutation may already be draining — yield to it.
                    drop(signed_in);
                    continue;
                }
                return inplace();
            }
            let serial = self.cow_mutex.lock();
            if self.cow_active.load(Ordering::SeqCst) == 0 {
                drop(serial);
                continue;
            }
            while self.inplace_ops.load(Ordering::SeqCst) > 0 {
                std::thread::yield_now();
            }
            return cow();
        }
    }

    /// The pool this tree lives in.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Charges a node visit to the NVM performance model.
    #[inline]
    fn charge_read(&self, raw: u64, approx: usize) {
        let p = PmPtr::<u8>::from_raw(raw);
        model::on_read(p.pool_id(), p.offset(), approx);
    }

    // -- Allocation log ----------------------------------------------------

    /// Starts a logged allocation scope for the calling thread.
    fn oplog(&self) -> OpLog<'_> {
        OpLog {
            art: self,
            thread: art_thread_slot(),
            used: 0,
            committed: false,
        }
    }

    /// Raw pointer to a thread's log entry `(ptr, size)` pair.
    fn log_entry(&self, thread: usize, idx: usize) -> &AtomicU64 {
        let area = PmPtr::<AtomicU64>::from_raw(self.log_cell().load(Ordering::Acquire));
        debug_assert!(!area.is_null());
        let off = ((thread * OPLOG_ENTRIES + idx) * OPLOG_ENTRY_BYTES) as u64;
        // SAFETY: in bounds of the log area allocation; 8-byte aligned.
        unsafe { &*(area.byte_add(off).as_ptr()) }
    }

    fn log_entry_size(&self, thread: usize, idx: usize) -> &AtomicU64 {
        let area = PmPtr::<AtomicU64>::from_raw(self.log_cell().load(Ordering::Acquire));
        let off = ((thread * OPLOG_ENTRIES + idx) * OPLOG_ENTRY_BYTES + 8) as u64;
        // SAFETY: in bounds of the log area allocation; 8-byte aligned.
        unsafe { &*(area.byte_add(off).as_ptr()) }
    }

    // -- Node constructors (all go through an OpLog) -----------------------

    /// Allocates and initializes a leaf; returns its raw pointer.
    fn new_leaf(&self, oplog: &mut OpLog<'_>, key: &[u8], value: u64) -> Result<u64> {
        let size = ArtLeaf::alloc_size(key.len());
        let ptr = oplog.alloc(size)?;
        // SAFETY: fresh allocation of `size` bytes, 8-byte aligned.
        unsafe {
            let leaf = &mut *(ptr.as_mut_ptr() as *mut ArtLeaf);
            leaf.meta = AtomicU64::new(pack_meta(NodeType::Leaf, 0, 0));
            leaf.value = AtomicU64::new(value);
            leaf.write_key(key);
        }
        persist::persist(ptr.as_ptr(), size);
        Ok(ptr.raw())
    }

    /// Allocates a Node4 with the given prefix, children, and end child.
    fn new_node4(
        &self,
        oplog: &mut OpLog<'_>,
        prefix: &[u8],
        entries: &[(u8, u64)],
        end_child: u64,
    ) -> Result<u64> {
        debug_assert!(prefix.len() <= PREFIX_CAP);
        debug_assert!(entries.len() <= 4);
        let size = inner_alloc_size(NodeType::Node4);
        let ptr = oplog.alloc(size)?;
        // SAFETY: fresh Node4-sized allocation, 8-byte aligned.
        unsafe {
            init_inner(ptr.as_mut_ptr(), NodeType::Node4, prefix, end_child);
            let n = &*(ptr.as_ptr() as *const Node4);
            for (i, &(b, child)) in entries.iter().enumerate() {
                n.keys[i].store(b, Ordering::Relaxed);
                n.children[i].store(child, Ordering::Relaxed);
            }
            n.header.meta.store(
                pack_meta(NodeType::Node4, entries.len() as u16, prefix.len() as u8),
                Ordering::Relaxed,
            );
        }
        persist::persist(ptr.as_ptr(), size);
        Ok(ptr.raw())
    }

    /// Builds the chain of single-child Node4s that consumes `span` before
    /// reaching `bottom` (used when a compressed run exceeds [`PREFIX_CAP`]).
    fn wrap_with_span(&self, oplog: &mut OpLog<'_>, span: &[u8], bottom: u64) -> Result<u64> {
        let mut raw = bottom;
        let mut s = span;
        while !s.is_empty() {
            let take = s.len().min(PREFIX_CAP + 1);
            let chunk = &s[s.len() - take..];
            raw = self.new_node4(oplog, &chunk[..take - 1], &[(chunk[take - 1], raw)], 0)?;
            s = &s[..s.len() - take];
        }
        Ok(raw)
    }

    /// Builds the subtree joining an existing leaf and a new key that share
    /// the span `common` below `depth` (both key slices are *full* keys).
    ///
    /// Returns the subtree root to be linked where the existing leaf was.
    fn build_join(
        &self,
        oplog: &mut OpLog<'_>,
        existing_key: &[u8],
        existing_raw: u64,
        new_key: &[u8],
        new_value: u64,
        depth: usize,
    ) -> Result<u64> {
        let a = &existing_key[depth..];
        let b = &new_key[depth..];
        let lcp = lcp_len(a, b);
        debug_assert!(a.len() != b.len() || a != b, "equal keys handled earlier");
        let new_leaf = self.new_leaf(oplog, new_key, new_value)?;

        // Bottom node carries the tail of the common span as its prefix.
        let tail_len = lcp.min(PREFIX_CAP);
        let tail = &a[lcp - tail_len..lcp];
        let mut entries: [(u8, u64); 2] = [(0, 0); 2];
        let mut n = 0;
        let mut end_child = 0u64;
        if a.len() == lcp {
            end_child = existing_raw;
        } else {
            entries[n] = (a[lcp], existing_raw);
            n += 1;
        }
        if b.len() == lcp {
            debug_assert_eq!(end_child, 0);
            end_child = new_leaf;
        } else {
            entries[n] = (b[lcp], new_leaf);
            n += 1;
        }
        let bottom = self.new_node4(oplog, tail, &entries[..n], end_child)?;
        self.wrap_with_span(oplog, &a[..lcp - tail_len], bottom)
    }

    /// Copies an inner node into a (possibly different-arity) fresh node,
    /// optionally with a different prefix. The copy is persisted.
    fn copy_node(
        &self,
        oplog: &mut OpLog<'_>,
        old_raw: u64,
        new_type: NodeType,
        new_prefix: &[u8],
    ) -> Result<u64> {
        // Collect live children from the old node (lock must be held by caller).
        let mut entries: Vec<(u8, u64)> = Vec::with_capacity(new_type.capacity());
        // SAFETY: caller guarantees `old_raw` is a live, locked inner node.
        let (children, end_child) = unsafe {
            let hdr = header_of(old_raw);
            (
                collect_children(old_raw),
                hdr.end_child.load(Ordering::Acquire),
            )
        };
        entries.extend(children);
        assert!(
            entries.len() <= new_type.capacity(),
            "copy target too small: {} > {:?}",
            entries.len(),
            new_type
        );
        if new_prefix.len() > PREFIX_CAP {
            // Long prefix: bottom node + chain.
            let tail_len = PREFIX_CAP;
            let tail = &new_prefix[new_prefix.len() - tail_len..];
            let bottom = self.alloc_inner_with(oplog, new_type, tail, &entries, end_child)?;
            return self.wrap_with_span(oplog, &new_prefix[..new_prefix.len() - tail_len], bottom);
        }
        self.alloc_inner_with(oplog, new_type, new_prefix, &entries, end_child)
    }

    /// Allocates an inner node of `ty` populated with `entries`.
    fn alloc_inner_with(
        &self,
        oplog: &mut OpLog<'_>,
        ty: NodeType,
        prefix: &[u8],
        entries: &[(u8, u64)],
        end_child: u64,
    ) -> Result<u64> {
        debug_assert!(prefix.len() <= PREFIX_CAP);
        let size = inner_alloc_size(ty);
        let ptr = oplog.alloc(size)?;
        // SAFETY: fresh `size`-byte allocation for node type `ty`.
        unsafe {
            init_inner(ptr.as_mut_ptr(), ty, prefix, end_child);
            let raw_node = ptr.raw();
            for &(b, child) in entries {
                insert_child_unsynced(raw_node, b, child);
            }
            header_of(raw_node).meta.store(
                pack_meta(ty, entries.len() as u16, prefix.len() as u8),
                Ordering::Relaxed,
            );
        }
        persist::persist(ptr.as_ptr(), size);
        Ok(ptr.raw())
    }

    /// Links `child` into `slot` with the paper's persistence order: the
    /// child subtree is already persisted; the single pointer store is the
    /// linearization point and is persisted immediately after.
    fn link(&self, slot: &AtomicU64, child: u64) {
        persist::fence();
        slot.store(child, Ordering::Release);
        persist::persist_obj_fenced(slot);
    }

    /// Retires a node: frees it after two epochs.
    fn retire(&self, raw: u64, guard: &pmem::epoch::Guard<'_>) {
        let pool = Arc::clone(&self.pool);
        // SAFETY: `raw` points to an initialized node; reading its tag to
        // compute the allocation size is safe while epoch-protected.
        let size = unsafe { node_alloc_size(raw) };
        self.collector.defer(guard, move || {
            pool.allocator().free(PmPtr::from_raw(raw), size);
        });
    }

    // -- Recovery ----------------------------------------------------------

    /// Post-crash recovery: frees every logged allocation that is not
    /// reachable from the root, then clears the logs. Returns the number of
    /// reclaimed nodes. Single-threaded by contract.
    pub fn recover(&self) -> usize {
        let mut logged = Vec::new();
        for t in 0..OPLOG_THREADS {
            for i in 0..OPLOG_ENTRIES {
                let raw = self.log_entry(t, i).load(Ordering::Relaxed);
                if raw != 0 {
                    let size = self.log_entry_size(t, i).load(Ordering::Relaxed) as usize;
                    logged.push((raw, size));
                }
            }
        }
        if logged.is_empty() {
            return 0;
        }
        let mut reachable = std::collections::HashSet::new();
        let root = self.root_cell().load(Ordering::Relaxed);
        if root != 0 {
            collect_reachable(root, &mut reachable);
        }
        let mut freed = 0;
        for (raw, size) in logged {
            if !reachable.contains(&raw) {
                self.pool.allocator().free(PmPtr::from_raw(raw), size);
                freed += 1;
            }
        }
        for t in 0..OPLOG_THREADS {
            for i in 0..OPLOG_ENTRIES {
                self.log_entry(t, i).store(0, Ordering::Relaxed);
                self.log_entry_size(t, i).store(0, Ordering::Relaxed);
            }
        }
        persist::fence();
        freed
    }

    /// Census of reachable nodes by kind — O(n), for tests and diagnostics.
    /// Returns `(leaves, node4, node16, node48, node256)`.
    pub fn node_census(&self) -> (usize, usize, usize, usize, usize) {
        let mut set = std::collections::HashSet::new();
        let root = self.root_cell().load(Ordering::Acquire);
        if root == 0 {
            return (0, 0, 0, 0, 0);
        }
        collect_reachable(root, &mut set);
        let mut c = (0, 0, 0, 0, 0);
        for &raw in &set {
            // SAFETY: reachable pointers are initialized nodes.
            match unsafe { classify(raw) } {
                NodeRef::Leaf(_) => c.0 += 1,
                NodeRef::N4(_) => c.1 += 1,
                NodeRef::N16(_) => c.2 += 1,
                NodeRef::N48(_) => c.3 += 1,
                NodeRef::N256(_) => c.4 += 1,
            }
        }
        c
    }

    /// Counts live entries (leaves) — O(n), for tests and diagnostics.
    pub fn count_entries(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        let root = self.root_cell().load(Ordering::Acquire);
        if root == 0 {
            return 0;
        }
        collect_reachable(root, &mut set);
        set.iter()
            // SAFETY: reachable pointers are initialized nodes.
            .filter(|&&raw| unsafe { node::is_leaf(raw) })
            .count()
    }
}

/// RAII allocation-log scope: allocations are recorded persistently; on
/// [`commit`](OpLog::commit) the records are cleared (the structure now owns
/// the nodes); on drop without commit every allocation is freed (the
/// operation restarted or failed before linking anything).
struct OpLog<'a> {
    art: &'a Art,
    thread: usize,
    used: usize,
    committed: bool,
}

impl OpLog<'_> {
    fn alloc(&mut self, size: usize) -> Result<PmPtr<u8>> {
        if self.used >= OPLOG_ENTRIES {
            return Err(PmemError::InvalidAllocation(size));
        }
        let ptr = self.art.pool.allocator().alloc(size)?;
        let e = self.art.log_entry(self.thread, self.used);
        let s = self.art.log_entry_size(self.thread, self.used);
        e.store(ptr.raw(), Ordering::Relaxed);
        s.store(size as u64, Ordering::Relaxed);
        persist::persist_obj(e);
        persist::persist_obj(s);
        persist::fence();
        self.used += 1;
        Ok(ptr)
    }

    /// Clears the log: the allocations are now owned by the tree.
    fn commit(mut self) {
        for i in 0..self.used {
            self.art
                .log_entry(self.thread, i)
                .store(0, Ordering::Relaxed);
            self.art
                .log_entry_size(self.thread, i)
                .store(0, Ordering::Relaxed);
        }
        if self.used > 0 {
            persist::fence();
        }
        self.committed = true;
    }
}

impl Drop for OpLog<'_> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // Aborted attempt: nothing was linked, free eagerly.
        for i in (0..self.used).rev() {
            let e = self.art.log_entry(self.thread, i);
            let s = self.art.log_entry_size(self.thread, i);
            let raw = e.load(Ordering::Relaxed);
            if raw != 0 {
                self.art
                    .pool
                    .allocator()
                    .free(PmPtr::from_raw(raw), s.load(Ordering::Relaxed) as usize);
            }
            e.store(0, Ordering::Relaxed);
            s.store(0, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Free node-level helpers (callers hold the needed locks or exclusivity)
// ---------------------------------------------------------------------------

/// Length of the longest common prefix of two byte slices.
#[inline]
pub(crate) fn lcp_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// Initializes an inner node in place (no children, count 0).
///
/// # Safety
///
/// `raw` must point to a fresh, exclusive allocation of the node's size.
unsafe fn init_inner(raw: *mut u8, ty: NodeType, prefix: &[u8], end_child: u64) {
    debug_assert!(prefix.len() <= PREFIX_CAP);
    // SAFETY: zeroing the whole struct is a valid initial state for every
    // node type (atomics are plain integers).
    unsafe {
        raw.write_bytes(0, inner_alloc_size(ty));
        let hdr = &mut *(raw as *mut NodeHeader);
        hdr.meta = AtomicU64::new(pack_meta(ty, 0, prefix.len() as u8));
        hdr.lock = VersionLock::new();
        hdr.end_child = AtomicU64::new(end_child);
        hdr.prefix[..prefix.len()].copy_from_slice(prefix);
        if ty == NodeType::Node48 {
            let n = &*(raw as *const Node48);
            for i in 0..256 {
                n.child_index[i].store(N48_EMPTY, Ordering::Relaxed);
            }
        }
    }
}

/// Inserts a child into a not-yet-shared node without synchronization or
/// persistence (used while building copies).
///
/// # Safety
///
/// `raw` must be an exclusive, initialized inner node with spare capacity.
unsafe fn insert_child_unsynced(raw: u64, b: u8, child: u64) {
    // SAFETY: exclusivity per caller contract.
    unsafe {
        match classify(raw) {
            NodeRef::N4(n) => {
                let (_, count, _) = n.header.meta3();
                n.keys[count as usize].store(b, Ordering::Relaxed);
                n.children[count as usize].store(child, Ordering::Relaxed);
                bump_count(&n.header, 1);
            }
            NodeRef::N16(n) => {
                let (_, count, _) = n.header.meta3();
                n.keys[count as usize].store(b, Ordering::Relaxed);
                n.children[count as usize].store(child, Ordering::Relaxed);
                bump_count(&n.header, 1);
            }
            NodeRef::N48(n) => {
                let (_, count, _) = n.header.meta3();
                let slot = (0..48)
                    .find(|&i| n.children[i].load(Ordering::Relaxed) == 0)
                    .expect("Node48 has a free slot");
                n.children[slot].store(child, Ordering::Relaxed);
                n.child_index[b as usize].store(slot as u8, Ordering::Relaxed);
                let _ = count;
                bump_count(&n.header, 1);
            }
            NodeRef::N256(n) => {
                n.children[b as usize].store(child, Ordering::Relaxed);
                bump_count(&n.header, 1);
            }
            NodeRef::Leaf(_) => unreachable!("cannot insert child into a leaf"),
        }
    }
}

fn bump_count(hdr: &NodeHeader, delta: i32) {
    let m = hdr.meta.load(Ordering::Relaxed);
    let (ty, count, plen) = node::unpack_meta(m);
    let new_count = (count as i32 + delta) as u16;
    hdr.meta
        .store(pack_meta(ty, new_count, plen), Ordering::Release);
}

/// Snapshot of an inner node's children as `(key byte, child ptr)` pairs in
/// byte order.
///
/// # Safety
///
/// `raw` must be an initialized inner node; for a consistent snapshot the
/// caller must hold the node's lock or validate its version afterwards.
pub(crate) unsafe fn collect_children(raw: u64) -> Vec<(u8, u64)> {
    let mut out = Vec::new();
    // SAFETY: per caller contract.
    unsafe {
        match classify(raw) {
            NodeRef::N4(n) => {
                let (_, count, _) = n.header.meta3();
                for i in 0..count as usize {
                    let c = n.children[i].load(Ordering::Acquire);
                    if c != 0 {
                        out.push((n.keys[i].load(Ordering::Acquire), c));
                    }
                }
            }
            NodeRef::N16(n) => {
                let (_, count, _) = n.header.meta3();
                for i in 0..count as usize {
                    let c = n.children[i].load(Ordering::Acquire);
                    if c != 0 {
                        out.push((n.keys[i].load(Ordering::Acquire), c));
                    }
                }
            }
            NodeRef::N48(n) => {
                // One vectorized pass over the 256-byte index instead of 256
                // individual probes; only occupied slots are then chased. A
                // byte flipping concurrently with the wide load is caught by
                // the caller's lock/validation, same as every SIMD probe.
                let occ = crate::simd::node48_occupied(&n.child_index);
                for (w, word) in occ.iter().enumerate() {
                    let mut bits = *word;
                    while bits != 0 {
                        let b = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let idx = n.child_index[b].load(Ordering::Acquire);
                        if idx != N48_EMPTY {
                            let c = n.children[idx as usize].load(Ordering::Acquire);
                            if c != 0 {
                                out.push((b as u8, c));
                            }
                        }
                    }
                }
            }
            NodeRef::N256(n) => {
                for b in 0..256usize {
                    let c = n.children[b].load(Ordering::Acquire);
                    if c != 0 {
                        out.push((b as u8, c));
                    }
                }
            }
            NodeRef::Leaf(_) => unreachable!("leaves have no children"),
        }
    }
    out.sort_unstable_by_key(|&(b, _)| b);
    out
}

/// Finds the child slot for byte `b`; returns `(child raw, slot address)`.
///
/// # Safety
///
/// `raw` must be an initialized inner node. The returned slot reference is
/// valid while the node's allocation is (epoch-protected by the caller).
unsafe fn find_child<'a>(raw: u64, b: u8) -> Option<(u64, &'a AtomicU64)> {
    // SAFETY: per caller contract.
    unsafe {
        match classify(raw) {
            NodeRef::N4(n) => {
                let (_, count, _) = n.header.meta3();
                // Compare all four key bytes branch-free (the constant-trip
                // loop unrolls), then walk the count-bounded candidate mask.
                let mut m = 0u32;
                for i in 0..4 {
                    m |= u32::from(n.keys[i].load(Ordering::Acquire) == b) << i;
                }
                m &= (1u32 << (count as usize).min(4)) - 1;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let c = n.children[i].load(Ordering::Acquire);
                    if c != 0 {
                        let slot = &*(&n.children[i] as *const AtomicU64);
                        return Some((c, slot));
                    }
                }
                None
            }
            NodeRef::N16(n) => {
                let (_, count, _) = n.header.meta3();
                // One splat-compare-movemask over the 16-byte key array
                // (runtime-dispatched; validated by the caller's token).
                let mut m = crate::simd::node16_match(&n.keys, b, count as usize);
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let c = n.children[i].load(Ordering::Acquire);
                    if c != 0 {
                        let slot = &*(&n.children[i] as *const AtomicU64);
                        return Some((c, slot));
                    }
                }
                None
            }
            NodeRef::N48(n) => {
                let idx = n.child_index[b as usize].load(Ordering::Acquire);
                if idx == N48_EMPTY {
                    return None;
                }
                let c = n.children[idx as usize].load(Ordering::Acquire);
                if c == 0 {
                    return None;
                }
                let slot = &*(&n.children[idx as usize] as *const AtomicU64);
                Some((c, slot))
            }
            NodeRef::N256(n) => {
                let c = n.children[b as usize].load(Ordering::Acquire);
                if c == 0 {
                    return None;
                }
                let slot = &*(&n.children[b as usize] as *const AtomicU64);
                Some((c, slot))
            }
            NodeRef::Leaf(_) => None,
        }
    }
}

/// Allocation size of any node (leaf or inner) from its tag.
///
/// # Safety
///
/// `raw` must be an initialized node.
unsafe fn node_alloc_size(raw: u64) -> usize {
    // SAFETY: per caller contract.
    unsafe {
        match classify(raw) {
            NodeRef::Leaf(l) => ArtLeaf::alloc_size(l.key_len as usize),
            NodeRef::N4(_) => inner_alloc_size(NodeType::Node4),
            NodeRef::N16(_) => inner_alloc_size(NodeType::Node16),
            NodeRef::N48(_) => inner_alloc_size(NodeType::Node48),
            NodeRef::N256(_) => inner_alloc_size(NodeType::Node256),
        }
    }
}

/// DFS collecting every reachable node pointer (recovery-time, single
/// threaded).
fn collect_reachable(raw: u64, out: &mut std::collections::HashSet<u64>) {
    if raw == 0 || !out.insert(raw) {
        return;
    }
    // SAFETY: recovery runs single-threaded over a consistent image.
    unsafe {
        if node::is_leaf(raw) {
            return;
        }
        let hdr = header_of(raw);
        let ec = hdr.end_child.load(Ordering::Relaxed);
        collect_reachable(ec, out);
        for (_, c) in collect_children(raw) {
            collect_reachable(c, out);
        }
    }
}
