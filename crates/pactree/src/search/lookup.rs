//! PDL-ART exact lookup.
//!
//! Readers never write NVM (GA2): traversal is fully optimistic with
//! per-node version validation, restarting on any conflict. A validated
//! read can only have observed data a writer already persisted (writers
//! persist before unlocking), which is what makes lookups durably
//! linearizable.

use std::sync::atomic::Ordering;

use pmem::pptr::PmPtr;

use super::insert::leaf_ref;
use super::node::{header_of, is_leaf};
use super::{find_child, lcp_len, Art, Step, MAX_RESTARTS};

impl Art {
    /// Looks up `key`; returns its value if present.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        let _guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            match self.try_get(key) {
                Step::Done(v) => return v,
                Step::Restart => backoff.pause(),
            }
        }
        unreachable!("get livelocked");
    }

    fn try_get(&self, key: &[u8]) -> Step<Option<u64>> {
        let root_token = match self.root_lock.read_begin() {
            Some(t) => t,
            None => return Step::Restart,
        };
        let mut raw = self.root_cell().load(Ordering::Acquire);
        if !self.root_lock.read_validate(root_token) {
            return Step::Restart;
        }
        let mut depth = 0usize;

        loop {
            self.charge_read(raw, 128);
            // SAFETY: `raw` is a reachable inner node and we are pinned.
            let hdr = unsafe { header_of(raw) };
            let token = match hdr.lock.read_begin() {
                Some(t) => t,
                None => return Step::Restart,
            };
            let (_, _, plen) = hdr.meta3();
            let plen = plen as usize;
            let mut prefix = [0u8; super::node::PREFIX_CAP];
            prefix[..plen].copy_from_slice(&hdr.prefix[..plen]);
            if !hdr.lock.read_validate(token) {
                return Step::Restart;
            }
            let rest = &key[depth..];
            if lcp_len(&prefix[..plen], rest) < plen {
                return Step::Done(None);
            }
            depth += plen;

            if depth == key.len() {
                let ec = hdr.end_child.load(Ordering::Acquire);
                if ec == 0 {
                    if !hdr.lock.read_validate(token) {
                        return Step::Restart;
                    }
                    return Step::Done(None);
                }
                // SAFETY: read under the token we are about to validate;
                // epoch pin keeps the leaf alive.
                let value = unsafe { leaf_ref(ec) }.value.load(Ordering::Acquire);
                if !hdr.lock.read_validate(token) {
                    return Step::Restart;
                }
                return Step::Done(Some(value));
            }

            let b = key[depth];
            // SAFETY: live inner node, epoch-pinned.
            let found = unsafe { find_child(raw, b) };
            if let Some((child, _)) = found {
                // Start fetching the child's header line while the version
                // check completes (the jump-chase prefetch, ROADMAP).
                crate::simd::prefetch_read(PmPtr::<u8>::from_raw(child).as_ptr());
            }
            if !hdr.lock.read_validate(token) {
                return Step::Restart;
            }
            let Some((child, _)) = found else {
                return Step::Done(None);
            };
            // SAFETY: child read under validated token; epoch-pinned.
            if unsafe { is_leaf(child) } {
                // SAFETY: as above; leaf keys are immutable.
                let leaf = unsafe { leaf_ref(child) };
                self.charge_read(child, 64 + key.len());
                // SAFETY: leaf is initialized and alive.
                let matches = unsafe { leaf.key() } == key;
                let value = leaf.value.load(Ordering::Acquire);
                if !hdr.lock.read_validate(token) {
                    return Step::Restart;
                }
                return Step::Done(matches.then_some(value));
            }
            raw = child;
            depth += 1;
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }
}
