//! PDL-ART unit and property tests, checked against `BTreeMap` models.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use pmem::epoch::Collector;
use pmem::pool::{destroy_pool, PmemPool, PoolConfig};
use proptest::prelude::*;

use super::Art;

fn mk_art(name: &str) -> (Arc<PmemPool>, Art) {
    let pool = PmemPool::create(PoolConfig::volatile(name, 64 << 20)).unwrap();
    let art = Art::create(Arc::clone(&pool), 0, Arc::new(Collector::new())).unwrap();
    (pool, art)
}

fn mk_art_durable(name: &str) -> (Arc<PmemPool>, Art) {
    let pool = PmemPool::create(PoolConfig::durable(name, 64 << 20)).unwrap();
    let art = Art::create(Arc::clone(&pool), 0, Arc::new(Collector::new())).unwrap();
    (pool, art)
}

#[test]
fn empty_tree_behaviour() {
    let (pool, art) = mk_art("art-empty");
    assert_eq!(art.get(b"missing"), None);
    assert_eq!(art.floor(b"anything"), None);
    assert_eq!(art.max_entry(), None);
    assert!(art.scan(b"", 10).is_empty());
    assert_eq!(art.remove(b"missing").unwrap(), None);
    assert_eq!(art.count_entries(), 0);
    destroy_pool(pool.id());
}

#[test]
fn insert_get_roundtrip() {
    let (pool, art) = mk_art("art-basic");
    assert_eq!(art.insert(b"hello", 1).unwrap(), None);
    assert_eq!(art.insert(b"help", 2).unwrap(), None);
    assert_eq!(art.insert(b"he", 3).unwrap(), None);
    assert_eq!(art.insert(b"world", 4).unwrap(), None);
    assert_eq!(art.get(b"hello"), Some(1));
    assert_eq!(art.get(b"help"), Some(2));
    assert_eq!(art.get(b"he"), Some(3));
    assert_eq!(art.get(b"world"), Some(4));
    assert_eq!(art.get(b"hel"), None);
    assert_eq!(art.get(b"hello!"), None);
    assert_eq!(art.get(b""), None);
    assert_eq!(art.count_entries(), 4);
    destroy_pool(pool.id());
}

#[test]
fn empty_key_is_legal() {
    let (pool, art) = mk_art("art-empty-key");
    assert_eq!(art.insert(b"", 42).unwrap(), None);
    assert_eq!(art.get(b""), Some(42));
    assert_eq!(
        art.floor(b"anything"),
        Some(42),
        "empty key floors everything"
    );
    assert_eq!(art.remove(b"").unwrap(), Some(42));
    assert_eq!(art.get(b""), None);
    destroy_pool(pool.id());
}

#[test]
fn upsert_returns_old_value() {
    let (pool, art) = mk_art("art-upsert");
    assert_eq!(art.insert(b"k", 1).unwrap(), None);
    assert_eq!(art.insert(b"k", 2).unwrap(), Some(1));
    assert_eq!(art.insert(b"k", 3).unwrap(), Some(2));
    assert_eq!(art.get(b"k"), Some(3));
    assert_eq!(art.count_entries(), 1);
    destroy_pool(pool.id());
}

#[test]
fn node_growth_through_all_arities() {
    let (pool, art) = mk_art("art-grow");
    // 256 distinct first bytes forces Node4 -> 16 -> 48 -> 256 growth.
    for b in 0..=255u8 {
        art.insert(&[b, 1], (b as u64) + 1).unwrap();
    }
    for b in 0..=255u8 {
        assert_eq!(art.get(&[b, 1]), Some((b as u64) + 1), "byte {b}");
    }
    assert_eq!(art.count_entries(), 256);
    destroy_pool(pool.id());
}

#[test]
fn removal_and_shrink() {
    let (pool, art) = mk_art("art-shrink");
    for b in 0..=255u8 {
        art.insert(&[b], (b as u64) + 1).unwrap();
    }
    for b in 0..=255u8 {
        assert_eq!(art.remove(&[b]).unwrap(), Some((b as u64) + 1));
        assert_eq!(art.get(&[b]), None);
    }
    assert_eq!(art.count_entries(), 0);
    // Tree still usable afterwards.
    art.insert(b"again", 7).unwrap();
    assert_eq!(art.get(b"again"), Some(7));
    destroy_pool(pool.id());
}

#[test]
fn long_common_prefixes_chain() {
    let (pool, art) = mk_art("art-longprefix");
    let base = vec![7u8; 200];
    let mut k1 = base.clone();
    k1.push(1);
    let mut k2 = base.clone();
    k2.push(2);
    art.insert(&k1, 11).unwrap();
    art.insert(&k2, 22).unwrap();
    assert_eq!(art.get(&k1), Some(11));
    assert_eq!(art.get(&k2), Some(22));
    assert_eq!(art.get(&base), None);
    // A third key diverging mid-prefix.
    let mut k3 = base[..100].to_vec();
    k3.push(9);
    art.insert(&k3, 33).unwrap();
    assert_eq!(art.get(&k3), Some(33));
    assert_eq!(art.get(&k1), Some(11));
    destroy_pool(pool.id());
}

#[test]
fn key_prefix_of_other_key() {
    let (pool, art) = mk_art("art-prefixkeys");
    art.insert(b"a", 1).unwrap();
    art.insert(b"ab", 2).unwrap();
    art.insert(b"abc", 3).unwrap();
    art.insert(b"abcd", 4).unwrap();
    for (k, v) in [(b"a" as &[u8], 1), (b"ab", 2), (b"abc", 3), (b"abcd", 4)] {
        assert_eq!(art.get(k), Some(v));
    }
    assert_eq!(art.remove(b"ab").unwrap(), Some(2));
    assert_eq!(art.get(b"a"), Some(1));
    assert_eq!(art.get(b"abc"), Some(3));
    destroy_pool(pool.id());
}

#[test]
fn floor_semantics() {
    let (pool, art) = mk_art("art-floor");
    for v in [10u64, 20, 30, 40] {
        art.insert(&v.to_be_bytes(), v).unwrap();
    }
    assert_eq!(art.floor(&5u64.to_be_bytes()), None);
    assert_eq!(art.floor(&10u64.to_be_bytes()), Some(10), "exact match");
    assert_eq!(art.floor(&15u64.to_be_bytes()), Some(10));
    assert_eq!(art.floor(&30u64.to_be_bytes()), Some(30));
    assert_eq!(art.floor(&99u64.to_be_bytes()), Some(40));
    assert_eq!(art.max_entry().map(|(_, v)| v), Some(40));
    destroy_pool(pool.id());
}

#[test]
fn scan_in_order_from_bound() {
    let (pool, art) = mk_art("art-scan");
    for v in (0..100u64).rev() {
        art.insert(&(v * 3).to_be_bytes(), v * 3 + 1).unwrap();
    }
    let got = art.scan(&10u64.to_be_bytes(), 5);
    let keys: Vec<u64> = got
        .iter()
        .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
        .collect();
    assert_eq!(keys, vec![12, 15, 18, 21, 24]);
    for (k, v) in &got {
        let kk = u64::from_be_bytes(k.as_slice().try_into().unwrap());
        assert_eq!(*v, kk + 1);
    }
    // Scan beyond the end.
    assert!(art.scan(&1000u64.to_be_bytes(), 5).is_empty());
    // Scan everything.
    assert_eq!(art.scan(b"", 1000).len(), 100);
    destroy_pool(pool.id());
}

#[test]
fn dense_u64_keys_model_check() {
    let (pool, art) = mk_art("art-dense");
    let mut model = BTreeMap::new();
    for i in 0..4096u64 {
        let k = (i * 2654435761) % 8192; // pseudo-random with collisions
        let kb = k.to_be_bytes();
        let old_m = model.insert(k, i + 1);
        let old_a = art.insert(&kb, i + 1).unwrap();
        assert_eq!(old_a, old_m, "upsert old value for key {k}");
    }
    for (&k, &v) in &model {
        assert_eq!(art.get(&k.to_be_bytes()), Some(v));
    }
    assert_eq!(art.count_entries(), model.len());
    destroy_pool(pool.id());
}

#[test]
fn concurrent_disjoint_inserts() {
    let (pool, art) = mk_art("art-conc-ins");
    let art = Arc::new(art);
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let art = Arc::clone(&art);
        handles.push(std::thread::spawn(move || {
            for i in 0..2000u64 {
                let k = (t << 32) | i;
                art.insert(&k.to_be_bytes(), k + 1).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..8u64 {
        for i in 0..2000u64 {
            let k = (t << 32) | i;
            assert_eq!(art.get(&k.to_be_bytes()), Some(k + 1));
        }
    }
    assert_eq!(art.count_entries(), 16000);
    destroy_pool(pool.id());
}

#[test]
fn concurrent_mixed_readers_writers() {
    let (pool, art) = mk_art("art-conc-mix");
    let art = Arc::new(art);
    for i in 0..1000u64 {
        art.insert(&i.to_be_bytes(), i + 1).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    // Writers churn a disjoint key range.
    for t in 0..4u64 {
        let art = Arc::clone(&art);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = 10_000 + (t << 20) + (i % 500);
                art.insert(&k.to_be_bytes(), k + 1).unwrap();
                if i.is_multiple_of(3) {
                    art.remove(&k.to_be_bytes()).unwrap();
                }
                i += 1;
            }
        }));
    }
    // Readers verify the stable range remains intact.
    for _ in 0..4 {
        let art = Arc::clone(&art);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rounds = 0;
            while !stop.load(Ordering::Relaxed) {
                for i in (0..1000u64).step_by(37) {
                    assert_eq!(art.get(&i.to_be_bytes()), Some(i + 1));
                    let f = art.floor(&i.to_be_bytes());
                    assert_eq!(f, Some(i + 1));
                }
                rounds += 1;
                if rounds > 50 {
                    break;
                }
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    for i in 0..1000u64 {
        assert_eq!(art.get(&i.to_be_bytes()), Some(i + 1));
    }
    art.collector().flush();
    destroy_pool(pool.id());
}

#[test]
fn crash_recovery_preserves_persisted_inserts() {
    let (pool, art) = mk_art_durable("art-crash1");
    for i in 0..500u64 {
        art.insert(&i.to_be_bytes(), i + 1).unwrap();
    }
    pool.simulate_crash(false);
    crate::lock::bump_global_generation();
    pool.allocator().recover_logs();
    let art2 = Art::create(Arc::clone(&pool), 0, Arc::new(Collector::new())).unwrap();
    art2.recover();
    for i in 0..500u64 {
        assert_eq!(art2.get(&i.to_be_bytes()), Some(i + 1), "key {i} lost");
    }
    destroy_pool(pool.id());
}

#[test]
fn crash_recovery_after_moved_base() {
    let (pool, art) = mk_art_durable("art-crash2");
    for i in 0..300u64 {
        art.insert(&(i * 7).to_be_bytes(), i + 1).unwrap();
    }
    pool.simulate_crash(true); // remount at a different address
    crate::lock::bump_global_generation();
    pool.allocator().recover_logs();
    let art2 = Art::create(Arc::clone(&pool), 0, Arc::new(Collector::new())).unwrap();
    art2.recover();
    for i in 0..300u64 {
        assert_eq!(art2.get(&(i * 7).to_be_bytes()), Some(i + 1));
    }
    // And the tree is still writable.
    art2.insert(b"post-crash", 9).unwrap();
    assert_eq!(art2.get(b"post-crash"), Some(9));
    destroy_pool(pool.id());
}

// ---------------------------------------------------------------------------
// Property tests against a BTreeMap model
// ---------------------------------------------------------------------------

static PROP_POOL_ID: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn fresh_name(prefix: &str) -> String {
    format!(
        "{prefix}-{}",
        PROP_POOL_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_matches_btreemap(ops in proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 0..12), 1..4u8), 1..300)
    ) {
        let (pool, art) = mk_art(&fresh_name("art-prop"));
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut val = 1u64;
        for (key, op) in ops {
            match op {
                1 | 3 => {
                    val += 1;
                    let old_a = art.insert(&key, val).unwrap();
                    let old_m = model.insert(key, val);
                    prop_assert_eq!(old_a, old_m);
                }
                _ => {
                    let old_a = art.remove(&key).unwrap();
                    let old_m = model.remove(&key);
                    prop_assert_eq!(old_a, old_m);
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(art.get(k), Some(*v));
        }
        prop_assert_eq!(art.count_entries(), model.len());
        destroy_pool(pool.id());
    }

    #[test]
    fn prop_floor_matches_btreemap(
        keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 0..10), 1..100),
        queries in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..10), 1..50),
    ) {
        let (pool, art) = mk_art(&fresh_name("art-prop-floor"));
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
            model.insert(k.clone(), i as u64 + 1);
        }
        for q in &queries {
            let expect = model.range::<Vec<u8>, _>(..=q.clone()).next_back()
                .map(|(k, v)| (k.clone(), *v));
            let got = art.floor_entry(q);
            prop_assert_eq!(got, expect, "floor({:?})", q);
        }
        destroy_pool(pool.id());
    }

    #[test]
    fn prop_scan_matches_btreemap(
        keys in proptest::collection::btree_set(
            proptest::collection::vec(any::<u8>(), 0..8), 1..120),
        start in proptest::collection::vec(any::<u8>(), 0..8),
        limit in 1..40usize,
    ) {
        let (pool, art) = mk_art(&fresh_name("art-prop-scan"));
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
            model.insert(k.clone(), i as u64 + 1);
        }
        let expect: Vec<(Vec<u8>, u64)> = model
            .range::<Vec<u8>, _>(start.clone()..)
            .take(limit)
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let got = art.scan(&start, limit);
        prop_assert_eq!(got, expect);
        destroy_pool(pool.id());
    }
}

// ---------------------------------------------------------------------------
// Structural tests: arity transitions, shrink, splice, husk cleanup
// ---------------------------------------------------------------------------

#[test]
fn census_tracks_growth_and_shrink() {
    let (pool, art) = mk_art("art-census");
    // 200 children under the root forces Node4 -> 16 -> 48 -> 256.
    for b in 0..200u8 {
        art.insert(&[b, 0], b as u64 + 1).unwrap();
    }
    let (leaves, _, _, _, n256) = art.node_census();
    assert_eq!(leaves, 200);
    assert!(n256 >= 1, "root should have grown to Node256");
    // Remove most children: shrink transitions bring the arity back down.
    for b in 0..195u8 {
        art.remove(&[b, 0]).unwrap();
    }
    art.collector().flush();
    let (leaves, n4, n16, _, n256) = art.node_census();
    assert_eq!(leaves, 5);
    assert_eq!(n256, 0, "Node256 must have shrunk away");
    assert!(n4 + n16 >= 1);
    destroy_pool(pool.id());
}

#[test]
fn splice_removes_single_child_chains() {
    let (pool, art) = mk_art("art-splice");
    // Two keys with a long shared prefix create an inner node; removing one
    // leaves a single-child node that must be spliced away.
    art.insert(b"shared-prefix-alpha", 1).unwrap();
    art.insert(b"shared-prefix-beta", 2).unwrap();
    let before = art.node_census();
    art.remove(b"shared-prefix-beta").unwrap();
    art.collector().flush();
    let after = art.node_census();
    assert_eq!(after.0, 1, "one leaf left");
    // The inner node joining the two keys must be gone (leaf promoted).
    assert!(
        after.1 + after.2 + after.3 + after.4 < before.1 + before.2 + before.3 + before.4,
        "inner nodes must shrink: {before:?} -> {after:?}"
    );
    assert_eq!(art.get(b"shared-prefix-alpha"), Some(1));
    destroy_pool(pool.id());
}

#[test]
fn oplog_abort_frees_orphans() {
    // A failed optimistic attempt must free its trial allocations: churn
    // under contention and verify the allocator balance afterwards.
    let (pool, art) = mk_art("art-oplog-balance");
    let art = Arc::new(art);
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let art = Arc::clone(&art);
        handles.push(std::thread::spawn(move || {
            // Overlapping key ranges maximize conflicts (and thus aborted
            // attempts with allocated-but-unlinked nodes).
            for i in 0..3000u64 {
                let k = (i % 512).to_be_bytes();
                art.insert(&k, t * 10_000 + i + 1).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    art.collector().flush();
    // Recovery sweep finds nothing to reclaim: every logged allocation was
    // either linked or freed by its OpLog.
    assert_eq!(art.recover(), 0, "no leaked trial allocations");
    for i in 0..512u64 {
        assert!(art.get(&i.to_be_bytes()).is_some());
    }
    destroy_pool(pool.id());
}

#[test]
fn node48_index_paths() {
    let (pool, art) = mk_art("art-n48");
    // Fill to Node48 range (17..=48 children), then delete and reinsert to
    // exercise index tombstones and slot reuse.
    for b in 0..40u8 {
        art.insert(&[b], b as u64 + 1).unwrap();
    }
    let (_, _, _, n48, _) = art.node_census();
    assert!(n48 >= 1, "root should be a Node48");
    for b in (0..40u8).step_by(2) {
        assert_eq!(art.remove(&[b]).unwrap(), Some(b as u64 + 1));
    }
    for b in (0..40u8).step_by(2) {
        art.insert(&[b], b as u64 + 100).unwrap();
    }
    for b in 0..40u8 {
        let expect = if b % 2 == 0 {
            b as u64 + 100
        } else {
            b as u64 + 1
        };
        assert_eq!(art.get(&[b]), Some(expect), "byte {b}");
    }
    destroy_pool(pool.id());
}
