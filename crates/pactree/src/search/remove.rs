//! PDL-ART removal, with best-effort structural maintenance.
//!
//! Removal linearizes on a *single* atomic store (nulling a child slot,
//! clearing a Node48 index byte, or clearing the end-child pointer), which
//! is persisted immediately — there is no intermediate state a crash could
//! expose (paper §5.1(2)). Slots are tombstoned rather than compacted in
//! place; compaction happens copy-on-write during later growth/shrink, so
//! reachable nodes are never rearranged under readers.
//!
//! After a removal the operation opportunistically maintains the tree
//! (shrinking oversized nodes, splicing single-child nodes, deleting empty
//! husks). Maintenance requires the parent lock; if it cannot be taken
//! without blocking it is simply skipped — a later operation will redo it.

use std::sync::atomic::{AtomicU64, Ordering};

use pmem::persist;
use pmem::Result;

use super::insert::leaf_ref;
use super::node::{classify, header_of, is_leaf, NodeRef, NodeType, N48_EMPTY};
use super::{collect_children, find_child, lcp_len, Art, OpLog, Step, MAX_RESTARTS};
use crate::lock::{ReadToken, VersionLock};

/// Parent context extended with the parent node identity (for husk removal).
#[derive(Clone, Copy)]
struct ParentCtx2<'a> {
    lock: &'a VersionLock,
    token: ReadToken,
    slot: &'a AtomicU64,
    /// Raw pointer of the parent *node*; 0 when the parent is the root cell.
    raw: u64,
    /// Key byte under which the current node hangs in the parent.
    byte: u8,
}

/// Tombstones the child for byte `b`: a single persisted atomic store.
///
/// # Safety
///
/// Caller holds the node's write lock and the child exists.
unsafe fn remove_child_persist(raw: u64, b: u8) {
    // SAFETY: exclusive access per caller contract.
    unsafe {
        match classify(raw) {
            NodeRef::N4(n) => {
                let (_, count, _) = n.header.meta3();
                for i in 0..count as usize {
                    if n.keys[i].load(Ordering::Relaxed) == b
                        && n.children[i].load(Ordering::Relaxed) != 0
                    {
                        n.children[i].store(0, Ordering::Release);
                        persist::persist_obj_fenced(&n.children[i]);
                        return;
                    }
                }
                unreachable!("child {b} not found in Node4");
            }
            NodeRef::N16(n) => {
                let (_, count, _) = n.header.meta3();
                for i in 0..count as usize {
                    if n.keys[i].load(Ordering::Relaxed) == b
                        && n.children[i].load(Ordering::Relaxed) != 0
                    {
                        n.children[i].store(0, Ordering::Release);
                        persist::persist_obj_fenced(&n.children[i]);
                        return;
                    }
                }
                unreachable!("child {b} not found in Node16");
            }
            NodeRef::N48(n) => {
                let idx = n.child_index[b as usize].load(Ordering::Relaxed);
                debug_assert_ne!(idx, N48_EMPTY);
                // Index clear is the linearization point; then release the
                // child slot for reuse and fix the count.
                n.child_index[b as usize].store(N48_EMPTY, Ordering::Release);
                persist::persist_obj(&n.child_index[b as usize]);
                persist::fence();
                n.children[idx as usize].store(0, Ordering::Release);
                persist::persist_obj_fenced(&n.children[idx as usize]);
                super::bump_count(&n.header, -1);
                persist::persist_obj_fenced(&n.header.meta);
            }
            NodeRef::N256(n) => {
                n.children[b as usize].store(0, Ordering::Release);
                persist::persist_obj_fenced(&n.children[b as usize]);
                super::bump_count(&n.header, -1);
                persist::persist_obj_fenced(&n.header.meta);
            }
            NodeRef::Leaf(_) => unreachable!("leaf has no children"),
        }
    }
}

/// Shrink target for a live-child count, if the node is oversized.
fn shrink_target(ty: NodeType, live: usize) -> Option<NodeType> {
    match ty {
        NodeType::Node256 if live <= 40 => Some(NodeType::Node48),
        NodeType::Node48 if live <= 12 => Some(NodeType::Node16),
        NodeType::Node16 if live <= 3 => Some(NodeType::Node4),
        _ => None,
    }
}

impl Art {
    /// Removes `key`; returns its value if it was present.
    pub fn remove(&self, key: &[u8]) -> Result<Option<u64>> {
        self.run_mutation(|| self.remove_inplace(key), || self.cow_remove(key))
    }

    fn remove_inplace(&self, key: &[u8]) -> Result<Option<u64>> {
        let guard = self.collector().pin();
        let mut backoff = super::Backoff::new();
        for _ in 0..MAX_RESTARTS {
            match self.try_remove(key, &guard)? {
                Step::Done(old) => return Ok(old),
                Step::Restart => backoff.pause(),
            }
        }
        unreachable!("remove livelocked");
    }

    fn try_remove(&self, key: &[u8], guard: &pmem::epoch::Guard<'_>) -> Result<Step<Option<u64>>> {
        let mut oplog = self.oplog();
        let root_cell = self.root_cell();
        let root_token = match self.root_lock.read_begin() {
            Some(t) => t,
            None => return Ok(Step::Restart),
        };
        let mut parent = ParentCtx2 {
            lock: &self.root_lock,
            token: root_token,
            slot: root_cell,
            raw: 0,
            byte: 0,
        };
        let mut raw = root_cell.load(Ordering::Acquire);
        if !self.root_lock.read_validate(root_token) {
            return Ok(Step::Restart);
        }
        let mut depth = 0usize;

        loop {
            self.charge_read(raw, 128);
            // SAFETY: reachable inner node, epoch-pinned.
            let hdr = unsafe { header_of(raw) };
            let token = match hdr.lock.read_begin() {
                Some(t) => t,
                None => return Ok(Step::Restart),
            };
            let (_, _, plen) = hdr.meta3();
            let plen = plen as usize;
            let mut prefix = [0u8; super::node::PREFIX_CAP];
            prefix[..plen].copy_from_slice(&hdr.prefix[..plen]);
            if !hdr.lock.read_validate(token) {
                return Ok(Step::Restart);
            }
            let rest = &key[depth..];
            if lcp_len(&prefix[..plen], rest) < plen {
                return Ok(Step::Done(None));
            }
            depth += plen;

            if depth == key.len() {
                let ec = hdr.end_child.load(Ordering::Acquire);
                if !hdr.lock.read_validate(token) {
                    return Ok(Step::Restart);
                }
                if ec == 0 {
                    return Ok(Step::Done(None));
                }
                let Some(ng) = hdr.lock.try_upgrade(token) else {
                    return Ok(Step::Restart);
                };
                // SAFETY: leaf alive under epoch pin; we hold the node lock.
                let old = unsafe { leaf_ref(ec) }.value.load(Ordering::Acquire);
                hdr.end_child.store(0, Ordering::Release);
                persist::persist_obj_fenced(&hdr.end_child);
                self.retire(ec, guard);
                self.try_maintain(&parent, raw, &ng, &mut oplog, guard)?;
                drop(ng);
                oplog.commit();
                return Ok(Step::Done(Some(old)));
            }

            let b = key[depth];
            // SAFETY: live inner node, epoch-pinned.
            let found = unsafe { find_child(raw, b) };
            if !hdr.lock.read_validate(token) {
                return Ok(Step::Restart);
            }
            let Some((child, slot)) = found else {
                return Ok(Step::Done(None));
            };
            // SAFETY: child read under validated token, epoch-pinned.
            if unsafe { is_leaf(child) } {
                // SAFETY: leaf keys are immutable.
                if unsafe { leaf_ref(child).key() } != key {
                    if !hdr.lock.read_validate(token) {
                        return Ok(Step::Restart);
                    }
                    return Ok(Step::Done(None));
                }
                let Some(ng) = hdr.lock.try_upgrade(token) else {
                    return Ok(Step::Restart);
                };
                // SAFETY: validated leaf, node lock held.
                let old = unsafe { leaf_ref(child) }.value.load(Ordering::Acquire);
                // SAFETY: node write lock held; child exists.
                unsafe { remove_child_persist(raw, b) };
                self.retire(child, guard);
                self.try_maintain(&parent, raw, &ng, &mut oplog, guard)?;
                drop(ng);
                oplog.commit();
                return Ok(Step::Done(Some(old)));
            }
            parent = ParentCtx2 {
                lock: &hdr.lock,
                token,
                slot,
                raw,
                byte: b,
            };
            raw = child;
            depth += 1;
        }
    }

    /// Best-effort structural cleanup of `raw` after a removal. Requires the
    /// node's write lock (witnessed by `_ng`); takes the parent lock
    /// opportunistically and silently skips when it cannot.
    fn try_maintain(
        &self,
        parent: &ParentCtx2<'_>,
        raw: u64,
        _ng: &crate::lock::WriteGuard<'_>,
        oplog: &mut OpLog<'_>,
        guard: &pmem::epoch::Guard<'_>,
    ) -> Result<()> {
        // SAFETY: we hold the node's write lock.
        let hdr = unsafe { header_of(raw) };
        let (ty, _, plen) = hdr.meta3();
        // SAFETY: write lock held: stable snapshot.
        let children = unsafe { collect_children(raw) };
        let live = children.len();
        let end = hdr.end_child.load(Ordering::Acquire);
        let is_root_node = parent.raw == 0;

        if live == 0 && end == 0 {
            if is_root_node {
                return Ok(()); // empty tree keeps its root node
            }
            // Dead husk: unlink from the parent node.
            let Some(_pg) = parent.lock.try_upgrade(parent.token) else {
                return Ok(());
            };
            // SAFETY: parent write lock held; this node hangs at
            // `parent.byte`.
            unsafe { remove_child_persist(parent.raw, parent.byte) };
            self.retire(raw, guard);
            return Ok(());
        }

        if live == 0 && end != 0 && !is_root_node {
            // Only the end child remains: promote the leaf into the parent
            // slot (leaves carry full keys, so the prefix is expendable).
            let Some(_pg) = parent.lock.try_upgrade(parent.token) else {
                return Ok(());
            };
            self.link(parent.slot, end);
            self.retire(raw, guard);
            return Ok(());
        }

        if live == 1 && end == 0 && !is_root_node {
            let (cb, child) = children[0];
            let Some(_pg) = parent.lock.try_upgrade(parent.token) else {
                return Ok(());
            };
            // SAFETY: child read under our write lock; epoch-pinned.
            if unsafe { is_leaf(child) } {
                self.link(parent.slot, child);
                self.retire(raw, guard);
                return Ok(());
            }
            // Splice: concatenate prefixes into a copy of the child.
            let Some(_cg) = unsafe { header_of(child) }.lock.try_write_lock() else {
                return Ok(());
            };
            // SAFETY: child write lock held.
            let child_hdr = unsafe { header_of(child) };
            let (cty, _, cplen) = child_hdr.meta3();
            let mut new_prefix = Vec::with_capacity(plen as usize + 1 + cplen as usize);
            new_prefix.extend_from_slice(&hdr.prefix[..plen as usize]);
            new_prefix.push(cb);
            new_prefix.extend_from_slice(&child_hdr.prefix[..cplen as usize]);
            let merged = self.copy_node(oplog, child, cty, &new_prefix)?;
            self.link(parent.slot, merged);
            self.retire(raw, guard);
            self.retire(child, guard);
            return Ok(());
        }

        if let Some(target) = shrink_target(ty, live) {
            let Some(_pg) = parent.lock.try_upgrade(parent.token) else {
                return Ok(());
            };
            let smaller =
                self.alloc_inner_with(oplog, target, &hdr.prefix[..plen as usize], &children, end)?;
            self.link(parent.slot, smaller);
            self.retire(raw, guard);
        }
        Ok(())
    }
}
