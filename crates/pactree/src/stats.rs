//! PACTree operation statistics.
//!
//! Tracks the jump-node distance distribution (paper §6.7: how far the data
//! layer must be walked when the search layer lags behind), SMO counts, and
//! retry counters. Cheap relaxed atomics; aggregated per tree.

use std::sync::atomic::{AtomicU64, Ordering};

/// Distance histogram buckets: 0 hops (direct hit), 1, 2, 3, ≥4.
const BUCKETS: usize = 5;

/// Per-tree counters.
#[derive(Default, Debug)]
pub struct TreeStats {
    /// Data-layer hop distance from jump node to target node, per locate.
    jump_hops: [AtomicU64; BUCKETS],
    /// Splits executed (data layer).
    pub splits: AtomicU64,
    /// Merges executed (data layer).
    pub merges: AtomicU64,
    /// SMO log entries replayed into the search layer.
    pub smo_replayed: AtomicU64,
    /// Optimistic retries in lookup/insert paths.
    pub retries: AtomicU64,
    /// Fingerprint-candidate key verifications during data-node probes.
    pub fp_checks: AtomicU64,
    /// Verifications whose full key mismatched (fingerprint false hits).
    pub fp_false_hits: AtomicU64,
}

impl TreeStats {
    /// Records a locate that needed `hops` data-layer hops.
    #[inline]
    pub fn record_jump(&self, hops: usize) {
        self.jump_hops[hops.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// The hop histogram as `(hops, count)` with the last bucket meaning
    /// "this many or more".
    pub fn jump_histogram(&self) -> Vec<(usize, u64)> {
        self.jump_hops
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Fraction of locates that hit the target node directly (the paper
    /// reports 68% under heavy churn, §6.7).
    pub fn direct_hit_ratio(&self) -> f64 {
        let h = self.jump_histogram();
        let total: u64 = h.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            return 1.0;
        }
        h[0].1 as f64 / total as f64
    }

    /// Records one data-node probe: `false_hits` fingerprint candidates
    /// whose key verification failed, plus the hit itself when found.
    #[inline]
    pub fn record_fp(&self, false_hits: u32, hit: bool) {
        let checks = false_hits as u64 + u64::from(hit);
        if checks != 0 {
            self.fp_checks.fetch_add(checks, Ordering::Relaxed);
        }
        if false_hits != 0 {
            self.fp_false_hits
                .fetch_add(false_hits as u64, Ordering::Relaxed);
        }
    }

    /// Fraction of fingerprint-candidate key verifications that mismatched.
    /// Expected value: a probe of a node with `L` live slots yields about
    /// `L/256` false candidates, so with ~50 live slots roughly 0.2 false
    /// verifications ride along per hit — a ratio around 0.2. A ratio
    /// drifting toward 1.0 with unchanged occupancy means the filter (or a
    /// probe kernel's mask) broke.
    pub fn false_hit_ratio(&self) -> f64 {
        let checks = self.fp_checks.load(Ordering::Relaxed);
        if checks == 0 {
            return 0.0;
        }
        self.fp_false_hits.load(Ordering::Relaxed) as f64 / checks as f64
    }

    /// Resets every counter.
    pub fn reset(&self) {
        for b in &self.jump_hops {
            b.store(0, Ordering::Relaxed);
        }
        self.splits.store(0, Ordering::Relaxed);
        self.merges.store(0, Ordering::Relaxed);
        self.smo_replayed.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.fp_checks.store(0, Ordering::Relaxed);
        self.fp_false_hits.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_ratio() {
        let s = TreeStats::default();
        assert_eq!(s.direct_hit_ratio(), 1.0, "no samples means no misses");
        for _ in 0..68 {
            s.record_jump(0);
        }
        for _ in 0..30 {
            s.record_jump(1);
        }
        s.record_jump(2);
        s.record_jump(9); // lands in the >=4 bucket
        let h = s.jump_histogram();
        assert_eq!(h[0].1, 68);
        assert_eq!(h[1].1, 30);
        assert_eq!(h[2].1, 1);
        assert_eq!(h[4].1, 1);
        assert!((s.direct_hit_ratio() - 0.68).abs() < 0.01);
        s.reset();
        assert_eq!(s.jump_histogram()[0].1, 0);
    }

    #[test]
    fn fp_false_hit_ratio() {
        let s = TreeStats::default();
        assert_eq!(s.false_hit_ratio(), 0.0, "no probes, no false hits");
        s.record_fp(0, true); // clean hit
        s.record_fp(0, false); // clean miss: no candidates at all
        assert_eq!(s.false_hit_ratio(), 0.0);
        s.record_fp(1, true); // one collision before the hit
        assert!((s.false_hit_ratio() - 1.0 / 3.0).abs() < 1e-9);
        s.record_fp(2, false); // two collisions, key absent
        assert!((s.false_hit_ratio() - 3.0 / 5.0).abs() < 1e-9);
        s.reset();
        assert_eq!(s.false_hit_ratio(), 0.0);
    }
}
