//! Race-hunting harness for the MVCC subsystem: replays the
//! snapshot-isolation pattern in a tight loop (sequential ops + async
//! updater) and fails loudly on the first live-view or snapshot-view
//! divergence. Not a benchmark; run manually when chasing heisenbugs.

use std::collections::BTreeMap;

use pactree::{PacTree, PacTreeConfig};

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let mut x = 0x243f6a8885a308d3u64;
    let mut rnd = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for it in 0..iters {
        let t = PacTree::create(PacTreeConfig::named(&format!("mvstress-{it}"))).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let pre = 100 + (rnd() % 200) as usize;
        let post = 100 + (rnd() % 200) as usize;
        for _ in 0..pre {
            let klen = (rnd() % 24) as usize;
            let mut k = vec![0u8; klen];
            for b in &mut k {
                *b = (rnd() % 4) as u8; // tiny alphabet: deep ART paths
            }
            let v = rnd() | 1;
            t.insert(&k, v).unwrap();
            model.insert(k, v);
        }
        let s = t.snapshot();
        let frozen = model.clone();
        for _ in 0..post {
            let klen = (rnd() % 24) as usize;
            let mut k = vec![0u8; klen];
            for b in &mut k {
                *b = (rnd() % 4) as u8;
            }
            if rnd() % 3 == 0 {
                let old = t.remove(&k).unwrap();
                assert_eq!(old, model.remove(&k), "iter {it}: remove old mismatch");
            } else {
                let v = rnd() | 1;
                let old = t.insert(&k, v).unwrap();
                assert_eq!(old, model.insert(k, v), "iter {it}: insert old mismatch");
            }
        }
        let got: BTreeMap<Vec<u8>, u64> = t
            .scan_at(s, b"", usize::MAX >> 1)
            .unwrap()
            .into_iter()
            .map(|p| (p.key, p.value))
            .collect();
        assert_eq!(got, frozen, "iter {it}: snapshot view diverged");
        let live: BTreeMap<Vec<u8>, u64> = t
            .scan(b"", usize::MAX >> 1)
            .into_iter()
            .map(|p| (p.key, p.value))
            .collect();
        assert_eq!(live, model, "iter {it}: live view diverged");
        assert!(t.release_snapshot(s));
        t.check_invariants();
        t.destroy();
        if it % 50 == 0 {
            eprintln!("iter {it} ok");
        }
    }
    eprintln!("done: {iters} iterations clean");
}
