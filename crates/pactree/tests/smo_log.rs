//! SMO log behaviour under pressure: back-pressure when the updater lags,
//! ordering guarantees, and updater liveness.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use pactree::{PacTree, PacTreeConfig};

#[test]
fn smo_log_drains_under_sustained_split_pressure() {
    // Hammer inserts from several threads so splits outpace the updater for
    // a while; the ring must absorb the burst (or back-pressure writers)
    // and fully drain afterwards.
    let t =
        PacTree::create(PacTreeConfig::named("smo-pressure").with_pool_size(512 << 20)).unwrap();
    let mut handles = Vec::new();
    for tid in 0..4u64 {
        let t = Arc::clone(&t);
        handles.push(std::thread::spawn(move || {
            for i in 0..10_000u64 {
                let k = tid * 1_000_000 + i;
                t.insert(&k.to_be_bytes(), k).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // Every insert acknowledged; splits recorded.
    assert_eq!(t.count_pairs(), 40_000);
    let splits = t.stats().splits.load(Ordering::Relaxed);
    assert!(splits > 100, "sustained split pressure: {splits}");
    // Drain.
    for _ in 0..2000 {
        if t.pending_smo_count() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(t.pending_smo_count(), 0);
    assert_eq!(
        t.stats().smo_replayed.load(Ordering::Relaxed),
        splits + t.stats().merges.load(Ordering::Relaxed),
        "every SMO replayed exactly once"
    );
    // After drain, all data reachable through the search layer directly.
    t.stats().reset();
    for tid in 0..4u64 {
        for i in (0..10_000u64).step_by(97) {
            let k = tid * 1_000_000 + i;
            assert_eq!(t.lookup(&k.to_be_bytes()), Some(k));
        }
    }
    assert!(t.direct_hit_ratio() > 0.95, "{}", t.direct_hit_ratio());
    t.check_invariants();
    t.destroy();
}

#[test]
fn interleaved_split_and_merge_of_same_region() {
    // Insert/delete waves over the same key range force splits and merges
    // whose anchors collide; timestamp-ordered replay must keep the search
    // layer consistent with the data layer.
    let t = PacTree::create(PacTreeConfig::named("smo-waves").with_pool_size(256 << 20)).unwrap();
    for wave in 0..6u64 {
        for i in 0..4000u64 {
            t.insert(&i.to_be_bytes(), wave * 10_000 + i).unwrap();
        }
        for i in 0..4000u64 {
            if i % 4 != wave % 4 {
                t.remove(&i.to_be_bytes()).unwrap();
            }
        }
        // Mid-wave reads stay correct during churn.
        for i in (0..4000u64).step_by(211) {
            let expect = (i % 4 == wave % 4).then_some(wave * 10_000 + i);
            assert_eq!(t.lookup(&i.to_be_bytes()), expect, "wave {wave} key {i}");
        }
    }
    for _ in 0..1000 {
        if t.pending_smo_count() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    t.check_invariants();
    assert!(t.stats().merges.load(Ordering::Relaxed) > 0);
    t.destroy();
}
