//! PACTree end-to-end behaviour: CRUD, splits/merges, async SMOs, scans,
//! concurrency, and model checks against `BTreeMap`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use pactree::{PacTree, PacTreeConfig};
use proptest::prelude::*;

fn mk(name: &str) -> Arc<PacTree> {
    PacTree::create(PacTreeConfig::named(name)).unwrap()
}

#[test]
fn empty_tree() {
    let t = mk("pt-empty");
    assert_eq!(t.lookup(b"nope"), None);
    assert!(t.scan(b"", 10).is_empty());
    assert_eq!(t.remove(b"nope").unwrap(), None);
    assert_eq!(t.update(b"nope", 1).unwrap(), None);
    assert_eq!(t.count_pairs(), 0);
    assert_eq!(t.node_count(), 1, "head node always exists");
    t.destroy();
}

#[test]
fn basic_crud() {
    let t = mk("pt-crud");
    assert_eq!(t.insert(b"alpha", 1).unwrap(), None);
    assert_eq!(t.insert(b"beta", 2).unwrap(), None);
    assert_eq!(t.lookup(b"alpha"), Some(1));
    assert_eq!(t.lookup(b"beta"), Some(2));
    assert_eq!(t.lookup(b"gamma"), None);
    // Upsert.
    assert_eq!(t.insert(b"alpha", 10).unwrap(), Some(1));
    assert_eq!(t.lookup(b"alpha"), Some(10));
    // Update-only.
    assert_eq!(t.update(b"beta", 20).unwrap(), Some(2));
    assert_eq!(t.update(b"missing", 9).unwrap(), None);
    assert_eq!(t.lookup(b"missing"), None);
    // Remove.
    assert_eq!(t.remove(b"alpha").unwrap(), Some(10));
    assert_eq!(t.lookup(b"alpha"), None);
    assert_eq!(t.remove(b"alpha").unwrap(), None);
    assert_eq!(t.count_pairs(), 1);
    t.destroy();
}

#[test]
fn value_zero_is_legal() {
    let t = mk("pt-zero");
    t.insert(b"z", 0).unwrap();
    assert_eq!(t.lookup(b"z"), Some(0));
    t.destroy();
}

#[test]
fn splits_create_nodes_and_search_layer_catches_up() {
    let t = mk("pt-split");
    for i in 0..1000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    assert!(
        t.node_count() > 8,
        "splits happened: {} nodes",
        t.node_count()
    );
    assert!(t.stats().splits.load(Ordering::Relaxed) >= 8);
    for i in 0..1000u64 {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i));
    }
    // Give the updater a moment, then the SMO log should drain.
    for _ in 0..100 {
        if t.pending_smo_count() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(t.pending_smo_count(), 0, "updater drained the SMO log");
    t.check_invariants();
    t.destroy();
}

#[test]
fn synchronous_smo_mode() {
    let t = PacTree::create(PacTreeConfig::named("pt-sync").with_async_smo(false)).unwrap();
    for i in 0..1000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    assert_eq!(t.pending_smo_count(), 0, "sync mode leaves no pending SMOs");
    for i in 0..1000u64 {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i));
    }
    t.check_invariants();
    t.destroy();
}

#[test]
fn deletes_trigger_merges() {
    let t = mk("pt-merge");
    for i in 0..2000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    let nodes_before = t.node_count();
    for i in 0..2000u64 {
        if i % 8 != 0 {
            assert_eq!(t.remove(&i.to_be_bytes()).unwrap(), Some(i), "key {i}");
        }
    }
    // Wait for merges to be replayed and reclaimed.
    for _ in 0..200 {
        if t.pending_smo_count() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        t.stats().merges.load(Ordering::Relaxed) > 0,
        "merges happened"
    );
    assert!(t.node_count() < nodes_before, "list shrank");
    for i in 0..2000u64 {
        let expect = (i % 8 == 0).then_some(i);
        assert_eq!(t.lookup(&i.to_be_bytes()), expect, "key {i}");
    }
    t.check_invariants();
    t.destroy();
}

#[test]
fn scan_sorted_across_nodes() {
    let t = mk("pt-scan");
    for i in (0..500u64).rev() {
        t.insert(&(i * 2).to_be_bytes(), i * 2).unwrap();
    }
    let got = t.scan(&100u64.to_be_bytes(), 20);
    assert_eq!(got.len(), 20);
    let keys: Vec<u64> = got
        .iter()
        .map(|p| u64::from_be_bytes(p.key.as_slice().try_into().unwrap()))
        .collect();
    let expect: Vec<u64> = (50..70).map(|i| i * 2).collect();
    assert_eq!(keys, expect);
    // Scan past the end.
    let tail = t.scan(&990u64.to_be_bytes(), 100);
    assert_eq!(tail.len(), 5);
    // Full scan is fully sorted.
    let all = t.scan(b"", 10_000);
    assert_eq!(all.len(), 500);
    assert!(all.windows(2).all(|w| w[0].key < w[1].key));
    t.destroy();
}

#[test]
fn string_keys_and_long_keys() {
    let t = mk("pt-strings");
    let mut model = BTreeMap::new();
    for i in 0..300u64 {
        let key = format!(
            "user{:08}additional-padding-{}",
            i * 37 % 1000,
            "x".repeat((i % 50) as usize)
        );
        model.insert(key.clone().into_bytes(), i);
        t.insert(key.as_bytes(), i).unwrap();
    }
    for (k, v) in &model {
        assert_eq!(t.lookup(k), Some(*v));
    }
    let start = b"user0000".to_vec();
    let expect: Vec<_> = model
        .range(start.clone()..)
        .take(10)
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let got: Vec<_> = t
        .scan(&start, 10)
        .into_iter()
        .map(|p| (p.key, p.value))
        .collect();
    assert_eq!(got, expect);
    t.destroy();
}

#[test]
fn model_check_random_ops() {
    let t = mk("pt-model");
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut x = 88172645463325252u64;
    for step in 0..30_000u64 {
        // xorshift
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % 5000;
        let kb = key.to_be_bytes();
        match x % 10 {
            0..=5 => {
                let old = t.insert(&kb, step).unwrap();
                assert_eq!(old, model.insert(key, step), "insert {key}");
            }
            6..=7 => {
                let old = t.remove(&kb).unwrap();
                assert_eq!(old, model.remove(&key), "remove {key}");
            }
            8 => {
                assert_eq!(t.lookup(&kb), model.get(&key).copied(), "lookup {key}");
            }
            _ => {
                let got: Vec<u64> = t
                    .scan(&kb, 5)
                    .into_iter()
                    .map(|p| u64::from_be_bytes(p.key.as_slice().try_into().unwrap()))
                    .collect();
                let expect: Vec<u64> = model.range(key..).take(5).map(|(k, _)| *k).collect();
                assert_eq!(got, expect, "scan {key}");
            }
        }
    }
    assert_eq!(t.count_pairs(), model.len());
    t.check_invariants();
    t.destroy();
}

#[test]
fn concurrent_inserts_disjoint_ranges() {
    let t = mk("pt-conc-ins");
    let mut handles = Vec::new();
    for tid in 0..8u64 {
        let t = Arc::clone(&t);
        handles.push(std::thread::spawn(move || {
            for i in 0..3000u64 {
                let k = tid * 1_000_000 + i;
                t.insert(&k.to_be_bytes(), k).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for tid in 0..8u64 {
        for i in (0..3000u64).step_by(7) {
            let k = tid * 1_000_000 + i;
            assert_eq!(t.lookup(&k.to_be_bytes()), Some(k));
        }
    }
    assert_eq!(t.count_pairs(), 8 * 3000);
    t.check_invariants();
    t.destroy();
}

#[test]
fn concurrent_mixed_workload() {
    let t = mk("pt-conc-mix");
    for i in 0..5000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    // Writers churn the upper range.
    for tid in 0..4u64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = 100_000 + tid * 10_000 + (i % 2000);
                t.insert(&k.to_be_bytes(), i).unwrap();
                if i % 2 == 1 {
                    t.remove(&k.to_be_bytes()).unwrap();
                }
                i += 1;
            }
        }));
    }
    // Readers check the stable lower range.
    for _ in 0..4 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        let errors = Arc::clone(&errors);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for i in (0..5000u64).step_by(113) {
                    if t.lookup(&i.to_be_bytes()) != Some(i) {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let s = t.scan(&1000u64.to_be_bytes(), 50);
                if s.len() != 50 {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "readers saw inconsistent data"
    );
    for i in 0..5000u64 {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i));
    }
    t.check_invariants();
    t.destroy();
}

#[test]
fn jump_distance_stats_recorded() {
    let t = mk("pt-jump");
    for i in 0..5000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    // During a sequential fill the tail node splits faster than the updater
    // replays, so hop counts are recorded (possibly many per locate).
    let total: u64 = t.stats().jump_histogram().iter().map(|&(_, c)| c).sum();
    assert!(total > 0, "locates were recorded");
    // Once the SMO log drains, lookups reach their target directly.
    for _ in 0..500 {
        if t.pending_smo_count() == 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    t.stats().reset();
    for i in (0..5000u64).step_by(13) {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i));
    }
    assert!(
        t.stats().direct_hit_ratio() > 0.95,
        "drained search layer gives direct hits: {}",
        t.stats().direct_hit_ratio()
    );
    t.destroy();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_pactree_matches_btreemap(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..40), 0..4u8, any::<u64>()), 1..400),
        seed in any::<u32>(),
    ) {
        let name = format!("pt-prop-{seed}-{}", ops.len());
        let t = mk(&name);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (key, op, value) in ops {
            match op {
                0 | 1 => {
                    let old = t.insert(&key, value).unwrap();
                    prop_assert_eq!(old, model.insert(key, value));
                }
                2 => {
                    let old = t.remove(&key).unwrap();
                    prop_assert_eq!(old, model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(t.lookup(&key), model.get(&key).copied());
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(t.lookup(k), Some(*v));
        }
        let all: Vec<_> = t.scan(b"", usize::MAX >> 1).into_iter().map(|p| (p.key, p.value)).collect();
        let expect: Vec<_> = model.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(all, expect);
        t.destroy();
    }
}

#[test]
fn range_first_last_api() {
    let t = mk("pt-range-api");
    assert!(t.first().is_none());
    assert!(t.last().is_none());
    assert!(t.is_empty());
    for i in (10..5000u64).step_by(10) {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    assert!(!t.is_empty());
    let first = t.first().unwrap();
    assert_eq!(
        u64::from_be_bytes(first.key.as_slice().try_into().unwrap()),
        10
    );
    let last = t.last().unwrap();
    assert_eq!(
        u64::from_be_bytes(last.key.as_slice().try_into().unwrap()),
        4990
    );

    let r = t.range(&100u64.to_be_bytes(), &200u64.to_be_bytes(), 1000);
    let keys: Vec<u64> = r
        .iter()
        .map(|p| u64::from_be_bytes(p.key.as_slice().try_into().unwrap()))
        .collect();
    assert_eq!(keys, (100..200).step_by(10).collect::<Vec<u64>>());
    // Limit applies before the end bound.
    assert_eq!(
        t.range(&0u64.to_be_bytes(), &10_000u64.to_be_bytes(), 7)
            .len(),
        7
    );
    // Empty range.
    assert!(t
        .range(&300u64.to_be_bytes(), &300u64.to_be_bytes(), 10)
        .is_empty());
    t.destroy();
}
