//! Differential property tests for the SIMD probe kernels: every kernel
//! set (SWAR fallback, best vector set, active dispatch) must agree with
//! the naive per-byte scalar reference on random fingerprint arrays, random
//! probe bytes, and random `Node16` count bounds — covering both dispatch
//! paths (forced-fallback SWAR and the host's best vector kernels) in one
//! test run. The exhaustive all-256-probe-bytes sweep lives in the module's
//! unit tests; these shake the input space.

use std::sync::atomic::AtomicU8;

use pactree::simd;
use proptest::collection::vec;
use proptest::prelude::*;

/// 8-aligned like the in-tree fingerprint/key arrays, so the SWAR word
/// path (not its unaligned byte fallback) is what gets exercised.
#[repr(align(8))]
struct Aligned<const N: usize>([AtomicU8; N]);

fn aligned<const N: usize>(bytes: &[u8]) -> Aligned<N> {
    Aligned(std::array::from_fn(|i| AtomicU8::new(bytes[i])))
}

/// The kernel sets a process can dispatch to, plus the active choice.
fn kernel_sets() -> [&'static simd::Kernels; 3] {
    [simd::swar(), simd::best(), simd::active()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fp_match64_matches_scalar(bytes in vec(any::<u8>(), 64), fp in any::<u8>()) {
        let fps = aligned::<64>(&bytes);
        let want = simd::scalar().fp64(&fps.0, fp);
        for k in kernel_sets() {
            prop_assert_eq!(k.fp64(&fps.0, fp), want, "kernel {}", k.name());
        }
    }

    #[test]
    fn fp_match32_matches_scalar(bytes in vec(any::<u8>(), 32), fp in any::<u8>()) {
        let fps = aligned::<32>(&bytes);
        let want = simd::scalar().fp32(&fps.0, fp);
        for k in kernel_sets() {
            prop_assert_eq!(k.fp32(&fps.0, fp), want, "kernel {}", k.name());
        }
    }

    #[test]
    fn node16_match_matches_scalar(
        bytes in vec(any::<u8>(), 16),
        b in any::<u8>(),
        count in 0usize..21,
    ) {
        let keys = aligned::<16>(&bytes);
        let want = simd::scalar().match16(&keys.0, b, count);
        for k in kernel_sets() {
            prop_assert_eq!(k.match16(&keys.0, b, count), want, "kernel {}", k.name());
        }
    }

    /// `Node48` occupancy walks: every kernel must flag exactly the bytes
    /// that differ from `0xFF`, for both sparse and near-full indexes. The
    /// weight toward 0xFF mirrors a freshly-grown Node48 (mostly empty),
    /// and near-empty bytes (0xFE) probe the compare's exactness.
    #[test]
    fn n48_occupied_matches_scalar(
        sel in vec(0u8..6, 256),
        slots in vec(0u8..48, 256),
    ) {
        // Weight toward 0xFF (a freshly-grown Node48 is mostly empty); the
        // 0xFE lane probes the compare's exactness one bit off empty.
        let bytes: Vec<u8> = sel
            .iter()
            .zip(&slots)
            .map(|(&s, &slot)| match s {
                0..=3 => 0xFF,
                4 => slot,
                _ => 0xFE,
            })
            .collect();
        let index = aligned::<256>(&bytes);
        let want = simd::scalar().n48(&index.0);
        for (w, word) in want.iter().enumerate() {
            for bit in 0..64 {
                let flagged = (word >> bit) & 1 == 1;
                prop_assert_eq!(flagged, bytes[w * 64 + bit] != 0xFF, "word {} bit {}", w, bit);
            }
        }
        for k in kernel_sets() {
            prop_assert_eq!(k.n48(&index.0), want, "kernel {}", k.name());
        }
    }

    /// The sorted-slot rank gather: every kernel must agree with the
    /// scalar load+bswap reference over a random entry table, random slot
    /// subsets (duplicates and any order allowed), and every key-word
    /// offset the data node uses — exercising AVX2's 4-lane gather, its
    /// scalar tail, and the shared fallback in one sweep.
    #[test]
    fn key_rank_matches_scalar(
        words in vec(any::<u64>(), 64 * 6),
        slots in vec(0u8..64, 0..64),
        word in 0usize..4,
    ) {
        #[repr(align(8))]
        struct Entries([std::sync::atomic::AtomicU64; 64 * 6]);
        let entries = Entries(std::array::from_fn(|i| {
            std::sync::atomic::AtomicU64::new(words[i])
        }));
        let base = entries.0.as_ptr() as *const u8;
        let (stride, offset) = (6 * 8, (2 + word) * 8);
        let mut want = vec![0u64; slots.len()];
        // SAFETY: every slot id < 64 addresses an aligned u64 inside
        // `entries`; the table is exclusively ours.
        unsafe { simd::scalar().key_rank(base, stride, offset, &slots, &mut want) };
        for (i, &s) in slots.iter().enumerate() {
            prop_assert_eq!(want[i], words[s as usize * 6 + 2 + word].swap_bytes());
        }
        for k in kernel_sets() {
            let mut got = vec![0u64; slots.len()];
            // SAFETY: as above.
            unsafe { k.key_rank(base, stride, offset, &slots, &mut got) };
            prop_assert_eq!(&got, &want, "kernel {}", k.name());
        }
    }

    /// Duplicate-heavy arrays (few distinct byte values) stress the borrow
    /// chains of the SWAR zero-byte detection: adjacent equal and
    /// off-by-one bytes are exactly where an inexact formulation tears.
    #[test]
    fn fp_match64_dense_duplicates(
        seed in vec(0u8..4, 64),
        base in any::<u8>(),
        fp_off in 0u8..4,
    ) {
        let bytes: Vec<u8> = seed.iter().map(|&s| base.wrapping_add(s)).collect();
        let fps = aligned::<64>(&bytes);
        let fp = base.wrapping_add(fp_off);
        let want = simd::scalar().fp64(&fps.0, fp);
        for k in kernel_sets() {
            prop_assert_eq!(k.fp64(&fps.0, fp), want, "kernel {}", k.name());
        }
    }
}
