//! Behavioural tests for PACTree's configuration space: every Figure 12
//! ablation knob must keep the index correct, and the structural guarantees
//! behind each knob must be observable.

use std::sync::atomic::Ordering;

use pactree::{PacTree, PacTreeConfig};
use pmem::model::{self, NvmModelConfig};

fn check_roundtrip(cfg: PacTreeConfig, tag: &str) {
    let t = PacTree::create(cfg).unwrap();
    for i in 0..3000u64 {
        t.insert(&i.to_be_bytes(), i + 1).unwrap();
    }
    for i in 0..3000u64 {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i + 1), "{tag}: key {i}");
    }
    let all = t.scan(b"", 10_000);
    assert_eq!(all.len(), 3000, "{tag}");
    assert!(all.windows(2).all(|w| w[0].key < w[1].key), "{tag}: sorted");
    for i in (0..3000u64).step_by(3) {
        assert_eq!(t.remove(&i.to_be_bytes()).unwrap(), Some(i + 1), "{tag}");
    }
    t.check_invariants();
    t.destroy();
}

#[test]
fn per_numa_pools_variant() {
    pmem::numa::set_topology(2);
    check_roundtrip(
        PacTreeConfig::named("cfg-numa2")
            .with_pool_size(128 << 20)
            .with_numa_pools(2),
        "numa2",
    );
}

#[test]
fn sync_smo_variant() {
    check_roundtrip(
        PacTreeConfig::named("cfg-sync")
            .with_pool_size(128 << 20)
            .with_async_smo(false),
        "sync",
    );
}

#[test]
fn persist_permutation_variant() {
    let mut cfg = PacTreeConfig::named("cfg-permpersist").with_pool_size(128 << 20);
    cfg.persist_permutation = true;
    check_roundtrip(cfg, "perm-persist");
}

#[test]
fn dram_search_layer_variant() {
    let mut cfg = PacTreeConfig::named("cfg-dram").with_pool_size(128 << 20);
    cfg.search_layer_dram = true;
    check_roundtrip(cfg, "dram-search");
}

#[test]
fn dram_search_layer_is_not_charged() {
    let mut cfg = PacTreeConfig::named("cfg-dram-charge").with_pool_size(128 << 20);
    cfg.search_layer_dram = true;
    let t = PacTree::create(cfg).unwrap();
    for i in 0..2000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    // With the accounting model on, search-layer reads must not appear in
    // the search pool's media counters.
    model::set_config(NvmModelConfig::accounting());
    for i in 0..2000u64 {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i));
    }
    model::set_config(NvmModelConfig::disabled());
    let search_pool = &t.pools()[0];
    assert_eq!(
        search_pool.stats().snapshot().media_read_bytes,
        0,
        "DRAM search layer must not be charged"
    );
    t.destroy();
}

#[test]
fn selective_persistence_saves_flushes() {
    // Scans with persist_permutation=false must flush strictly less than
    // with it on (the §4.4/Figure 12 claim).
    let flushes_with = scan_flushes("cfg-sp-on", true);
    let flushes_without = scan_flushes("cfg-sp-off", false);
    assert!(
        flushes_without < flushes_with,
        "selective persistence must reduce flushes: {flushes_without} vs {flushes_with}"
    );
}

fn scan_flushes(name: &str, persist_perm: bool) -> u64 {
    let mut cfg = PacTreeConfig::named(name).with_pool_size(128 << 20);
    cfg.persist_permutation = persist_perm;
    let t = PacTree::create(cfg).unwrap();
    for i in 0..2000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    model::set_config(NvmModelConfig::accounting());
    let before = pmem::stats::global().snapshot();
    for i in (0..2000u64).step_by(50) {
        let _ = t.scan(&i.to_be_bytes(), 100);
    }
    let d = pmem::stats::global().snapshot().since(&before);
    model::set_config(NvmModelConfig::disabled());
    t.destroy();
    d.flushes
}

#[test]
fn long_keys_through_the_full_tree() {
    let t =
        PacTree::create(PacTreeConfig::named("cfg-longkeys").with_pool_size(256 << 20)).unwrap();
    // Keys above the 32-byte inline limit spill to overflow blocks; splits
    // must carry them correctly and anchors may themselves overflow.
    let key = |i: u64| -> Vec<u8> {
        format!("long-prefix-{}-{}", "x".repeat(60), i * 37 % 1000).into_bytes()
    };
    let mut model = std::collections::BTreeMap::new();
    for i in 0..1000u64 {
        let k = key(i);
        model.insert(k.clone(), i);
        t.insert(&k, i).unwrap();
    }
    for (k, v) in &model {
        assert_eq!(t.lookup(k), Some(*v));
    }
    let got: Vec<Vec<u8>> = t.scan(b"long", 10_000).into_iter().map(|p| p.key).collect();
    let expect: Vec<Vec<u8>> = model.keys().cloned().collect();
    assert_eq!(got, expect);
    // Remove half, forcing merges that move overflow keys between nodes.
    for (i, k) in model.keys().enumerate() {
        if i % 2 == 0 {
            t.remove(k).unwrap();
        }
    }
    t.check_invariants();
    t.destroy();
}

#[test]
fn updater_drains_on_nudge() {
    let t = PacTree::create(PacTreeConfig::named("cfg-updater").with_pool_size(128 << 20)).unwrap();
    for i in 0..5000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    // The async updater should converge quickly once writes stop.
    let mut waited = 0;
    while t.pending_smo_count() > 0 && waited < 1000 {
        std::thread::sleep(std::time::Duration::from_millis(2));
        waited += 1;
    }
    assert_eq!(t.pending_smo_count(), 0, "updater drained");
    assert!(t.stats().smo_replayed.load(Ordering::Relaxed) > 0);
    // After drain, every lookup is a direct hit via the search layer.
    t.stats().reset();
    for i in (0..5000u64).step_by(7) {
        assert_eq!(t.lookup(&i.to_be_bytes()), Some(i));
    }
    assert!(
        t.direct_hit_ratio() > 0.95,
        "drained search layer gives direct hits: {}",
        t.direct_hit_ratio()
    );
    t.destroy();
}

#[test]
fn update_protocol_is_out_of_place() {
    // §5.5: an update writes a *new* slot and swaps the bitmap — the old
    // slot's value must remain untouched until the swap (we verify the
    // visible effect: version changes and value is replaced atomically).
    let t = PacTree::create(PacTreeConfig::named("cfg-update").with_pool_size(64 << 20)).unwrap();
    t.insert(b"k", 1).unwrap();
    for i in 2..100u64 {
        assert_eq!(t.update(b"k", i).unwrap(), Some(i - 1));
        assert_eq!(t.lookup(b"k"), Some(i));
    }
    // The node never grows beyond one pair.
    assert_eq!(t.count_pairs(), 1);
    t.destroy();
}
