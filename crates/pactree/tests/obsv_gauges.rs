//! The observability pipeline gauges against a real write-heavy run:
//! after `quiesce()` the SMO replay-lag and epoch-backlog gauges must
//! drain to zero, and the per-op histograms must have seen every op.

use std::sync::Arc;
use std::time::Duration;

use pactree::{PacTree, PacTreeConfig};

fn gauge(sample: &obsv::Sample, name: &str) -> f64 {
    *sample
        .gauges
        .get(name)
        .unwrap_or_else(|| panic!("gauge {name} registered; have {:?}", sample.gauges.keys()))
}

#[test]
fn smo_and_epoch_gauges_drain_to_zero_after_quiesce() {
    let name = "pt-obsv-drain";
    let t = PacTree::create(PacTreeConfig::named(name)).unwrap();
    let threads = 4;
    let per_thread = 1500u64;

    // Write-heavy phase: concurrent inserts force leaf splits (SMO log
    // traffic) and removes queue epoch reclamation work.
    std::thread::scope(|s| {
        for w in 0..threads {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for i in 0..per_thread {
                    let k = (w * per_thread + i).to_be_bytes();
                    t.insert(&k, i).unwrap();
                    if i % 3 == 0 {
                        t.remove(&k).unwrap();
                    }
                }
            });
        }
    });

    let prefix = format!("pactree.{name}");
    let mid = obsv::global().sample();
    // The gauges exist while the tree is alive (values are race-y mid-run;
    // only existence and non-negativity are asserted here).
    assert!(gauge(&mid, &format!("{prefix}.smo.pending")) >= 0.0);
    assert!(gauge(&mid, &format!("{prefix}.epoch.backlog")) >= 0.0);

    assert!(
        t.quiesce(Duration::from_secs(60)),
        "quiesce timed out with work pending"
    );

    let done = obsv::global().sample();
    assert_eq!(gauge(&done, &format!("{prefix}.smo.pending")), 0.0);
    assert_eq!(
        gauge(&done, &format!("{prefix}.smo.replay_lag_max_slot")),
        0.0
    );
    assert_eq!(gauge(&done, &format!("{prefix}.epoch.backlog")), 0.0);

    // The histogram source saw every operation of the run.
    let hist = done
        .hists
        .get(&prefix)
        .unwrap_or_else(|| panic!("hist source {prefix}; have {:?}", done.hists.keys()));
    let inserts = hist.get(obsv::OpKind::Insert).count();
    let removes = hist.get(obsv::OpKind::Remove).count();
    assert_eq!(inserts, threads * per_thread);
    assert_eq!(removes, threads * per_thread.div_ceil(3));

    // Jump-hop gauges: every locate lands somewhere, so the hop-count
    // distribution is registered and sums to a positive count.
    let hops: f64 = ["h0", "h1", "h2", "h3", "h4plus"]
        .iter()
        .map(|b| gauge(&done, &format!("{prefix}.jump_hops.{b}")))
        .sum();
    assert!(hops > 0.0, "jump-hop histogram populated");

    t.destroy();
}

#[test]
fn gauges_vanish_when_tree_is_destroyed() {
    let name = "pt-obsv-vanish";
    let t = PacTree::create(PacTreeConfig::named(name)).unwrap();
    t.insert(b"k", 1).unwrap();
    let prefix = format!("pactree.{name}");
    assert!(obsv::global()
        .sample()
        .gauges
        .contains_key(&format!("{prefix}.smo.pending")));
    t.destroy();
    // Weak-captured callbacks return None once the tree is gone: the
    // sample must not contain stale sources.
    let after = obsv::global().sample();
    assert!(!after.gauges.contains_key(&format!("{prefix}.smo.pending")));
    assert!(!after.hists.contains_key(&prefix));
}
