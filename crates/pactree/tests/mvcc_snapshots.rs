//! Multi-version PACTree: snapshot isolation, COW correctness, and diff
//! semantics (DESIGN.md §13), checked against `BTreeMap` shadows.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pactree::mvcc::DiffEntry;
use pactree::{PacTree, PacTreeConfig};
use proptest::prelude::*;

fn mk(name: &str) -> Arc<PacTree> {
    PacTree::create(PacTreeConfig::named(name)).unwrap()
}

fn shadow_of(t: &PacTree) -> BTreeMap<Vec<u8>, u64> {
    t.scan(b"", usize::MAX >> 1)
        .into_iter()
        .map(|p| (p.key, p.value))
        .collect()
}

fn scan_at_all(t: &PacTree, snap: u64) -> Vec<(Vec<u8>, u64)> {
    t.scan_at(snap, b"", usize::MAX >> 1)
        .unwrap()
        .into_iter()
        .map(|p| (p.key, p.value))
        .collect()
}

#[test]
fn snapshot_of_empty_tree() {
    let t = mk("mv-empty");
    let s = t.snapshot();
    assert_eq!(t.mvcc().live_snapshots(), 1);
    t.insert(b"after", 1).unwrap();
    assert!(scan_at_all(&t, s).is_empty());
    assert_eq!(t.lookup(b"after"), Some(1));
    assert!(t.release_snapshot(s));
    assert!(!t.release_snapshot(s), "double release is rejected");
    assert_eq!(t.mvcc().live_snapshots(), 0);
    t.destroy();
}

#[test]
fn writes_after_snapshot_are_invisible() {
    let t = mk("mv-isolation");
    for i in 0..500u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    let expect = shadow_of(&t);
    let s = t.snapshot();

    // Mutate heavily: overwrite, delete, insert new keys.
    for i in 0..500u64 {
        match i % 3 {
            0 => {
                t.insert(&i.to_be_bytes(), i + 10_000).unwrap();
            }
            1 => {
                t.remove(&i.to_be_bytes()).unwrap();
            }
            _ => {}
        }
    }
    for i in 500..900u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }

    let got: BTreeMap<Vec<u8>, u64> = scan_at_all(&t, s).into_iter().collect();
    assert_eq!(got, expect, "snapshot view drifted");
    // Live view reflects the mutations.
    assert_eq!(t.lookup(&0u64.to_be_bytes()), Some(10_000));
    assert_eq!(t.lookup(&1u64.to_be_bytes()), None);
    assert!(t.release_snapshot(s));
    t.check_invariants();
    t.destroy();
}

#[test]
fn snapshot_survives_splits_and_merges() {
    let t = mk("mv-smo");
    for i in 0..200u64 {
        t.insert(&(i * 10).to_be_bytes(), i).unwrap();
    }
    let expect = shadow_of(&t);
    let s = t.snapshot();
    // Force splits (dense inserts) and merges (mass deletes) under the
    // live snapshot.
    for i in 0..4000u64 {
        t.insert(&(i * 3 + 1).to_be_bytes(), i).unwrap();
    }
    for i in 0..4000u64 {
        t.remove(&(i * 3 + 1).to_be_bytes()).unwrap();
    }
    let got: BTreeMap<Vec<u8>, u64> = scan_at_all(&t, s).into_iter().collect();
    assert_eq!(got, expect, "snapshot corrupted by splits/merges");
    assert!(t.release_snapshot(s));
    t.check_invariants();
    t.destroy();
}

#[test]
fn multiple_snapshots_independent_views() {
    let t = mk("mv-multi");
    t.insert(b"k", 1).unwrap();
    let s1 = t.snapshot();
    t.insert(b"k", 2).unwrap();
    t.insert(b"k2", 20).unwrap();
    let s2 = t.snapshot();
    t.insert(b"k", 3).unwrap();
    t.remove(b"k2").unwrap();

    assert_eq!(scan_at_all(&t, s1), vec![(b"k".to_vec(), 1)]);
    assert_eq!(
        scan_at_all(&t, s2),
        vec![(b"k".to_vec(), 2), (b"k2".to_vec(), 20)]
    );
    assert_eq!(t.lookup(b"k"), Some(3));
    // Release out of order.
    assert!(t.release_snapshot(s1));
    assert_eq!(
        scan_at_all(&t, s2),
        vec![(b"k".to_vec(), 2), (b"k2".to_vec(), 20)]
    );
    assert!(t.release_snapshot(s2));
    assert!(t.scan_at(s1, b"", 1).is_none(), "released id is unknown");
    t.destroy();
}

#[test]
fn scan_at_range_and_count_semantics() {
    let t = mk("mv-range");
    for i in 0..300u64 {
        t.insert(&(i * 2).to_be_bytes(), i).unwrap();
    }
    let s = t.snapshot();
    for i in 0..300u64 {
        t.insert(&(i * 2 + 1).to_be_bytes(), 999).unwrap();
    }
    // Count cap.
    let got = t.scan_at(s, &100u64.to_be_bytes(), 10).unwrap();
    assert_eq!(got.len(), 10);
    let keys: Vec<u64> = got
        .iter()
        .map(|p| u64::from_be_bytes(p.key.as_slice().try_into().unwrap()))
        .collect();
    assert_eq!(keys, (50..60).map(|i| i * 2).collect::<Vec<u64>>());
    // Start past the end.
    assert!(t
        .scan_at(s, &10_000u64.to_be_bytes(), 5)
        .unwrap()
        .is_empty());
    // Zero count.
    assert!(t.scan_at(s, b"", 0).unwrap().is_empty());
    assert!(t.release_snapshot(s));
    t.destroy();
}

#[test]
fn snapshot_is_o1() {
    // O(1) creation: time a snapshot on a tiny tree and on one 100x
    // larger; the latter must not scale with size. Generous factor to stay
    // robust on noisy CI — the real guard is the bench in results/.
    let t_small = mk("mv-o1-small");
    for i in 0..100u64 {
        t_small.insert(&i.to_be_bytes(), i).unwrap();
    }
    let t_big = mk("mv-o1-big");
    for i in 0..10_000u64 {
        t_big.insert(&i.to_be_bytes(), i).unwrap();
    }
    let reps = 200;
    let small = std::time::Instant::now();
    for _ in 0..reps {
        let s = t_small.snapshot();
        t_small.release_snapshot(s);
    }
    let small = small.elapsed();
    let big = std::time::Instant::now();
    for _ in 0..reps {
        let s = t_big.snapshot();
        t_big.release_snapshot(s);
    }
    let big = big.elapsed();
    assert!(
        big < small * 20 + std::time::Duration::from_millis(50),
        "snapshot cost scales with tree size: small={small:?} big={big:?}"
    );
    t_small.destroy();
    t_big.destroy();
}

#[test]
fn zero_snapshots_leave_no_residue() {
    let t = mk("mv-residue");
    for i in 0..1000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    let s = t.snapshot();
    for i in 0..1000u64 {
        t.insert(&i.to_be_bytes(), i + 1).unwrap();
    }
    assert!(t.mvcc().frozen_nodes() > 0, "writers froze under snapshot");
    t.release_snapshot(s);
    // After release, new mutations take the plain fast path: no freezing.
    let frozen = t.mvcc().frozen_nodes();
    for i in 0..1000u64 {
        t.insert(&i.to_be_bytes(), i + 2).unwrap();
    }
    assert_eq!(
        t.mvcc().frozen_nodes(),
        frozen,
        "mutations froze nodes with no live snapshot"
    );
    t.destroy();
}

#[test]
fn diff_reports_adds_removes_changes() {
    let t = mk("mv-diff");
    for i in 0..100u64 {
        t.insert(&(i * 2).to_be_bytes(), i).unwrap();
    }
    let a = t.snapshot();
    t.insert(&7u64.to_be_bytes(), 70).unwrap(); // add
    t.remove(&4u64.to_be_bytes()).unwrap(); // remove (key 4 = i 2)
    t.insert(&10u64.to_be_bytes(), 555).unwrap(); // change (key 10 = i 5)
    let b = t.snapshot();

    let d = t.diff(a, b).unwrap();
    let mut added = Vec::new();
    let mut removed = Vec::new();
    let mut changed = Vec::new();
    for e in d {
        match e {
            DiffEntry::Added(k, v) => added.push((k, v)),
            DiffEntry::Removed(k, v) => removed.push((k, v)),
            DiffEntry::Changed(k, o, n) => changed.push((k, o, n)),
        }
    }
    assert_eq!(added, vec![(7u64.to_be_bytes().to_vec(), 70)]);
    assert_eq!(removed, vec![(4u64.to_be_bytes().to_vec(), 2)]);
    assert_eq!(changed, vec![(10u64.to_be_bytes().to_vec(), 5, 555)]);
    // Diff with self is empty, both directions invert.
    assert!(t.diff(a, a).unwrap().is_empty());
    assert!(t.diff(b, b).unwrap().is_empty());
    let rev = t.diff(b, a).unwrap();
    assert_eq!(rev.len(), 3);
    t.release_snapshot(a);
    t.release_snapshot(b);
    t.destroy();
}

#[test]
fn diff_matches_shadow_models() {
    let t = mk("mv-diff-model");
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut step = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for _ in 0..2000 {
        let k = step() % 700;
        t.insert(&k.to_be_bytes(), step()).unwrap();
    }
    let ma = shadow_of(&t);
    let a = t.snapshot();
    for _ in 0..2000 {
        let k = step() % 900;
        if step() % 4 == 0 {
            t.remove(&k.to_be_bytes()).unwrap();
        } else {
            t.insert(&k.to_be_bytes(), step()).unwrap();
        }
    }
    let mb = shadow_of(&t);
    let b = t.snapshot();

    let mut expect: BTreeMap<Vec<u8>, DiffEntry> = BTreeMap::new();
    for (k, v) in &ma {
        match mb.get(k) {
            None => {
                expect.insert(k.clone(), DiffEntry::Removed(k.clone(), *v));
            }
            Some(n) if n != v => {
                expect.insert(k.clone(), DiffEntry::Changed(k.clone(), *v, *n));
            }
            _ => {}
        }
    }
    for (k, v) in &mb {
        if !ma.contains_key(k) {
            expect.insert(k.clone(), DiffEntry::Added(k.clone(), *v));
        }
    }
    let got: BTreeMap<Vec<u8>, DiffEntry> = t
        .diff(a, b)
        .unwrap()
        .into_iter()
        .map(|e| {
            let k = match &e {
                DiffEntry::Added(k, _) | DiffEntry::Removed(k, _) | DiffEntry::Changed(k, _, _) => {
                    k.clone()
                }
            };
            (k, e)
        })
        .collect();
    assert_eq!(got, expect);
    t.release_snapshot(a);
    t.release_snapshot(b);
    t.destroy();
}

#[test]
fn concurrent_writers_never_corrupt_pinned_version() {
    let t = mk("mv-conc");
    for i in 0..3000u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    let expect: Arc<BTreeMap<Vec<u8>, u64>> = Arc::new(shadow_of(&t));
    let s = t.snapshot();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Writers churn while verifiers repeatedly re-read the snapshot.
    for tid in 0..4u64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = (tid * 1_000 + i * 7) % 6000;
                if i % 3 == 2 {
                    t.remove(&k.to_be_bytes()).unwrap();
                } else {
                    t.insert(&k.to_be_bytes(), i).unwrap();
                }
                i += 1;
            }
        }));
    }
    for _ in 0..2 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        let expect = Arc::clone(&expect);
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let got: BTreeMap<Vec<u8>, u64> = scan_at_all(&t, s).into_iter().collect();
                assert_eq!(&got, expect.as_ref(), "pinned version corrupted");
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(600));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert!(t.release_snapshot(s));
    t.check_invariants();
    t.destroy();
}

#[test]
fn snapshot_taken_mid_churn_is_consistent() {
    // A snapshot taken *while* writers run must still be a consistent cut:
    // every key it shows must have held that exact value at some point, and
    // writer-local keys written before the snapshot call returns by the
    // same thread... keep it simpler: single-writer keys are monotone, so
    // the snapshot of key k must be a value the writer actually wrote.
    let t = mk("mv-cut");
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for tid in 0..4u64 {
        let t = Arc::clone(&t);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut i = 1u64;
            while !stop.load(Ordering::Relaxed) {
                // Monotone values per key; value encodes (tid, i).
                let k = tid * 100 + (i % 50);
                t.insert(&k.to_be_bytes(), i).unwrap();
                i += 1;
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut snaps = Vec::new();
    for _ in 0..5 {
        let s = t.snapshot();
        snaps.push((s, scan_at_all(&t, s)));
        std::thread::sleep(std::time::Duration::from_millis(30));
    }
    // Repeated reads of the same snapshot are stable even under churn.
    for (s, first) in &snaps {
        assert_eq!(&scan_at_all(&t, *s), first, "snapshot view not stable");
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Later snapshots dominate earlier ones (monotone per-key values).
    for w in snaps.windows(2) {
        let early: BTreeMap<_, _> = w[0].1.iter().cloned().collect();
        let late: BTreeMap<_, _> = w[1].1.iter().cloned().collect();
        for (k, v) in &early {
            assert!(
                late.get(k).is_some_and(|lv| lv >= v),
                "later snapshot regressed key"
            );
        }
    }
    for (s, _) in &snaps {
        assert!(t.release_snapshot(*s));
    }
    t.check_invariants();
    t.destroy();
}

#[test]
fn gauges_registered() {
    let t = mk("mv-gauges");
    let prefix = "pactree.mv-gauges";
    let get = |name: &str| {
        let sample = obsv::global().sample();
        *sample
            .gauges
            .get(name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
    };
    let s = t.snapshot();
    for i in 0..500u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    assert_eq!(get(&format!("{prefix}.mvcc.live_snapshots")), 1.0);
    assert!(get(&format!("{prefix}.mvcc.cow_nodes")) > 0.0);
    assert!(get(&format!("{prefix}.mvcc.pinned_backlog")) >= 0.0);
    t.release_snapshot(s);
    assert_eq!(get(&format!("{prefix}.mvcc.live_snapshots")), 0.0);
    t.destroy();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Writes after `snapshot()` are invisible to `scan_at`, for arbitrary
    /// op interleavings and snapshot points.
    #[test]
    fn prop_snapshot_isolation(
        pre in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..24), any::<u64>()), 0..150),
        post in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..24), 0..3u8, any::<u64>()), 0..150),
        seed in any::<u32>(),
    ) {
        let name = format!("mv-prop-{seed}-{}-{}", pre.len(), post.len());
        let t = mk(&name);
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, v) in pre {
            t.insert(&k, v).unwrap();
            model.insert(k, v);
        }
        let s = t.snapshot();
        let frozen_model = model.clone();
        for (k, op, v) in post {
            match op {
                0 | 1 => {
                    let old = t.insert(&k, v).unwrap();
                    prop_assert_eq!(old, model.insert(k, v));
                }
                _ => {
                    let old = t.remove(&k).unwrap();
                    prop_assert_eq!(old, model.remove(&k));
                }
            }
        }
        // Snapshot sees exactly the pre-state.
        let got: BTreeMap<Vec<u8>, u64> = scan_at_all(&t, s).into_iter().collect();
        prop_assert_eq!(&got, &frozen_model);
        // Live tree sees exactly the post-state.
        let live: BTreeMap<Vec<u8>, u64> = shadow_of(&t).into_iter().collect();
        prop_assert_eq!(&live, &model);
        // Partial scans agree with the shadow's ranges.
        if let Some(mid) = frozen_model.keys().nth(frozen_model.len() / 2) {
            let part: Vec<(Vec<u8>, u64)> = t.scan_at(s, mid, 7).unwrap()
                .into_iter().map(|p| (p.key, p.value)).collect();
            let expect: Vec<(Vec<u8>, u64)> = frozen_model
                .range(mid.clone()..).take(7)
                .map(|(k, v)| (k.clone(), *v)).collect();
            prop_assert_eq!(part, expect);
        }
        prop_assert!(t.release_snapshot(s));
        t.destroy();
    }
}
