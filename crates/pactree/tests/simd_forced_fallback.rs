//! Forced-fallback dispatch path: `PACTREE_NO_SIMD=1` must pin the active
//! kernel set to SWAR (vector kernels and prefetch disabled) and the whole
//! tree must still work on top of it. This file holds exactly one test so
//! the env var is set before anything in the process touches the dispatcher
//! (the `OnceLock` choice is made on first use and never revisited).

use std::sync::Arc;

use pactree::{simd, PacTree, PacTreeConfig};

#[test]
fn forced_fallback_dispatches_swar_and_tree_works() {
    // Safe on edition 2021; must happen before the first `simd::active()`.
    std::env::set_var("PACTREE_NO_SIMD", "1");

    let k = simd::active();
    assert_eq!(
        k.name(),
        "swar",
        "PACTREE_NO_SIMD=1 must force the SWAR set"
    );
    assert_eq!(k.id(), 0);

    // End-to-end smoke over the fallback kernels: insert enough keys to
    // split data nodes, then exercise lookup (fp64 probe), scan (sorted
    // walk, no prefetch), and remove.
    let t: Arc<PacTree> = PacTree::create(PacTreeConfig::named("pt-no-simd")).unwrap();
    let key = |i: u32| format!("k{i:05}").into_bytes();
    for i in 0..500u32 {
        assert_eq!(t.insert(&key(i), u64::from(i)).unwrap(), None);
    }
    for i in (0..500u32).step_by(7) {
        assert_eq!(t.lookup(&key(i)), Some(u64::from(i)), "key {i}");
    }
    assert_eq!(t.lookup(b"k99999"), None);

    let page = t.scan(&key(100), 50);
    assert_eq!(page.len(), 50);
    assert_eq!(page[0].key, key(100));
    assert_eq!(page[49].value, 149);

    for i in 0..100u32 {
        assert_eq!(t.remove(&key(i)).unwrap(), Some(u64::from(i)));
    }
    assert_eq!(t.lookup(&key(50)), None);
    assert_eq!(t.count_pairs(), 400);
    t.destroy();
}
