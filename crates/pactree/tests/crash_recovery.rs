//! Crash-injection recovery tests (paper §6.8).
//!
//! The paper injects 100 SIGKILLs and verifies every previously written key
//! survives. We simulate power failures at the persistence layer instead
//! (see `pmem::crash`): crash all pools (discarding everything never
//! persisted), remount, run PACTree recovery, and check the durable
//! linearizability contract — every *completed* operation survives; the
//! index is fully consistent and writable.

use std::sync::Arc;

use pactree::{PacTree, PacTreeConfig};
use pmem::crash;
use pmem::pool::PmemPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn durable_cfg(name: &str) -> PacTreeConfig {
    let mut c = PacTreeConfig::durable(name);
    c.numa_pools = 1;
    c.pool_size = 128 << 20;
    c
}

/// Evict a batch of random cache lines before crashing so the media image
/// diverges from the volatile one: without noise, a workload that fences
/// eagerly leaves both images identical and the crash tests nothing. The
/// seed is fixed per test so failures reproduce deterministically.
fn evict_noise(pools: &[Arc<PmemPool>], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for p in pools {
        crash::evict_random_lines(p, 64, &mut rng);
    }
}

#[test]
fn simple_crash_recovery() {
    let cfg = durable_cfg("cr-simple");
    let t = PacTree::create(cfg.clone()).unwrap();
    for i in 0..2000u64 {
        t.insert(&i.to_be_bytes(), i * 10).unwrap();
    }
    let pools = t.pools();
    drop(t); // stops the updater, drains SMOs
    evict_noise(&pools, 0xA11CE);
    crash::crash_all(&pools, false);

    let t2 = PacTree::recover(cfg).unwrap();
    for i in 0..2000u64 {
        assert_eq!(t2.lookup(&i.to_be_bytes()), Some(i * 10), "key {i} lost");
    }
    t2.check_invariants();
    // Still writable after recovery.
    t2.insert(b"post", 1).unwrap();
    assert_eq!(t2.lookup(b"post"), Some(1));
    t2.destroy();
}

#[test]
fn crash_with_moved_base_addresses() {
    let cfg = durable_cfg("cr-move");
    let t = PacTree::create(cfg.clone()).unwrap();
    for i in 0..1000u64 {
        t.insert(&(i * 3).to_be_bytes(), i).unwrap();
    }
    let pools = t.pools();
    drop(t);
    evict_noise(&pools, 0xB0B);
    crash::crash_all(&pools, true); // remount at different addresses

    let t2 = PacTree::recover(cfg).unwrap();
    for i in 0..1000u64 {
        assert_eq!(t2.lookup(&(i * 3).to_be_bytes()), Some(i));
    }
    t2.check_invariants();
    t2.destroy();
}

#[test]
fn crash_mid_churn_preserves_acknowledged_writes() {
    // Crash while SMOs may be pending in the log: acknowledged writes must
    // survive even though the search layer lags.
    let cfg = durable_cfg("cr-churn");
    let t = PacTree::create(cfg.clone()).unwrap();
    let mut acknowledged = Vec::new();
    for i in 0..3000u64 {
        t.insert(&i.to_be_bytes(), i + 7).unwrap();
        acknowledged.push(i);
    }
    // Delete a slice (also acknowledged).
    for i in 500..700u64 {
        t.remove(&i.to_be_bytes()).unwrap();
    }
    let pools = t.pools();
    // Stop the pre-crash instance's threads, then crash with whatever SMOs
    // are still pending in the persistent log.
    t.stop_updater();
    evict_noise(&pools, 0xC4A2);
    crash::crash_all(&pools, false);
    drop(t);

    let t2 = PacTree::recover(cfg).unwrap();
    for i in 0..3000u64 {
        let expect = if (500..700).contains(&i) {
            None
        } else {
            Some(i + 7)
        };
        assert_eq!(t2.lookup(&i.to_be_bytes()), expect, "key {i}");
    }
    t2.check_invariants();
    t2.destroy();
}

#[test]
fn repeated_random_crashes() {
    // The paper's experiment: many crash/recover cycles with progress in
    // between; all acknowledged data survives every cycle.
    let cfg = durable_cfg("cr-repeat");
    let mut t = PacTree::create(cfg.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut model = std::collections::BTreeMap::new();
    let rounds = std::env::var("PAC_CRASH_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12usize);

    for round in 0..rounds {
        // Mutate.
        for _ in 0..400 {
            let k: u64 = rng.gen_range(0..5000);
            let kb = k.to_be_bytes();
            if rng.gen_bool(0.75) {
                let v: u64 = rng.gen();
                t.insert(&kb, v).unwrap();
                model.insert(k, v);
            } else {
                t.remove(&kb).unwrap();
                model.remove(&k);
            }
        }
        // Random cache evictions make the crash state richer.
        for p in t.pools() {
            crash::evict_random_lines(&p, 64, &mut rng);
        }
        let pools = t.pools();
        t.stop_updater();
        crash::crash_all(&pools, round % 3 == 0);
        drop(t);
        t = PacTree::recover(cfg.clone()).unwrap();
        for (k, v) in &model {
            assert_eq!(
                t.lookup(&k.to_be_bytes()),
                Some(*v),
                "round {round}: key {k} lost"
            );
        }
        t.check_invariants();
    }
    t.destroy();
}

#[test]
fn recovery_replays_pending_split_smo() {
    // Force a pending split SMO across the crash: disable the async updater
    // so entries stay in the log, split, then crash.
    let mut cfg = durable_cfg("cr-smo");
    cfg.async_smo = true;
    let t = PacTree::create(cfg.clone()).unwrap();
    // Fill one node to force splits.
    for i in 0..300u64 {
        t.insert(&i.to_be_bytes(), i).unwrap();
    }
    let pools = t.pools();
    t.stop_updater(); // freeze the pre-crash instance (possibly behind)
    evict_noise(&pools, 0x5310);
    crash::crash_all(&pools, false);
    drop(t);
    let t2 = PacTree::recover(cfg).unwrap();
    assert_eq!(t2.pending_smo_count(), 0, "recovery drained the SMO log");
    for i in 0..300u64 {
        assert_eq!(t2.lookup(&i.to_be_bytes()), Some(i));
    }
    t2.check_invariants();
    t2.destroy();
}

#[test]
fn torn_insert_never_visible() {
    // An insert that never published (bitmap not persisted) must vanish; the
    // write path persists payload before the bitmap, so a crash between the
    // two leaves the slot invisible. We approximate by crashing right after
    // a batch: unpersisted data would surface as corruption in lookups.
    let cfg = durable_cfg("cr-torn");
    let t = Arc::clone(&PacTree::create(cfg.clone()).unwrap());
    for i in 0..1000u64 {
        t.insert(&i.to_be_bytes(), u64::MAX - i).unwrap();
    }
    let pools = t.pools();
    t.stop_updater();
    evict_noise(&pools, 0x7021);
    crash::crash_all(&pools, false);
    drop(t);
    let t2 = PacTree::recover(cfg).unwrap();
    // Every visible pair must decode consistently (no torn keys/values).
    let all = t2.scan(b"", 10_000);
    for p in &all {
        let k = u64::from_be_bytes(p.key.as_slice().try_into().expect("torn key"));
        assert_eq!(p.value, u64::MAX - k, "torn value for key {k}");
    }
    assert_eq!(all.len(), 1000);
    t2.destroy();
}
