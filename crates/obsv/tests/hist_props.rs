//! Property tests for the histogram's two documented guarantees:
//!
//! * **Mergeability** — recording a value stream into N histograms and
//!   merging their snapshots is indistinguishable from recording the whole
//!   stream into one histogram (bucket-exact, any split, any order).
//! * **Bounded relative error** — any reconstructed statistic (quantile,
//!   min, max) is within [`obsv::RELATIVE_ERROR_BOUND`] of the recorded
//!   value, for the full recordable range.

use obsv::hist::{bucket_low, bucket_mid, bucket_of, MAX_VALUE};
use obsv::{HistSnapshot, Histogram, OpHistograms, OpKind, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn merge_equals_single_recording(
        values in proptest::collection::vec(0u64..(1u64 << 40), 0..200),
        split in 0usize..201,
    ) {
        let split = split.min(values.len());
        let (a, b) = values.split_at(split);
        let mut merged = record_all(a);
        merged.merge(&record_all(b));
        prop_assert_eq!(merged, record_all(&values));
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
        b in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
    ) {
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn since_inverts_merge(
        a in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
        b in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
    ) {
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(ab.since(&sa), sb);
    }

    #[test]
    fn since_then_merge_rebuilds_the_superset(
        a in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
        b in proptest::collection::vec(0u64..(1u64 << 40), 0..100),
    ) {
        // The windowed-delta contract the tsdb relies on: for cumulative
        // snapshots old ⊆ new, merging new.since(old) back onto old is the
        // identity — subtraction loses nothing and never goes negative.
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let delta = ab.since(&sa);
        let mut rebuilt = sa.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt, ab);
    }

    #[test]
    fn opset_since_then_merge_roundtrips(
        ops in proptest::collection::vec((0usize..5, 1u64..(1u64 << 40)), 0..150),
        split in 0usize..151,
    ) {
        let split = split.min(ops.len());
        let h = OpHistograms::new();
        for &(k, v) in &ops[..split] {
            h.record(OpKind::ALL[k], v, 0);
        }
        let old = h.snapshot();
        for &(k, v) in &ops[split..] {
            h.record(OpKind::ALL[k], v, 0);
        }
        let new = h.snapshot();
        let delta = new.since(&old);
        prop_assert_eq!(delta.total_count(), (ops.len() - split) as u64);
        let mut rebuilt = old.clone();
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt, new);
    }

    #[test]
    fn bucket_midpoint_within_documented_bound(v in 1u64..MAX_VALUE) {
        let mid = bucket_mid(bucket_of(v));
        let err = (mid as f64 - v as f64).abs() / v as f64;
        prop_assert!(
            err <= RELATIVE_ERROR_BOUND,
            "v={v} mid={mid} err={err} bound={RELATIVE_ERROR_BOUND}"
        );
    }

    #[test]
    fn single_value_quantiles_within_bound(v in 1u64..MAX_VALUE) {
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = s.quantile(q);
            let err = (got as f64 - v as f64).abs() / v as f64;
            prop_assert!(err <= RELATIVE_ERROR_BOUND, "q={q} v={v} got={got}");
        }
        // min uses the bucket's lower edge: never above the recorded value.
        prop_assert!(s.min() <= v);
        prop_assert!(bucket_low(bucket_of(v)) <= v);
    }

    #[test]
    fn weighted_recording_matches_repeated_recording(
        pairs in proptest::collection::vec((1u64..(1u64 << 40), 1u64..17), 0..50),
    ) {
        // record_weighted(v, w) puts the same mass in the same buckets as
        // w plain record(v) calls; only the exact op count differs (one
        // sampled op vs w unsampled ones).
        let (weighted, repeated) = (Histogram::new(), Histogram::new());
        for &(v, w) in &pairs {
            weighted.record_weighted(v, w);
            for _ in 0..w {
                repeated.record(v);
            }
        }
        let (sw, sr) = (weighted.snapshot(), repeated.snapshot());
        prop_assert_eq!(sw.count(), pairs.len() as u64);
        prop_assert_eq!(sw.weight(), pairs.iter().map(|&(_, w)| w).sum::<u64>());
        prop_assert_eq!(sw.weight(), sr.weight());
        prop_assert_eq!(sw.sum(), sr.sum());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(sw.quantile(q), sr.quantile(q));
        }
        prop_assert_eq!(sw.min(), sr.min());
        prop_assert_eq!(sw.max(), sr.max());
    }

    #[test]
    fn opset_merge_matches_single(
        ops in proptest::collection::vec((0usize..5, 1u64..(1u64 << 40)), 0..200),
        split in 0usize..201,
    ) {
        let split = split.min(ops.len());
        let single = OpHistograms::new();
        let (ha, hb) = (OpHistograms::new(), OpHistograms::new());
        for (i, &(k, v)) in ops.iter().enumerate() {
            let kind = OpKind::ALL[k];
            single.record(kind, v, 0);
            if i < split { ha.record(kind, v, 0) } else { hb.record(kind, v, 0) }
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, single.snapshot());
    }
}

/// Windowed subtraction under concurrent recording — the scraper-thread
/// contract behind `obsv::tsdb`: one reader taking sequential snapshots
/// of a histogram under full write load sees per-(stripe,bucket) counters
/// that only grow, so every window delta is exactly non-negative
/// (`old.merge(delta) == new`, which `saturating_sub` clamping would
/// break) and the windows partition the total.
#[test]
fn concurrent_recording_yields_nonnegative_exact_window_deltas() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let h = Histogram::new();
    let ops = OpHistograms::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let (h, ops, stop) = (&h, &ops, &stop);
            s.spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    h.record(t * 1000 + i % 977);
                    ops.record(OpKind::ALL[(i % 5) as usize], i % 977 + 1, 0);
                    i += 1;
                }
            });
        }

        let first = h.snapshot();
        let ops_first = ops.snapshot();
        let mut prev = first.clone();
        let mut ops_prev = ops_first.clone();
        let mut windows = Vec::new();
        for _ in 0..100 {
            let cur = h.snapshot();
            let delta = cur.since(&prev);
            // Merging the delta back onto the older snapshot must rebuild
            // the newer one exactly: any clamped-to-zero (i.e. "negative")
            // bucket, sum, or count would make this fail.
            let mut rebuilt = prev.clone();
            rebuilt.merge(&delta);
            assert_eq!(rebuilt, cur);

            let ops_cur = ops.snapshot();
            let ops_delta = ops_cur.since(&ops_prev);
            let mut ops_rebuilt = ops_prev.clone();
            ops_rebuilt.merge(&ops_delta);
            assert_eq!(ops_rebuilt, ops_cur);

            windows.push(delta);
            prev = cur;
            ops_prev = ops_cur;
        }
        stop.store(true, Ordering::Relaxed);

        // The windows partition the covered span: merging them equals
        // last - first.
        let total = prev.since(&first);
        let mut acc = HistSnapshot::empty();
        for w in &windows {
            acc.merge(w);
        }
        assert_eq!(acc, total);
        assert!(total.count() > 0, "writers made progress under the reader");
    });
}

#[test]
fn counts_survive_arbitrary_split_counts() {
    // Deterministic spot-check across many shard-crossing counts (the
    // striped implementation sums 16 stripes; make sure nothing is lost).
    let h = Histogram::new();
    for i in 0..10_000u64 {
        h.record(i * 37);
    }
    assert_eq!(h.snapshot().count(), 10_000);
}
