//! Span-based, tail-sampled request tracing.
//!
//! A [`TraceCtx`] is stamped at admission (or carried in from the wire) and
//! follows one request through every layer: admission, shard-queue sojourn,
//! batch formation, index execution, and the SMO/epoch critical sections
//! inside the index. `pmem::model` attributes injected NVM latency and
//! token-bucket throttle stalls to whichever span is active on the thread,
//! so a slow request shows *which* NVM effect bit it.
//!
//! Discipline mirrors [`crate::flight`]: completed spans land in per-thread
//! bounded rings (`Mutex`-protected, uncontended except during a harvest),
//! and retention is **tail-based** — when a root span finishes, its trace is
//! kept only if the root latency exceeds [`keep_threshold_ns`] or the
//! outcome is an error class ([`TraceOutcome::Overloaded`] /
//! [`TraceOutcome::DeadlineExceeded`] / [`TraceOutcome::Aborted`] /
//! [`TraceOutcome::Error`]). Everything else rots in the rings and is
//! overwritten, so memory stays bounded no matter the request rate.
//!
//! Cost discipline:
//!
//! * not compiled (`trace` feature off) — every entry point is an empty
//!   inline function;
//! * compiled, un-sampled request — [`stamp`] pays one TLS countdown
//!   decrement (no clock read, no allocation), and [`add_stall`] on any
//!   thread with no active span is a single TLS `Cell` read;
//! * sampled request — clock reads at span edges plus one ring write per
//!   completed span; the harvest walk over all rings happens only for
//!   *retained* (slow/errored) traces.
//!
//! The context/record types below are defined unconditionally so the wire
//! codec and the exporters work in every build; only the recording
//! machinery is feature-gated.

/// Wire-carried trace context: which trace a request belongs to and the
/// span id its server-side spans should parent to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Nonzero for a real trace; 0 means untraced.
    pub trace_id: u64,
    /// The root span id allocated at [`stamp`] time; spans recorded for
    /// this request parent to it.
    pub parent_span: u32,
    /// Whether this request is in the trace sample. Untraced requests
    /// never record anything.
    pub sampled: bool,
    /// Which node's spans this context attributes to: 0 is the stamping
    /// process (router or single node); a router fan-out stamps each
    /// outbound copy with the target endpoint's 1-based ordinal in the
    /// sorted endpoint list, so stitched spans name their node.
    pub node: u16,
    /// Network hops this context has taken (0 = stamped locally). A node
    /// that receives `hop > 0` is serving a fragment of a remote trace and
    /// must not record a second root span; each router resend (bounce)
    /// bumps it, so stitched traces show retry depth.
    pub hop: u8,
}

impl TraceCtx {
    /// The context of a request nobody is tracing.
    pub const UNTRACED: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
        sampled: false,
        node: 0,
        hop: 0,
    };

    /// Whether spans should be recorded for this context.
    #[inline]
    pub fn is_sampled(&self) -> bool {
        self.sampled && self.trace_id != 0
    }

    /// Whether this context was stamped on another node (carried in over
    /// the wire with at least one hop).
    #[inline]
    pub fn is_remote(&self) -> bool {
        self.hop > 0
    }

    /// The context as sent to node `node` (1-based endpoint ordinal):
    /// attribution switches to that node and the hop counter bumps.
    #[inline]
    pub fn forwarded_to(self, node: u16) -> TraceCtx {
        TraceCtx {
            node,
            hop: self.hop.saturating_add(1),
            ..self
        }
    }
}

/// What a span measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Admission to last reply (whole request, recorded by the reply set).
    Root = 0,
    /// Admission control in the submitter: lifecycle gate, ingress token
    /// bucket, shard routing.
    Admission = 1,
    /// Shard-queue sojourn: enqueue to batch drain.
    Queue = 2,
    /// Batch serialization: drain to this operation's execution start
    /// (time spent behind batch predecessors).
    Batch = 3,
    /// The index operation itself.
    IndexOp = 4,
    /// A structural modification (PACTree leaf split/merge, ART node
    /// replacement) on the request path.
    Smo = 5,
    /// Epoch-reclamation critical section (advance/collect).
    Epoch = 6,
    /// Router-side bracket around one endpoint's wire call (send to recv);
    /// detail is the endpoint's 1-based ordinal. Its wall clock is the
    /// stitching anchor for that node's spans.
    RpcCall = 7,
    /// Router-side partition-map refresh after a bounce or send failure.
    MapRefresh = 8,
    /// Router-side resend round after a `WrongPartition` bounce; detail is
    /// the resend attempt number.
    BounceResend = 9,
    /// One migration phase on the source node; detail is the
    /// `cluster::PHASE_*` constant (bulk/delta/seal/flip).
    MigratePhase = 10,
    /// Node-side bracket of a remote trace fragment (admission to last
    /// reply on this node); detail is the node's 1-based ordinal. Stands
    /// in for the root, which only the stamping process records.
    Remote = 11,
}

impl SpanKind {
    /// Short stable name (used in exports).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Root => "root",
            SpanKind::Admission => "admission",
            SpanKind::Queue => "queue",
            SpanKind::Batch => "batch",
            SpanKind::IndexOp => "index_op",
            SpanKind::Smo => "smo",
            SpanKind::Epoch => "epoch",
            SpanKind::RpcCall => "rpc_call",
            SpanKind::MapRefresh => "map_refresh",
            SpanKind::BounceResend => "bounce_resend",
            SpanKind::MigratePhase => "migrate_phase",
            SpanKind::Remote => "remote",
        }
    }

    /// Inverse of `self as u8` (wire span dumps).
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        Some(match v {
            0 => SpanKind::Root,
            1 => SpanKind::Admission,
            2 => SpanKind::Queue,
            3 => SpanKind::Batch,
            4 => SpanKind::IndexOp,
            5 => SpanKind::Smo,
            6 => SpanKind::Epoch,
            7 => SpanKind::RpcCall,
            8 => SpanKind::MapRefresh,
            9 => SpanKind::BounceResend,
            10 => SpanKind::MigratePhase,
            11 => SpanKind::Remote,
            _ => return None,
        })
    }
}

/// Which NVM effect stalled the active span (see `pmem::model`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum StallKind {
    /// Injected media-read latency (XPLine misses, remote reads).
    MediaRead = 0,
    /// Injected flush latency (clwb to the XPBuffer, non-eADR).
    Flush = 1,
    /// Injected fence latency (sfence drain).
    Fence = 2,
    /// Wall-clock time spent waiting out token-bucket bandwidth debt.
    Throttle = 3,
}

/// Number of stall kinds (array dimension in [`SpanRecord`]).
pub const STALL_KINDS: usize = 4;

/// Per-kind names, indexed by `StallKind as usize`.
pub const STALL_NAMES: [&str; STALL_KINDS] = ["read", "flush", "fence", "throttle"];

/// How a traced request ended; error classes force retention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOutcome {
    /// Every operation executed.
    Ok,
    /// At least one operation was shed at admission.
    Overloaded,
    /// At least one operation expired in-queue.
    DeadlineExceeded,
    /// At least one operation was abandoned by a killed server.
    Aborted,
    /// At least one operation failed some other way (e.g. malformed).
    Error,
}

impl TraceOutcome {
    /// Short stable name (used in exports).
    pub fn name(&self) -> &'static str {
        match self {
            TraceOutcome::Ok => "ok",
            TraceOutcome::Overloaded => "overloaded",
            TraceOutcome::DeadlineExceeded => "deadline_exceeded",
            TraceOutcome::Aborted => "aborted",
            TraceOutcome::Error => "error",
        }
    }

    /// Whether this outcome forces tail retention regardless of latency.
    pub fn is_error(&self) -> bool {
        !matches!(self, TraceOutcome::Ok)
    }
}

/// One completed span.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    pub trace_id: u64,
    pub span_id: u32,
    /// Parent span id (0 for the root).
    pub parent: u32,
    pub kind: SpanKind,
    /// Kind-dependent detail: batch size for [`SpanKind::Batch`], op-kind
    /// ordinal for [`SpanKind::IndexOp`], 0/1 split/merge for
    /// [`SpanKind::Smo`].
    pub detail: u32,
    /// Small per-thread ordinal (export track id), not an OS tid.
    pub tid: u32,
    /// [`crate::clock::now_ns`] timestamps (process-relative).
    pub start_ns: u64,
    pub end_ns: u64,
    /// Stall nanoseconds attributed while this span was the innermost
    /// active frame on its thread, indexed by `StallKind as usize`.
    pub stall_ns: [u64; STALL_KINDS],
}

/// A trace that survived tail-based retention.
#[derive(Clone, Debug)]
pub struct RetainedTrace {
    pub trace_id: u64,
    pub outcome: TraceOutcome,
    /// Root latency (admission to last reply).
    pub root_ns: u64,
    /// All spans harvested for this trace, root first, then by start time.
    pub spans: Vec<SpanRecord>,
}

impl RetainedTrace {
    /// Total stall ns across all spans, by kind.
    pub fn stall_totals(&self) -> [u64; STALL_KINDS] {
        let mut tot = [0u64; STALL_KINDS];
        for s in &self.spans {
            for (t, v) in tot.iter_mut().zip(s.stall_ns.iter()) {
                *t += v;
            }
        }
        tot
    }
}

/// Completed spans kept per thread; older spans are overwritten.
pub const SPAN_RING_CAPACITY: usize = 2048;

/// Retained (slow/errored) traces kept; older traces are dropped.
pub const RETAIN_CAPACITY: usize = 256;

#[cfg(feature = "trace")]
mod imp {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Default: trace 1 in 2^6 = 64 requests.
    pub const DEFAULT_TRACE_SAMPLE_SHIFT: u32 = 6;
    /// Default tail threshold: keep traces with root latency >= 1 ms.
    pub const DEFAULT_KEEP_THRESHOLD_NS: u64 = 1_000_000;

    static TRACE_SAMPLE_SHIFT: AtomicU32 = AtomicU32::new(DEFAULT_TRACE_SAMPLE_SHIFT);
    static KEEP_THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_KEEP_THRESHOLD_NS);
    static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
    static NEXT_SPAN_ID: AtomicU32 = AtomicU32::new(1);
    static NEXT_TID: AtomicU32 = AtomicU32::new(1);

    /// Sets the trace sampling period to 1 in 2^`shift` stamped requests
    /// (0 = trace everything; clamped to 2^16).
    pub fn set_trace_sample_shift(shift: u32) {
        TRACE_SAMPLE_SHIFT.store(shift.min(16), Ordering::Relaxed);
    }

    /// Current log2 trace-sampling period.
    pub fn trace_sample_shift() -> u32 {
        TRACE_SAMPLE_SHIFT.load(Ordering::Relaxed)
    }

    /// Sets the tail-retention threshold: a finished trace is kept if its
    /// root latency is >= `ns` (or its outcome is an error class).
    pub fn set_keep_threshold_ns(ns: u64) {
        KEEP_THRESHOLD_NS.store(ns, Ordering::Relaxed);
    }

    /// Current tail-retention threshold.
    pub fn keep_threshold_ns() -> u64 {
        KEEP_THRESHOLD_NS.load(Ordering::Relaxed)
    }

    fn next_span_id() -> u32 {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        if id == 0 {
            NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
        } else {
            id
        }
    }

    /// An active (not yet completed) span on this thread's stack.
    struct Frame {
        trace_id: u64,
        span_id: u32,
        parent: u32,
        kind: SpanKind,
        detail: u32,
        start_ns: u64,
        stall_ns: [u64; STALL_KINDS],
    }

    struct SpanRing {
        buf: Vec<SpanRecord>,
        next: usize,
    }

    impl SpanRing {
        fn push(&mut self, rec: SpanRecord) {
            if self.buf.len() < SPAN_RING_CAPACITY {
                self.buf.push(rec);
            } else {
                self.buf[self.next] = rec;
            }
            self.next = (self.next + 1) % SPAN_RING_CAPACITY;
        }
    }

    type RingDirectory = Mutex<Vec<Arc<Mutex<SpanRing>>>>;

    fn rings() -> &'static RingDirectory {
        static RINGS: OnceLock<RingDirectory> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn retained() -> &'static Mutex<VecDeque<RetainedTrace>> {
        static RETAINED: OnceLock<Mutex<VecDeque<RetainedTrace>>> = OnceLock::new();
        RETAINED.get_or_init(|| Mutex::new(VecDeque::new()))
    }

    thread_local! {
        /// Countdown to the next sampled stamp (0 = sample now, like
        /// `OpTimer`'s countdown; the first stamp on a thread samples).
        static STAMP_COUNTDOWN: Cell<u32> = const { Cell::new(0) };
        /// Number of active frames — the one-TLS-check gate for
        /// [`add_stall`] / [`span_here`] on untraced threads.
        static DEPTH: Cell<u32> = const { Cell::new(0) };
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
        /// Small export-track ordinal for this thread.
        static MY_TID: Cell<u32> = const { Cell::new(0) };
        static MY_SPANS: Arc<Mutex<SpanRing>> = {
            let ring = Arc::new(Mutex::new(SpanRing { buf: Vec::new(), next: 0 }));
            rings().lock().unwrap().push(ring.clone());
            ring
        };
    }

    fn my_tid() -> u32 {
        MY_TID.with(|t| {
            let v = t.get();
            if v != 0 {
                v
            } else {
                let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
                t.set(v);
                v
            }
        })
    }

    fn push_record(rec: SpanRecord) {
        MY_SPANS.with(|r| r.lock().unwrap().push(rec));
    }

    /// Whether tracing machinery is compiled into this build.
    pub const fn compiled() -> bool {
        true
    }

    /// Stamps a fresh context for a request entering the system: 1 in
    /// 2^[`trace_sample_shift`] stamps is sampled (gets a trace id and a
    /// root span id); the rest — and everything while
    /// [`crate::enabled()`] is off — are [`TraceCtx::UNTRACED`].
    #[inline]
    pub fn stamp() -> TraceCtx {
        if !crate::enabled() {
            return TraceCtx::UNTRACED;
        }
        STAMP_COUNTDOWN.with(|c| {
            let left = c.get();
            if left > 0 {
                c.set(left - 1);
                TraceCtx::UNTRACED
            } else {
                c.set((1u32 << trace_sample_shift()) - 1);
                stamp_forced()
            }
        })
    }

    /// Stamps a context that is always sampled (tests, forced-slow probes).
    pub fn stamp_forced() -> TraceCtx {
        TraceCtx {
            trace_id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
            parent_span: next_span_id(),
            sampled: true,
            node: 0,
            hop: 0,
        }
    }

    /// An active span; completes (writes its record) on drop. Guards must
    /// drop in LIFO order on a thread — natural with scoped `let` guards.
    pub struct SpanGuard {
        active: bool,
    }

    /// Opens a span under `ctx` (parenting to `ctx.parent_span`) with the
    /// start clocked now. Inert if `ctx` is unsampled.
    #[inline]
    pub fn span(ctx: TraceCtx, kind: SpanKind, detail: u32) -> SpanGuard {
        if !ctx.is_sampled() {
            return SpanGuard { active: false };
        }
        open_frame(ctx.trace_id, ctx.parent_span, kind, detail)
    }

    /// Opens a span under whatever span is active on this thread —
    /// how deep layers (index SMO paths, epoch advance) attach to the
    /// request without any API threading. Inert when nothing is active.
    #[inline]
    pub fn span_here(kind: SpanKind, detail: u32) -> SpanGuard {
        if DEPTH.with(|d| d.get()) == 0 {
            return SpanGuard { active: false };
        }
        let (trace_id, parent) = STACK.with(|s| {
            let s = s.borrow();
            let top = s.last().expect("DEPTH > 0 implies a frame");
            (top.trace_id, top.span_id)
        });
        open_frame(trace_id, parent, kind, detail)
    }

    /// Opens a span under `ctx` and returns, alongside the guard, a derived
    /// context whose `parent_span` is the new span — how the router hands a
    /// node a parent to attach its spans to. Returns `ctx` unchanged when
    /// unsampled.
    #[inline]
    pub fn span_ctx(ctx: TraceCtx, kind: SpanKind, detail: u32) -> (SpanGuard, TraceCtx) {
        if !ctx.is_sampled() {
            return (SpanGuard { active: false }, ctx);
        }
        let span_id = next_span_id();
        let guard = open_frame_with_id(ctx.trace_id, ctx.parent_span, span_id, kind, detail);
        (
            guard,
            TraceCtx {
                parent_span: span_id,
                ..ctx
            },
        )
    }

    fn open_frame(trace_id: u64, parent: u32, kind: SpanKind, detail: u32) -> SpanGuard {
        open_frame_with_id(trace_id, parent, next_span_id(), kind, detail)
    }

    fn open_frame_with_id(
        trace_id: u64,
        parent: u32,
        span_id: u32,
        kind: SpanKind,
        detail: u32,
    ) -> SpanGuard {
        let frame = Frame {
            trace_id,
            span_id,
            parent,
            kind,
            detail,
            start_ns: crate::clock::now_ns(),
            stall_ns: [0; STALL_KINDS],
        };
        STACK.with(|s| s.borrow_mut().push(frame));
        DEPTH.with(|d| d.set(d.get() + 1));
        SpanGuard { active: true }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if !self.active {
                return;
            }
            let frame = STACK.with(|s| s.borrow_mut().pop().expect("span stack underflow"));
            DEPTH.with(|d| d.set(d.get() - 1));
            push_record(SpanRecord {
                trace_id: frame.trace_id,
                span_id: frame.span_id,
                parent: frame.parent,
                kind: frame.kind,
                detail: frame.detail,
                tid: my_tid(),
                start_ns: frame.start_ns,
                end_ns: crate::clock::now_ns(),
                stall_ns: frame.stall_ns,
            });
        }
    }

    /// Records a span over an already-measured interval (queue sojourn,
    /// batch wait) without frame bookkeeping. No-op for unsampled `ctx`.
    #[inline]
    pub fn record_span(ctx: TraceCtx, kind: SpanKind, detail: u32, start_ns: u64, end_ns: u64) {
        if !ctx.is_sampled() {
            return;
        }
        push_record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: next_span_id(),
            parent: ctx.parent_span,
            kind,
            detail,
            tid: my_tid(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            stall_ns: [0; STALL_KINDS],
        });
    }

    /// Attributes `ns` of NVM stall to the innermost active span on this
    /// thread (only the innermost, so per-trace stall totals never double
    /// count). One TLS read when no span is active.
    #[inline]
    pub fn add_stall(kind: StallKind, ns: u64) {
        if DEPTH.with(|d| d.get()) == 0 || ns == 0 {
            return;
        }
        STACK.with(|s| {
            if let Some(top) = s.borrow_mut().last_mut() {
                top.stall_ns[kind as usize] += ns;
            }
        });
    }

    /// Finishes the root span of `ctx` (started at `start_ns`) and applies
    /// the tail-retention rule: the trace's spans are harvested from every
    /// thread ring into the retained store iff the root latency is over
    /// [`keep_threshold_ns`] or `outcome` is an error class.
    ///
    /// A remote fragment (`ctx.hop > 0`) does not own the trace's root —
    /// the stamping process does — so it records a [`SpanKind::Remote`]
    /// bracket instead: a fresh span id parented to `ctx.parent_span` (the
    /// router's rpc_call span), covering admission to last reply on this
    /// node. [`stitch`] uses that bracket to align the node's clock.
    ///
    /// All spans of the trace must be ring-visible before this runs; in
    /// pacsrv that ordering comes free from the `ReplySet` mutex (workers
    /// record spans before completing their slot, and the final completion
    /// runs this).
    pub fn finish_root(ctx: TraceCtx, start_ns: u64, outcome: TraceOutcome) {
        if !ctx.is_sampled() {
            return;
        }
        let end_ns = crate::clock::now_ns();
        let root_ns = end_ns.saturating_sub(start_ns);
        if root_ns < keep_threshold_ns() && !outcome.is_error() {
            return; // Fast and fine: let its spans rot in the rings.
        }
        let bracket = if ctx.is_remote() {
            SpanRecord {
                trace_id: ctx.trace_id,
                span_id: next_span_id(),
                parent: ctx.parent_span,
                kind: SpanKind::Remote,
                detail: ctx.node as u32,
                tid: my_tid(),
                start_ns,
                end_ns,
                stall_ns: [0; STALL_KINDS],
            }
        } else {
            SpanRecord {
                trace_id: ctx.trace_id,
                span_id: ctx.parent_span,
                parent: 0,
                kind: SpanKind::Root,
                detail: 0,
                tid: my_tid(),
                start_ns,
                end_ns,
                stall_ns: [0; STALL_KINDS],
            }
        };
        let mut spans = vec![bracket];
        let dirs: Vec<Arc<Mutex<SpanRing>>> = rings().lock().unwrap().clone();
        for ring in dirs {
            let ring = ring.lock().unwrap();
            spans.extend(
                ring.buf
                    .iter()
                    .filter(|r| r.trace_id == ctx.trace_id)
                    .copied(),
            );
        }
        spans[1..].sort_by_key(|s| s.start_ns);
        let mut store = retained().lock().unwrap();
        if store.len() >= RETAIN_CAPACITY {
            store.pop_front();
        }
        store.push_back(RetainedTrace {
            trace_id: ctx.trace_id,
            outcome,
            root_ns,
            spans,
        });
    }

    /// Snapshot of the retained traces (oldest first).
    pub fn retained_traces() -> Vec<RetainedTrace> {
        retained().lock().unwrap().iter().cloned().collect()
    }

    /// Drains the retained traces (oldest first).
    pub fn take_retained() -> Vec<RetainedTrace> {
        retained().lock().unwrap().drain(..).collect()
    }

    /// Clears the retained store (tests, between bench phases).
    pub fn clear_retained() {
        retained().lock().unwrap().clear();
    }

    /// Bounded JSON digest of the retained traces for the live stats
    /// endpoint: counts plus the most recent 16 traces' summaries.
    pub fn digest_json() -> String {
        let store = retained().lock().unwrap();
        let mut out = format!(
            "{{\"compiled\":true,\"retained\":{},\"keep_threshold_ns\":{},\"sample_shift\":{},\"traces\":[",
            store.len(),
            keep_threshold_ns(),
            trace_sample_shift()
        );
        let skip = store.len().saturating_sub(16);
        for (i, t) in store.iter().skip(skip).enumerate() {
            if i > 0 {
                out.push(',');
            }
            let stall = t.stall_totals();
            out.push_str(&format!(
                "{{\"trace_id\":{},\"outcome\":\"{}\",\"root_ns\":{},\"spans\":{},\"stall_ns\":{{",
                t.trace_id,
                t.outcome.name(),
                t.root_ns,
                t.spans.len()
            ));
            for (k, name) in STALL_NAMES.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{}", stall[k]));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Every span of every retained trace as a compact JSON array of
    /// integer rows (`[trace_id, span_id, parent, kind, detail, tid,
    /// start_ns, end_ns, stall_read, stall_flush, stall_fence,
    /// stall_throttle]`) — the wire form `trace-report` fetches from each
    /// node's stats endpoint and feeds to [`parse_span_dump`]/[`stitch`].
    pub fn span_dump_json() -> String {
        let store = retained().lock().unwrap();
        let mut out = String::from("[");
        let mut first = true;
        for t in store.iter() {
            for s in &t.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "[{},{},{},{},{},{},{},{},{},{},{},{}]",
                    s.trace_id,
                    s.span_id,
                    s.parent,
                    s.kind as u8,
                    s.detail,
                    s.tid,
                    s.start_ns,
                    s.end_ns,
                    s.stall_ns[0],
                    s.stall_ns[1],
                    s.stall_ns[2],
                    s.stall_ns[3]
                ));
            }
        }
        out.push(']');
        out
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::*;

    /// Default: trace 1 in 2^6 = 64 requests (when compiled in).
    pub const DEFAULT_TRACE_SAMPLE_SHIFT: u32 = 6;

    /// Default tail-retention threshold: keep traces slower than 1 ms.
    pub const DEFAULT_KEEP_THRESHOLD_NS: u64 = 1_000_000;

    /// Disabled-build guard; every constructor returns this inert value.
    /// The no-op `Drop` keeps early `drop(span)` call sites meaningful in
    /// both build configurations.
    pub struct SpanGuard;

    impl Drop for SpanGuard {
        fn drop(&mut self) {}
    }

    /// Whether tracing machinery is compiled into this build.
    pub const fn compiled() -> bool {
        false
    }

    #[inline(always)]
    pub fn stamp() -> TraceCtx {
        TraceCtx::UNTRACED
    }

    #[inline(always)]
    pub fn stamp_forced() -> TraceCtx {
        TraceCtx::UNTRACED
    }

    #[inline(always)]
    pub fn span(_ctx: TraceCtx, _kind: SpanKind, _detail: u32) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub fn span_here(_kind: SpanKind, _detail: u32) -> SpanGuard {
        SpanGuard
    }

    #[inline(always)]
    pub fn span_ctx(ctx: TraceCtx, _kind: SpanKind, _detail: u32) -> (SpanGuard, TraceCtx) {
        (SpanGuard, ctx)
    }

    #[inline(always)]
    pub fn record_span(_ctx: TraceCtx, _kind: SpanKind, _detail: u32, _start: u64, _end: u64) {}

    #[inline(always)]
    pub fn add_stall(_kind: StallKind, _ns: u64) {}

    #[inline(always)]
    pub fn finish_root(_ctx: TraceCtx, _start_ns: u64, _outcome: TraceOutcome) {}

    pub fn set_trace_sample_shift(_shift: u32) {}

    pub fn trace_sample_shift() -> u32 {
        0
    }

    pub fn set_keep_threshold_ns(_ns: u64) {}

    pub fn keep_threshold_ns() -> u64 {
        0
    }

    pub fn retained_traces() -> Vec<RetainedTrace> {
        Vec::new()
    }

    pub fn take_retained() -> Vec<RetainedTrace> {
        Vec::new()
    }

    pub fn clear_retained() {}

    pub fn digest_json() -> String {
        "{\"compiled\":false,\"retained\":0,\"traces\":[]}".to_string()
    }

    pub fn span_dump_json() -> String {
        "[]".to_string()
    }
}

pub use imp::{
    add_stall, clear_retained, compiled, digest_json, finish_root, keep_threshold_ns, record_span,
    retained_traces, set_keep_threshold_ns, set_trace_sample_shift, span, span_ctx, span_dump_json,
    span_here, stamp, stamp_forced, take_retained, trace_sample_shift, SpanGuard,
    DEFAULT_KEEP_THRESHOLD_NS, DEFAULT_TRACE_SAMPLE_SHIFT,
};

/// Parses a [`span_dump_json`] array back into span records. Scans `json`
/// for the `"span_dump":[...]` key (so a whole node stats document can be
/// passed as-is) and decodes each 12-integer row; malformed rows and
/// unknown span kinds are skipped. Returns empty when the key is absent.
pub fn parse_span_dump(json: &str) -> Vec<SpanRecord> {
    const KEY: &str = "\"span_dump\":[";
    let Some(pos) = json.find(KEY) else {
        return Vec::new();
    };
    let mut rest = &json[pos + KEY.len()..];
    let mut out = Vec::new();
    while let Some(open) = rest.find('[') {
        // The outer array's closing bracket before the next row ends it.
        if rest[..open].contains(']') {
            break;
        }
        let Some(close) = rest[open..].find(']') else {
            break;
        };
        let nums: Vec<u64> = rest[open + 1..open + close]
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect();
        if nums.len() == 12 {
            if let Some(kind) = SpanKind::from_u8(nums[3] as u8) {
                out.push(SpanRecord {
                    trace_id: nums[0],
                    span_id: nums[1] as u32,
                    parent: nums[2] as u32,
                    kind,
                    detail: nums[4] as u32,
                    tid: nums[5] as u32,
                    start_ns: nums[6],
                    end_ns: nums[7],
                    stall_ns: [nums[8], nums[9], nums[10], nums[11]],
                });
            }
        }
        rest = &rest[open + close + 1..];
    }
    out
}

/// Stitches per-node span dumps into one trace tree.
///
/// `parts[0]` should be the stamping process's spans (it owns the single
/// [`SpanKind::Root`]); later parts are remote fragments. Every span must
/// belong to `trace_id` (mismatches are an error — dumps from an unrelated
/// trace must not silently graft on). Spans appearing in several parts
/// (in-process clusters share one retained store) are deduplicated by span
/// id, first occurrence wins.
///
/// Clock alignment: node clocks need not share an epoch with the router's.
/// Each fragment carries a [`SpanKind::Remote`] bracket (admission to last
/// reply on that node) parented to the router's [`SpanKind::RpcCall`] span,
/// whose wall clock brackets the same interval plus the network round trip.
/// If a fragment's bracket falls outside its parent's interval, the whole
/// fragment is shifted so the bracket sits centered inside it — the error
/// is bounded by the round-trip time, and intra-fragment durations are
/// exact because one offset moves the whole fragment.
pub fn stitch(trace_id: u64, parts: &[Vec<SpanRecord>]) -> Result<RetainedTrace, String> {
    for s in parts.iter().flatten() {
        if s.trace_id != trace_id {
            return Err(format!(
                "span {} belongs to trace {}, not {}",
                s.span_id, s.trace_id, trace_id
            ));
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut spans: Vec<SpanRecord> = Vec::new();
    for part in parts {
        let mut shift: i64 = 0;
        if let Some(r) = part.iter().find(|s| s.kind == SpanKind::Remote) {
            if let Some(p) = spans.iter().find(|s| s.span_id == r.parent) {
                if r.start_ns < p.start_ns || r.end_ns > p.end_ns {
                    let r_dur = r.end_ns.saturating_sub(r.start_ns);
                    let p_dur = p.end_ns.saturating_sub(p.start_ns);
                    let target = p.start_ns + p_dur.saturating_sub(r_dur.min(p_dur)) / 2;
                    shift = target as i64 - r.start_ns as i64;
                }
            }
        }
        for s in part {
            if !seen.insert(s.span_id) {
                continue;
            }
            let mut s = *s;
            s.start_ns = s.start_ns.saturating_add_signed(shift);
            s.end_ns = s.end_ns.saturating_add_signed(shift);
            spans.push(s);
        }
    }
    let roots: Vec<usize> = spans
        .iter()
        .enumerate()
        .filter(|(_, s)| s.kind == SpanKind::Root)
        .map(|(i, _)| i)
        .collect();
    let [root_at] = roots.as_slice() else {
        return Err(format!(
            "expected exactly one root span, found {}",
            roots.len()
        ));
    };
    let root = spans.remove(*root_at);
    spans.sort_by_key(|s| s.start_ns);
    let root_ns = root.end_ns.saturating_sub(root.start_ns);
    let mut all = vec![root];
    all.append(&mut spans);
    Ok(RetainedTrace {
        trace_id,
        outcome: TraceOutcome::Ok,
        root_ns,
        spans: all,
    })
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders retained traces as a Chrome trace-event JSON document (the
/// `traceEvents` array format Perfetto and `chrome://tracing` load). Each
/// trace becomes one "process" (pid = its 1-based index), each recording
/// thread one track; timestamps are microseconds relative to the earliest
/// root start. The extra top-level `schema` key is ignored by viewers and
/// consumed by `scripts/validate_obsv_json.py`.
pub fn chrome_trace_json(traces: &[RetainedTrace]) -> String {
    let t0 = traces
        .iter()
        .flat_map(|t| t.spans.first())
        .map(|s| s.start_ns)
        .min()
        .unwrap_or(0);
    let mut out = String::from(
        "{\"schema\":\"trace_chrome/v1\",\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
    );
    let mut first = true;
    for (i, t) in traces.iter().enumerate() {
        let pid = i + 1;
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"trace {} ({}, {} us)\"}}}}",
            t.trace_id,
            t.outcome.name(),
            t.root_ns / 1000
        ));
        for s in &t.spans {
            let ts = (s.start_ns.saturating_sub(t0)) as f64 / 1000.0;
            let dur = (s.end_ns.saturating_sub(s.start_ns)) as f64 / 1000.0;
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"pacsrv\",\"ph\":\"X\",\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"pid\":{pid},\"tid\":{},\"args\":{{\
                 \"trace_id\":{},\"span_id\":{},\"parent\":{},\"detail\":{}",
                s.kind.name(),
                s.tid,
                s.trace_id,
                s.span_id,
                s.parent,
                s.detail
            ));
            for (k, name) in STALL_NAMES.iter().enumerate() {
                out.push_str(&format!(",\"stall_{name}_ns\":{}", s.stall_ns[k]));
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Renders one retained trace as a single JSON line for the JSONL summary
/// export (`schema` tag `trace_summary/v1` on every line). Span times are
/// relative to the root start.
pub fn summary_json_line(t: &RetainedTrace) -> String {
    let t0 = t.spans.first().map(|s| s.start_ns).unwrap_or(0);
    let stall = t.stall_totals();
    let mut out = format!(
        "{{\"schema\":\"trace_summary/v1\",\"trace_id\":{},\"outcome\":\"{}\",\"root_ns\":{},\"stall_ns\":{{",
        t.trace_id,
        t.outcome.name(),
        t.root_ns
    );
    for (k, name) in STALL_NAMES.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{}", stall[k]));
    }
    out.push_str("},\"spans\":[");
    for (i, s) in t.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let span_stall: u64 = s.stall_ns.iter().sum();
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"span_id\":{},\"parent\":{},\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"detail\":{},\"stall_ns\":{span_stall}}}",
            s.kind.name(),
            s.span_id,
            s.parent,
            s.tid,
            s.start_ns.saturating_sub(t0),
            s.end_ns.saturating_sub(s.start_ns),
            s.detail
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the global trace config/retained store.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn find(traces: &[RetainedTrace], id: u64) -> Option<RetainedTrace> {
        traces.iter().find(|t| t.trace_id == id).cloned()
    }

    #[test]
    fn stamp_honors_countdown_and_enabled() {
        let _g = TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        assert!(!stamp().is_sampled());
        crate::set_enabled(true);
        set_trace_sample_shift(2);
        let sampled = (0..8).filter(|_| stamp().is_sampled()).count();
        assert_eq!(sampled, 2, "1-in-4 sampling over 8 stamps");
        set_trace_sample_shift(0);
        let ctx = stamp();
        assert!(ctx.is_sampled());
        assert_ne!(ctx.trace_id, 0);
        assert_ne!(ctx.parent_span, 0);
    }

    #[test]
    fn tail_retention_keeps_slow_and_errored_only() {
        let _g = TEST_LOCK.lock().unwrap();
        set_keep_threshold_ns(u64::MAX);
        // Fast + ok: dropped.
        let fast = stamp_forced();
        finish_root(fast, crate::clock::now_ns(), TraceOutcome::Ok);
        // Fast + errored: kept.
        let errored = stamp_forced();
        finish_root(
            errored,
            crate::clock::now_ns(),
            TraceOutcome::DeadlineExceeded,
        );
        // Slow + ok: kept (threshold 0 makes everything "slow").
        set_keep_threshold_ns(0);
        let slow = stamp_forced();
        finish_root(slow, crate::clock::now_ns(), TraceOutcome::Ok);
        let traces = retained_traces();
        assert!(find(&traces, fast.trace_id).is_none());
        let e = find(&traces, errored.trace_id).expect("errored trace kept");
        assert_eq!(e.outcome, TraceOutcome::DeadlineExceeded);
        assert!(find(&traces, slow.trace_id).is_some());
        set_keep_threshold_ns(imp::DEFAULT_KEEP_THRESHOLD_NS);
        clear_retained();
    }

    #[test]
    fn spans_nest_and_stalls_go_to_innermost() {
        let _g = TEST_LOCK.lock().unwrap();
        set_keep_threshold_ns(0);
        let ctx = stamp_forced();
        let t0 = crate::clock::now_ns();
        {
            let _op = span(ctx, SpanKind::IndexOp, 7);
            add_stall(StallKind::MediaRead, 100);
            {
                let _smo = span_here(SpanKind::Smo, 0);
                add_stall(StallKind::Flush, 40);
                add_stall(StallKind::Flush, 2);
            }
            add_stall(StallKind::Fence, 5);
        }
        // No active span: must be a cheap no-op, not a panic.
        add_stall(StallKind::Throttle, 999);
        finish_root(ctx, t0, TraceOutcome::Ok);
        let t = find(&retained_traces(), ctx.trace_id).expect("kept");
        assert_eq!(t.spans[0].kind, SpanKind::Root);
        assert_eq!(t.spans[0].span_id, ctx.parent_span);
        let op = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::IndexOp)
            .expect("index op span");
        assert_eq!(op.parent, ctx.parent_span);
        assert_eq!(op.detail, 7);
        assert_eq!(op.stall_ns[StallKind::MediaRead as usize], 100);
        assert_eq!(op.stall_ns[StallKind::Fence as usize], 5);
        assert_eq!(op.stall_ns[StallKind::Flush as usize], 0, "child took it");
        let smo = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Smo)
            .expect("smo span");
        assert_eq!(smo.parent, op.span_id);
        assert_eq!(smo.stall_ns[StallKind::Flush as usize], 42);
        assert_eq!(t.stall_totals(), [100, 42, 5, 0]);
        set_keep_threshold_ns(imp::DEFAULT_KEEP_THRESHOLD_NS);
        clear_retained();
    }

    #[test]
    fn harvest_collects_spans_from_other_threads() {
        let _g = TEST_LOCK.lock().unwrap();
        set_keep_threshold_ns(0);
        let ctx = stamp_forced();
        let t0 = crate::clock::now_ns();
        std::thread::spawn(move || {
            record_span(ctx, SpanKind::Queue, 3, t0, t0 + 500);
            let _op = span(ctx, SpanKind::IndexOp, 1);
        })
        .join()
        .unwrap();
        finish_root(ctx, t0, TraceOutcome::Ok);
        let t = find(&retained_traces(), ctx.trace_id).expect("kept");
        assert!(t.spans.iter().any(|s| s.kind == SpanKind::Queue));
        assert!(t.spans.iter().any(|s| s.kind == SpanKind::IndexOp));
        // Exports are well-formed on real data.
        let chrome = chrome_trace_json(std::slice::from_ref(&t));
        assert!(chrome.starts_with("{\"schema\":\"trace_chrome/v1\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        let line = summary_json_line(&t);
        assert!(line.starts_with("{\"schema\":\"trace_summary/v1\""));
        assert!(line.ends_with("]}"));
        set_keep_threshold_ns(imp::DEFAULT_KEEP_THRESHOLD_NS);
        clear_retained();
    }

    #[test]
    fn unsampled_paths_are_inert() {
        let ctx = TraceCtx::UNTRACED;
        let _g = span(ctx, SpanKind::IndexOp, 0);
        record_span(ctx, SpanKind::Queue, 0, 1, 2);
        finish_root(ctx, 0, TraceOutcome::Error);
        let _h = span_here(SpanKind::Smo, 0); // no active frame
        add_stall(StallKind::MediaRead, 10);
    }

    #[test]
    fn remote_fragment_records_bracket_not_root() {
        let _g = TEST_LOCK.lock().unwrap();
        set_keep_threshold_ns(0);
        let ctx = TraceCtx {
            node: 2,
            hop: 1,
            ..stamp_forced()
        };
        let t0 = crate::clock::now_ns();
        {
            let _op = span(ctx, SpanKind::IndexOp, 1);
        }
        finish_root(ctx, t0, TraceOutcome::Ok);
        let t = find(&retained_traces(), ctx.trace_id).expect("kept");
        assert!(
            !t.spans.iter().any(|s| s.kind == SpanKind::Root),
            "remote fragments must not mint a second root"
        );
        let rem = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Remote)
            .expect("remote bracket");
        assert_eq!(rem.parent, ctx.parent_span);
        assert_eq!(rem.detail, 2, "bracket names its node");
        assert_ne!(rem.span_id, ctx.parent_span, "fresh id, no collision");
        set_keep_threshold_ns(imp::DEFAULT_KEEP_THRESHOLD_NS);
        clear_retained();
    }

    #[test]
    fn span_ctx_derives_child_parentage() {
        let _g = TEST_LOCK.lock().unwrap();
        set_keep_threshold_ns(0);
        let ctx = stamp_forced();
        let t0 = crate::clock::now_ns();
        let child = {
            let (_g, child) = span_ctx(ctx, SpanKind::RpcCall, 3);
            let _inner = span(child, SpanKind::IndexOp, 0);
            child
        };
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_ne!(child.parent_span, ctx.parent_span);
        finish_root(ctx, t0, TraceOutcome::Ok);
        let t = find(&retained_traces(), ctx.trace_id).expect("kept");
        let rpc = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::RpcCall)
            .expect("rpc span");
        assert_eq!(rpc.parent, ctx.parent_span);
        assert_eq!(rpc.span_id, child.parent_span);
        let op = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::IndexOp)
            .expect("op span");
        assert_eq!(op.parent, rpc.span_id);
        set_keep_threshold_ns(imp::DEFAULT_KEEP_THRESHOLD_NS);
        clear_retained();
    }
}

#[cfg(test)]
mod stitch_tests {
    use super::*;

    fn rec(
        trace_id: u64,
        span_id: u32,
        parent: u32,
        kind: SpanKind,
        detail: u32,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent,
            kind,
            detail,
            tid: 1,
            start_ns,
            end_ns,
            stall_ns: [0; STALL_KINDS],
        }
    }

    #[test]
    fn stitch_rejects_mismatched_trace_ids() {
        let router = vec![rec(7, 1, 0, SpanKind::Root, 0, 0, 1000)];
        let alien = vec![rec(8, 9, 1, SpanKind::Remote, 1, 100, 200)];
        let err = stitch(7, &[router, alien]).unwrap_err();
        assert!(err.contains("trace 8"), "names the offender: {err}");
    }

    #[test]
    fn stitch_requires_exactly_one_root() {
        let none = vec![rec(7, 2, 1, SpanKind::RpcCall, 1, 0, 10)];
        assert!(stitch(7, &[none]).is_err());
        let two = vec![
            rec(7, 1, 0, SpanKind::Root, 0, 0, 10),
            rec(7, 2, 0, SpanKind::Root, 0, 0, 10),
        ];
        assert!(stitch(7, &[two]).is_err());
    }

    #[test]
    fn stitch_aligns_skewed_fragment_onto_rpc_bracket() {
        let router = vec![
            rec(7, 1, 0, SpanKind::Root, 0, 0, 1000),
            rec(7, 2, 1, SpanKind::RpcCall, 1, 100, 900),
        ];
        // Node clock is ~1 ms ahead of the router's.
        let node = vec![
            rec(7, 10, 2, SpanKind::Remote, 1, 1_000_100, 1_000_700),
            rec(7, 11, 2, SpanKind::IndexOp, 0, 1_000_300, 1_000_500),
        ];
        let t = stitch(7, &[router, node]).expect("stitched");
        assert_eq!(t.spans[0].kind, SpanKind::Root);
        assert_eq!(t.root_ns, 1000);
        let rem = t.spans.iter().find(|s| s.kind == SpanKind::Remote).unwrap();
        assert!(
            rem.start_ns >= 100 && rem.end_ns <= 900,
            "bracket shifted inside its rpc_call parent: {}..{}",
            rem.start_ns,
            rem.end_ns
        );
        assert_eq!(rem.end_ns - rem.start_ns, 600, "durations preserved");
        let op = t
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::IndexOp)
            .unwrap();
        assert!(op.start_ns >= rem.start_ns && op.end_ns <= rem.end_ns);
    }

    #[test]
    fn stitch_dedupes_shared_retained_stores() {
        let root = rec(7, 1, 0, SpanKind::Root, 0, 0, 1000);
        let rpc = rec(7, 2, 1, SpanKind::RpcCall, 1, 100, 900);
        let rem = rec(7, 10, 2, SpanKind::Remote, 1, 150, 850);
        // In-process cluster: both dumps see every span.
        let t = stitch(7, &[vec![root, rpc, rem], vec![rem, rpc, root]]).expect("stitched");
        assert_eq!(t.spans.len(), 3);
    }

    #[test]
    fn parse_span_dump_decodes_rows_and_skips_junk() {
        let doc = concat!(
            "{\"schema\":\"pacsrv_stats/v1\",\"span_dump\":[",
            "[7,1,0,0,0,1,5,1005,1,2,3,4],",
            "[7,2,1,7,3,1,100,900,0,0,0,0],",
            "[7,3,1,250,0,1,0,0,0,0,0,0]",
            "],\"other\":1}"
        );
        let spans = parse_span_dump(doc);
        assert_eq!(spans.len(), 2, "unknown kind 250 skipped");
        assert_eq!(spans[0].kind, SpanKind::Root);
        assert_eq!(spans[0].stall_ns, [1, 2, 3, 4]);
        assert_eq!(spans[1].kind, SpanKind::RpcCall);
        assert_eq!(spans[1].detail, 3);
        assert!(parse_span_dump("{\"no_dump\":true}").is_empty());
        assert!(parse_span_dump("{\"span_dump\":[]}").is_empty());
    }
}
