//! Lock-free, thread-striped, log-bucketed latency histograms.
//!
//! HDR-style log-linear bucketing: values below [`SUB`] (32 ns) get exact
//! unit buckets; above that, each power-of-two octave is divided into
//! `SUB/2` linear sub-buckets, so every bucket's width is at most
//! 2^-(SUB_BITS-1) of its lower bound. Reconstructing a recorded value at
//! its bucket **midpoint** therefore has bounded relative error:
//!
//! > |reconstructed - recorded| / recorded <= 2^-SUB_BITS = 1/32 = 3.125%
//!
//! (exact for values < 32). This bound is enforced by a property test.
//!
//! Recording is one branch-free bucket computation plus one relaxed
//! `fetch_add` on the calling thread's stripe: stripes are assigned
//! round-robin on first use (like `pmem::stats`), so concurrently hot
//! threads do not write-share bucket cache lines. Readers aggregate stripes
//! with [`Histogram::snapshot`]; snapshots are plain data and **mergeable**
//! — merging two snapshots bucket-wise is exactly equivalent to having
//! recorded both streams into one histogram (also property-tested).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-bucket resolution: 2^SUB_BITS sub-buckets of precision.
pub const SUB_BITS: u32 = 5;
/// Values below this are recorded exactly (unit buckets).
pub const SUB: u64 = 1 << SUB_BITS; // 32
const HALF: usize = (SUB / 2) as usize; // 16 linear sub-buckets per octave
/// Largest distinguishable value (~3.26 days in ns); larger values clamp.
pub const MAX_VALUE: u64 = (1 << 48) - 1;
const MAX_SHIFT: usize = 48 - SUB_BITS as usize; // 43 octaves above SUB
/// Total bucket count.
pub const BUCKETS: usize = SUB as usize + MAX_SHIFT * HALF; // 720

/// Documented relative error bound of midpoint reconstruction.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB as f64; // 3.125%

/// Bucket index of `value`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    let v = value.min(MAX_VALUE);
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= SUB_BITS
    let shift = msb - SUB_BITS as usize + 1; // 1..=MAX_SHIFT
    let mantissa = (v >> shift) as usize - HALF; // in [0, HALF)
    SUB as usize + (shift - 1) * HALF + mantissa
}

/// Midpoint value represented by bucket `index` (inverse of [`bucket_of`]
/// up to the documented relative error).
#[inline]
pub fn bucket_mid(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let rel = index - SUB as usize;
    let shift = rel / HALF + 1;
    let mantissa = (rel % HALF + HALF) as u64;
    (mantissa << shift) + (1u64 << (shift - 1)) // low edge + half width
}

/// Lower edge of bucket `index` (used for conservative minima).
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let rel = index - SUB as usize;
    let shift = rel / HALF + 1;
    let mantissa = (rel % HALF + HALF) as u64;
    mantissa << shift
}

/// Number of stripes per histogram. Threads map round-robin; collisions
/// cost cache-line bouncing on shared buckets, not correctness.
pub const HIST_SHARDS: usize = 16;

/// Stripe index of the calling thread (obsv-wide; one TLS cell shared by
/// every histogram so the steady state is a single TLS read).
#[inline]
fn my_stripe() -> usize {
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let mut idx = s.get();
        if idx == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            idx = NEXT.fetch_add(1, Ordering::Relaxed) % HIST_SHARDS;
            s.set(idx);
        }
        idx
    })
}

/// One stripe: a full bucket array plus a value-sum and exact op count.
///
/// Cache-line aligned: `sum` and `ops` live inline in the stripe `Vec`,
/// and without the alignment several stripes' scalars share one line —
/// measured as ~100 ns/op of false-sharing cost at 4 threads in
/// `bench_obsv_overhead`.
#[repr(align(64))]
struct HistStripe {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    ops: AtomicU64,
}

impl HistStripe {
    fn new() -> Self {
        HistStripe {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            ops: AtomicU64::new(0),
        }
    }
}

/// A mergeable, lock-free latency histogram (values in nanoseconds by
/// convention, but any u64 magnitude works).
pub struct Histogram {
    stripes: Vec<HistStripe>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            stripes: (0..HIST_SHARDS).map(|_| HistStripe::new()).collect(),
        }
    }

    /// Records one value with weight 1 (count and distribution both grow
    /// by one).
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_weighted(value, 1);
    }

    /// Records one operation whose measured value stands for `weight`
    /// operations (latency sampling): the exact op count grows by 1 and
    /// the distribution by `weight`, so quantiles/means stay unbiased
    /// while [`HistSnapshot::count`] stays exact.
    #[inline]
    pub fn record_weighted(&self, value: u64, weight: u64) {
        let stripe = &self.stripes[my_stripe()];
        stripe.ops.fetch_add(1, Ordering::Relaxed);
        stripe.buckets[bucket_of(value)].fetch_add(weight, Ordering::Relaxed);
        stripe.sum.fetch_add(
            value.min(MAX_VALUE).saturating_mul(weight),
            Ordering::Relaxed,
        );
    }

    /// Counts one operation without a latency sample (the common path
    /// under sampling): a single relaxed `fetch_add`.
    #[inline]
    pub fn count_op(&self) {
        self.stripes[my_stripe()]
            .ops
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time aggregate of all stripes. Concurrent recording makes
    /// the result a consistent lower bound per bucket (counters are
    /// monotonic), same contract as `pmem::stats`.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; BUCKETS].into_boxed_slice();
        let mut sum = 0u64;
        let mut ops = 0u64;
        for stripe in &self.stripes {
            for (acc, b) in buckets.iter_mut().zip(stripe.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum += stripe.sum.load(Ordering::Relaxed);
            ops += stripe.ops.load(Ordering::Relaxed);
        }
        HistSnapshot { buckets, sum, ops }
    }

    /// Resets every counter (not atomic with concurrent writers; reset
    /// between measurement runs).
    pub fn reset(&self) {
        for stripe in &self.stripes {
            for b in stripe.buckets.iter() {
                b.store(0, Ordering::Relaxed);
            }
            stripe.sum.store(0, Ordering::Relaxed);
            stripe.ops.store(0, Ordering::Relaxed);
        }
    }
}

/// An owned copy of a histogram at one instant. Plain data: mergeable,
/// subtractable, serializable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Box<[u64]>,
    sum: u64,
    ops: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0u64; BUCKETS].into_boxed_slice(),
            sum: 0,
            ops: 0,
        }
    }

    /// Rebuilds a snapshot from `(bucket_low_edge, weight)` rows plus the
    /// exact op count and value sum — the wire form a fleet scraper
    /// recovers from a node's Prometheus `_bucket`/`_count`/`_sum` lines.
    /// Low edges must come from this module's bucketing (both ends share
    /// it); rows whose edge is not an exact bucket lower edge are dropped.
    /// The rebuilt snapshot merges and quantiles exactly like the
    /// original, so fleet-wide percentiles keep the documented
    /// [`RELATIVE_ERROR_BOUND`].
    pub fn from_bucket_rows(rows: &[(u64, u64)], ops: u64, sum: u64) -> HistSnapshot {
        let mut s = HistSnapshot::empty();
        for &(low, weight) in rows {
            if weight == 0 {
                continue;
            }
            let i = bucket_of(low);
            if bucket_low(i) != low {
                continue;
            }
            s.buckets[i] += weight;
        }
        s.ops = ops;
        s.sum = sum;
        s
    }

    /// Exact number of recorded operations (every op is counted even when
    /// latency sampling only times a subset).
    pub fn count(&self) -> u64 {
        self.ops
    }

    /// Total distribution weight: equals [`count`](Self::count) without
    /// sampling, `~count` with it (each sampled op carries its sampling
    /// period as weight).
    pub fn weight(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Weighted sum of recorded values (clamped at [`MAX_VALUE`] each).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value (weighted over latency samples), or 0 with no
    /// samples.
    pub fn mean(&self) -> f64 {
        let n = self.weight();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Value at quantile `q` in [0, 1] over the (weighted) latency samples
    /// (midpoint reconstruction, relative error <=
    /// [`RELATIVE_ERROR_BOUND`]); 0 with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.weight();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Total distribution weight recorded strictly above `threshold`
    /// (midpoint comparison — same reconstruction contract as
    /// [`quantile`](Self::quantile)). Feeds SLO burn rates: the fraction
    /// of ops that blew a latency threshold.
    pub fn weight_above(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(i, &c)| c > 0 && bucket_mid(i) > threshold)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Smallest recorded value (lower bucket edge: conservative), or 0.
    pub fn min(&self) -> u64 {
        self.buckets
            .iter()
            .position(|&c| c > 0)
            .map(bucket_low)
            .unwrap_or(0)
    }

    /// Largest recorded value (bucket midpoint), or 0.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_mid)
            .unwrap_or(0)
    }

    /// Merges `other` in: exactly equivalent to having recorded both
    /// streams into one histogram.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum += other.sum;
        self.ops += other.ops;
    }

    /// Bucket-wise delta `self - earlier` (saturating): the distribution of
    /// values recorded between the two snapshots.
    pub fn since(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        HistSnapshot {
            buckets,
            sum: self.sum.saturating_sub(earlier.sum),
            ops: self.ops.saturating_sub(earlier.ops),
        }
    }

    /// Non-empty buckets as `(low_edge, midpoint, count)` rows.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), bucket_mid(i), c))
            .collect()
    }

    /// Compact JSON object with count/mean and standard percentiles, values
    /// scaled by `scale` (e.g. `1e-3 / dilation` for dilated-ns -> us).
    pub fn to_json(&self, scale: f64) -> String {
        let p = |q: f64| self.quantile(q) as f64 * scale;
        format!(
            "{{\"count\":{},\"mean\":{:.3},\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"p999\":{:.3},\"p9999\":{:.3},\"max\":{:.3}}}",
            self.count(),
            self.mean() * scale,
            p(0.50),
            p(0.90),
            p(0.99),
            p(0.999),
            p(0.9999),
            self.max() as f64 * scale,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover() {
        let mut last = 0usize;
        for v in (0..1 << 20).step_by(7) {
            let b = bucket_of(v);
            assert!(b >= last || bucket_low(b) >= bucket_low(last));
            assert!(b < BUCKETS);
            last = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_of(MAX_VALUE), BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn midpoint_reconstruction_error_bound() {
        // Deterministic sweep across all magnitudes.
        let mut v = 1u64;
        while v < MAX_VALUE / 3 {
            for &x in &[v, v + 1, v * 3 - 1] {
                let mid = bucket_mid(bucket_of(x));
                let err = mid.abs_diff(x) as f64 / x as f64;
                assert!(
                    err <= RELATIVE_ERROR_BOUND,
                    "value {x}: reconstructed {mid}, err {err:.5}"
                );
            }
            v *= 2;
        }
    }

    #[test]
    fn exact_below_sub() {
        for v in 0..SUB {
            assert_eq!(bucket_mid(bucket_of(v)), v);
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1us..1ms, uniform
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.05, "p50={p50}");
        let p99 = s.quantile(0.99) as f64;
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.05, "p99={p99}");
        assert!(s.min() <= 1000 && s.min() > 0);
        let max = s.max() as f64;
        assert!((max - 1_000_000.0).abs() / 1_000_000.0 < RELATIVE_ERROR_BOUND);
        let mean = s.mean();
        assert!((mean - 500_500_000.0 / 1000.0).abs() / mean < 0.01);
    }

    #[test]
    fn merge_equals_union_and_since_inverts() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in [3u64, 77, 900, 1 << 20, 5] {
            a.record(v);
            u.record(v);
        }
        for v in [12u64, 77, 1 << 30] {
            b.record(v);
            u.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, u.snapshot());
        // since() undoes merge.
        assert_eq!(m.since(&b.snapshot()), a.snapshot());
    }

    #[test]
    fn bucket_rows_reconstruct_exactly() {
        let h = Histogram::new();
        for v in [0u64, 5, 31, 32, 1000, 123_456, 9_999_999, MAX_VALUE] {
            h.record(v);
        }
        h.record_weighted(777, 64);
        let s = h.snapshot();
        let rows: Vec<(u64, u64)> = s
            .nonzero_buckets()
            .iter()
            .map(|&(low, _, c)| (low, c))
            .collect();
        let r = HistSnapshot::from_bucket_rows(&rows, s.count(), s.sum());
        assert_eq!(r, s, "wire round trip is lossless");
        // Junk edges are dropped, not misfiled.
        let r2 = HistSnapshot::from_bucket_rows(&[(33, 10)], 10, 330);
        assert_eq!(r2.weight(), 0, "33 is not a bucket low edge");
    }

    #[test]
    fn striped_totals_exact_across_threads() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 97);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 80_000);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }
}
