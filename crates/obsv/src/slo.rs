//! Declarative SLOs with multi-window error-budget burn-rate alerting.
//!
//! An [`SloSpec`] names an objective over the time series in a
//! [`Tsdb`](crate::tsdb::Tsdb):
//!
//! * [`Objective::Latency`] — "`quantile(q)` of `source`/`kind` stays
//!   below `threshold_ns`". The error budget is the `1-q` fraction of
//!   operations allowed to exceed the threshold (a p99 objective budgets
//!   1% slow ops); the *burn rate* is the observed slow fraction divided
//!   by that budget.
//! * [`Objective::Ratio`] — "`bad/(bad+good)` stays below `max_ratio`"
//!   over windowed deltas of two monotone counter gauges (e.g. shed rate
//!   from `pacsrv.shed.total` vs `pacsrv.admitted.total`); burn rate is
//!   the observed bad fraction divided by `max_ratio`.
//!
//! Alerting follows the SRE multi-window recipe: an alert **fires** only
//! when both a fast window (default 1 m — quick detection) and a slow
//! window (default 10 m — burst suppression) burn above
//! `burn_threshold`, and **clears** as soon as the fast window drops back
//! under it. Transitions are appended to a bounded in-memory event log
//! (and an optional JSONL sink, schema `slo_events/v1`); live states are
//! exportable as registry gauges (`slo.<name>.firing` / `.burn_fast` /
//! `.burn_slow`) so alert episodes land in the scraped time series
//! themselves.
//!
//! The engine holds no references into the indexes and touches no hot
//! path: [`SloEngine::evaluate`] runs on the scraper thread against
//! already-collected samples.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::recorder::OpKind;
use crate::registry::{MetricsRegistry, Registration};
use crate::tsdb::Tsdb;

/// Default fast alerting window: 1 minute.
pub const DEFAULT_FAST_WINDOW_NS: u64 = 60 * 1_000_000_000;
/// Default slow alerting window: 10 minutes.
pub const DEFAULT_SLOW_WINDOW_NS: u64 = 600 * 1_000_000_000;
/// Bounded in-memory event log length.
const EVENT_CAP: usize = 1024;

/// What an SLO measures.
#[derive(Clone, Debug)]
pub enum Objective {
    /// `quantile(q)` of the `source` histogram for `kind` must stay below
    /// `threshold_ns`: at most a `1-q` fraction of ops may exceed it.
    Latency {
        source: String,
        kind: OpKind,
        q: f64,
        threshold_ns: u64,
    },
    /// `bad/(bad+good)` over windowed counter-gauge deltas must stay
    /// below `max_ratio`.
    Ratio {
        bad: String,
        good: String,
        max_ratio: f64,
    },
}

/// One declarative objective plus its alerting windows.
#[derive(Clone, Debug)]
pub struct SloSpec {
    pub name: String,
    pub objective: Objective,
    pub fast_window_ns: u64,
    pub slow_window_ns: u64,
    /// Burn-rate multiple above which the alert fires (1.0 = budget is
    /// being consumed exactly as fast as it accrues).
    pub burn_threshold: f64,
}

impl SloSpec {
    /// A latency-quantile objective (e.g. `lookup p99 < 5 µs over 60 s`)
    /// with default windows and threshold.
    pub fn latency(
        name: impl Into<String>,
        source: impl Into<String>,
        kind: OpKind,
        q: f64,
        threshold_ns: u64,
    ) -> SloSpec {
        SloSpec {
            name: name.into(),
            objective: Objective::Latency {
                source: source.into(),
                kind,
                q,
                threshold_ns,
            },
            fast_window_ns: DEFAULT_FAST_WINDOW_NS,
            slow_window_ns: DEFAULT_SLOW_WINDOW_NS,
            burn_threshold: 1.0,
        }
    }

    /// A bad-fraction objective over two monotone counter gauges (e.g.
    /// `shed_rate < 1%`) with default windows and threshold.
    pub fn ratio(
        name: impl Into<String>,
        bad: impl Into<String>,
        good: impl Into<String>,
        max_ratio: f64,
    ) -> SloSpec {
        SloSpec {
            name: name.into(),
            objective: Objective::Ratio {
                bad: bad.into(),
                good: good.into(),
                max_ratio,
            },
            fast_window_ns: DEFAULT_FAST_WINDOW_NS,
            slow_window_ns: DEFAULT_SLOW_WINDOW_NS,
            burn_threshold: 1.0,
        }
    }

    /// Overrides both alerting windows (demos and tests scale them down).
    pub fn with_windows(mut self, fast_ns: u64, slow_ns: u64) -> Self {
        self.fast_window_ns = fast_ns;
        self.slow_window_ns = slow_ns;
        self
    }

    /// Overrides the firing burn-rate threshold.
    pub fn with_burn_threshold(mut self, threshold: f64) -> Self {
        self.burn_threshold = threshold;
        self
    }

    /// Burn rate over one window: budget-consumption multiple in [0, ∞).
    /// 0.0 when the window holds no data — an idle service burns no
    /// budget.
    fn burn(&self, tsdb: &Tsdb, window_ns: u64) -> f64 {
        match &self.objective {
            Objective::Latency {
                source,
                kind,
                q,
                threshold_ns,
            } => {
                let Some((delta, _)) = tsdb.hist_delta(source, window_ns) else {
                    return 0.0;
                };
                let h = delta.get(*kind);
                let weight = h.weight();
                if weight == 0 {
                    return 0.0;
                }
                let bad = h.weight_above(*threshold_ns);
                let budget = (1.0 - *q).max(1e-9);
                (bad as f64 / weight as f64) / budget
            }
            Objective::Ratio {
                bad,
                good,
                max_ratio,
            } => {
                let Some((bad_delta, _)) = tsdb.counter_delta(bad, window_ns) else {
                    return 0.0;
                };
                let good_delta = tsdb
                    .counter_delta(good, window_ns)
                    .map(|(d, _)| d)
                    .unwrap_or(0.0);
                let total = bad_delta + good_delta;
                if total <= 0.0 {
                    return 0.0;
                }
                (bad_delta / total) / max_ratio.max(1e-9)
            }
        }
    }
}

/// Point-in-time alert state of one SLO.
#[derive(Clone, Debug)]
pub struct SloStatus {
    pub name: String,
    pub firing: bool,
    pub burn_fast: f64,
    pub burn_slow: f64,
    pub burn_threshold: f64,
}

#[derive(Clone, Copy, Debug, Default)]
struct State {
    firing: bool,
    burn_fast: f64,
    burn_slow: f64,
    transitions: u64,
}

struct EventLog {
    recent: VecDeque<String>,
    sink: Option<Box<dyn Write + Send>>,
}

/// Evaluates a set of [`SloSpec`]s against a [`Tsdb`] after each scrape.
pub struct SloEngine {
    tsdb: Arc<Tsdb>,
    specs: Vec<SloSpec>,
    states: Mutex<Vec<State>>,
    events: Mutex<EventLog>,
}

impl SloEngine {
    pub fn new(tsdb: Arc<Tsdb>, specs: Vec<SloSpec>) -> Arc<SloEngine> {
        let states = vec![State::default(); specs.len()];
        Arc::new(SloEngine {
            tsdb,
            specs,
            states: Mutex::new(states),
            events: Mutex::new(EventLog {
                recent: VecDeque::new(),
                sink: None,
            }),
        })
    }

    /// Routes a copy of every transition event (JSONL, schema
    /// `slo_events/v1`) to `sink`, flushed per line.
    pub fn set_event_sink(&self, sink: Box<dyn Write + Send>) {
        self.events.lock().unwrap().sink = Some(sink);
    }

    /// Re-evaluates every SLO against the current time series; returns
    /// the number of fire/clear transitions. Called by the scraper after
    /// each scrape (or directly, in deterministic tests).
    pub fn evaluate(&self) -> usize {
        let ts_ns = self.tsdb.latest_ts_ns().unwrap_or(0);
        let mut transitions = 0;
        let mut states = self.states.lock().unwrap();
        for (spec, st) in self.specs.iter().zip(states.iter_mut()) {
            st.burn_fast = spec.burn(&self.tsdb, spec.fast_window_ns);
            st.burn_slow = spec.burn(&self.tsdb, spec.slow_window_ns);
            let th = spec.burn_threshold;
            if !st.firing && st.burn_fast >= th && st.burn_slow >= th {
                st.firing = true;
                st.transitions += 1;
                transitions += 1;
                self.emit(ts_ns, spec, st, "fire");
            } else if st.firing && st.burn_fast < th {
                st.firing = false;
                st.transitions += 1;
                transitions += 1;
                self.emit(ts_ns, spec, st, "clear");
            }
        }
        transitions
    }

    fn emit(&self, ts_ns: u64, spec: &SloSpec, st: &State, event: &str) {
        let line = format!(
            "{{\"schema\":\"slo_events/v1\",\"ts_ns\":{ts_ns},\"slo\":\"{}\",\"event\":\"{event}\",\"burn_fast\":{:.4},\"burn_slow\":{:.4},\"burn_threshold\":{:.4}}}",
            spec.name, st.burn_fast, st.burn_slow, spec.burn_threshold
        );
        let mut log = self.events.lock().unwrap();
        if log.recent.len() == EVENT_CAP {
            log.recent.pop_front();
        }
        log.recent.push_back(line.clone());
        if let Some(sink) = &mut log.sink {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }

    /// Current state of every SLO, in spec order.
    pub fn status(&self) -> Vec<SloStatus> {
        let states = self.states.lock().unwrap();
        self.specs
            .iter()
            .zip(states.iter())
            .map(|(spec, st)| SloStatus {
                name: spec.name.clone(),
                firing: st.firing,
                burn_fast: st.burn_fast,
                burn_slow: st.burn_slow,
                burn_threshold: spec.burn_threshold,
            })
            .collect()
    }

    /// Whether any SLO is currently firing.
    pub fn any_firing(&self) -> bool {
        self.states.lock().unwrap().iter().any(|s| s.firing)
    }

    /// Total fire+clear transitions across all SLOs since creation.
    pub fn transition_count(&self) -> u64 {
        self.states
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.transitions)
            .sum()
    }

    /// Copies of the most recent transition events (JSONL lines, oldest
    /// first, bounded).
    pub fn recent_events(&self) -> Vec<String> {
        self.events.lock().unwrap().recent.iter().cloned().collect()
    }

    /// Exports every SLO's live state as gauges (`slo.<name>.firing`,
    /// `.burn_fast`, `.burn_slow`) so alert episodes appear in scraped
    /// samples. Gauges hold only a `Weak` to the engine.
    pub fn register_gauges(self: &Arc<Self>, reg: &MetricsRegistry) -> Vec<Registration> {
        let mut guards = Vec::with_capacity(self.specs.len() * 3);
        for (i, spec) in self.specs.iter().enumerate() {
            let w = Arc::downgrade(self);
            guards.push(
                reg.register_gauge(format!("slo.{}.firing", spec.name), move || {
                    w.upgrade().map(|e| {
                        if e.states.lock().unwrap()[i].firing {
                            1.0
                        } else {
                            0.0
                        }
                    })
                }),
            );
            let w = Arc::downgrade(self);
            guards.push(
                reg.register_gauge(format!("slo.{}.burn_fast", spec.name), move || {
                    w.upgrade().map(|e| e.states.lock().unwrap()[i].burn_fast)
                }),
            );
            let w = Arc::downgrade(self);
            guards.push(
                reg.register_gauge(format!("slo.{}.burn_slow", spec.name), move || {
                    w.upgrade().map(|e| e.states.lock().unwrap()[i].burn_slow)
                }),
            );
        }
        guards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{OpHistograms, OpSetSnapshot};
    use crate::registry::Sample;
    use std::collections::BTreeMap;

    fn counter_sample(ts_ns: u64, bad: f64, good: f64) -> Sample {
        Sample {
            ts_ns,
            gauges: [("s.bad".to_string(), bad), ("s.good".to_string(), good)]
                .into_iter()
                .collect(),
            hists: BTreeMap::new(),
        }
    }

    fn hist_sample(ts_ns: u64, snap: OpSetSnapshot) -> Sample {
        Sample {
            ts_ns,
            gauges: BTreeMap::new(),
            hists: [("idx".to_string(), snap)].into_iter().collect(),
        }
    }

    #[test]
    fn ratio_slo_fires_on_both_windows_and_clears_on_fast() {
        let db = Tsdb::new(64);
        // shed_rate < 1%, fast window 2 ticks, slow window 4 ticks
        // (1 tick = 1s).
        let spec = SloSpec::ratio("shed", "s.bad", "s.good", 0.01)
            .with_windows(2_000_000_000, 4_000_000_000);
        let engine = SloEngine::new(Arc::clone(&db), vec![spec]);
        let sec = 1_000_000_000u64;

        // Healthy traffic: 1000 good/s, no shed.
        for i in 0..5u64 {
            db.record(counter_sample(i * sec, 0.0, 1000.0 * i as f64));
            engine.evaluate();
        }
        assert!(!engine.any_firing());

        // Overload: 200 bad + 800 good per second (20% shed = 20x burn).
        let mut bad = 0.0;
        let mut good = 4000.0;
        let mut fired_at = None;
        for i in 5..10u64 {
            bad += 200.0;
            good += 800.0;
            db.record(counter_sample(i * sec, bad, good));
            engine.evaluate();
            if engine.any_firing() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        // Must fire within one fast window (2 ticks) of overload onset.
        assert!(matches!(fired_at, Some(at) if at <= 7), "{fired_at:?}");
        let status = &engine.status()[0];
        assert!(
            status.burn_fast > 1.0 && status.burn_slow > 1.0,
            "{status:?}"
        );

        // Load drops: pure good traffic again; fast window recovers first
        // and the alert clears even while the slow window still burns.
        let mut cleared_at = None;
        for i in 10..18u64 {
            good += 1000.0;
            db.record(counter_sample(i * sec, bad, good));
            engine.evaluate();
            if !engine.any_firing() && cleared_at.is_none() {
                cleared_at = Some(i);
            }
        }
        assert!(matches!(cleared_at, Some(at) if at <= 13), "{cleared_at:?}");
        assert_eq!(engine.transition_count(), 2);

        // The episode left a fire and a clear event, in order.
        let events = engine.recent_events();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events[0].contains("\"event\":\"fire\""), "{}", events[0]);
        assert!(events[1].contains("\"event\":\"clear\""), "{}", events[1]);
        assert!(events[0].contains("\"schema\":\"slo_events/v1\""));
    }

    #[test]
    fn latency_slo_burn_is_bad_fraction_over_budget() {
        let db = Tsdb::new(8);
        let ops = OpHistograms::new();
        // Baseline snapshot, empty.
        db.record(hist_sample(0, ops.snapshot()));
        // 90 fast ops + 10 slow ops: 10% above threshold, p99 budget 1%
        // => burn 10x.
        for _ in 0..90 {
            ops.record(OpKind::Lookup, 1_000, 0);
        }
        for _ in 0..10 {
            ops.record(OpKind::Lookup, 1_000_000, 0);
        }
        db.record(hist_sample(1_000_000_000, ops.snapshot()));

        let spec = SloSpec::latency("lat", "idx", OpKind::Lookup, 0.99, 100_000)
            .with_windows(2_000_000_000, 2_000_000_000);
        let engine = SloEngine::new(Arc::clone(&db), vec![spec]);
        engine.evaluate();
        let st = &engine.status()[0];
        assert!((st.burn_fast - 10.0).abs() < 0.5, "{st:?}");
        assert!(st.firing);
    }

    #[test]
    fn idle_windows_burn_nothing() {
        let db = Tsdb::new(8);
        let spec = SloSpec::ratio("shed", "s.bad", "s.good", 0.01);
        let engine = SloEngine::new(Arc::clone(&db), vec![spec]);
        assert_eq!(engine.evaluate(), 0);
        let st = &engine.status()[0];
        assert_eq!(st.burn_fast, 0.0);
        assert!(!st.firing);
    }

    #[test]
    fn gauges_export_state_and_drop_with_engine() {
        let db = Tsdb::new(8);
        let reg = MetricsRegistry::new();
        let engine = SloEngine::new(db, vec![SloSpec::ratio("x", "b", "g", 0.01)]);
        let guards = engine.register_gauges(&reg);
        assert_eq!(guards.len(), 3);
        let s = reg.sample();
        assert_eq!(s.gauges.get("slo.x.firing"), Some(&0.0));
        assert_eq!(s.gauges.get("slo.x.burn_fast"), Some(&0.0));
        drop(engine);
        assert!(reg.sample().gauges.is_empty());
        drop(guards);
    }
}
