//! Process-wide metrics registry: named gauges and per-op histogram sets.
//!
//! Components register callbacks (typically capturing a `Weak` to their
//! owner so registration never extends an index's lifetime); readers call
//! [`MetricsRegistry::sample`] to pull a point-in-time [`Sample`]. A
//! callback returning `None` (owner dropped) is skipped. Registration is
//! RAII: dropping the returned [`Registration`] unregisters.
//!
//! Names should be unique per process (prefix with the pool/index name);
//! `sample()` keeps the last writer on duplicates so JSON objects stay
//! well-formed.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::recorder::OpSetSnapshot;

type GaugeFn = Box<dyn Fn() -> Option<f64> + Send + Sync>;
type HistFn = Box<dyn Fn() -> Option<OpSetSnapshot> + Send + Sync>;

struct Inner {
    gauges: Vec<(u64, String, GaugeFn)>,
    hists: Vec<(u64, String, HistFn)>,
    next_id: u64,
}

/// Registry of live metric sources.
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(Mutex::new(Inner {
                gauges: Vec::new(),
                hists: Vec::new(),
                next_id: 0,
            })),
        }
    }

    /// Registers a named scalar gauge. The callback runs on every
    /// `sample()`; return `None` once the underlying owner is gone.
    pub fn register_gauge(
        &self,
        name: impl Into<String>,
        f: impl Fn() -> Option<f64> + Send + Sync + 'static,
    ) -> Registration {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.gauges.push((id, name.into(), Box::new(f)));
        Registration {
            inner: Arc::downgrade(&self.inner),
            id,
        }
    }

    /// Registers a named per-op histogram source (one per index instance).
    pub fn register_hists(
        &self,
        name: impl Into<String>,
        f: impl Fn() -> Option<OpSetSnapshot> + Send + Sync + 'static,
    ) -> Registration {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.hists.push((id, name.into(), Box::new(f)));
        Registration {
            inner: Arc::downgrade(&self.inner),
            id,
        }
    }

    /// Pulls every live metric at one instant. Dead sources (callback
    /// returned `None`) are omitted.
    pub fn sample(&self) -> Sample {
        let inner = self.inner.lock().unwrap();
        let mut gauges = BTreeMap::new();
        for (_, name, f) in &inner.gauges {
            if let Some(v) = f() {
                gauges.insert(name.clone(), v);
            }
        }
        let mut hists = BTreeMap::new();
        for (_, name, f) in &inner.hists {
            if let Some(s) = f() {
                hists.insert(name.clone(), s);
            }
        }
        Sample {
            ts_ns: crate::clock::now_ns(),
            gauges,
            hists,
        }
    }

    /// Number of registered gauge sources (live or dead), for tests.
    pub fn gauge_count(&self) -> usize {
        self.inner.lock().unwrap().gauges.len()
    }
}

/// The process-global registry every layer reports into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// RAII guard: unregisters its metric on drop. Holds only a `Weak` to the
/// registry, so guards outliving the registry (test registries) are fine.
pub struct Registration {
    inner: Weak<Mutex<Inner>>,
    id: u64,
}

impl Drop for Registration {
    fn drop(&mut self) {
        if let Some(m) = self.inner.upgrade() {
            let mut inner = m.lock().unwrap();
            inner.gauges.retain(|(id, _, _)| *id != self.id);
            inner.hists.retain(|(id, _, _)| *id != self.id);
        }
    }
}

/// A point-in-time pull of every live metric.
#[derive(Clone)]
pub struct Sample {
    /// Process-relative timestamp ([`crate::clock::now_ns`]).
    pub ts_ns: u64,
    pub gauges: BTreeMap<String, f64>,
    pub hists: BTreeMap<String, OpSetSnapshot>,
}

impl Sample {
    /// One JSON object (suitable as a JSON-lines record). Histogram values
    /// are scaled by `hist_scale` (e.g. `1e-3 / dilation` for ns -> us of
    /// simulated time).
    pub fn to_json(&self, hist_scale: f64) -> String {
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v:.6}"))
            .collect::<Vec<_>>()
            .join(",");
        let hists = self
            .hists
            .iter()
            .map(|(k, s)| format!("\"{k}\":{}", s.to_json(hist_scale)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"ts_ns\":{},\"gauges\":{{{gauges}}},\"hists\":{{{hists}}}}}",
            self.ts_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{OpHistograms, OpKind};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn gauge_lifecycle_and_sampling() {
        let reg = MetricsRegistry::new();
        let counter = Arc::new(AtomicU64::new(7));
        let c2 = Arc::downgrade(&counter);
        let guard = reg.register_gauge("test.counter", move || {
            c2.upgrade().map(|c| c.load(Ordering::Relaxed) as f64)
        });
        let s = reg.sample();
        assert_eq!(s.gauges.get("test.counter"), Some(&7.0));

        // Owner dropped: gauge disappears from samples but stays registered.
        drop(counter);
        assert!(!reg.sample().gauges.contains_key("test.counter"));
        assert_eq!(reg.gauge_count(), 1);

        // Guard dropped: unregistered.
        drop(guard);
        assert_eq!(reg.gauge_count(), 0);
    }

    #[test]
    fn hist_sources_and_json() {
        let reg = MetricsRegistry::new();
        let ops = Arc::new(OpHistograms::new());
        ops.record(OpKind::Lookup, 123, 0);
        let w = Arc::downgrade(&ops);
        let _guard = reg.register_hists("idx", move || w.upgrade().map(|o| o.snapshot()));
        let _g2 = reg.register_gauge("g", || Some(1.5));
        let js = reg.sample().to_json(1.0);
        assert!(js.contains("\"idx\""), "{js}");
        assert!(js.contains("\"lookup\""), "{js}");
        assert!(js.contains("\"g\":1.5"), "{js}");
        assert!(js.starts_with("{\"ts_ns\":"), "{js}");
    }

    #[test]
    fn registration_outliving_registry_is_harmless() {
        let reg = MetricsRegistry::new();
        let guard = reg.register_gauge("x", || Some(0.0));
        drop(reg);
        drop(guard); // must not panic
    }
}
