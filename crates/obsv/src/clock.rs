//! Fast monotonic nanosecond clock for per-operation latency timing.
//!
//! `Instant::now` is a vDSO call (~20-25 ns on Linux); paying it twice per
//! index operation would by itself eat most of the <5% instrumentation
//! budget on a cached lookup. On x86_64 we read the TSC instead (~6-10 ns)
//! and convert to nanoseconds with a scale calibrated once against
//! `Instant`; other architectures fall back to `Instant`.
//!
//! The TSC is not serializing, so adjacent reads can be reordered by a few
//! cycles — irrelevant at the >=100 ns latencies being measured. Modern
//! x86_64 TSCs are invariant (constant rate, synchronized across cores);
//! the calibration assumes that, like every userspace profiler does.

use std::time::Instant;

/// Nanoseconds since an arbitrary process-local origin.
#[inline]
pub fn now_ns() -> u64 {
    imp::now_ns()
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::*;
    use std::sync::OnceLock;

    /// TSC ticks per nanosecond, calibrated on first use.
    struct Calibration {
        base_tsc: u64,
        ns_per_tick: f64,
    }

    static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

    fn rdtsc() -> u64 {
        // SAFETY: RDTSC is unprivileged and has no memory effects.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    /// One (TSC, Instant) sample taken close together: the TSC read is
    /// bracketed by two `Instant` reads and retried until the bracket is
    /// tight, so a deschedule between the reads cannot end up inside the
    /// pair (which would skew the calibrated scale by a whole scheduling
    /// quantum — observed as 3-4x clock drift on loaded CI hosts). Falls
    /// back to the tightest pair seen if the host never yields a clean one.
    fn paired_read() -> (u64, Instant) {
        let mut best = (rdtsc(), Instant::now(), u128::MAX);
        for _ in 0..100 {
            let before = Instant::now();
            let tsc = rdtsc();
            let after = Instant::now();
            let width = after.duration_since(before).as_nanos();
            if width < best.2 {
                best = (tsc, before + after.duration_since(before) / 2, width);
            }
            if width < 10_000 {
                break;
            }
        }
        (best.0, best.1)
    }

    fn calibrate() -> Calibration {
        // ~2 ms busy calibration window: long enough for <1% scale error,
        // short enough to be invisible at process start.
        let (base_tsc, start) = paired_read();
        loop {
            std::hint::spin_loop();
            let (end_tsc, end) = paired_read();
            let elapsed = end.duration_since(start);
            if elapsed.as_nanos() >= 2_000_000 {
                let ticks = end_tsc.wrapping_sub(base_tsc).max(1);
                return Calibration {
                    base_tsc,
                    ns_per_tick: elapsed.as_nanos() as f64 / ticks as f64,
                };
            }
        }
    }

    #[inline]
    pub fn now_ns() -> u64 {
        let cal = CALIBRATION.get_or_init(calibrate);
        let ticks = rdtsc().wrapping_sub(cal.base_tsc);
        (ticks as f64 * cal.ns_per_tick) as u64
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod imp {
    use super::*;
    use std::sync::OnceLock;

    static ORIGIN: OnceLock<Instant> = OnceLock::new();

    #[inline]
    pub fn now_ns() -> u64 {
        let origin = ORIGIN.get_or_init(Instant::now);
        origin.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_roughly_calibrated() {
        let a = now_ns();
        let wall = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let b = now_ns();
        let elapsed = wall.elapsed().as_nanos() as u64;
        assert!(b > a, "clock must be monotonic");
        let measured = b - a;
        // Within 20% of wall time over 20 ms (generous: CI timer slack).
        assert!(
            measured.abs_diff(elapsed) < elapsed / 5 + 2_000_000,
            "clock drifted: measured {measured} ns vs wall {elapsed} ns"
        );
    }
}
