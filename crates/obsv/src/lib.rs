//! Always-on observability for the PACTree workspace.
//!
//! Four pieces, layered so everything below the bench binaries can report
//! without dependency cycles (this crate is std-only; `pmem` depends on it,
//! everything else depends on `pmem`):
//!
//! * [`hist`] — lock-free, thread-striped, log-bucketed latency histograms
//!   with bounded relative error and mergeable/subtractable snapshots.
//! * [`recorder`] — per-operation-kind histogram sets and the shared
//!   [`OpRecorder`] trait implemented by every index.
//! * [`registry`] — process-global registry of named gauges (SMO replay
//!   lag, epoch backlog, XPBuffer hit rate, throttle stall time, ...) and
//!   per-index histogram sources, pulled into JSON [`registry::Sample`]s.
//! * [`flight`] / [`sampler`] — feature-gated heavier machinery: bounded
//!   per-thread rings of recent ops dumped on panic, and a background
//!   thread emitting JSON-lines time series.
//! * [`trace`] — feature-gated span-based request tracer with tail-based
//!   retention (only slow/errored traces are kept) and NVM stall
//!   attribution; context/export types are always available so the wire
//!   codec works in every build.
//! * [`tsdb`] / [`slo`] / [`prom`] — continuous telemetry: a fixed-memory
//!   ring of periodic registry samples with read-side delta/rate
//!   derivation, a multi-window error-budget SLO engine over it, and the
//!   Prometheus text renderer the health endpoints serve.
//! * [`fleet`] — the cluster plane: a scraper that polls every node's
//!   metrics page, rebuilds and merges histogram snapshots into exact
//!   fleet-wide percentiles, and evaluates cluster-level SLOs
//!   (fleet p99, stuck migrations, migration-window burn).
//!
//! Hot-path cost when enabled is one relaxed striped `fetch_add` for the
//! exact per-op count, plus — on a deterministic 1-in-2^[`sample_shift`]
//! sample of operations (default 1/16) — one [`clock::now_ns`] pair and a
//! weighted histogram update. Sampled latencies carry their sampling
//! period as a bucket weight, so quantiles/means stay unbiased while
//! counts stay exact. [`set_sample_shift`]`(0)` records every operation
//! (full-fidelity mode, used by the tail-latency experiments); cost is
//! quantified by `bench_obsv_overhead`. When disabled via
//! [`set_enabled`]`(false)` the whole path is two predictable branches.

pub mod clock;
pub mod fleet;
pub mod flight;
pub mod hist;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod sampler;
pub mod slo;
pub mod trace;
pub mod tsdb;

pub use fleet::{FleetScraper, FleetSloConfig, FleetView};
pub use hist::{HistSnapshot, Histogram, RELATIVE_ERROR_BOUND};
pub use recorder::{OpHistograms, OpKind, OpRecorder, OpSetSnapshot};
pub use registry::{global, MetricsRegistry, Registration, Sample};
pub use slo::{Objective, SloEngine, SloSpec, SloStatus};
pub use tsdb::{Scraper, Tsdb};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Observability is on by default; `bench_obsv_overhead` (and anyone
/// wanting the last few ns) can turn the timed hot path off at runtime.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables/disables hot-path recording (timers + histograms +
/// flight recorder). Registry gauges keep working either way — they read
/// counters maintained by the code under observation, not by us.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether hot-path recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Default latency sampling: time 1 in 2^4 = 16 operations.
pub const DEFAULT_SAMPLE_SHIFT: u32 = 4;
const MAX_SAMPLE_SHIFT: u32 = 16;

/// log2 of the latency sampling period. Every operation is *counted*
/// exactly; only 1 in 2^shift pays the clock pair, and its latency enters
/// the histogram with weight 2^shift so the distribution stays unbiased.
static SAMPLE_SHIFT: AtomicU32 = AtomicU32::new(DEFAULT_SAMPLE_SHIFT);

/// Sets the latency sampling period to 1 in 2^`shift` operations
/// (clamped to 2^16). `0` means every operation is timed — full-fidelity
/// mode for tail-latency experiments where per-op cost doesn't matter.
pub fn set_sample_shift(shift: u32) {
    SAMPLE_SHIFT.store(shift.min(MAX_SAMPLE_SHIFT), Ordering::Relaxed);
}

/// Current log2 sampling period (see [`set_sample_shift`]).
#[inline]
pub fn sample_shift() -> u32 {
    SAMPLE_SHIFT.load(Ordering::Relaxed)
}

thread_local! {
    /// Per-thread countdown to the next timed operation. Starts at 0 so
    /// the first operation on every thread is always sampled.
    static SAMPLE_COUNTDOWN: Cell<u32> = const { Cell::new(0) };
}

/// Outcome of [`OpTimer::stop`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerStop {
    /// Observability was disabled at start time: record nothing.
    Disabled,
    /// The operation was not in the latency sample: count it, no latency.
    Counted,
    /// A sampled operation: `ns` elapsed, representing `weight` ops.
    Sampled { ns: u64, weight: u64 },
}

/// A started operation timer. `Copy` and one word; on the common
/// (unsampled) path neither `start()` nor `stop()` reads a clock — the
/// cost is one TLS countdown decrement.
#[derive(Clone, Copy, Debug)]
pub struct OpTimer {
    start_ns: u64,
}

const DISABLED: u64 = u64::MAX;
const UNSAMPLED: u64 = u64::MAX - 1;

impl OpTimer {
    /// Starts timing. Reads the clock only when this operation falls on
    /// the thread's 1-in-2^[`sample_shift`] latency sample.
    #[inline]
    pub fn start() -> OpTimer {
        if !enabled() {
            return OpTimer { start_ns: DISABLED };
        }
        SAMPLE_COUNTDOWN.with(|c| {
            let left = c.get();
            if left > 0 {
                c.set(left - 1);
                OpTimer {
                    start_ns: UNSAMPLED,
                }
            } else {
                c.set((1u32 << sample_shift()) - 1);
                OpTimer {
                    start_ns: clock::now_ns(),
                }
            }
        })
    }

    /// Stops the timer, reading the clock again only if this operation
    /// was sampled.
    #[inline]
    pub fn stop(self) -> TimerStop {
        match self.start_ns {
            DISABLED => TimerStop::Disabled,
            UNSAMPLED => TimerStop::Counted,
            start => TimerStop::Sampled {
                ns: clock::now_ns().saturating_sub(start),
                weight: 1u64 << sample_shift(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_respects_enable_flag_and_sampling() {
        assert!(enabled());
        set_sample_shift(0);
        let t = OpTimer::start();
        assert!(matches!(t.stop(), TimerStop::Sampled { weight: 1, .. }));

        set_enabled(false);
        let t = OpTimer::start();
        assert_eq!(t.stop(), TimerStop::Disabled);
        set_enabled(true);

        // With a 1-in-4 sample, the countdown yields exactly one Sampled
        // stop (weight 4) per four starts.
        set_sample_shift(2);
        let stops: Vec<TimerStop> = (0..8).map(|_| OpTimer::start().stop()).collect();
        let sampled = stops
            .iter()
            .filter(|s| matches!(s, TimerStop::Sampled { weight: 4, .. }))
            .count();
        let counted = stops.iter().filter(|&&s| s == TimerStop::Counted).count();
        assert_eq!(sampled, 2, "{stops:?}");
        assert_eq!(counted, 6, "{stops:?}");
        set_sample_shift(DEFAULT_SAMPLE_SHIFT);
    }
}
