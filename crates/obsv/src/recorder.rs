//! Per-operation-type latency recording shared by every index.
//!
//! Each index owns an [`OpHistograms`] (one striped [`Histogram`] per
//! [`OpKind`]) and implements [`OpRecorder`] to expose it. The hot-path
//! contract is: take an [`crate::OpTimer`] at operation entry, call
//! [`OpHistograms::finish`] at exit. When observability is disabled the
//! timer is a sentinel and `finish` is a single branch.

use crate::hist::{HistSnapshot, Histogram};
use crate::{OpTimer, TimerStop};

/// Number of operation kinds.
pub const OP_KINDS: usize = 5;

/// The operation types every range index exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    Lookup = 0,
    Insert = 1,
    Update = 2,
    Scan = 3,
    Remove = 4,
}

impl OpKind {
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::Lookup,
        OpKind::Insert,
        OpKind::Update,
        OpKind::Scan,
        OpKind::Remove,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpKind::Lookup => "lookup",
            OpKind::Insert => "insert",
            OpKind::Update => "update",
            OpKind::Scan => "scan",
            OpKind::Remove => "remove",
        }
    }
}

/// One latency histogram per operation kind.
pub struct OpHistograms {
    per: [Histogram; OP_KINDS],
}

impl Default for OpHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl OpHistograms {
    pub fn new() -> Self {
        OpHistograms {
            per: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// The histogram for one operation kind.
    #[inline]
    pub fn hist(&self, kind: OpKind) -> &Histogram {
        &self.per[kind as usize]
    }

    /// Records one completed operation. Also feeds the flight recorder
    /// when the `flight` feature is enabled (a no-op call otherwise).
    #[inline]
    pub fn record(&self, kind: OpKind, latency_ns: u64, retries: u32) {
        self.per[kind as usize].record(latency_ns);
        crate::flight::record(kind, latency_ns, retries);
    }

    /// Stops `timer` and records the outcome: every operation is counted
    /// exactly; latency-sampled ones (see [`crate::sample_shift`]) also
    /// enter the histogram with their sampling weight. A single branch
    /// when observability is disabled.
    #[inline]
    pub fn finish(&self, kind: OpKind, timer: OpTimer, retries: u32) {
        match timer.stop() {
            TimerStop::Disabled => {}
            TimerStop::Counted => self.per[kind as usize].count_op(),
            TimerStop::Sampled { ns, weight } => {
                self.per[kind as usize].record_weighted(ns, weight);
                crate::flight::record(kind, ns, retries);
            }
        }
    }

    /// Point-in-time snapshot of all kinds.
    pub fn snapshot(&self) -> OpSetSnapshot {
        OpSetSnapshot {
            per: std::array::from_fn(|i| self.per[i].snapshot()),
        }
    }

    /// Resets every histogram (between measurement runs, not mid-run).
    pub fn reset(&self) {
        for h in &self.per {
            h.reset();
        }
    }
}

/// Snapshots of all five op histograms at one instant. Plain data:
/// mergeable across threads/indexes and subtractable for per-phase deltas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpSetSnapshot {
    per: [HistSnapshot; OP_KINDS],
}

impl Default for OpSetSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl OpSetSnapshot {
    pub fn empty() -> Self {
        OpSetSnapshot {
            per: std::array::from_fn(|_| HistSnapshot::empty()),
        }
    }

    #[inline]
    pub fn get(&self, kind: OpKind) -> &HistSnapshot {
        &self.per[kind as usize]
    }

    /// Total operations across all kinds.
    pub fn total_count(&self) -> u64 {
        self.per.iter().map(|h| h.count()).sum()
    }

    /// All kinds merged into a single distribution.
    pub fn merged(&self) -> HistSnapshot {
        let mut out = HistSnapshot::empty();
        for h in &self.per {
            out.merge(h);
        }
        out
    }

    /// Merges `other` in, kind by kind.
    pub fn merge(&mut self, other: &OpSetSnapshot) {
        for (a, b) in self.per.iter_mut().zip(other.per.iter()) {
            a.merge(b);
        }
    }

    /// Per-kind delta `self - earlier`: the ops completed between the two
    /// snapshots.
    pub fn since(&self, earlier: &OpSetSnapshot) -> OpSetSnapshot {
        OpSetSnapshot {
            per: std::array::from_fn(|i| self.per[i].since(&earlier.per[i])),
        }
    }

    /// JSON object keyed by op name plus `"all"` (the merged distribution),
    /// omitting kinds with no samples. Values scaled by `scale`.
    pub fn to_json(&self, scale: f64) -> String {
        let mut parts = Vec::new();
        for kind in OpKind::ALL {
            let h = self.get(kind);
            if h.count() > 0 {
                parts.push(format!("\"{}\":{}", kind.name(), h.to_json(scale)));
            }
        }
        parts.push(format!("\"all\":{}", self.merged().to_json(scale)));
        format!("{{{}}}", parts.join(","))
    }
}

/// The shared recorder interface: anything that owns per-op latency
/// histograms. Implemented by PACTree, PDL-ART, and all three baselines.
pub trait OpRecorder {
    /// The histograms backing this component.
    fn op_histograms(&self) -> &OpHistograms;

    /// Snapshot of all op histograms.
    fn op_snapshot(&self) -> OpSetSnapshot {
        self.op_histograms().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_per_kind() {
        let ops = OpHistograms::new();
        ops.record(OpKind::Lookup, 100, 0);
        ops.record(OpKind::Lookup, 200, 1);
        ops.record(OpKind::Scan, 5_000, 0);
        let snap = ops.snapshot();
        assert_eq!(snap.get(OpKind::Lookup).count(), 2);
        assert_eq!(snap.get(OpKind::Scan).count(), 1);
        assert_eq!(snap.get(OpKind::Remove).count(), 0);
        assert_eq!(snap.total_count(), 3);
        assert_eq!(snap.merged().count(), 3);
    }

    #[test]
    fn since_gives_phase_delta() {
        let ops = OpHistograms::new();
        ops.record(OpKind::Insert, 50, 0);
        let before = ops.snapshot();
        ops.record(OpKind::Insert, 70, 0);
        ops.record(OpKind::Update, 90, 0);
        let delta = ops.snapshot().since(&before);
        assert_eq!(delta.get(OpKind::Insert).count(), 1);
        assert_eq!(delta.get(OpKind::Update).count(), 1);
        assert_eq!(delta.total_count(), 2);
    }

    #[test]
    fn json_has_all_and_nonempty_kinds_only() {
        let ops = OpHistograms::new();
        ops.record(OpKind::Remove, 1000, 0);
        let js = ops.snapshot().to_json(1.0);
        assert!(js.contains("\"remove\""), "{js}");
        assert!(js.contains("\"all\""), "{js}");
        assert!(!js.contains("\"lookup\""), "{js}");
    }
}
