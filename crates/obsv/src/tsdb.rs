//! Fixed-memory time-series store over registry samples.
//!
//! A [`Tsdb`] is a bounded ring of [`Sample`]s pulled from a
//! [`MetricsRegistry`](crate::MetricsRegistry). Writers (the scraper
//! thread) only append; every derivation — counter deltas and rates,
//! windowed histogram subtraction — happens on the reader side against the
//! monotone snapshots PR 3's histograms already provide, so the index hot
//! paths gain **no new locks and no new instructions**: the only cost of
//! continuous telemetry is the periodic `registry.sample()` walk on the
//! scraper thread (quantified by `bench_obsv_overhead --quick`, scraper
//! arm).
//!
//! Retention is fixed-memory by construction: `capacity` samples, oldest
//! evicted on overflow. The default production shape is 1 s × 10 min
//! ([`DEFAULT_INTERVAL`] × [`DEFAULT_RETENTION`]).
//!
//! [`Scraper`] is the background pump: every `interval` it samples the
//! global registry into the ring and (optionally) re-evaluates an
//! [`SloEngine`](crate::slo::SloEngine). Tests and deterministic demos
//! skip the thread and call [`Tsdb::scrape_global`] / [`Tsdb::record`]
//! directly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::recorder::OpSetSnapshot;
use crate::registry::{self, Sample};

/// Default scrape interval: one second.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);
/// Default retention horizon: ten minutes.
pub const DEFAULT_RETENTION: Duration = Duration::from_secs(600);

/// A bounded ring of registry samples with windowed read-side derivation.
pub struct Tsdb {
    ring: Mutex<VecDeque<Sample>>,
    capacity: usize,
}

impl Tsdb {
    /// A ring retaining the last `capacity` samples (min 2 — windowed
    /// queries need two points).
    pub fn new(capacity: usize) -> Arc<Tsdb> {
        let capacity = capacity.max(2);
        Arc::new(Tsdb {
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        })
    }

    /// Capacity sized so `retention` of samples at `interval` fit.
    pub fn with_retention(interval: Duration, retention: Duration) -> Arc<Tsdb> {
        let cap = (retention.as_nanos() / interval.as_nanos().max(1)) as usize + 1;
        Self::new(cap)
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained samples.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether no samples have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one sample, evicting the oldest at capacity.
    pub fn record(&self, sample: Sample) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(sample);
    }

    /// Samples the global registry into the ring; returns the sample's
    /// timestamp.
    pub fn scrape_global(&self) -> u64 {
        let s = registry::global().sample();
        let ts = s.ts_ns;
        self.record(s);
        ts
    }

    /// Timestamp of the newest retained sample.
    pub fn latest_ts_ns(&self) -> Option<u64> {
        self.ring.lock().unwrap().back().map(|s| s.ts_ns)
    }

    /// Latest value of a gauge, if present in the newest sample.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.ring
            .lock()
            .unwrap()
            .back()
            .and_then(|s| s.gauges.get(name).copied())
    }

    /// Runs `f` on the (newest, oldest-in-window) sample pair. `None` when
    /// fewer than two samples fall inside the window — a delta needs two
    /// distinct points.
    fn with_window<R>(&self, window_ns: u64, f: impl FnOnce(&Sample, &Sample) -> R) -> Option<R> {
        let ring = self.ring.lock().unwrap();
        let newest = ring.back()?;
        let start = newest.ts_ns.saturating_sub(window_ns);
        let oldest = ring.iter().find(|s| s.ts_ns >= start)?;
        if oldest.ts_ns == newest.ts_ns {
            return None;
        }
        Some(f(newest, oldest))
    }

    /// Windowed delta of a monotone counter gauge, clamped at 0, plus the
    /// span actually covered (ns).
    pub fn counter_delta(&self, name: &str, window_ns: u64) -> Option<(f64, u64)> {
        self.with_window(window_ns, |newest, oldest| {
            let a = oldest.gauges.get(name).copied()?;
            let b = newest.gauges.get(name).copied()?;
            Some(((b - a).max(0.0), newest.ts_ns - oldest.ts_ns))
        })?
    }

    /// Windowed rate of a monotone counter gauge, per second of sample
    /// time.
    pub fn counter_rate(&self, name: &str, window_ns: u64) -> Option<f64> {
        let (delta, dt_ns) = self.counter_delta(name, window_ns)?;
        if dt_ns == 0 {
            return None;
        }
        Some(delta / (dt_ns as f64 / 1e9))
    }

    /// Windowed per-kind histogram delta for `source` (the ops completed
    /// inside the window), plus the span covered (ns). Subtraction happens
    /// here, on the reader.
    pub fn hist_delta(&self, source: &str, window_ns: u64) -> Option<(OpSetSnapshot, u64)> {
        self.with_window(window_ns, |newest, oldest| {
            let a = oldest.hists.get(source)?;
            let b = newest.hists.get(source)?;
            Some((b.since(a), newest.ts_ns - oldest.ts_ns))
        })?
    }

    /// The `(ts_ns, value)` series of a gauge inside the window, oldest
    /// first.
    pub fn gauge_series(&self, name: &str, window_ns: u64) -> Vec<(u64, f64)> {
        let ring = self.ring.lock().unwrap();
        let Some(newest) = ring.back() else {
            return Vec::new();
        };
        let start = newest.ts_ns.saturating_sub(window_ns);
        ring.iter()
            .filter(|s| s.ts_ns >= start)
            .filter_map(|s| s.gauges.get(name).map(|v| (s.ts_ns, *v)))
            .collect()
    }

    /// Every retained sample as JSON lines (oldest first), histogram
    /// values scaled by `hist_scale`.
    pub fn dump_jsonl(&self, hist_scale: f64) -> String {
        let ring = self.ring.lock().unwrap();
        let mut out = String::new();
        for s in ring.iter() {
            out.push_str(&s.to_json(hist_scale));
            out.push('\n');
        }
        out
    }
}

/// Background scrape pump: every `interval`, re-evaluates an optional SLO
/// engine (against the samples already retained) and then samples the
/// global registry into a [`Tsdb`], so the recorded sample carries the
/// freshly-computed alert gauges. Deadline-driven with 10 ms ticks so
/// `stop()` returns promptly; missed deadlines are skipped, not replayed.
/// Stops and joins on drop.
pub struct Scraper {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Scraper {
    /// Starts the scrape thread (`obsv-tsdb`).
    pub fn start(
        tsdb: Arc<Tsdb>,
        interval: Duration,
        slo: Option<Arc<crate::slo::SloEngine>>,
    ) -> Scraper {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obsv-tsdb".into())
            .spawn(move || {
                let tick = interval
                    .min(Duration::from_millis(10))
                    .max(Duration::from_micros(100));
                let mut next = Instant::now() + interval;
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    let now = Instant::now();
                    if now < next {
                        continue;
                    }
                    while next <= now {
                        next += interval;
                    }
                    // Evaluate before scraping: the engine updates its
                    // firing/burn gauges from the samples already in the
                    // ring, and the scrape that follows records them — so
                    // every retained sample carries the alert state that
                    // was current when it was taken, not the previous
                    // tick's.
                    if let Some(engine) = &slo {
                        engine.evaluate();
                    }
                    tsdb.scrape_global();
                }
                // Final evaluate + scrape so even shorter-than-interval
                // runs leave a closing data point.
                if let Some(engine) = &slo {
                    engine.evaluate();
                }
                tsdb.scrape_global();
            })
            .expect("spawn obsv-tsdb thread");
        Scraper {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the scrape thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scraper {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{OpHistograms, OpKind};
    use std::collections::BTreeMap;

    fn sample_at(ts_ns: u64, gauges: &[(&str, f64)]) -> Sample {
        Sample {
            ts_ns,
            gauges: gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<BTreeMap<_, _>>(),
            hists: BTreeMap::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let db = Tsdb::new(3);
        for i in 0..10u64 {
            db.record(sample_at(i * 1_000, &[("c", i as f64)]));
        }
        assert_eq!(db.len(), 3);
        assert_eq!(db.latest_ts_ns(), Some(9_000));
        // Oldest retained is ts=7000: a full-ring window sees 7000..9000.
        let (delta, dt) = db.counter_delta("c", u64::MAX).unwrap();
        assert_eq!(delta, 2.0);
        assert_eq!(dt, 2_000);
    }

    #[test]
    fn counter_rate_is_per_second_and_windowed() {
        let db = Tsdb::new(16);
        // 1 tick/ns for 4 samples 1s apart: 100, 200, 300, 400.
        for i in 0..4u64 {
            db.record(sample_at(
                i * 1_000_000_000,
                &[("ops", 100.0 * (i + 1) as f64)],
            ));
        }
        // Full window: 300 ops over 3 s.
        let r = db.counter_rate("ops", u64::MAX).unwrap();
        assert!((r - 100.0).abs() < 1e-9, "{r}");
        // 1.5 s window: only the last two samples qualify (dt = 1 s).
        let (delta, dt) = db.counter_delta("ops", 1_500_000_000).unwrap();
        assert_eq!(delta, 100.0);
        assert_eq!(dt, 1_000_000_000);
        // Window too narrow for two samples: no delta.
        assert!(db.counter_delta("ops", 1).is_none());
        // Unknown gauge: no delta.
        assert!(db.counter_delta("nope", u64::MAX).is_none());
    }

    #[test]
    fn counter_delta_clamps_resets_to_zero() {
        let db = Tsdb::new(8);
        db.record(sample_at(0, &[("c", 500.0)]));
        db.record(sample_at(1_000, &[("c", 10.0)])); // counter reset
        let (delta, _) = db.counter_delta("c", u64::MAX).unwrap();
        assert_eq!(delta, 0.0);
    }

    #[test]
    fn hist_delta_subtracts_window_edges() {
        let ops = OpHistograms::new();
        ops.record(OpKind::Lookup, 100, 0);
        let snap_a = ops.snapshot();
        ops.record(OpKind::Lookup, 200, 0);
        ops.record(OpKind::Scan, 999, 0);
        let snap_b = ops.snapshot();

        let db = Tsdb::new(8);
        let mk = |ts, snap: OpSetSnapshot| Sample {
            ts_ns: ts,
            gauges: BTreeMap::new(),
            hists: [("idx".to_string(), snap)].into_iter().collect(),
        };
        db.record(mk(1_000, snap_a));
        db.record(mk(2_000, snap_b));

        let (delta, dt) = db.hist_delta("idx", u64::MAX).unwrap();
        assert_eq!(dt, 1_000);
        assert_eq!(delta.get(OpKind::Lookup).count(), 1);
        assert_eq!(delta.get(OpKind::Scan).count(), 1);
        assert_eq!(delta.total_count(), 2);
    }

    #[test]
    fn scraper_thread_records_and_stops() {
        let db = Tsdb::new(64);
        let scraper = Scraper::start(Arc::clone(&db), Duration::from_millis(5), None);
        let deadline = Instant::now() + Duration::from_secs(5);
        while db.len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        scraper.stop();
        assert!(db.len() >= 3, "scraper recorded {} samples", db.len());
    }

    #[test]
    fn dump_jsonl_one_line_per_sample() {
        let db = Tsdb::new(4);
        db.record(sample_at(1, &[("g", 1.0)]));
        db.record(sample_at(2, &[("g", 2.0)]));
        let dump = db.dump_jsonl(1.0);
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.lines().all(|l| l.starts_with("{\"ts_ns\":")), "{dump}");
    }
}
