//! Background sampler: a thread that periodically pulls the global
//! [`crate::registry`] and appends one JSON object per sample to a
//! JSON-lines file (typically under `results/`).
//!
//! Feature-gated (`sampler`): the stub variant accepts the same API and
//! does nothing, so callers can start/stop unconditionally.

use std::io;
use std::path::Path;
use std::time::Duration;

#[cfg(feature = "sampler")]
mod imp {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// Handle to a running sampler thread; stops and joins on drop.
    pub struct Sampler {
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl Sampler {
        /// Starts sampling the global registry every `interval` into the
        /// JSON-lines file at `path` (created/truncated). `hist_scale`
        /// scales histogram values in the emitted JSON.
        pub fn start(
            path: impl AsRef<Path>,
            interval: Duration,
            hist_scale: f64,
        ) -> io::Result<Sampler> {
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(path.as_ref())?;
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = std::thread::Builder::new()
                .name("obsv-sampler".into())
                .spawn(move || {
                    // Poll the stop flag at <=10 ms granularity so stop()
                    // never waits a full interval.
                    let tick = interval.min(Duration::from_millis(10));
                    let mut elapsed = Duration::ZERO;
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            break;
                        }
                        if elapsed >= interval {
                            elapsed = Duration::ZERO;
                            let line = crate::registry::global().sample().to_json(hist_scale);
                            if writeln!(file, "{line}").is_err() {
                                break;
                            }
                        }
                        std::thread::sleep(tick);
                        elapsed += tick;
                    }
                    // Final sample so short runs still record something.
                    let line = crate::registry::global().sample().to_json(hist_scale);
                    let _ = writeln!(file, "{line}");
                    let _ = file.flush();
                })?;
            Ok(Sampler {
                stop,
                handle: Some(handle),
            })
        }

        /// Stops the sampler and waits for the final sample to be written.
        pub fn stop(mut self) {
            self.shutdown();
        }

        fn shutdown(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    impl Drop for Sampler {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}

#[cfg(not(feature = "sampler"))]
mod imp {
    use super::*;

    /// Disabled sampler stub (build with `--features obsv/sampler`).
    pub struct Sampler;

    impl Sampler {
        pub fn start(
            _path: impl AsRef<Path>,
            _interval: Duration,
            _hist_scale: f64,
        ) -> io::Result<Sampler> {
            Ok(Sampler)
        }

        pub fn stop(self) {}
    }
}

pub use imp::Sampler;

#[cfg(all(test, feature = "sampler"))]
mod tests {
    use super::*;

    #[test]
    fn emits_json_lines() {
        let _g = crate::registry::global().register_gauge("sampler.test", || Some(42.0));
        let path = std::env::temp_dir().join("obsv_sampler_test.jsonl");
        let s = Sampler::start(&path, Duration::from_millis(5), 1.0).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        s.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            assert!(line.starts_with("{\"ts_ns\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"sampler.test\":42"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
