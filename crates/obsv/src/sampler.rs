//! Background sampler: a thread that periodically pulls the global
//! [`crate::registry`] and appends one JSON object per sample to a
//! JSON-lines file (typically under `results/`).
//!
//! Feature-gated (`sampler`): the stub variant accepts the same API and
//! does nothing, so callers can start/stop unconditionally.

use std::io;
use std::path::Path;
use std::time::Duration;

#[cfg(feature = "sampler")]
mod imp {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// Handle to a running sampler thread; stops and joins on drop.
    pub struct Sampler {
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl Sampler {
        /// Starts sampling the global registry every `interval` into the
        /// JSON-lines file at `path` (created/truncated). `hist_scale`
        /// scales histogram values in the emitted JSON.
        pub fn start(
            path: impl AsRef<Path>,
            interval: Duration,
            hist_scale: f64,
        ) -> io::Result<Sampler> {
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(path.as_ref())?;
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = std::thread::Builder::new()
                .name("obsv-sampler".into())
                .spawn(move || {
                    // Deadline-driven off wall-clock `Instant`s: the next
                    // deadline advances by whole intervals from the
                    // schedule, so scheduler delay inside one tick does not
                    // stretch every following sample (the old version
                    // accumulated the *nominal* tick and drifted). The stop
                    // flag is still polled at <=10 ms granularity so
                    // stop() never waits a full interval.
                    let tick = interval.min(Duration::from_millis(10));
                    let mut next = std::time::Instant::now() + interval;
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            break;
                        }
                        let now = std::time::Instant::now();
                        if now >= next {
                            next += interval;
                            if next < now {
                                // Fell more than a whole interval behind:
                                // skip ahead rather than bursting samples.
                                next = now + interval;
                            }
                            let line = crate::registry::global().sample().to_json(hist_scale);
                            if writeln!(file, "{line}").is_err() {
                                break;
                            }
                        }
                        let wait = next
                            .saturating_duration_since(std::time::Instant::now())
                            .min(tick);
                        std::thread::sleep(wait);
                    }
                    // Final sample so short runs still record something.
                    let line = crate::registry::global().sample().to_json(hist_scale);
                    let _ = writeln!(file, "{line}");
                    let _ = file.flush();
                })?;
            Ok(Sampler {
                stop,
                handle: Some(handle),
            })
        }

        /// Stops the sampler and waits for the final sample to be written.
        pub fn stop(mut self) {
            self.shutdown();
        }

        fn shutdown(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    impl Drop for Sampler {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}

#[cfg(not(feature = "sampler"))]
mod imp {
    use super::*;

    /// Disabled sampler stub (build with `--features obsv/sampler`).
    pub struct Sampler;

    impl Sampler {
        pub fn start(
            _path: impl AsRef<Path>,
            _interval: Duration,
            _hist_scale: f64,
        ) -> io::Result<Sampler> {
            Ok(Sampler)
        }

        pub fn stop(self) {}
    }
}

pub use imp::Sampler;

#[cfg(all(test, feature = "sampler"))]
mod tests {
    use super::*;

    #[test]
    fn emits_json_lines() {
        let _g = crate::registry::global().register_gauge("sampler.test", || Some(42.0));
        let path = std::env::temp_dir().join("obsv_sampler_test.jsonl");
        let s = Sampler::start(&path, Duration::from_millis(5), 1.0).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        s.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            assert!(line.starts_with("{\"ts_ns\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"sampler.test\":42"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    /// Extracts the leading `ts_ns` value of one emitted JSON line.
    fn ts_of(line: &str) -> u64 {
        let rest = line.strip_prefix("{\"ts_ns\":").expect("ts_ns leads");
        rest[..rest.find(',').unwrap_or(rest.len())]
            .parse()
            .expect("numeric ts_ns")
    }

    #[test]
    fn sample_spacing_tracks_the_interval() {
        let interval = Duration::from_millis(25);
        let path = std::env::temp_dir().join("obsv_sampler_spacing_test.jsonl");
        let s = Sampler::start(&path, interval, 1.0).unwrap();
        std::thread::sleep(Duration::from_millis(330));
        s.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        // The last line is the unconditional final sample written at
        // stop() time; it is off-schedule by design, so exclude it.
        let ts: Vec<u64> = text.lines().map(ts_of).collect();
        assert!(ts.len() >= 4, "expected several samples, got {}", ts.len());
        let scheduled = &ts[..ts.len() - 1];
        let diffs: Vec<u64> = scheduled.windows(2).map(|w| w[1] - w[0]).collect();
        let interval_ns = interval.as_nanos() as u64;
        // Per-gap bound is generous (shared CI boxes stall), but the mean
        // must track the interval: the old nominal-tick accumulation
        // stretched *every* gap under scheduler delay, which this catches.
        for d in &diffs {
            assert!(
                *d >= interval_ns / 2 && *d <= interval_ns * 4,
                "gap {d}ns far from interval {interval_ns}ns: {diffs:?}"
            );
        }
        let mean = diffs.iter().sum::<u64>() / diffs.len() as u64;
        assert!(
            mean >= interval_ns * 7 / 10 && mean <= interval_ns * 2,
            "mean gap {mean}ns drifted from interval {interval_ns}ns: {diffs:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
