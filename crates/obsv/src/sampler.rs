//! Background sampler: a thread that periodically pulls the global
//! [`crate::registry`] and appends one JSON object per sample to a
//! JSON-lines file (typically under `results/`).
//!
//! Feature-gated (`sampler`): the stub variant accepts the same API and
//! does nothing, so callers can start/stop unconditionally.
//!
//! Output is size-capped: once the file exceeds the byte cap the sampler
//! rotates in place, keeping the newest half-cap of whole lines behind a
//! one-line JSON rotation marker (`{"rotated":true,...}`), so a sampler
//! left running against a long-lived service cannot fill the disk. (The
//! flight recorder's dumps are already bounded by its per-thread ring
//! capacity and need no cap.)

use std::io;
use std::path::Path;
use std::time::Duration;

/// Default sampler output cap: 64 MiB (≈ days of 1 s samples).
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

#[cfg(feature = "sampler")]
mod imp {
    use super::*;
    use std::fs::{File, OpenOptions};
    use std::io::Write as _;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;

    /// Rewrites the JSONL file at `path`, keeping the newest whole lines
    /// totalling at most `keep_bytes` behind a rotation marker line.
    /// Returns the reopened (append-position) handle and its new size.
    fn rotate_keep_tail(path: &Path, keep_bytes: u64) -> io::Result<(File, u64)> {
        let text = std::fs::read_to_string(path)?;
        let cut = text.len().saturating_sub(keep_bytes as usize);
        // Advance to the next line boundary so the tail starts clean.
        let keep_from = if cut == 0 {
            0
        } else {
            text[cut..]
                .find('\n')
                .map(|i| cut + i + 1)
                .unwrap_or(text.len())
        };
        let tail = &text[keep_from..];
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        let marker = format!("{{\"rotated\":true,\"dropped_bytes\":{keep_from}}}");
        writeln!(file, "{marker}")?;
        file.write_all(tail.as_bytes())?;
        Ok((file, (marker.len() + 1 + tail.len()) as u64))
    }

    /// Handle to a running sampler thread; stops and joins on drop.
    pub struct Sampler {
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl Sampler {
        /// Starts sampling the global registry every `interval` into the
        /// JSON-lines file at `path` (created/truncated), capped at
        /// [`DEFAULT_MAX_BYTES`]. `hist_scale` scales histogram values in
        /// the emitted JSON.
        pub fn start(
            path: impl AsRef<Path>,
            interval: Duration,
            hist_scale: f64,
        ) -> io::Result<Sampler> {
            Self::start_capped(path, interval, hist_scale, DEFAULT_MAX_BYTES)
        }

        /// [`start`](Self::start) with an explicit output byte cap
        /// (`0` = unbounded). On overflow the file is rotated in place:
        /// the newest `max_bytes / 2` of whole lines survive behind a
        /// rotation marker line.
        pub fn start_capped(
            path: impl AsRef<Path>,
            interval: Duration,
            hist_scale: f64,
            max_bytes: u64,
        ) -> io::Result<Sampler> {
            let path: PathBuf = path.as_ref().to_path_buf();
            let mut file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let handle = std::thread::Builder::new()
                .name("obsv-sampler".into())
                .spawn(move || {
                    let mut written = 0u64;
                    let emit = |file: &mut File, written: &mut u64, line: &str| -> bool {
                        if writeln!(file, "{line}").is_err() {
                            return false;
                        }
                        *written += line.len() as u64 + 1;
                        if max_bytes > 0 && *written > max_bytes {
                            let _ = file.flush();
                            match rotate_keep_tail(&path, max_bytes / 2) {
                                Ok((f, size)) => {
                                    *file = f;
                                    *written = size;
                                }
                                Err(_) => return false,
                            }
                        }
                        true
                    };
                    // Deadline-driven off wall-clock `Instant`s: the next
                    // deadline advances by whole intervals from the
                    // schedule, so scheduler delay inside one tick does not
                    // stretch every following sample (the old version
                    // accumulated the *nominal* tick and drifted). The stop
                    // flag is still polled at <=10 ms granularity so
                    // stop() never waits a full interval.
                    let tick = interval.min(Duration::from_millis(10));
                    let mut next = std::time::Instant::now() + interval;
                    loop {
                        if stop2.load(Ordering::Acquire) {
                            break;
                        }
                        let now = std::time::Instant::now();
                        if now >= next {
                            next += interval;
                            if next < now {
                                // Fell more than a whole interval behind:
                                // skip ahead rather than bursting samples.
                                next = now + interval;
                            }
                            let line = crate::registry::global().sample().to_json(hist_scale);
                            if !emit(&mut file, &mut written, &line) {
                                break;
                            }
                        }
                        let wait = next
                            .saturating_duration_since(std::time::Instant::now())
                            .min(tick);
                        std::thread::sleep(wait);
                    }
                    // Final sample so short runs still record something.
                    let line = crate::registry::global().sample().to_json(hist_scale);
                    let _ = emit(&mut file, &mut written, &line);
                    let _ = file.flush();
                })?;
            Ok(Sampler {
                stop,
                handle: Some(handle),
            })
        }

        /// Stops the sampler and waits for the final sample to be written.
        pub fn stop(mut self) {
            self.shutdown();
        }

        fn shutdown(&mut self) {
            self.stop.store(true, Ordering::Release);
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
        }
    }

    impl Drop for Sampler {
        fn drop(&mut self) {
            self.shutdown();
        }
    }
}

#[cfg(not(feature = "sampler"))]
mod imp {
    use super::*;

    /// Disabled sampler stub (build with `--features obsv/sampler`).
    pub struct Sampler;

    impl Sampler {
        pub fn start(
            _path: impl AsRef<Path>,
            _interval: Duration,
            _hist_scale: f64,
        ) -> io::Result<Sampler> {
            Ok(Sampler)
        }

        pub fn start_capped(
            _path: impl AsRef<Path>,
            _interval: Duration,
            _hist_scale: f64,
            _max_bytes: u64,
        ) -> io::Result<Sampler> {
            Ok(Sampler)
        }

        pub fn stop(self) {}
    }
}

pub use imp::Sampler;

#[cfg(all(test, feature = "sampler"))]
mod tests {
    use super::*;

    #[test]
    fn emits_json_lines() {
        let _g = crate::registry::global().register_gauge("sampler.test", || Some(42.0));
        let path = std::env::temp_dir().join("obsv_sampler_test.jsonl");
        let s = Sampler::start(&path, Duration::from_millis(5), 1.0).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        s.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            assert!(line.starts_with("{\"ts_ns\":"), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"sampler.test\":42"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    /// Extracts the leading `ts_ns` value of one emitted JSON line.
    fn ts_of(line: &str) -> u64 {
        let rest = line.strip_prefix("{\"ts_ns\":").expect("ts_ns leads");
        rest[..rest.find(',').unwrap_or(rest.len())]
            .parse()
            .expect("numeric ts_ns")
    }

    #[test]
    fn rotation_caps_file_size_and_keeps_newest_lines() {
        let _g = crate::registry::global().register_gauge("sampler.rot", || Some(7.0));
        let path = std::env::temp_dir().join("obsv_sampler_rotation_test.jsonl");
        // Tiny cap: every sample line (several hundred bytes against the
        // test-process registry) overflows it quickly.
        let cap = 2048u64;
        let s = Sampler::start_capped(&path, Duration::from_millis(2), 1.0, cap).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        s.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        // One sample line can land after the rotation check, so the bound
        // is cap plus one line of slack — not unbounded growth.
        assert!(
            (text.len() as u64) <= cap + 1024,
            "file grew to {} bytes despite cap {cap}",
            text.len()
        );
        // Rotation happened and left its marker as the first line.
        let first = text.lines().next().unwrap();
        assert!(
            first.starts_with("{\"rotated\":true,\"dropped_bytes\":"),
            "{first}"
        );
        // Everything after the marker is intact sample lines (rotation
        // cuts on line boundaries only), and the newest data survived.
        let lines: Vec<_> = text.lines().collect();
        assert!(lines.len() >= 2, "{text}");
        for line in &lines[1..] {
            assert!(
                line.starts_with("{\"ts_ns\":") && line.ends_with('}'),
                "{line}"
            );
        }
        assert!(text.contains("\"sampler.rot\":7"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sample_spacing_tracks_the_interval() {
        let interval = Duration::from_millis(25);
        let path = std::env::temp_dir().join("obsv_sampler_spacing_test.jsonl");
        let s = Sampler::start(&path, interval, 1.0).unwrap();
        std::thread::sleep(Duration::from_millis(330));
        s.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        // The last line is the unconditional final sample written at
        // stop() time; it is off-schedule by design, so exclude it.
        let ts: Vec<u64> = text.lines().map(ts_of).collect();
        assert!(ts.len() >= 4, "expected several samples, got {}", ts.len());
        let scheduled = &ts[..ts.len() - 1];
        let diffs: Vec<u64> = scheduled.windows(2).map(|w| w[1] - w[0]).collect();
        let interval_ns = interval.as_nanos() as u64;
        // Per-gap bound is generous (shared CI boxes stall), but the mean
        // must track the interval: the old nominal-tick accumulation
        // stretched *every* gap under scheduler delay, which this catches.
        for d in &diffs {
            assert!(
                *d >= interval_ns / 2 && *d <= interval_ns * 4,
                "gap {d}ns far from interval {interval_ns}ns: {diffs:?}"
            );
        }
        let mean = diffs.iter().sum::<u64>() / diffs.len() as u64;
        assert!(
            mean >= interval_ns * 7 / 10 && mean <= interval_ns * 2,
            "mean gap {mean}ns drifted from interval {interval_ns}ns: {diffs:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
