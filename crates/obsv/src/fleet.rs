//! Fleet-wide metrics aggregation over per-node health endpoints.
//!
//! A [`FleetScraper`] polls every node's plain-TCP `GET /metrics` surface
//! (the same Prometheus text page [`crate::prom::render`] produces),
//! parses each page back into [`HistSnapshot`]s via the invertible
//! `_bucket`/`_count`/`_sum` lines, and merges them into one
//! [`FleetView`]: fleet-wide **exact** percentiles (bucket-wise histogram
//! merge is lossless, so the documented
//! [`RELATIVE_ERROR_BOUND`](crate::hist::RELATIVE_ERROR_BOUND) = 3.125%
//! reconstruction bound is the *only* error, identical to a single-node
//! quantile), plus deduplicated gauges.
//!
//! Deduplication rule: several endpoints of one process serve the same
//! process-global registry, so a `(family, op)` histogram or a gauge seen
//! on multiple endpoints is the *same* counter scraped twice — merging
//! would double count. The scraper keeps the highest-count copy per
//! `(family, op)` (counters are monotone, so highest = latest) and then
//! merges across *distinct* families (one per node service). This is
//! correct for both in-process test clusters (N endpoints, one registry)
//! and real deployments (N endpoints, N disjoint registries).
//!
//! On top of the merged view the scraper evaluates cluster-level SLOs and
//! appends `slo_events/v1` transitions (same line format as
//! [`crate::slo::SloEngine`]):
//!
//! * `fleet.p99` — the fleet-merged all-op p99 stays under a configured
//!   objective; burn is the observed/objective ratio.
//! * `fleet.migration.stuck` — a `*_cluster_migration_phase` gauge stays
//!   non-idle longer than a configurable bound (default 30 s); a stuck or
//!   sealed partition otherwise degrades silently.
//! * `fleet.migration.burn` — the p99 objective is burning *while* a
//!   migration is in flight, separating rebalance-induced tail pain from
//!   steady-state pain.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::time::Duration;

use crate::hist::HistSnapshot;
use crate::slo::SloStatus;

/// Default stuck-migration alert bound: 30 s of wall clock in one
/// non-idle `cluster.migration.phase`.
pub const DEFAULT_STUCK_MIGRATION_BOUND_NS: u64 = 30 * 1_000_000_000;

/// Gauge-name suffix (post-sanitization) identifying a node's migration
/// phase gauge.
pub const MIGRATION_PHASE_SUFFIX: &str = "_cluster_migration_phase";

/// One node's parsed `/metrics` page.
#[derive(Clone, Debug, Default)]
pub struct NodeScrape {
    /// The page's `obsv_scrape_timestamp_ns` value.
    pub ts_ns: u64,
    /// Scalar gauges by sanitized name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by `(family, op)` — family is the summary name as
    /// rendered (e.g. `node0_latency_ns`), op the kind label.
    pub hists: BTreeMap<(String, String), HistSnapshot>,
}

/// Parses one Prometheus text page back into gauges and histogram
/// snapshots. The inverse of [`crate::prom::render`] for everything that
/// renderer emits losslessly: summary quantile lines are skipped (they
/// are recomputed after merging), `slo_*` families are skipped (per-node
/// alert state does not merge), malformed lines are ignored.
pub fn parse_prom_text(text: &str) -> NodeScrape {
    #[derive(Default)]
    struct Acc {
        rows: Vec<(u64, u64)>, // (bucket low edge, cumulative weight)
        ops: u64,
        sum: u64,
    }
    let mut ts_ns = 0u64;
    let mut gauges = BTreeMap::new();
    let mut accs: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((head, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Some((name, labels)) = head.split_once('{') {
            let labels = labels.trim_end_matches('}');
            let label = |key: &str| {
                labels.split(',').find_map(|kv| {
                    let (k, v) = kv.split_once('=')?;
                    (k == key).then(|| v.trim_matches('"').to_string())
                })
            };
            let Some(op) = label("op") else {
                continue; // slo_* and other non-op families
            };
            if let Some(base) = name.strip_suffix("_bucket") {
                let Some(le) = label("le") else { continue };
                if le == "+Inf" {
                    continue; // redundant with the last edge row
                }
                if let (Ok(low), Ok(cum)) = (le.parse::<u64>(), value.parse::<u64>()) {
                    accs.entry((base.to_string(), op))
                        .or_default()
                        .rows
                        .push((low, cum));
                }
            } else if let Some(base) = name.strip_suffix("_count") {
                accs.entry((base.to_string(), op)).or_default().ops = value.parse().unwrap_or(0);
            } else if let Some(base) = name.strip_suffix("_sum") {
                accs.entry((base.to_string(), op)).or_default().sum = value.parse().unwrap_or(0);
            }
            // Bare summary quantile lines fall through: recomputed later.
        } else if head == "obsv_scrape_timestamp_ns" {
            ts_ns = value.parse().unwrap_or(0);
        } else if let Ok(v) = value.parse::<f64>() {
            gauges.insert(head.to_string(), v);
        }
    }
    let hists = accs
        .into_iter()
        .map(|(key, acc)| {
            let mut prev = 0u64;
            let rows: Vec<(u64, u64)> = acc
                .rows
                .iter()
                .map(|&(low, cum)| {
                    let d = cum.saturating_sub(prev);
                    prev = cum;
                    (low, d)
                })
                .collect();
            (key, HistSnapshot::from_bucket_rows(&rows, acc.ops, acc.sum))
        })
        .collect();
    NodeScrape {
        ts_ns,
        gauges,
        hists,
    }
}

/// The fleet at one instant: deduplicated node scrapes, mergeable on
/// demand.
#[derive(Clone, Debug, Default)]
pub struct FleetView {
    /// Latest page timestamp across nodes.
    pub ts_ns: u64,
    /// Number of endpoints that answered.
    pub nodes: usize,
    /// Gauges deduplicated by name (highest value wins — same-name gauges
    /// across endpoints are the same registry cell, and counters are
    /// monotone).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms deduplicated by `(family, op)` (highest count wins).
    pub hists: BTreeMap<(String, String), HistSnapshot>,
}

impl FleetView {
    /// Folds node scrapes into one view under the dedup rules above.
    pub fn from_scrapes(scrapes: &[NodeScrape]) -> FleetView {
        let mut view = FleetView {
            nodes: scrapes.len(),
            ..FleetView::default()
        };
        for s in scrapes {
            view.ts_ns = view.ts_ns.max(s.ts_ns);
            for (name, &v) in &s.gauges {
                let e = view.gauges.entry(name.clone()).or_insert(v);
                if v > *e {
                    *e = v;
                }
            }
            for (key, h) in &s.hists {
                match view.hists.get_mut(key) {
                    Some(have) if have.count() >= h.count() => {}
                    Some(have) => *have = h.clone(),
                    None => {
                        view.hists.insert(key.clone(), h.clone());
                    }
                }
            }
        }
        view
    }

    /// Fleet-wide per-op snapshots: every family's histogram for that op
    /// merged bucket-wise (exact — equivalent to one histogram having
    /// recorded every node's stream).
    pub fn merged_by_op(&self) -> BTreeMap<String, HistSnapshot> {
        let mut out: BTreeMap<String, HistSnapshot> = BTreeMap::new();
        for ((_, op), h) in &self.hists {
            out.entry(op.clone())
                .or_insert_with(HistSnapshot::empty)
                .merge(h);
        }
        out
    }

    /// Fleet-wide all-op snapshot.
    pub fn merged_total(&self) -> HistSnapshot {
        let mut total = HistSnapshot::empty();
        for h in self.hists.values() {
            total.merge(h);
        }
        total
    }

    /// Sum of every deduplicated gauge whose name ends with `suffix`
    /// (e.g. queue depth across nodes).
    pub fn gauge_sum(&self, suffix: &str) -> f64 {
        self.gauges
            .iter()
            .filter(|(n, _)| n.ends_with(suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Every node's migration-phase gauge `(name, phase)`.
    pub fn migration_phases(&self) -> Vec<(String, f64)> {
        self.gauges
            .iter()
            .filter(|(n, _)| n.ends_with(MIGRATION_PHASE_SUFFIX))
            .map(|(n, &v)| (n.clone(), v))
            .collect()
    }
}

/// Fetches one endpoint's metrics page over plain TCP (`GET /metrics`,
/// HTTP/1.0) and returns the body.
pub fn fetch_metrics(addr: &str, timeout: Duration) -> std::io::Result<String> {
    let mut conn = std::net::TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Ok(raw),
    }
}

/// Cluster-level SLO configuration for [`FleetScraper`].
#[derive(Clone, Debug)]
pub struct FleetSloConfig {
    /// Objective for the fleet-merged all-op p99 (None = not evaluated).
    pub p99_objective_ns: Option<u64>,
    /// Non-idle migration-phase dwell above which `fleet.migration.stuck`
    /// fires.
    pub stuck_migration_bound_ns: u64,
}

impl Default for FleetSloConfig {
    fn default() -> Self {
        FleetSloConfig {
            p99_objective_ns: None,
            stuck_migration_bound_ns: DEFAULT_STUCK_MIGRATION_BOUND_NS,
        }
    }
}

#[derive(Default)]
struct StuckState {
    nonidle_since_ns: Option<u64>,
    fired: bool,
}

/// Polls a set of health endpoints, merges them into [`FleetView`]s, and
/// evaluates cluster-level SLOs. Event lines follow `slo_events/v1` with
/// strict fire/clear alternation per SLO name, same as
/// [`crate::slo::SloEngine`]'s sink.
pub struct FleetScraper {
    endpoints: Vec<String>,
    cfg: FleetSloConfig,
    stuck: BTreeMap<String, StuckState>,
    p99_firing: bool,
    p99_burn: f64,
    burn_firing: bool,
    events: Vec<String>,
    last: Option<FleetView>,
}

impl FleetScraper {
    /// A scraper over `endpoints` (host:port of each node's metrics
    /// listener).
    pub fn new(endpoints: Vec<String>, cfg: FleetSloConfig) -> FleetScraper {
        FleetScraper {
            endpoints,
            cfg,
            stuck: BTreeMap::new(),
            p99_firing: false,
            p99_burn: 0.0,
            burn_firing: false,
            events: Vec::new(),
            last: None,
        }
    }

    /// The configured endpoints.
    pub fn endpoints(&self) -> &[String] {
        &self.endpoints
    }

    /// Fetches every endpoint and folds the answers into a view; `now_ns`
    /// is the caller's monotone clock (event timestamps, stuck timers).
    /// Unreachable endpoints are skipped — a dead node must not take the
    /// fleet plane down with it.
    pub fn poll(&mut self, now_ns: u64) -> FleetView {
        let texts: Vec<String> = self
            .endpoints
            .clone()
            .iter()
            .filter_map(|ep| fetch_metrics(ep, Duration::from_secs(2)).ok())
            .collect();
        self.observe(&texts, now_ns)
    }

    /// Same as [`poll`](Self::poll) over pre-fetched pages (tests, and
    /// callers that already hold scrape bodies).
    pub fn observe(&mut self, texts: &[String], now_ns: u64) -> FleetView {
        let scrapes: Vec<NodeScrape> = texts.iter().map(|t| parse_prom_text(t)).collect();
        let view = FleetView::from_scrapes(&scrapes);
        self.evaluate(&view, now_ns);
        self.last = Some(view.clone());
        view
    }

    fn emit(&mut self, now_ns: u64, slo: &str, fire: bool, burn: f64, threshold: f64) {
        self.events.push(format!(
            "{{\"schema\":\"slo_events/v1\",\"ts_ns\":{now_ns},\"slo\":\"{slo}\",\"event\":\"{}\",\"burn_fast\":{burn:.4},\"burn_slow\":{burn:.4},\"burn_threshold\":{threshold:.4}}}",
            if fire { "fire" } else { "clear" }
        ));
    }

    fn evaluate(&mut self, view: &FleetView, now_ns: u64) {
        let bound = self.cfg.stuck_migration_bound_ns.max(1);
        let mut any_migrating = false;
        for (name, phase) in view.migration_phases() {
            if phase != 0.0 {
                any_migrating = true;
            }
            let st = self.stuck.entry(name.clone()).or_default();
            if phase != 0.0 {
                let since = *st.nonidle_since_ns.get_or_insert(now_ns);
                let dwell = now_ns.saturating_sub(since);
                if !st.fired && dwell >= bound {
                    st.fired = true;
                    let burn = dwell as f64 / bound as f64;
                    self.emit(
                        now_ns,
                        &format!("fleet.migration.stuck.{name}"),
                        true,
                        burn,
                        1.0,
                    );
                }
            } else {
                let was_fired = st.fired;
                st.fired = false;
                st.nonidle_since_ns = None;
                if was_fired {
                    self.emit(
                        now_ns,
                        &format!("fleet.migration.stuck.{name}"),
                        false,
                        0.0,
                        1.0,
                    );
                }
            }
        }
        if let Some(obj) = self.cfg.p99_objective_ns {
            let total = view.merged_total();
            let burn = if total.weight() == 0 {
                0.0
            } else {
                total.quantile(0.99) as f64 / obj.max(1) as f64
            };
            self.p99_burn = burn;
            if burn > 1.0 && !self.p99_firing {
                self.p99_firing = true;
                self.emit(now_ns, "fleet.p99", true, burn, 1.0);
            } else if burn <= 1.0 && self.p99_firing {
                self.p99_firing = false;
                self.emit(now_ns, "fleet.p99", false, burn, 1.0);
            }
            if any_migrating && burn > 1.0 && !self.burn_firing {
                self.burn_firing = true;
                self.emit(now_ns, "fleet.migration.burn", true, burn, 1.0);
            } else if self.burn_firing && (!any_migrating || burn <= 1.0) {
                self.burn_firing = false;
                self.emit(now_ns, "fleet.migration.burn", false, burn, 1.0);
            }
        }
    }

    /// Live SLO states for export (merged prom page, `pacsrv-top` row).
    pub fn statuses(&self) -> Vec<SloStatus> {
        let mut out = vec![SloStatus {
            name: "fleet.p99".to_string(),
            firing: self.p99_firing,
            burn_fast: self.p99_burn,
            burn_slow: self.p99_burn,
            burn_threshold: 1.0,
        }];
        out.push(SloStatus {
            name: "fleet.migration.burn".to_string(),
            firing: self.burn_firing,
            burn_fast: if self.burn_firing { self.p99_burn } else { 0.0 },
            burn_slow: if self.burn_firing { self.p99_burn } else { 0.0 },
            burn_threshold: 1.0,
        });
        for (name, st) in &self.stuck {
            out.push(SloStatus {
                name: format!("fleet.migration.stuck.{name}"),
                firing: st.fired,
                burn_fast: 0.0,
                burn_slow: 0.0,
                burn_threshold: 1.0,
            });
        }
        out
    }

    /// Drains accumulated `slo_events/v1` lines (oldest first).
    pub fn take_events(&mut self) -> Vec<String> {
        std::mem::take(&mut self.events)
    }

    /// The most recent view, if any poll has completed.
    pub fn last_view(&self) -> Option<&FleetView> {
        self.last.as_ref()
    }
}

/// Renders a merged fleet page in Prometheus text format: scrape
/// timestamp, node count, the fleet-merged per-op latency summary (values
/// in ns, exact bucket-merge percentiles), and the cluster SLO states.
pub fn render_fleet_prom(view: &FleetView, slo: &[SloStatus]) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("# TYPE obsv_scrape_timestamp_ns gauge\n");
    out.push_str(&format!("obsv_scrape_timestamp_ns {}\n", view.ts_ns));
    out.push_str("# TYPE fleet_nodes gauge\n");
    out.push_str(&format!("fleet_nodes {}\n", view.nodes));
    out.push_str("# TYPE fleet_latency_ns summary\n");
    for (op, h) in view.merged_by_op() {
        if h.count() == 0 {
            continue;
        }
        for (q, label) in crate::prom::QUANTILES {
            out.push_str(&format!(
                "fleet_latency_ns{{op=\"{op}\",quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!(
            "fleet_latency_ns_count{{op=\"{op}\"}} {}\n",
            h.count()
        ));
        out.push_str(&format!(
            "fleet_latency_ns_sum{{op=\"{op}\"}} {}\n",
            h.sum()
        ));
    }
    if !slo.is_empty() {
        out.push_str("# TYPE slo_firing gauge\n");
        out.push_str("# TYPE slo_burn_rate gauge\n");
        for s in slo {
            out.push_str(&format!(
                "slo_firing{{slo=\"{}\"}} {}\n",
                s.name,
                u8::from(s.firing)
            ));
            out.push_str(&format!(
                "slo_burn_rate{{slo=\"{}\",window=\"fast\"}} {:.6}\n",
                s.name, s.burn_fast
            ));
            out.push_str(&format!(
                "slo_burn_rate{{slo=\"{}\",window=\"slow\"}} {:.6}\n",
                s.name, s.burn_slow
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{OpHistograms, OpKind};
    use crate::registry::Sample;

    fn node_page(name: &str, ts_ns: u64, latencies: &[u64], extra: &[(&str, f64)]) -> String {
        let ops = OpHistograms::new();
        for &v in latencies {
            ops.record(OpKind::Lookup, v, 0);
        }
        let mut gauges: std::collections::BTreeMap<String, f64> =
            extra.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        gauges.insert(format!("{name}.queue.depth"), 2.0);
        let sample = Sample {
            ts_ns,
            gauges,
            hists: [(name.to_string(), ops.snapshot())].into_iter().collect(),
        };
        crate::prom::render(&sample, &[])
    }

    #[test]
    fn parse_inverts_render_for_hists_and_gauges() {
        let ops = OpHistograms::new();
        for v in [700u64, 3_000, 90_000, 1_500_000] {
            ops.record(OpKind::Lookup, v, 0);
            ops.record(OpKind::Insert, v / 2, 0);
        }
        let snap = ops.snapshot();
        let sample = Sample {
            ts_ns: 99,
            gauges: [("n0.queue.depth".to_string(), 4.0)].into_iter().collect(),
            hists: [("n0".to_string(), snap.clone())].into_iter().collect(),
        };
        let page = crate::prom::render(&sample, &[]);
        let parsed = parse_prom_text(&page);
        assert_eq!(parsed.ts_ns, 99);
        assert_eq!(parsed.gauges.get("n0_queue_depth"), Some(&4.0));
        let lookup = parsed
            .hists
            .get(&("n0_latency_ns".to_string(), "lookup".to_string()))
            .expect("lookup family parsed");
        assert_eq!(lookup, snap.get(OpKind::Lookup), "wire round trip exact");
    }

    #[test]
    fn fleet_merge_matches_direct_snapshot_merge() {
        // Two distinct nodes: merged percentiles must equal a direct
        // bucket merge of the per-node snapshots (zero extra error).
        let a = OpHistograms::new();
        let b = OpHistograms::new();
        for v in [500u64, 900, 40_000, 2_000_000] {
            a.record(OpKind::Lookup, v, 0);
        }
        for v in [700u64, 60_000, 888_888, 9_999_999] {
            b.record(OpKind::Lookup, v, 0);
        }
        let pages = vec![
            {
                let sample = Sample {
                    ts_ns: 1,
                    gauges: BTreeMap::new(),
                    hists: [("n0".to_string(), a.snapshot())].into_iter().collect(),
                };
                crate::prom::render(&sample, &[])
            },
            {
                let sample = Sample {
                    ts_ns: 2,
                    gauges: BTreeMap::new(),
                    hists: [("n1".to_string(), b.snapshot())].into_iter().collect(),
                };
                crate::prom::render(&sample, &[])
            },
        ];
        let mut scraper = FleetScraper::new(Vec::new(), FleetSloConfig::default());
        let view = scraper.observe(&pages, 10);
        let mut direct = a.snapshot().get(OpKind::Lookup).clone();
        direct.merge(b.snapshot().get(OpKind::Lookup));
        let fleet = view.merged_total();
        assert_eq!(fleet.quantile(0.99), direct.quantile(0.99));
        assert_eq!(fleet.quantile(0.50), direct.quantile(0.50));
        assert_eq!(fleet.count(), direct.count());
        // And the merged page is well-formed prom text.
        let page = render_fleet_prom(&view, &scraper.statuses());
        assert!(page.contains("obsv_scrape_timestamp_ns 2\n"));
        assert!(page.contains("fleet_nodes 2\n"));
        assert!(page.contains("fleet_latency_ns{op=\"lookup\",quantile=\"0.99\"}"));
        for line in page.lines().filter(|l| !l.starts_with('#')) {
            let (head, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!head.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn duplicate_endpoints_do_not_double_count() {
        // In-process cluster: both endpoints serve the same registry.
        let page = node_page("n0", 5, &[1_000, 2_000, 3_000], &[]);
        let mut scraper = FleetScraper::new(Vec::new(), FleetSloConfig::default());
        let view = scraper.observe(&[page.clone(), page], 10);
        assert_eq!(view.nodes, 2);
        assert_eq!(view.merged_total().count(), 3, "deduped, not doubled");
        assert_eq!(view.gauge_sum("_queue_depth"), 2.0);
    }

    #[test]
    fn stuck_migration_fires_then_clears() {
        let sec = 1_000_000_000u64;
        let cfg = FleetSloConfig {
            p99_objective_ns: None,
            stuck_migration_bound_ns: 2 * sec,
        };
        let mut scraper = FleetScraper::new(Vec::new(), cfg);
        let busy = node_page("n0", 1, &[1000], &[("n0.cluster.migration.phase", 3.0)]);
        let idle = node_page("n0", 2, &[1000], &[("n0.cluster.migration.phase", 0.0)]);
        scraper.observe(std::slice::from_ref(&busy), sec);
        assert!(scraper.take_events().is_empty(), "not stuck yet");
        scraper.observe(std::slice::from_ref(&busy), 2 * sec);
        assert!(scraper.take_events().is_empty(), "dwell 1s < bound 2s");
        scraper.observe(std::slice::from_ref(&busy), 4 * sec);
        let fired = scraper.take_events();
        assert_eq!(fired.len(), 1, "{fired:?}");
        assert!(fired[0].contains("\"slo\":\"fleet.migration.stuck.n0_cluster_migration_phase\""));
        assert!(fired[0].contains("\"event\":\"fire\""));
        // Still stuck: no duplicate fire.
        scraper.observe(std::slice::from_ref(&busy), 5 * sec);
        assert!(scraper.take_events().is_empty());
        scraper.observe(std::slice::from_ref(&idle), 6 * sec);
        let cleared = scraper.take_events();
        assert_eq!(cleared.len(), 1, "{cleared:?}");
        assert!(cleared[0].contains("\"event\":\"clear\""));
        assert!(scraper.statuses().iter().all(|s| !s.firing));
    }

    #[test]
    fn fleet_p99_objective_fires_under_migration_burn() {
        let cfg = FleetSloConfig {
            p99_objective_ns: Some(10_000),
            stuck_migration_bound_ns: DEFAULT_STUCK_MIGRATION_BOUND_NS,
        };
        let mut scraper = FleetScraper::new(Vec::new(), cfg);
        let slow_migrating = node_page(
            "n0",
            1,
            &[1_000_000, 2_000_000, 3_000_000],
            &[("n0.cluster.migration.phase", 1.0)],
        );
        scraper.observe(std::slice::from_ref(&slow_migrating), 100);
        let events = scraper.take_events();
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"slo\":\"fleet.p99\"") && e.contains("fire")),
            "{events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"slo\":\"fleet.migration.burn\"") && e.contains("fire")),
            "{events:?}"
        );
        let fast_idle = node_page("n0", 2, &[100], &[("n0.cluster.migration.phase", 0.0)]);
        // Fresh scraper state keeps the merged view only per observe call,
        // so a fast page alone drops the merged p99 under the objective.
        scraper.observe(std::slice::from_ref(&fast_idle), 200);
        let events = scraper.take_events();
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"slo\":\"fleet.p99\"") && e.contains("clear")),
            "{events:?}"
        );
        assert!(
            events
                .iter()
                .any(|e| e.contains("\"slo\":\"fleet.migration.burn\"") && e.contains("clear")),
            "{events:?}"
        );
    }
}
