//! Prometheus text exposition of a registry [`Sample`] plus SLO states.
//!
//! One renderer shared by every health surface: the `Frame::Health` wire
//! reply, the plain-TCP `GET /metrics` listener, and the
//! `results/health_scrape.txt` artifact. Output follows the Prometheus
//! text format (version 0.0.4): dotted registry names are sanitized to
//! `[a-zA-Z0-9_:]`, scalar gauges become `gauge` families, histogram
//! sources become `summary` families labelled by op kind (values in
//! nanoseconds), and SLO states become the `slo_firing` /
//! `slo_burn_rate` families labelled by SLO name and window.

use crate::recorder::OpKind;
use crate::registry::Sample;
use crate::slo::SloStatus;

/// Quantiles exported per op-kind summary.
pub const QUANTILES: [(f64, &str); 4] = [
    (0.50, "0.5"),
    (0.90, "0.9"),
    (0.99, "0.99"),
    (0.999, "0.999"),
];

/// Maps an arbitrary registry name onto the Prometheus metric-name
/// alphabet `[a-zA-Z0-9_:]` (leading digits get a `_` prefix; every
/// other illegal char becomes `_`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value (backslash, quote, newline) per the text format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders one scrape: every gauge, every histogram source (as a
/// summary, values in ns), and every SLO state. The output is a complete
/// Prometheus text-format page.
pub fn render(sample: &Sample, slo: &[SloStatus]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE obsv_scrape_timestamp_ns gauge\n");
    out.push_str(&format!("obsv_scrape_timestamp_ns {}\n", sample.ts_ns));

    for (name, v) in &sample.gauges {
        let n = sanitize_metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }

    for (source, set) in &sample.hists {
        let n = sanitize_metric_name(&format!("{source}_latency_ns"));
        out.push_str(&format!("# TYPE {n} summary\n"));
        for kind in OpKind::ALL {
            let h = set.get(kind);
            if h.count() == 0 {
                continue;
            }
            let op = kind.name();
            for (q, label) in QUANTILES {
                out.push_str(&format!(
                    "{n}{{op=\"{op}\",quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{n}_count{{op=\"{op}\"}} {}\n", h.count()));
            out.push_str(&format!("{n}_sum{{op=\"{op}\"}} {}\n", h.sum()));
            // Cumulative bucket lines keyed by exact bucket *lower* edge
            // (not a rounded `le` bound): successive differences plus
            // `hist::from_bucket_rows` rebuild the snapshot losslessly,
            // which is how a fleet scraper merges nodes into exact
            // cluster-wide percentiles.
            let mut cum = 0u64;
            for (low, _, count) in h.nonzero_buckets() {
                cum += count;
                out.push_str(&format!("{n}_bucket{{op=\"{op}\",le=\"{low}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{op=\"{op}\",le=\"+Inf\"}} {cum}\n"));
        }
    }

    if !slo.is_empty() {
        out.push_str("# TYPE slo_firing gauge\n");
        out.push_str("# TYPE slo_burn_rate gauge\n");
        for s in slo {
            let name = escape_label(&s.name);
            out.push_str(&format!(
                "slo_firing{{slo=\"{name}\"}} {}\n",
                u8::from(s.firing)
            ));
            out.push_str(&format!(
                "slo_burn_rate{{slo=\"{name}\",window=\"fast\"}} {:.6}\n",
                s.burn_fast
            ));
            out.push_str(&format!(
                "slo_burn_rate{{slo=\"{name}\",window=\"slow\"}} {:.6}\n",
                s.burn_slow
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::OpHistograms;
    use std::collections::BTreeMap;

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_metric_name("pactree.t.smo.pending"),
            "pactree_t_smo_pending"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a:b_c1"), "a:b_c1");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn renders_gauges_summaries_and_slo_families() {
        let ops = OpHistograms::new();
        ops.record(OpKind::Lookup, 1_000, 0);
        ops.record(OpKind::Lookup, 2_000, 0);
        let sample = Sample {
            ts_ns: 42,
            gauges: [("svc.queue.depth".to_string(), 3.5)].into_iter().collect(),
            hists: [("svc".to_string(), ops.snapshot())]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
        };
        let slo = [SloStatus {
            name: "svc.shed_rate".to_string(),
            firing: true,
            burn_fast: 2.25,
            burn_slow: 1.5,
            burn_threshold: 1.0,
        }];
        let text = render(&sample, &slo);
        assert!(text.contains("obsv_scrape_timestamp_ns 42\n"), "{text}");
        assert!(
            text.contains("# TYPE svc_queue_depth gauge\nsvc_queue_depth 3.5\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE svc_latency_ns summary\n"), "{text}");
        assert!(
            text.contains("svc_latency_ns{op=\"lookup\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(
            text.contains("svc_latency_ns_count{op=\"lookup\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("svc_latency_ns_bucket{op=\"lookup\",le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(!text.contains("op=\"scan\""), "{text}");
        assert!(
            text.contains("slo_firing{slo=\"svc.shed_rate\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("slo_burn_rate{slo=\"svc.shed_rate\",window=\"fast\"} 2.250000\n"),
            "{text}"
        );
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (head, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(!head.is_empty() && value.parse::<f64>().is_ok(), "{line}");
        }
    }
}
