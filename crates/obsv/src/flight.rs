//! Sampling flight recorder: per-thread bounded rings of recent operation
//! records, dumpable on panic (or on a crashcheck violation) for
//! post-mortem analysis of what each thread was doing when things went
//! wrong.
//!
//! Compiled out unless the `flight` cargo feature is enabled — the
//! [`record`] call in the histogram hot path is an empty inline function
//! otherwise. With the feature on, each thread appends to its own
//! `Mutex`-protected ring (uncontended except during a dump), registered
//! in a global list so [`dump_string`] can walk every thread, including
//! exited ones.

use crate::recorder::OpKind;

/// One recorded operation.
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Completion time ([`crate::clock::now_ns`], process-relative).
    pub ts_ns: u64,
    pub kind: OpKind,
    pub latency_ns: u64,
    pub retries: u32,
}

/// Records kept per thread; older records are overwritten.
pub const RING_CAPACITY: usize = 4096;

#[cfg(feature = "flight")]
mod imp {
    use super::*;
    use std::sync::{Arc, Mutex, Once, OnceLock};

    struct Ring {
        buf: Vec<OpRecord>,
        /// Next write position; `buf.len() == RING_CAPACITY` once wrapped.
        next: usize,
    }

    impl Ring {
        fn push(&mut self, rec: OpRecord) {
            if self.buf.len() < RING_CAPACITY {
                self.buf.push(rec);
            } else {
                self.buf[self.next] = rec;
            }
            self.next = (self.next + 1) % RING_CAPACITY;
        }

        /// Oldest-to-newest copy.
        fn ordered(&self) -> Vec<OpRecord> {
            if self.buf.len() < RING_CAPACITY {
                self.buf.clone()
            } else {
                let mut out = Vec::with_capacity(RING_CAPACITY);
                out.extend_from_slice(&self.buf[self.next..]);
                out.extend_from_slice(&self.buf[..self.next]);
                out
            }
        }
    }

    /// All live rings, keyed by thread name (for the panic dump).
    type RingDirectory = Mutex<Vec<(String, Arc<Mutex<Ring>>)>>;

    fn rings() -> &'static RingDirectory {
        static RINGS: OnceLock<RingDirectory> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static MY_RING: Arc<Mutex<Ring>> = {
            let ring = Arc::new(Mutex::new(Ring { buf: Vec::new(), next: 0 }));
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("{:?}", std::thread::current().id()));
            rings().lock().unwrap().push((name, ring.clone()));
            ring
        };
    }

    pub fn record(kind: OpKind, latency_ns: u64, retries: u32) {
        if !crate::enabled() {
            return;
        }
        let rec = OpRecord {
            ts_ns: crate::clock::now_ns(),
            kind,
            latency_ns,
            retries,
        };
        MY_RING.with(|r| r.lock().unwrap().push(rec));
    }

    /// All threads' rings, oldest record first per thread.
    pub fn snapshot_all() -> Vec<(String, Vec<OpRecord>)> {
        rings()
            .lock()
            .unwrap()
            .iter()
            .map(|(name, ring)| (name.clone(), ring.lock().unwrap().ordered()))
            .collect()
    }

    /// Human-readable dump: the most recent `tail` records of every thread.
    pub fn dump_string(tail: usize) -> String {
        let mut out = String::new();
        for (name, recs) in snapshot_all() {
            out.push_str(&format!(
                "== flight recorder: thread {name} ({} records) ==\n",
                recs.len()
            ));
            let skip = recs.len().saturating_sub(tail);
            for r in &recs[skip..] {
                out.push_str(&format!(
                    "  t={:>12}ns {:<6} lat={:>9}ns retries={}\n",
                    r.ts_ns,
                    r.kind.name(),
                    r.latency_ns,
                    r.retries
                ));
            }
        }
        if out.is_empty() {
            out.push_str("== flight recorder: no records ==\n");
        }
        out
    }

    /// Installs a panic hook (once) that prints the flight-recorder tail to
    /// stderr before the default hook runs.
    pub fn install_panic_hook() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                eprintln!("{}", dump_string(32));
                prev(info);
            }));
        });
    }

    /// On-demand dump of every thread's recent records — what the panic
    /// hook prints, available to a live server: the `Frame::Stats` handler
    /// embeds it so an operator can snapshot recent ops without stopping
    /// (or crashing) the process.
    pub fn dump_now() -> String {
        dump_string(32)
    }
}

#[cfg(not(feature = "flight"))]
mod imp {
    use super::*;

    #[inline(always)]
    pub fn record(_kind: OpKind, _latency_ns: u64, _retries: u32) {}

    pub fn snapshot_all() -> Vec<(String, Vec<OpRecord>)> {
        Vec::new()
    }

    pub fn dump_string(_tail: usize) -> String {
        String::from("== flight recorder: disabled (build with --features obsv/flight) ==\n")
    }

    pub fn install_panic_hook() {}

    pub fn dump_now() -> String {
        dump_string(0)
    }
}

pub use imp::{dump_now, dump_string, install_panic_hook, record, snapshot_all};

#[cfg(all(test, feature = "flight"))]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_dumps() {
        std::thread::Builder::new()
            .name("flight-test".into())
            .spawn(|| {
                for i in 0..(RING_CAPACITY + 10) as u64 {
                    record(OpKind::Lookup, i, 0);
                }
            })
            .unwrap()
            .join()
            .unwrap();
        let all = snapshot_all();
        let (_, recs) = all
            .iter()
            .find(|(name, _)| name == "flight-test")
            .expect("ring registered");
        assert_eq!(recs.len(), RING_CAPACITY);
        // Oldest 10 overwritten; order preserved.
        assert_eq!(recs[0].latency_ns, 10);
        assert_eq!(recs.last().unwrap().latency_ns, (RING_CAPACITY + 9) as u64);
        assert!(dump_string(4).contains("flight-test"));
    }

    #[test]
    fn dump_now_snapshots_a_live_thread() {
        std::thread::Builder::new()
            .name("flight-dump-now".into())
            .spawn(|| {
                record(OpKind::Insert, 1234, 2);
            })
            .unwrap()
            .join()
            .unwrap();
        let dump = dump_now();
        assert!(dump.contains("flight-dump-now"), "{dump}");
        assert!(dump.contains("lat=     1234ns"), "{dump}");
    }
}
