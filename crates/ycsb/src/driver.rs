//! The multithreaded YCSB executor.
//!
//! Populates an index, then runs a workload from N threads (spread
//! round-robin across logical NUMA nodes, like the paper's `numactl -i`),
//! sampling 10% of operation latencies (paper §6.4) and reporting
//! throughput, percentile latencies, and NVM media traffic deltas.
//!
//! When the NVM model runs time-dilated (see
//! `pmem::model::NvmModelConfig::optane_dilated`), throughput and latencies
//! are corrected back to model time by the dilation factor.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmem::stats::{self, StatsSnapshot};

use crate::index::RangeIndex;
use crate::keys::KeySpace;
use crate::workload::{Op, Workload};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Worker threads.
    pub threads: usize,
    /// Total operations across all threads.
    pub ops: u64,
    /// Fraction of operations whose latency is sampled (paper: 0.1).
    pub sample_rate: f64,
    /// Spread worker threads over logical NUMA nodes.
    pub numa_spread: bool,
    /// Time-dilation factor of the active NVM model (1.0 = none); measured
    /// wall-clock times are divided by this for reporting.
    pub dilation: f64,
    /// RNG seed (per-thread seeds derive from it).
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            threads: 1,
            ops: 100_000,
            sample_rate: 0.1,
            numa_spread: true,
            dilation: 1.0,
            seed: 42,
        }
    }
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct Report {
    pub index: &'static str,
    pub mix: &'static str,
    pub threads: usize,
    pub ops: u64,
    /// Model-time seconds (wall time / dilation).
    pub seconds: f64,
    /// Million operations per second (model time).
    pub mops: f64,
    /// Sampled latency percentiles in microseconds (model time):
    /// (label, value).
    pub latency_us: Vec<(&'static str, f64)>,
    /// Media counter deltas over the run.
    pub stats: StatsSnapshot,
    /// Per-operation latency histogram deltas over the run (from the
    /// index's always-on obsv recorder), when the index records them.
    /// Unlike `latency_us` (10% sampling of whole driver iterations),
    /// these come from every operation, measured inside the index.
    pub hist: Option<obsv::OpSetSnapshot>,
}

impl Report {
    /// Latency at a labelled percentile, if sampled.
    pub fn latency(&self, label: &str) -> Option<f64> {
        self.latency_us
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, v)| v)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<9} {:<4} t={:<3} {:>8.3} Mops/s  p50={:>7.1}us p99={:>8.1}us p99.99={:>9.1}us  [{}]",
            self.index,
            self.mix,
            self.threads,
            self.mops,
            self.latency("p50").unwrap_or(f64::NAN),
            self.latency("p99").unwrap_or(f64::NAN),
            self.latency("p99.99").unwrap_or(f64::NAN),
            self.stats,
        )
    }
}

/// Loads `n` keys (ids `0..n`) into the index from `threads` workers.
pub fn populate(
    index: &(impl RangeIndex + Clone + 'static),
    space: KeySpace,
    n: u64,
    threads: usize,
) {
    let threads = threads.max(1);
    std::thread::scope(|s| {
        for t in 0..threads {
            let index = index.clone();
            s.spawn(move || {
                if threads > 1 {
                    pmem::numa::pin_thread_round_robin();
                }
                let mut i = t as u64;
                while i < n {
                    index.insert(&space.encode(i), i + 1);
                    i += threads as u64;
                }
            });
        }
    });
}

/// Runs `workload` against `index` and reports.
pub fn run_workload(
    index: &(impl RangeIndex + Clone + 'static),
    workload: &Workload,
    space: KeySpace,
    cfg: &DriverConfig,
) -> Report {
    assert!(
        space.is_integer() || index.supports_strings(),
        "{} does not support string keys",
        index.name()
    );
    let threads = cfg.threads.max(1);
    let ops_per_thread = cfg.ops / threads as u64;
    let before = stats::global().snapshot();
    let hist_before = index.op_histograms().map(|h| h.snapshot());
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    let mut all_samples: Vec<Vec<u64>> = Vec::new();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let index = index.clone();
            let workload = workload.clone();
            let completed = &completed;
            handles.push(s.spawn(move || {
                if cfg.numa_spread && threads > 1 {
                    pmem::numa::pin_thread_round_robin();
                }
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9E37));
                // Fresh insert ids: disjoint per-thread ranges above the
                // populated space.
                let mut next_insert =
                    workload.populated + t as u64 * (u64::MAX / 2 / threads as u64);
                let sample_every = if cfg.sample_rate > 0.0 {
                    (1.0 / cfg.sample_rate) as u64
                } else {
                    u64::MAX
                };
                let mut samples =
                    Vec::with_capacity((ops_per_thread / sample_every.max(1) + 1) as usize);
                for i in 0..ops_per_thread {
                    let op = workload.next_op(&mut rng, &mut || {
                        next_insert += 1;
                        next_insert
                    });
                    let sampled = i % sample_every == 0;
                    let t0 = sampled.then(Instant::now);
                    match op {
                        Op::Read(id) => {
                            std::hint::black_box(index.lookup(&space.encode(id)));
                        }
                        Op::Insert(id) => index.insert(&space.encode(id), id),
                        Op::Update(id) => index.update(&space.encode(id), rng.gen()),
                        Op::Scan(id, len) => {
                            std::hint::black_box(index.scan(&space.encode(id), len));
                        }
                    }
                    if let Some(t0) = t0 {
                        samples.push(t0.elapsed().as_nanos() as u64);
                    }
                }
                completed.fetch_add(ops_per_thread, Ordering::Relaxed);
                samples
            }));
        }
        for h in handles {
            all_samples.push(h.join().expect("worker panicked"));
        }
    });

    let wall = start.elapsed().as_secs_f64();
    let seconds = wall / cfg.dilation.max(1.0);
    let total_ops = completed.load(Ordering::Relaxed);
    let mut samples: Vec<u64> = all_samples.into_iter().flatten().collect();
    samples.sort_unstable();
    let pct = |p: f64| -> f64 {
        if samples.is_empty() {
            return f64::NAN;
        }
        let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
        samples[idx] as f64 / 1000.0 / cfg.dilation.max(1.0)
    };
    let latency_us = vec![
        ("p50", pct(0.50)),
        ("p90", pct(0.90)),
        ("p99", pct(0.99)),
        ("p99.9", pct(0.999)),
        ("p99.99", pct(0.9999)),
    ];

    Report {
        index: index.name(),
        mix: workload.mix.short_name(),
        threads,
        ops: total_ops,
        seconds,
        mops: total_ops as f64 / seconds / 1e6,
        latency_us,
        stats: stats::global().snapshot().since(&before),
        hist: hist_before.map(|b| {
            index
                .op_histograms()
                .expect("histograms present before the run")
                .snapshot()
                .since(&b)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Mix;
    use pactree::{PacTree, PacTreeConfig};

    #[test]
    fn populate_and_run_all_mixes() {
        let tree =
            PacTree::create(PacTreeConfig::named("ycsb-driver-test").with_pool_size(64 << 20))
                .unwrap();
        populate(&tree, KeySpace::Integer, 5000, 2);
        assert_eq!(tree.count_pairs(), 5000);
        for mix in Mix::all() {
            let w = Workload::zipfian(mix, 5000);
            let cfg = DriverConfig {
                threads: 2,
                ops: 2000,
                ..Default::default()
            };
            let r = run_workload(&tree, &w, KeySpace::Integer, &cfg);
            assert_eq!(r.ops, 2000);
            assert!(r.mops > 0.0, "{mix:?} made progress");
            assert!(r.latency("p50").unwrap() >= 0.0);
            let hist = r.hist.as_ref().expect("pactree records op histograms");
            assert_eq!(hist.total_count(), 2000, "{mix:?} histogram delta");
        }
        tree.destroy();
    }

    #[test]
    fn string_keys_rejected_for_fptree() {
        let t = baselines::fptree::FpTree::create("ycsb-fp-guard", 32 << 20).unwrap();
        let w = Workload::uniform(Mix::C, 10);
        let cfg = DriverConfig::default();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_workload(&t, &w, KeySpace::String, &cfg)
        }));
        assert!(res.is_err(), "string keys must be rejected");
        t.destroy();
    }

    #[test]
    fn lookups_find_populated_values() {
        let tree =
            PacTree::create(PacTreeConfig::named("ycsb-driver-vals").with_pool_size(64 << 20))
                .unwrap();
        populate(&tree, KeySpace::String, 1000, 1);
        for i in 0..1000u64 {
            assert_eq!(tree.lookup(&KeySpace::String.encode(i)), Some(i + 1));
        }
        tree.destroy();
    }
}
