//! YCSB workload generation and driving (the paper's index-microbench
//! equivalent, §6 "Workload configuration").
//!
//! * [`zipfian`] — Gray et al. Zipfian generator plus a scrambled variant.
//! * [`keys`] — 8-byte integer keys and ~23-byte string keys
//!   (`user` + zero-padded scrambled id, like index-microbench).
//! * [`workload`] — the paper's mixes: Load A (insert-only), A (50/50
//!   read/update), B (95/5), C (read-only), E (95% scans of up to 100
//!   keys plus 5% inserts). As in the paper, *update* operations are
//!   replaced by inserts for indexes without native update support, and
//!   PACTree's own update path is exercised where available.
//! * [`index`] — the [`index::RangeIndex`] trait adapting every index in the
//!   workspace to the driver.
//! * [`driver`] — a multithreaded executor with per-operation latency
//!   sampling (10%, like the paper's §6.4) and percentile reporting.
//! * [`interference`] — scan-heavy readers concurrent with writers,
//!   measuring writer-throughput retention with live vs snapshot scans.

pub mod driver;
pub mod index;
pub mod interference;
pub mod keys;
pub mod workload;
pub mod zipfian;

pub use driver::{run_workload, DriverConfig, Report};
pub use index::RangeIndex;
pub use interference::{run_interference, InterferenceConfig, InterferenceReport, ScanMode};
pub use keys::KeySpace;
pub use workload::{Distribution, HotPartition, Mix, Workload};
