//! Zipfian-distributed random numbers (Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases", SIGMOD'94) — the generator YCSB and
//! index-microbench use.

use rand::Rng;

/// Default YCSB Zipfian constant.
pub const DEFAULT_THETA: f64 = 0.99;

/// A Zipfian generator over `0..n`.
///
/// `theta` is the skew (0 = uniform-ish, 0.99 = YCSB default, higher =
/// more skewed). Items are ranked: rank 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Builds a generator for `0..n` with skew `theta` (0 < theta < 1 or
    /// theta > 1; theta == 1 is approximated with 0.999...).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u64, theta: f64) -> Zipfian {
        assert!(n > 0);
        let theta = if (theta - 1.0).abs() < 1e-9 {
            0.99999
        } else {
            theta
        };
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Draws the next rank (0 = hottest).
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }

    /// The population size.
    pub fn n(&self) -> u64 {
        self.n
    }
}

/// A scrambled Zipfian: ranks are spread over the key space by hashing, so
/// hot keys are not clustered (YCSB's `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Builds a scrambled generator over `0..n`.
    pub fn new(n: u64, theta: f64) -> ScrambledZipfian {
        ScrambledZipfian {
            inner: Zipfian::new(n, theta),
        }
    }

    /// Draws the next item in `0..n` (hash-scattered).
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        let rank = self.inner.next(rng);
        fnv_hash(rank) % self.inner.n
    }
}

/// FNV-1a over the 8 bytes of `v`.
pub fn fnv_hash(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn zeta(n: u64, theta: f64) -> f64 {
    // Exact for small n; integral approximation beyond (indistinguishable
    // for the distribution while keeping construction O(1)-ish).
    const EXACT_LIMIT: u64 = 10_000_000;
    if n <= EXACT_LIMIT {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=EXACT_LIMIT)
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        // integral of x^-theta from EXACT_LIMIT to n
        let a = 1.0 - theta;
        head + ((n as f64).powf(a) - (EXACT_LIMIT as f64).powf(a)) / a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_skews_toward_low_ranks() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        // Rank 0 dominates and the tail is thin.
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        assert!(counts[0] as f64 / 100_000.0 > 0.05);
        // All draws in range (no panic happened) and every decile populated.
        assert!(counts.iter().take(100).all(|&c| c > 0));
    }

    #[test]
    fn higher_theta_is_more_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let frac = |theta: f64, rng: &mut StdRng| {
            let z = Zipfian::new(10_000, theta);
            let hot = (0..50_000).filter(|_| z.next(rng) < 10).count();
            hot as f64 / 50_000.0
        };
        let low = frac(0.5, &mut rng);
        let high = frac(0.99, &mut rng);
        assert!(high > low * 2.0, "theta 0.99 ({high}) vs 0.5 ({low})");
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(z.next(&mut rng));
        }
        // The hot set is scattered across the space, not clustered at 0.
        let below_thousand = seen.iter().filter(|&&v| v < 1000).count();
        assert!(below_thousand < seen.len() / 4);
    }

    #[test]
    fn draws_stay_in_range() {
        let z = Zipfian::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 7);
        }
    }
}
