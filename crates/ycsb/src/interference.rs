//! Scan/writer interference (the MVCC evaluation's scan-heavy scenario).
//!
//! YCSB-E measures a scan-heavy mix on its own; what it cannot show is what
//! long scans *cost the writers* sharing the tree. This harness runs writer
//! threads (insert/update mix) concurrently with scanner threads doing long
//! range scans, in three modes: no scanners at all (the baseline), live
//! scans against the shared tree, and snapshot scans (`scan_at` against an
//! O(1) snapshot captured per scan). The headline is writer throughput
//! retention: how much of the baseline the writers keep in each mode.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::index::RangeIndex;
use crate::keys::KeySpace;

/// What the scanner threads do while the writers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// No scanners: the writer-only baseline.
    None,
    /// Live range scans against the shared tree.
    Live,
    /// Capture a snapshot, `scan_at` it, release it — per scan.
    Snapshot,
}

impl ScanMode {
    /// Stable name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ScanMode::None => "baseline",
            ScanMode::Live => "live-scan",
            ScanMode::Snapshot => "snapshot-scan",
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct InterferenceConfig {
    /// Writer threads (each runs `ops_per_writer` operations).
    pub writers: usize,
    /// Scanner threads (each loops until the writers finish).
    pub scanners: usize,
    /// Keys per scan — long scans, not YCSB-E's 1..=100.
    pub scan_len: usize,
    /// Operations per writer thread (80% updates, 20% fresh inserts).
    pub ops_per_writer: u64,
    /// NVM-model time dilation (1.0 = none).
    pub dilation: f64,
    /// RNG seed.
    pub seed: u64,
}

/// One mode's measurement.
#[derive(Debug, Clone)]
pub struct InterferenceReport {
    pub mode: ScanMode,
    /// Writer operations completed.
    pub writer_ops: u64,
    /// Writer throughput in model-time Mops/s.
    pub writer_mops: f64,
    /// Scans completed across all scanner threads.
    pub scans: u64,
    /// Pairs those scans returned.
    pub scanned_pairs: u64,
    /// Model-time seconds the writers ran.
    pub seconds: f64,
}

/// Runs one mode: writers to completion, scanners until the writers stop.
///
/// `populated` is the pre-loaded key-id range scans and updates draw from.
/// In [`ScanMode::Snapshot`] the index must support snapshots (the harness
/// panics otherwise — a silent fallback to live scans would report a
/// retention number that measured the wrong thing).
pub fn run_interference(
    index: &(impl RangeIndex + Clone + 'static),
    space: KeySpace,
    populated: u64,
    mode: ScanMode,
    cfg: &InterferenceConfig,
) -> InterferenceReport {
    let writers = cfg.writers.max(1);
    let scanners = match mode {
        ScanMode::None => 0,
        _ => cfg.scanners.max(1),
    };
    let stop = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    let scanned_pairs = AtomicU64::new(0);
    let writer_ops = AtomicU64::new(0);
    let start = Instant::now();
    let mut writer_seconds = 0.0;

    std::thread::scope(|s| {
        let mut writer_handles = Vec::new();
        for t in 0..writers {
            let index = index.clone();
            let writer_ops = &writer_ops;
            writer_handles.push(s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (t as u64).wrapping_mul(0x9E37));
                let mut next_insert = populated + t as u64 * (u64::MAX / 2 / writers as u64);
                for _ in 0..cfg.ops_per_writer {
                    if rng.gen_range(0u32..10) < 8 {
                        let id = rng.gen_range(0..populated.max(1));
                        index.update(&space.encode(id), rng.gen());
                    } else {
                        next_insert += 1;
                        index.insert(&space.encode(next_insert), next_insert);
                    }
                }
                writer_ops.fetch_add(cfg.ops_per_writer, Ordering::Relaxed);
            }));
        }
        for t in 0..scanners {
            let index = index.clone();
            let (stop, scans, scanned_pairs) = (&stop, &scans, &scanned_pairs);
            s.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(cfg.seed ^ 0x5CA4 ^ (t as u64).wrapping_mul(0x51F1));
                while !stop.load(Ordering::Relaxed) {
                    let start_key = space.encode(rng.gen_range(0..populated.max(1)));
                    let n = match mode {
                        ScanMode::None => unreachable!("no scanners in baseline mode"),
                        ScanMode::Live => index.scan(&start_key, cfg.scan_len),
                        ScanMode::Snapshot => {
                            let snap = index
                                .snapshot()
                                .expect("snapshot-scan mode needs an MVCC index");
                            let n = index
                                .scan_at(snap, &start_key, cfg.scan_len)
                                .expect("snapshot vanished while held by its taker");
                            index.release_snapshot(snap);
                            n
                        }
                    };
                    scans.fetch_add(1, Ordering::Relaxed);
                    scanned_pairs.fetch_add(n as u64, Ordering::Relaxed);
                }
            });
        }
        for h in writer_handles {
            h.join().expect("writer panicked");
        }
        writer_seconds = start.elapsed().as_secs_f64() / cfg.dilation.max(1.0);
        stop.store(true, Ordering::Relaxed);
    });

    let writer_ops = writer_ops.load(Ordering::Relaxed);
    InterferenceReport {
        mode,
        writer_ops,
        writer_mops: writer_ops as f64 / writer_seconds / 1e6,
        scans: scans.load(Ordering::Relaxed),
        scanned_pairs: scanned_pairs.load(Ordering::Relaxed),
        seconds: writer_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pactree::{PacTree, PacTreeConfig};

    #[test]
    fn all_three_modes_make_progress() {
        let tree =
            PacTree::create(PacTreeConfig::named("ycsb-interference").with_pool_size(128 << 20))
                .unwrap();
        crate::driver::populate(&tree, KeySpace::Integer, 3000, 2);
        let cfg = InterferenceConfig {
            writers: 2,
            scanners: 1,
            scan_len: 200,
            ops_per_writer: 2000,
            dilation: 1.0,
            seed: 11,
        };
        for mode in [ScanMode::None, ScanMode::Live, ScanMode::Snapshot] {
            let r = run_interference(&tree, KeySpace::Integer, 3000, mode, &cfg);
            assert_eq!(r.writer_ops, 4000, "{}", mode.name());
            assert!(r.writer_mops > 0.0);
            if mode == ScanMode::None {
                assert_eq!(r.scans, 0);
            } else {
                assert!(r.scans > 0, "{} scanners idle", mode.name());
                assert!(r.scanned_pairs > 0);
            }
        }
        // Scanners released every snapshot they took.
        assert_eq!(tree.mvcc().live_snapshots(), 0);
        tree.destroy();
    }
}
