//! YCSB workload mixes (paper §6 "Workload configuration").

use rand::Rng;

use crate::zipfian::{ScrambledZipfian, DEFAULT_THETA};

/// Request-key distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    Uniform,
    /// Zipfian with the given theta (0.99 is the YCSB default).
    Zipfian(f64),
}

/// One operation drawn from a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup of key id.
    Read(u64),
    /// Insert of a *new* key id (beyond the loaded range).
    Insert(u64),
    /// Update of an existing key id.
    Update(u64),
    /// Scan starting at key id, for this many keys (max 100, YCSB-E).
    Scan(u64, usize),
}

/// The standard workload mixes used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Load A: 100% inserts (L-A).
    LoadA,
    /// Workload A: 50% reads, 50% updates (W-A).
    A,
    /// Workload B: 95% reads, 5% updates (W-B).
    B,
    /// Workload C: 100% reads (W-C).
    C,
    /// Workload E: 95% scans (1-100 keys), 5% inserts (W-E).
    E,
    /// 50% lookups + 50% inserts of fresh keys (the paper's Figure 15 skew
    /// test's second variant).
    ReadInsert,
}

impl Mix {
    /// Paper-style short name.
    pub fn short_name(&self) -> &'static str {
        match self {
            Mix::LoadA => "L-A",
            Mix::A => "W-A",
            Mix::B => "W-B",
            Mix::C => "W-C",
            Mix::E => "W-E",
            Mix::ReadInsert => "R+I",
        }
    }

    /// All mixes evaluated in Figures 9-12.
    pub fn all() -> [Mix; 5] {
        [Mix::LoadA, Mix::A, Mix::B, Mix::C, Mix::E]
    }
}

/// A workload: a mix plus its key distribution over a loaded population.
#[derive(Debug, Clone)]
pub struct Workload {
    pub mix: Mix,
    pub distribution: Distribution,
    /// Keys loaded before the measured phase.
    pub populated: u64,
    zipf: Option<ScrambledZipfian>,
}

impl Workload {
    /// Builds a workload over `populated` pre-loaded keys.
    pub fn new(mix: Mix, distribution: Distribution, populated: u64) -> Workload {
        let zipf = match distribution {
            Distribution::Zipfian(theta) => Some(ScrambledZipfian::new(populated.max(1), theta)),
            Distribution::Uniform => None,
        };
        Workload {
            mix,
            distribution,
            populated,
            zipf,
        }
    }

    /// Convenience: Zipfian with the YCSB default theta.
    pub fn zipfian(mix: Mix, populated: u64) -> Workload {
        Workload::new(mix, Distribution::Zipfian(DEFAULT_THETA), populated)
    }

    /// Convenience: uniform.
    pub fn uniform(mix: Mix, populated: u64) -> Workload {
        Workload::new(mix, Distribution::Uniform, populated)
    }

    /// Draws a key id from the request distribution.
    fn draw_key(&self, rng: &mut impl Rng) -> u64 {
        match (&self.zipf, self.distribution) {
            (Some(z), _) => z.next(rng),
            (None, _) => rng.gen_range(0..self.populated.max(1)),
        }
    }

    /// Draws the next operation. `insert_seq` hands out fresh key ids for
    /// inserts (the caller provides a per-thread disjoint sequence).
    pub fn next_op(&self, rng: &mut impl Rng, insert_seq: &mut impl FnMut() -> u64) -> Op {
        let p: u32 = rng.gen_range(0..100);
        match self.mix {
            Mix::LoadA => Op::Insert(insert_seq()),
            Mix::A => {
                if p < 50 {
                    Op::Read(self.draw_key(rng))
                } else {
                    Op::Update(self.draw_key(rng))
                }
            }
            Mix::B => {
                if p < 95 {
                    Op::Read(self.draw_key(rng))
                } else {
                    Op::Update(self.draw_key(rng))
                }
            }
            Mix::C => Op::Read(self.draw_key(rng)),
            Mix::E => {
                if p < 95 {
                    Op::Scan(self.draw_key(rng), rng.gen_range(1..=100))
                } else {
                    Op::Insert(insert_seq())
                }
            }
            Mix::ReadInsert => {
                if p < 50 {
                    Op::Read(self.draw_key(rng))
                } else {
                    Op::Insert(insert_seq())
                }
            }
        }
    }
}

/// Places YCSB key ids onto an n-way range-partitioned `u64` key space
/// with one deliberately hot partition — the cluster benchmarks' skew
/// model. `hot_fraction` of ids (chosen deterministically by hash) land in
/// the hot partition; the rest spread uniformly over all partitions.
/// Placement is a pure function of the id, so a reader always finds the
/// key its writer placed, and a Zipfian id distribution composes on top
/// (hot ids stay hot *and* concentrated on one node).
#[derive(Debug, Clone, Copy)]
pub struct HotPartition {
    partitions: u64,
    hot: u64,
    /// Probability (in basis points) that an id is pinned to the hot
    /// partition.
    hot_bp: u64,
}

/// SplitMix64: cheap, well-mixed, and stable across runs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl HotPartition {
    /// An `partitions`-way split with partition `hot` receiving
    /// `hot_fraction` (0.0..=1.0) of all ids directly.
    pub fn new(partitions: u64, hot: u64, hot_fraction: f64) -> HotPartition {
        assert!(partitions > 0 && hot < partitions);
        assert!((0.0..=1.0).contains(&hot_fraction));
        HotPartition {
            partitions,
            hot,
            hot_bp: (hot_fraction * 10_000.0) as u64,
        }
    }

    /// The full-width key for id — always in the same partition for the
    /// same id.
    pub fn key(&self, id: u64) -> u64 {
        let h = splitmix64(id);
        let partition = if h % 10_000 < self.hot_bp {
            self.hot
        } else {
            splitmix64(h) % self.partitions
        };
        let stride = u64::MAX / self.partitions;
        partition * stride + splitmix64(h ^ id) % stride
    }

    /// Which partition of the n-way even split a key falls in.
    pub fn partition_of(&self, key: u64) -> u64 {
        (key / (u64::MAX / self.partitions)).min(self.partitions - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mix_fractions(mix: Mix) -> (f64, f64, f64, f64) {
        let w = Workload::uniform(mix, 10_000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seq = 10_000u64;
        let (mut r, mut i, mut u, mut s) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..20_000 {
            match w.next_op(&mut rng, &mut || {
                seq += 1;
                seq
            }) {
                Op::Read(_) => r += 1,
                Op::Insert(_) => i += 1,
                Op::Update(_) => u += 1,
                Op::Scan(_, len) => {
                    assert!((1..=100).contains(&len));
                    s += 1;
                }
            }
        }
        let t = 20_000.0;
        (r as f64 / t, i as f64 / t, u as f64 / t, s as f64 / t)
    }

    #[test]
    fn mix_ratios_match_ycsb() {
        let (r, i, u, s) = mix_fractions(Mix::LoadA);
        assert_eq!((r, u, s), (0.0, 0.0, 0.0));
        assert_eq!(i, 1.0);

        let (r, _, u, _) = mix_fractions(Mix::A);
        assert!((r - 0.5).abs() < 0.02 && (u - 0.5).abs() < 0.02);

        let (r, _, u, _) = mix_fractions(Mix::B);
        assert!((r - 0.95).abs() < 0.01 && (u - 0.05).abs() < 0.01);

        let (r, i, u, s) = mix_fractions(Mix::C);
        assert_eq!((i, u, s), (0.0, 0.0, 0.0));
        assert_eq!(r, 1.0);

        let (_, i, _, s) = mix_fractions(Mix::E);
        assert!((s - 0.95).abs() < 0.01 && (i - 0.05).abs() < 0.01);
    }

    #[test]
    fn zipfian_requests_hit_hot_keys() {
        let w = Workload::zipfian(Mix::C, 100_000);
        let mut rng = StdRng::seed_from_u64(6);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            if let Op::Read(k) = w.next_op(&mut rng, &mut || 0) {
                *counts.entry(k).or_insert(0u32) += 1;
            }
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max > 500, "hot key should repeat a lot, got {max}");
    }

    #[test]
    fn hot_partition_placement_is_deterministic_and_skewed() {
        let hp = HotPartition::new(3, 0, 0.8);
        let mut per_partition = [0u64; 3];
        for id in 0..30_000u64 {
            let k = hp.key(id);
            assert_eq!(k, hp.key(id), "placement must be a pure function");
            per_partition[hp.partition_of(k) as usize] += 1;
        }
        // Hot partition draws hot_fraction plus its share of the spread:
        // 0.8 + 0.2/3 ≈ 0.867.
        let hot_share = per_partition[0] as f64 / 30_000.0;
        assert!((hot_share - 0.867).abs() < 0.02, "hot share {hot_share}");
        // The cold partitions still see traffic.
        assert!(per_partition[1] > 1000 && per_partition[2] > 1000);

        // Placement agrees with the wire-level map split used by the
        // cluster: the same stride arithmetic on big-endian keys.
        let uniform = HotPartition::new(4, 1, 0.0);
        let mut seen = [0u64; 4];
        for id in 0..4000 {
            seen[uniform.partition_of(uniform.key(id)) as usize] += 1;
        }
        for (p, n) in seen.iter().enumerate() {
            assert!(*n > 700, "partition {p} starved: {n}");
        }
    }

    #[test]
    fn insert_sequence_is_honoured() {
        let w = Workload::uniform(Mix::LoadA, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut next = 100u64;
        for expect in 101..110 {
            let op = w.next_op(&mut rng, &mut || {
                next += 1;
                next
            });
            assert_eq!(op, Op::Insert(expect));
        }
    }
}
