//! Key spaces: 8-byte integers and ~23-byte strings (paper §6).

use crate::zipfian::fnv_hash;

/// How logical key ids map to index keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpace {
    /// 8-byte big-endian integers (scattered by FNV so inserts are not
    /// fully sequential, like index-microbench's randint).
    Integer,
    /// `user` + 19 zero-padded digits: 23 bytes, the paper's string keys.
    String,
}

impl KeySpace {
    /// Encodes logical id `i` into key bytes.
    pub fn encode(&self, i: u64) -> Vec<u8> {
        match self {
            KeySpace::Integer => fnv_hash(i).to_be_bytes().to_vec(),
            KeySpace::String => format!("user{:019}", fnv_hash(i)).into_bytes(),
        }
    }

    /// Average encoded length in bytes.
    pub fn key_len(&self) -> usize {
        match self {
            KeySpace::Integer => 8,
            KeySpace::String => 23,
        }
    }

    /// Whether this key space is integer (FPTree only supports these).
    pub fn is_integer(&self) -> bool {
        matches!(self, KeySpace::Integer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_match_paper() {
        assert_eq!(KeySpace::Integer.encode(42).len(), 8);
        assert_eq!(KeySpace::String.encode(42).len(), 23);
        assert_eq!(KeySpace::String.key_len(), 23);
    }

    #[test]
    fn keys_are_distinct() {
        let mut set = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(set.insert(KeySpace::Integer.encode(i)), "collision at {i}");
        }
    }

    #[test]
    fn string_keys_have_prefix() {
        let k = KeySpace::String.encode(7);
        assert!(k.starts_with(b"user"));
    }
}
