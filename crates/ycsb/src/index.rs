//! The common index interface the driver runs against.
//!
//! Update handling follows the paper: "since most of the prior indexes do
//! not support the update operation, we replace the update operation with
//! insert" — the default [`RangeIndex::update`] forwards to insert; PACTree
//! overrides it with its native update protocol.

use std::sync::Arc;

use baselines::bztree::BzTree;
use baselines::fastfair::FastFair;
use baselines::fptree::FpTree;
use pactree::PacTree;
use pdl_art::PdlArt;

/// One [`RangeIndex::diff_pairs`] entry: `(key, old value, new value)` —
/// `old` is `None` for additions, `new` is `None` for removals, both
/// `Some` for changes.
pub type DiffPair = (Vec<u8>, Option<u64>, Option<u64>);

/// A key-value range index driven by the YCSB executor.
pub trait RangeIndex: Send + Sync {
    /// Index name for reports.
    fn name(&self) -> &'static str;

    /// Inserts (upserts) a pair.
    fn insert(&self, key: &[u8], value: u64);

    /// Updates a key; default substitutes insert (paper §6).
    fn update(&self, key: &[u8], value: u64) {
        self.insert(key, value);
    }

    /// Point lookup.
    fn lookup(&self, key: &[u8]) -> Option<u64>;

    /// Removes a key; returns its value.
    fn remove(&self, key: &[u8]) -> Option<u64>;

    /// Scans up to `count` pairs from `start`; returns how many were seen.
    fn scan(&self, start: &[u8], count: usize) -> usize;

    /// Whether variable-length string keys are supported (FPTree's authors'
    /// binary does not support them; neither does our reimplementation).
    fn supports_strings(&self) -> bool {
        true
    }

    /// The index's per-operation latency histograms, when it records any.
    /// The driver snapshots these around each measured phase so reports can
    /// attach per-op percentiles without a sampling side channel.
    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        None
    }

    /// Runs `f` inside any per-batch acceleration the index offers. The
    /// pacsrv shard workers wrap each drained batch in this call; the
    /// epoch-based indexes hold one epoch pin across the batch so the
    /// per-operation pins inside reuse the outermost announcement instead
    /// of re-announcing per op. Default: no batch state, just run.
    fn with_batch(&self, f: &mut dyn FnMut()) {
        f();
    }

    /// Finishes background work (SMO replay, epoch reclamation) so a
    /// graceful shutdown leaves nothing pending; returns whether the index
    /// fully drained within `timeout`. Default: nothing to drain.
    fn drain(&self, _timeout: std::time::Duration) -> bool {
        true
    }

    // -- Multi-version reads (PACTree MVCC; defaults = unsupported) --------

    /// Captures an O(1) point-in-time view of the index and returns its
    /// id, or `None` if the index has no multi-version support.
    fn snapshot(&self) -> Option<u64> {
        None
    }

    /// Scans up to `count` pairs from `start` as of snapshot `snap`,
    /// isolated from concurrent writers; returns how many were seen, or
    /// `None` if snapshots are unsupported or `snap` is unknown/released.
    fn scan_at(&self, _snap: u64, _start: &[u8], _count: usize) -> Option<usize> {
        None
    }

    /// Releases a captured view so its pinned epochs and frozen state can
    /// be reclaimed; returns whether the id named a live snapshot.
    fn release_snapshot(&self, _snap: u64) -> bool {
        false
    }

    /// Advances the index's version counter — servers call this at batch
    /// boundaries so snapshot versions align with batch edges. Default:
    /// no versioning, nothing to advance.
    fn advance_version(&self) {}

    /// Like [`scan_at`](Self::scan_at), but materializing the pairs —
    /// what partition migration pages the source through. Returns `None`
    /// if snapshots are unsupported or `snap` is unknown/released.
    fn scan_pairs_at(
        &self,
        _snap: u64,
        _start: &[u8],
        _count: usize,
    ) -> Option<Vec<(Vec<u8>, u64)>> {
        None
    }

    /// The differences between two snapshots, as [`DiffPair`] rows.
    /// Returns `None` if either snapshot is unknown or diffing is
    /// unsupported.
    fn diff_pairs(&self, _a: u64, _b: u64) -> Option<Vec<DiffPair>> {
        None
    }
}

impl RangeIndex for Arc<PacTree> {
    fn name(&self) -> &'static str {
        "PACTree"
    }

    fn insert(&self, key: &[u8], value: u64) {
        PacTree::insert(self, key, value).expect("pactree insert");
    }

    fn update(&self, key: &[u8], value: u64) {
        // Native update path (§5.5); inserts if the key vanished.
        if PacTree::update(self, key, value)
            .expect("pactree update")
            .is_none()
        {
            PacTree::insert(self, key, value).expect("pactree insert");
        }
    }

    fn lookup(&self, key: &[u8]) -> Option<u64> {
        PacTree::lookup(self, key)
    }

    fn remove(&self, key: &[u8]) -> Option<u64> {
        PacTree::remove(self, key).expect("pactree remove")
    }

    fn scan(&self, start: &[u8], count: usize) -> usize {
        PacTree::scan(self, start, count).len()
    }

    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        Some(obsv::OpRecorder::op_histograms(self.as_ref()))
    }

    fn with_batch(&self, f: &mut dyn FnMut()) {
        let _pin = self.collector().pin();
        f();
    }

    fn drain(&self, timeout: std::time::Duration) -> bool {
        self.quiesce(timeout)
    }

    fn snapshot(&self) -> Option<u64> {
        Some(PacTree::snapshot(self))
    }

    fn scan_at(&self, snap: u64, start: &[u8], count: usize) -> Option<usize> {
        PacTree::scan_at(self, snap, start, count).map(|pairs| pairs.len())
    }

    fn release_snapshot(&self, snap: u64) -> bool {
        PacTree::release_snapshot(self, snap)
    }

    fn advance_version(&self) {
        PacTree::advance_version(self);
    }

    fn scan_pairs_at(&self, snap: u64, start: &[u8], count: usize) -> Option<Vec<(Vec<u8>, u64)>> {
        PacTree::scan_at(self, snap, start, count)
            .map(|pairs| pairs.into_iter().map(|p| (p.key, p.value)).collect())
    }

    fn diff_pairs(&self, a: u64, b: u64) -> Option<Vec<DiffPair>> {
        use pactree::mvcc::DiffEntry;
        PacTree::diff(self, a, b).map(|entries| {
            entries
                .into_iter()
                .map(|e| match e {
                    DiffEntry::Added(k, v) => (k, None, Some(v)),
                    DiffEntry::Removed(k, v) => (k, Some(v), None),
                    DiffEntry::Changed(k, old, new) => (k, Some(old), Some(new)),
                })
                .collect()
        })
    }
}

impl RangeIndex for Arc<PdlArt> {
    fn name(&self) -> &'static str {
        "PDL-ART"
    }

    fn insert(&self, key: &[u8], value: u64) {
        PdlArt::insert(self, key, value).expect("pdl-art insert");
    }

    fn lookup(&self, key: &[u8]) -> Option<u64> {
        PdlArt::lookup(self, key)
    }

    fn remove(&self, key: &[u8]) -> Option<u64> {
        PdlArt::remove(self, key).expect("pdl-art remove")
    }

    fn scan(&self, start: &[u8], count: usize) -> usize {
        PdlArt::scan(self, start, count).len()
    }

    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        Some(obsv::OpRecorder::op_histograms(self.as_ref()))
    }

    fn with_batch(&self, f: &mut dyn FnMut()) {
        let _pin = self.collector().pin();
        f();
    }

    fn drain(&self, _timeout: std::time::Duration) -> bool {
        self.maintain();
        true
    }
}

impl RangeIndex for Arc<FastFair> {
    fn name(&self) -> &'static str {
        "FastFair"
    }

    fn insert(&self, key: &[u8], value: u64) {
        FastFair::insert(self, key, value).expect("fastfair insert");
    }

    fn lookup(&self, key: &[u8]) -> Option<u64> {
        FastFair::lookup(self, key)
    }

    fn remove(&self, key: &[u8]) -> Option<u64> {
        FastFair::remove(self, key).expect("fastfair remove")
    }

    fn scan(&self, start: &[u8], count: usize) -> usize {
        FastFair::scan(self, start, count).len()
    }

    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        Some(obsv::OpRecorder::op_histograms(self.as_ref()))
    }
}

impl RangeIndex for Arc<BzTree> {
    fn name(&self) -> &'static str {
        "BzTree"
    }

    fn insert(&self, key: &[u8], value: u64) {
        BzTree::insert(self, key, value).expect("bztree insert");
    }

    fn lookup(&self, key: &[u8]) -> Option<u64> {
        BzTree::lookup(self, key)
    }

    fn remove(&self, key: &[u8]) -> Option<u64> {
        BzTree::remove(self, key).expect("bztree remove")
    }

    fn scan(&self, start: &[u8], count: usize) -> usize {
        BzTree::scan(self, start, count).len()
    }

    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        Some(obsv::OpRecorder::op_histograms(self.as_ref()))
    }
}

fn as_u64(key: &[u8]) -> u64 {
    u64::from_be_bytes(key.try_into().expect("FPTree needs 8-byte integer keys"))
}

impl RangeIndex for Arc<FpTree> {
    fn name(&self) -> &'static str {
        "FPTree"
    }

    fn insert(&self, key: &[u8], value: u64) {
        FpTree::insert(self, as_u64(key), value).expect("fptree insert");
    }

    fn lookup(&self, key: &[u8]) -> Option<u64> {
        FpTree::lookup(self, as_u64(key))
    }

    fn remove(&self, key: &[u8]) -> Option<u64> {
        FpTree::remove(self, as_u64(key)).expect("fptree remove")
    }

    fn scan(&self, start: &[u8], count: usize) -> usize {
        FpTree::scan(self, as_u64(start), count).len()
    }

    fn supports_strings(&self) -> bool {
        false
    }

    fn op_histograms(&self) -> Option<&obsv::OpHistograms> {
        Some(obsv::OpRecorder::op_histograms(self.as_ref()))
    }
}
