//! PDL-ART as a standalone persistent key-value range index.
//!
//! This is the paper's *PDL-ART* baseline (§3, §5.1): the persistent
//! durable-linearizable adaptive radix tree used as PACTree's search layer,
//! here exposed directly as an index over byte keys and 8-byte values.
//!
//! Its performance profile is exactly what the paper's analysis (GA3, GA5)
//! predicts:
//!
//! * lookups consume little NVM read bandwidth — partial-key comparisons in
//!   packed trie nodes (Figure 4's winner);
//! * every insert performs an NVM allocation for an out-of-node leaf — high
//!   allocator pressure (Figure 3, the GA3 experiment);
//! * scans chase one pointer per key — random NVM reads (Figure 5's loser).
//!
//! # Example
//!
//! ```
//! use pdl_art::{PdlArt, PdlArtConfig};
//!
//! let idx = PdlArt::create(PdlArtConfig::named("pdlart-doc")).unwrap();
//! idx.insert(b"key", 7).unwrap();
//! assert_eq!(idx.lookup(b"key"), Some(7));
//! assert_eq!(idx.scan(b"a", 10).len(), 1);
//! ```

use std::sync::Arc;

use pactree::search::Art;
use pmem::epoch::Collector;
use pmem::pool::{self, PmemPool, PoolConfig};
use pmem::{AllocMode, PmemError, Result};

/// The runtime-dispatched SIMD probe kernels the search layer runs on
/// (`Node16` child search, jump-chase prefetch), re-exported so standalone
/// PDL-ART embedders can query the active kernel or force the SWAR
/// fallback via `PACTREE_NO_SIMD=1`.
pub use pactree::simd;

/// Configuration for creating a [`PdlArt`] index.
#[derive(Debug, Clone)]
pub struct PdlArtConfig {
    /// Pool name (a single pool backs the index).
    pub name: String,
    /// Pool size in bytes.
    pub pool_size: usize,
    /// Keep a media image for crash simulation.
    pub crash_sim: bool,
    /// Allocator crash-consistency mode (the Figure 3 experiment toggles
    /// this between PMDK-like and jemalloc-like behaviour).
    pub alloc_mode: AllocMode,
}

impl PdlArtConfig {
    /// Defaults for tests and examples.
    pub fn named(name: &str) -> Self {
        PdlArtConfig {
            name: name.to_string(),
            pool_size: 256 << 20,
            crash_sim: false,
            alloc_mode: AllocMode::Transient,
        }
    }

    /// Durable configuration (crash simulation + crash-consistent allocator).
    pub fn durable(name: &str) -> Self {
        PdlArtConfig {
            crash_sim: true,
            alloc_mode: AllocMode::CrashConsistent,
            ..Self::named(name)
        }
    }

    /// Sets the pool size.
    pub fn with_pool_size(mut self, bytes: usize) -> Self {
        self.pool_size = bytes;
        self
    }

    /// Sets the allocator mode.
    pub fn with_alloc_mode(mut self, mode: AllocMode) -> Self {
        self.alloc_mode = mode;
        self
    }
}

/// A standalone PDL-ART index mapping byte keys to `u64` values.
///
/// Values are stored in out-of-node leaves (one NVM allocation per insert,
/// the paper's PDL-ART allocation profile). All `u64` values except
/// `u64::MAX` are supported (the internal encoding reserves one word).
pub struct PdlArt {
    pool: Arc<PmemPool>,
    art: Art,
    collector: Arc<Collector>,
    /// Per-operation latency histograms (obsv recorder).
    ops: obsv::OpHistograms,
    /// RAII registrations of this index's gauges/histograms in the global
    /// metrics registry; dropped (unregistered) with the index.
    obsv_guards: std::sync::OnceLock<Vec<obsv::Registration>>,
}

// Internal encoding: ART reserves raw value 0 for "empty", so shift by one.
#[inline]
fn encode(v: u64) -> Result<u64> {
    if v == u64::MAX {
        return Err(PmemError::InvalidAllocation(usize::MAX));
    }
    Ok(v + 1)
}

#[inline]
fn decode(raw: u64) -> u64 {
    raw - 1
}

impl PdlArt {
    /// Creates a fresh index (or attaches to an existing pool's tree after
    /// recovery).
    pub fn create(config: PdlArtConfig) -> Result<Arc<PdlArt>> {
        let pool = PmemPool::create(PoolConfig {
            name: config.name.clone(),
            size: config.pool_size,
            numa_node: pmem::numa::current_node(),
            crash_sim: config.crash_sim,
            alloc_mode: config.alloc_mode,
        })?;
        Self::attach(pool)
    }

    /// Attaches to an existing pool (recovery path): bumps the lock
    /// generation and reclaims leaked allocations.
    pub fn recover(name: &str) -> Result<Arc<PdlArt>> {
        pactree::lock::bump_global_generation();
        let pool =
            pool::pool_by_name(name).ok_or_else(|| PmemError::PoolNotFound(name.to_string()))?;
        pool.allocator().recover_logs();
        let idx = Self::attach(pool)?;
        idx.art.recover();
        Ok(idx)
    }

    fn attach(pool: Arc<PmemPool>) -> Result<Arc<PdlArt>> {
        let collector = Arc::new(Collector::new());
        let art = Art::create(Arc::clone(&pool), 0, Arc::clone(&collector))?;
        let idx = Arc::new(PdlArt {
            pool,
            art,
            collector,
            ops: obsv::OpHistograms::new(),
            obsv_guards: std::sync::OnceLock::new(),
        });
        idx.register_obsv_gauges();
        Ok(idx)
    }

    /// Registers this index's health gauges (epoch backlog size/age and
    /// current epoch) and per-op latency histograms with the global
    /// [`obsv::registry`], under `pdlart.<pool>.*`. Same `Weak`-capture
    /// idiom as PACTree: registration never extends the index's lifetime,
    /// and dropping the index silences and unregisters the metrics.
    fn register_obsv_gauges(self: &Arc<Self>) {
        let reg = obsv::registry::global();
        let prefix = format!("pdlart.{}", self.pool.name());
        let mut guards = Vec::new();
        let gauge = |guards: &mut Vec<obsv::Registration>,
                     name: String,
                     f: Box<dyn Fn(&PdlArt) -> f64 + Send + Sync>| {
            let w = Arc::downgrade(self);
            guards.push(reg.register_gauge(name, move || w.upgrade().map(|t| f(&t))));
        };
        gauge(
            &mut guards,
            format!("{prefix}.epoch.backlog"),
            Box::new(|t| t.collector.queued().saturating_sub(t.collector.executed()) as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.epoch.backlog_age_ns"),
            Box::new(|t| t.collector.backlog_age_ns() as f64),
        );
        gauge(
            &mut guards,
            format!("{prefix}.epoch.current"),
            Box::new(|t| t.collector.epoch() as f64),
        );
        let w = Arc::downgrade(self);
        guards.push(reg.register_hists(prefix, move || w.upgrade().map(|t| t.ops.snapshot())));
        let _ = self.obsv_guards.set(guards);
    }

    /// The epoch collector (exposed so batch processors can hold one pin
    /// across a run of operations; pins nest).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Inserts or updates; returns the previous value if present.
    pub fn insert(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.insert_inner(key, value);
        self.ops.finish(obsv::OpKind::Insert, timer, 0);
        result
    }

    fn insert_inner(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        Ok(self.art.insert(key, encode(value)?)?.map(decode))
    }

    /// Updates an existing key only; returns the previous value, or `None`
    /// (and does nothing) if absent.
    pub fn update(&self, key: &[u8], value: u64) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        // ART insert is an upsert; emulate update-only with a pre-check.
        // A racing remove can still turn this into an insert — acceptable
        // for the YCSB-style workloads this baseline exists for.
        let result = if self.art.get(key).is_none() {
            Ok(None)
        } else {
            self.insert_inner(key, value)
        };
        self.ops.finish(obsv::OpKind::Update, timer, 0);
        result
    }

    /// Point lookup.
    pub fn lookup(&self, key: &[u8]) -> Option<u64> {
        let timer = obsv::OpTimer::start();
        let result = self.art.get(key).map(decode);
        self.ops.finish(obsv::OpKind::Lookup, timer, 0);
        result
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&self, key: &[u8]) -> Result<Option<u64>> {
        let timer = obsv::OpTimer::start();
        let result = self.art.remove(key).map(|v| v.map(decode));
        self.ops.finish(obsv::OpKind::Remove, timer, 0);
        result
    }

    /// Ordered scan of up to `count` pairs with keys ≥ `start`. Each pair
    /// costs a random NVM leaf read (the paper's GA5 point).
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        let timer = obsv::OpTimer::start();
        let result = self.scan_inner(start, count);
        self.ops.finish(obsv::OpKind::Scan, timer, 0);
        result
    }

    fn scan_inner(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        self.art
            .scan(start, count)
            .into_iter()
            .map(|(k, v)| (k, decode(v)))
            .collect()
    }

    /// Greatest entry with key ≤ `key` (predecessor/floor query — the trie
    /// descent PACTree uses for anchor lookup).
    pub fn floor(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        self.art.floor_entry(key).map(|(k, v)| (k, decode(v)))
    }

    /// Smallest entry with key ≥ `key` (successor/ceiling query).
    pub fn ceil(&self, key: &[u8]) -> Option<(Vec<u8>, u64)> {
        self.scan_inner(key, 1).into_iter().next()
    }

    /// Captures an O(1) point-in-time view of the index.
    ///
    /// Raises the search layer's copy-on-write flag (mutations serialized
    /// after this copy their root→mutation path instead of editing shared
    /// nodes, DESIGN.md §13), waits out in-flight in-place mutations, then
    /// captures the root. Unlike PACTree — where the data layer is the
    /// correctness backstop and stragglers are tolerable — standalone
    /// PDL-ART leaves *are* the data, so the quiesce is what makes the
    /// captured root a frozen tree. The handle's epoch pin keeps every
    /// node reachable from it alive; drop the handle to release.
    pub fn snapshot(self: &Arc<Self>) -> PdlArtSnapshot {
        self.art.cow_enter();
        let pin = self.collector.pin_owned();
        self.art.quiesce_inplace();
        let root = self.art.current_root();
        PdlArtSnapshot {
            owner: Arc::clone(self),
            root,
            _pin: pin,
        }
    }

    /// Advances epoch reclamation (periodic maintenance).
    ///
    /// Under request tracing (`obsv/trace`), an advance that runs inside a
    /// traced request records an `epoch` span (via
    /// `pmem::epoch::Collector::try_advance`), and ART node growth inside
    /// [`insert`](Self::insert) records an `smo` span — so PDL-ART's
    /// structural and reclamation work is attributed per request exactly
    /// like PACTree's.
    pub fn maintain(&self) {
        self.collector.try_advance();
    }

    /// Number of live keys — O(n), tests only.
    pub fn len(&self) -> usize {
        self.art.count_entries()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unregisters the backing pool, invalidating the index.
    pub fn destroy(self: Arc<Self>) {
        let id = self.pool.id();
        drop(self);
        pool::destroy_pool(id);
    }
}

/// An immutable point-in-time view of a [`PdlArt`] index.
///
/// Created by [`PdlArt::snapshot`]. While any snapshot handle is live the
/// search layer mutates via copy-on-write path-copying, so the captured
/// root denotes a frozen trie; the held epoch pin keeps superseded nodes
/// mapped. Dropping the handle lowers the COW flag and releases the pin
/// (the last drop restores plain in-place mutation).
pub struct PdlArtSnapshot {
    owner: Arc<PdlArt>,
    root: u64,
    _pin: pmem::epoch::OwnedPin,
}

impl PdlArtSnapshot {
    /// Greatest value with key ≤ `key`, as of the snapshot.
    pub fn floor(&self, key: &[u8]) -> Option<u64> {
        self.owner.art.floor_from(self.root, key).map(decode)
    }

    /// Ordered scan of up to `count` pairs with keys ≥ `start`, as of the
    /// snapshot.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<(Vec<u8>, u64)> {
        self.owner
            .art
            .scan_from(self.root, start, count)
            .into_iter()
            .map(|(k, v)| (k, decode(v)))
            .collect()
    }
}

impl Drop for PdlArtSnapshot {
    fn drop(&mut self) {
        self.owner.art.cow_exit();
    }
}

impl obsv::OpRecorder for PdlArt {
    fn op_histograms(&self) -> &obsv::OpHistograms {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let idx = PdlArt::create(PdlArtConfig::named("pdlart-basic")).unwrap();
        assert_eq!(idx.insert(b"a", 0).unwrap(), None);
        assert_eq!(idx.lookup(b"a"), Some(0));
        assert_eq!(idx.insert(b"a", 5).unwrap(), Some(0));
        assert_eq!(idx.remove(b"a").unwrap(), Some(5));
        assert_eq!(idx.lookup(b"a"), None);
        idx.destroy();
    }

    #[test]
    fn max_value_rejected() {
        let idx = PdlArt::create(PdlArtConfig::named("pdlart-max")).unwrap();
        assert!(idx.insert(b"k", u64::MAX).is_err());
        idx.destroy();
    }

    #[test]
    fn update_only_semantics() {
        let idx = PdlArt::create(PdlArtConfig::named("pdlart-upd")).unwrap();
        assert_eq!(idx.update(b"ghost", 1).unwrap(), None);
        assert_eq!(idx.lookup(b"ghost"), None);
        idx.insert(b"real", 1).unwrap();
        assert_eq!(idx.update(b"real", 2).unwrap(), Some(1));
        assert_eq!(idx.lookup(b"real"), Some(2));
        idx.destroy();
    }

    #[test]
    fn scan_ordering() {
        let idx = PdlArt::create(PdlArtConfig::named("pdlart-scan")).unwrap();
        for i in (0..100u64).rev() {
            idx.insert(&i.to_be_bytes(), i).unwrap();
        }
        let got = idx.scan(&50u64.to_be_bytes(), 10);
        let keys: Vec<u64> = got
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, (50..60).collect::<Vec<_>>());
        idx.destroy();
    }

    #[test]
    fn floor_and_ceil() {
        let idx = PdlArt::create(PdlArtConfig::named("pdlart-floorceil")).unwrap();
        for v in [10u64, 20, 30] {
            idx.insert(&v.to_be_bytes(), v).unwrap();
        }
        let fk = |r: Option<(Vec<u8>, u64)>| r.map(|(_, v)| v);
        assert_eq!(fk(idx.floor(&15u64.to_be_bytes())), Some(10));
        assert_eq!(fk(idx.floor(&20u64.to_be_bytes())), Some(20));
        assert_eq!(fk(idx.floor(&5u64.to_be_bytes())), None);
        assert_eq!(fk(idx.ceil(&15u64.to_be_bytes())), Some(20));
        assert_eq!(fk(idx.ceil(&30u64.to_be_bytes())), Some(30));
        assert_eq!(fk(idx.ceil(&31u64.to_be_bytes())), None);
        idx.destroy();
    }

    #[test]
    fn snapshot_isolated_views() {
        let idx = PdlArt::create(PdlArtConfig::named("pdlart-snap")).unwrap();
        for i in 0..200u64 {
            idx.insert(&i.to_be_bytes(), i).unwrap();
        }
        let snap = idx.snapshot();
        // Mutate every key and add new ones after the capture.
        for i in 0..200u64 {
            idx.insert(&i.to_be_bytes(), i + 1000).unwrap();
        }
        for i in 200..400u64 {
            idx.insert(&i.to_be_bytes(), i).unwrap();
        }
        for i in 0..50u64 {
            idx.remove(&i.to_be_bytes()).unwrap();
        }
        // The snapshot still serves the pre-capture state.
        let got = snap.scan(b"", usize::MAX >> 1);
        assert_eq!(got.len(), 200);
        for (i, (k, v)) in got.iter().enumerate() {
            assert_eq!(k.as_slice(), (i as u64).to_be_bytes());
            assert_eq!(*v, i as u64);
        }
        assert_eq!(snap.floor(&150u64.to_be_bytes()), Some(150));
        assert_eq!(snap.floor(&350u64.to_be_bytes()), Some(199));
        // The live index serves the mutated state.
        assert_eq!(idx.lookup(&10u64.to_be_bytes()), None);
        assert_eq!(idx.lookup(&100u64.to_be_bytes()), Some(1100));
        assert_eq!(idx.lookup(&300u64.to_be_bytes()), Some(300));
        drop(snap);
        // COW flag lowered: subsequent mutations are in-place again.
        let copied = idx.art.cow_copied();
        idx.insert(&500u64.to_be_bytes(), 500).unwrap();
        assert_eq!(idx.art.cow_copied(), copied);
        idx.destroy();
    }

    #[test]
    fn crash_recovery() {
        let idx = PdlArt::create(PdlArtConfig::durable("pdlart-crash")).unwrap();
        for i in 0..500u64 {
            idx.insert(&i.to_be_bytes(), i).unwrap();
        }
        let pool = Arc::clone(idx.pool());
        drop(idx);
        pool.simulate_crash(false);
        pool.allocator().recover_logs();
        let idx2 = PdlArt::recover("pdlart-crash").unwrap();
        for i in 0..500u64 {
            assert_eq!(idx2.lookup(&i.to_be_bytes()), Some(i));
        }
        idx2.destroy();
    }
}
