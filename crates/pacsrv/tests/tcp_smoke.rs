//! End-to-end TCP loopback: multiple clients, mixed batches, clean stop.

mod common;

use std::time::Duration;

use common::MapIndex;
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig, TcpClient, TcpServer};

#[test]
fn tcp_loopback_roundtrip() {
    let cfg = ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-tcp", 2)
    };
    let service = PacService::start(MapIndex::default(), cfg);
    let server = TcpServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                client.ping().expect("ping");
                for i in 0..50u64 {
                    let key = (c * 1000 + i).to_be_bytes().to_vec();
                    let resps = client
                        .call(vec![
                            Request::Put {
                                key: key.clone(),
                                value: i,
                            },
                            Request::Get { key: key.clone() },
                            Request::Scan {
                                start: key.clone(),
                                count: 4,
                            },
                            Request::Delete { key: key.clone() },
                            Request::Get { key },
                        ])
                        .expect("call");
                    assert_eq!(resps.len(), 5);
                    assert_eq!(resps[0], Response::Ok);
                    assert_eq!(resps[1], Response::Value(Some(i)));
                    assert!(matches!(resps[2], Response::ScanCount(n) if n >= 1));
                    assert_eq!(resps[3], Response::Removed(Some(i)));
                    assert_eq!(resps[4], Response::Value(None));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    server.stop();
    assert!(service.shutdown(Duration::from_secs(5)));
}
