//! End-to-end TCP loopback: multiple clients, mixed batches, clean stop.

mod common;

use std::time::Duration;

use common::MapIndex;
use pacsrv::wire::{Request, Response};
use pacsrv::{HealthServer, PacService, ServiceConfig, TcpClient, TcpServer};

#[test]
fn tcp_loopback_roundtrip() {
    let cfg = ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-tcp", 2)
    };
    let service = PacService::start(MapIndex::default(), cfg);
    let server = TcpServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let handles: Vec<_> = (0..3u64)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).expect("connect");
                client.ping().expect("ping");
                for i in 0..50u64 {
                    let key = (c * 1000 + i).to_be_bytes().to_vec();
                    let resps = client
                        .call(vec![
                            Request::Put {
                                key: key.clone(),
                                value: i,
                            },
                            Request::Get { key: key.clone() },
                            Request::Scan {
                                start: key.clone(),
                                count: 4,
                            },
                            Request::Delete { key: key.clone() },
                            Request::Get { key },
                        ])
                        .expect("call");
                    assert_eq!(resps.len(), 5);
                    assert_eq!(resps[0], Response::Ok);
                    assert_eq!(resps[1], Response::Value(Some(i)));
                    assert!(matches!(resps[2], Response::ScanCount(n) if n >= 1));
                    assert_eq!(resps[3], Response::Removed(Some(i)));
                    assert_eq!(resps[4], Response::Value(None));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    server.stop();
    assert!(service.shutdown(Duration::from_secs(5)));
}

#[test]
fn finished_connection_handles_are_reaped() {
    let cfg = ServiceConfig {
        shards: 1,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-tcp-reap", 1)
    };
    let service = PacService::start(MapIndex::default(), cfg);
    let server = TcpServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Sequential connect/ping/drop cycles: without reaping, every one of
    // these would leave a joinable handle behind for the server's lifetime.
    for _ in 0..8 {
        let mut client = TcpClient::connect(addr).expect("connect");
        client.ping().expect("ping");
        drop(client);
    }
    // Dropped sockets EOF their handlers; give them a moment to exit, then
    // the reap in open_conns must bring the list (close to) empty. The
    // accept loop also reaps, so the bound holds without calling
    // open_conns in between.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let open = server.open_conns();
        if open <= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "{open} connection handles still unreaped"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    server.stop();
    assert!(service.shutdown(Duration::from_secs(5)));
}

#[test]
fn stats_endpoint_answers_over_tcp() {
    let cfg = ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-tcp-stats", 2)
    };
    let service = PacService::start(MapIndex::default(), cfg);
    let server = TcpServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut client = TcpClient::connect(addr).expect("connect");
    for i in 0..10u64 {
        let resps = client
            .call(vec![Request::Put {
                key: i.to_be_bytes().to_vec(),
                value: i,
            }])
            .expect("call");
        assert_eq!(resps, vec![Response::Ok]);
    }
    let json = client.stats().expect("stats");
    assert!(
        json.starts_with("{\"schema\":\"pacsrv_stats/v1\""),
        "{json}"
    );
    assert!(json.contains("\"name\":\"pacsrv-tcp-stats\""), "{json}");
    assert!(json.contains("\"queue_depth\":"), "{json}");
    assert!(json.contains("\"registry\":{"), "{json}");
    assert!(json.contains("\"traces\":{"), "{json}");
    assert!(json.contains("\"flight\":\""), "{json}");

    // A v1 client on the same server still works for requests...
    let mut v1 = TcpClient::connect(addr).expect("connect v1");
    v1.set_wire_version(1);
    let resps = v1
        .call(vec![Request::Get {
            key: 3u64.to_be_bytes().to_vec(),
        }])
        .expect("v1 call");
    assert_eq!(resps, vec![Response::Value(Some(3))]);

    server.stop();
    assert!(service.shutdown(Duration::from_secs(5)));
}

#[test]
fn health_scrapes_over_wire_frame_and_plain_http() {
    use std::io::{Read as _, Write as _};

    let cfg = ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-tcp-health", 2)
    };
    let service = PacService::start(MapIndex::default(), cfg);
    let server = TcpServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let health = HealthServer::start(service.clone(), "127.0.0.1:0").expect("bind health");

    let mut client = TcpClient::connect(server.local_addr()).expect("connect");
    for i in 0..10u64 {
        client
            .call(vec![Request::Put {
                key: i.to_be_bytes().to_vec(),
                value: i,
            }])
            .expect("call");
    }

    // Wire-frame scrape (v3 Health/HealthReply).
    let text = client.health().expect("health frame");
    assert!(
        text.contains("# TYPE pacsrv_tcp_health_queue_depth gauge"),
        "{text}"
    );
    assert!(text.contains("pacsrv_tcp_health_admitted_total"), "{text}");

    // Plain-HTTP scrape, exactly what `curl http://addr/metrics` sends.
    let mut sock = std::net::TcpStream::connect(health.local_addr()).expect("connect http");
    sock.write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
        .expect("send request");
    let mut reply = String::new();
    sock.read_to_string(&mut reply).expect("read reply");
    assert!(reply.starts_with("HTTP/1.0 200 OK\r\n"), "{reply}");
    assert!(reply.contains("Content-Type: text/plain"), "{reply}");
    let body = reply.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("pacsrv_tcp_health_admitted_total"), "{body}");
    assert!(
        body.contains("# TYPE obsv_scrape_timestamp_ns gauge"),
        "{body}"
    );

    // Non-GET requests are refused, connection still answered.
    let mut sock = std::net::TcpStream::connect(health.local_addr()).expect("connect http");
    sock.write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
        .expect("send request");
    let mut reply = String::new();
    sock.read_to_string(&mut reply).expect("read reply");
    assert!(reply.starts_with("HTTP/1.0 400"), "{reply}");

    health.stop();
    server.stop();
    assert!(service.shutdown(Duration::from_secs(5)));
}
