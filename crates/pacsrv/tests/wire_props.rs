//! Property tests for the wire codec: round-trip identity, truncation
//! rejection, single-byte corruption rejection over randomized frames, and
//! v1 <-> v2 cross-version compatibility (a v1 frame decodes on a v2 build
//! with an untraced context; a v2 trace block round-trips exactly).

use obsv::trace::TraceCtx;
use pacsrv::wire::{
    decode_frame, encode_frame, encode_frame_versioned, Frame, MigrateOp, Partition, PartitionMap,
    Request, Response, HEADER_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Materializes a trace context from a generated raw tuple.
fn build_trace((trace_id, parent_span, sampled, node, hop): (u64, u32, bool, u16, u8)) -> TraceCtx {
    TraceCtx {
        trace_id,
        parent_span,
        sampled,
        node,
        hop,
    }
}

/// What a trace context looks like after a pre-v4 round trip: the 13-byte
/// v2/v3 block carries id/parent/flags, never the node stamp or hop.
fn pre_v4_view(trace: TraceCtx) -> TraceCtx {
    TraceCtx {
        node: 0,
        hop: 0,
        ..trace
    }
}

/// Materializes a request list from generated raw tuples.
fn build_requests(raw: Vec<(u8, Vec<u8>, u64)>) -> Vec<Request> {
    raw.into_iter()
        .map(|(op, key, value)| match op % 4 {
            0 => Request::Get { key },
            1 => Request::Put { key, value },
            2 => Request::Delete { key },
            _ => Request::Scan {
                start: key,
                count: (value % 10_000) as u32,
            },
        })
        .collect()
}

/// Materializes a response list from generated raw tuples.
fn build_responses(raw: Vec<(u8, u64, bool)>) -> Vec<Response> {
    raw.into_iter()
        .map(|(tag, v, some)| {
            let opt = if some { Some(v) } else { None };
            match tag % 8 {
                0 => Response::Ok,
                1 => Response::Value(opt),
                2 => Response::Removed(opt),
                3 => Response::ScanCount((v % 100_000) as u32),
                4 => Response::Overloaded,
                5 => Response::DeadlineExceeded,
                6 => Response::Aborted,
                _ => Response::Malformed,
            }
        })
        .collect()
}

/// Maps arbitrary bytes onto a printable ASCII string (the vendored
/// proptest has no string strategies).
fn ascii(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b'!' + (b % 94)) as char).collect()
}

/// Materializes a partition map from generated raw parts. The codec does
/// not validate map semantics (sortedness, coverage) — that is
/// `PartitionMap::validate`'s job at install time — so arbitrary parts
/// must round-trip.
fn build_map(epoch: u64, raw: Vec<(Vec<u8>, Vec<u8>)>) -> PartitionMap {
    let parts = raw
        .into_iter()
        .enumerate()
        .map(|(i, (start, endpoint))| Partition {
            id: i as u32,
            start,
            endpoint: ascii(&endpoint),
        })
        .collect();
    PartitionMap { epoch, parts }
}

/// Materializes a migration control op from generated raw parts.
fn build_op(tag: u8, partition: u32, target: &[u8], map: PartitionMap) -> MigrateOp {
    match tag % 5 {
        0 => MigrateOp::Start {
            partition,
            target: ascii(target),
        },
        1 => MigrateOp::ImportBegin { partition },
        2 => MigrateOp::ImportEnd { partition, map },
        3 => MigrateOp::ImportAbort { partition },
        _ => MigrateOp::Install { map },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_frames_round_trip(
        id in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..24),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        prop_assert_eq!(n, buf.len());
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn reply_frames_round_trip(
        id in any::<u64>(),
        raw in vec((any::<u8>(), any::<u64>(), any::<bool>()), 0..48),
    ) {
        let frame = Frame::Reply { id, resps: build_responses(raw) };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_ask_for_more(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        cut_seed in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let cut = (cut_seed % n as u64) as usize;
        match decode_frame(&buf[..cut]) {
            Err(pacsrv::wire::WireError::Incomplete { need }) => {
                prop_assert!(need > 0);
                // `need` never asks past the true frame end once the
                // header is visible; before that it asks for the header.
                if cut >= HEADER_LEN {
                    prop_assert_eq!(cut + need, n);
                } else {
                    prop_assert_eq!(cut + need, HEADER_LEN);
                }
            }
            other => panic!("truncated frame at {cut}/{n} decoded as {other:?}"),
        }
    }

    #[test]
    fn corrupted_frames_never_decode(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0..8u32,
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let pos = (flip_pos_seed % n as u64) as usize;
        buf[pos] ^= 1 << flip_bit;
        // A single flipped bit must never yield a successful decode:
        // magic/version/structure checks or the CRC must catch it (a flip
        // that grows the length field parks as Incomplete, which a stream
        // transport treats as "wait for bytes that never come").
        prop_assert!(
            decode_frame(&buf).is_err(),
            "bit {flip_bit} at byte {pos} went undetected"
        );
    }

    /// A v1-encoded request (no trace block) decodes on this v2 build as
    /// the same operations with an untraced context — old clients keep
    /// working against a new server.
    #[test]
    fn v1_request_decodes_on_v2_build_as_untraced(
        id in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..24),
    ) {
        let trace = build_trace(raw_trace);
        let reqs = build_requests(raw);
        let frame = Frame::Request { id, trace, reqs: reqs.clone() };
        let mut buf = Vec::new();
        let n = encode_frame_versioned(&frame, 1, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("v1 decodes");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, Frame::Request { id, trace: TraceCtx::UNTRACED, reqs });
    }

    /// The 13-byte v2 trace block round-trips id/parent/flags exactly
    /// (node/hop are a v4 extension: zeroed on a v2 round trip), dropping
    /// to v1 costs exactly those 13 bytes, and the v4 block costs exactly
    /// 3 more (node + hop) while round-tripping the full context.
    #[test]
    fn v2_trace_context_round_trips(
        id in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..8),
    ) {
        let trace = build_trace(raw_trace);
        let reqs = build_requests(raw);
        let frame = Frame::Request { id, trace, reqs: reqs.clone() };
        let mut v2 = Vec::new();
        let n2 = encode_frame_versioned(&frame, 2, &mut v2);
        let mut v1 = Vec::new();
        let n1 = encode_frame_versioned(&frame, 1, &mut v1);
        prop_assert_eq!(n2 - n1, 13);
        let (decoded, _) = decode_frame(&v2).expect("v2 decodes");
        prop_assert_eq!(decoded, Frame::Request { id, trace: pre_v4_view(trace), reqs: reqs.clone() });
        let mut v4 = Vec::new();
        let n4 = encode_frame_versioned(&frame, 4, &mut v4);
        prop_assert_eq!(n4 - n2, 3);
        let (decoded, _) = decode_frame(&v4).expect("v4 decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// Truncation and corruption detection hold for v1 frames too — the
    /// header checks and CRC are version-independent.
    #[test]
    fn v1_truncation_and_corruption_still_rejected(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        cut_seed in any::<u64>(),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0..8u32,
    ) {
        let frame = Frame::Request { id, trace: TraceCtx::UNTRACED, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame_versioned(&frame, 1, &mut buf);
        let cut = (cut_seed % n as u64) as usize;
        prop_assert!(matches!(
            decode_frame(&buf[..cut]),
            Err(pacsrv::wire::WireError::Incomplete { .. })
        ));
        let pos = (flip_pos_seed % n as u64) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= 1 << flip_bit;
        prop_assert!(
            decode_frame(&bad).is_err(),
            "v1: bit {flip_bit} at byte {pos} went undetected"
        );
    }

    // -- v4 cluster frames -------------------------------------------------

    /// `MapFetch`/`MapReply` round-trip for arbitrary maps, including
    /// empty ones and unsorted/duplicate parts (the codec carries, the
    /// installer validates). The fetch's v4 trace block — node stamp and
    /// hop included — round-trips for arbitrary contexts.
    #[test]
    fn v4_map_frames_round_trip(
        id in any::<u64>(),
        epoch in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
        raw in vec((vec(any::<u8>(), 0..24), vec(any::<u8>(), 0..16)), 0..12),
    ) {
        let fetch = Frame::MapFetch { id, trace: build_trace(raw_trace) };
        let mut buf = Vec::new();
        let n = encode_frame(&fetch, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("map fetch");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, fetch);

        let reply = Frame::MapReply { id, map: build_map(epoch, raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&reply, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("map reply");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, reply);
    }

    /// `Migrate`/`MigrateReply` round-trip for every control op, with an
    /// arbitrary v4 trace block (node stamp and hop included).
    #[test]
    fn v4_migrate_frames_round_trip(
        id in any::<u64>(),
        tag in any::<u8>(),
        partition in any::<u32>(),
        target in vec(any::<u8>(), 0..24),
        epoch in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
        raw in vec((vec(any::<u8>(), 0..16), vec(any::<u8>(), 0..12)), 0..8),
        ok in any::<bool>(),
        detail in vec(any::<u8>(), 0..48),
    ) {
        let frame = Frame::Migrate { id, trace: build_trace(raw_trace), op: build_op(tag, partition, &target, build_map(epoch, raw)) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("migrate");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, frame);

        let reply = Frame::MigrateReply { id, ok, detail: ascii(&detail) };
        let mut buf = Vec::new();
        encode_frame(&reply, &mut buf);
        let (decoded, _) = decode_frame(&buf).expect("migrate reply");
        prop_assert_eq!(decoded, reply);
    }

    /// `WrongPartition` mixes into reply batches and round-trips its epoch.
    #[test]
    fn v4_wrong_partition_round_trips(
        id in any::<u64>(),
        raw in vec((any::<u8>(), any::<u64>(), any::<bool>()), 0..24),
        epochs in vec(any::<u64>(), 1..8),
    ) {
        let mut resps = build_responses(raw);
        for e in epochs {
            resps.push(Response::WrongPartition { map_epoch: e });
        }
        let frame = Frame::Reply { id, resps };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    /// Truncation and single-bit corruption are caught for the new v4
    /// frames exactly as for the old ones.
    #[test]
    fn v4_truncation_and_corruption_still_rejected(
        id in any::<u64>(),
        tag in any::<u8>(),
        partition in any::<u32>(),
        target in vec(any::<u8>(), 0..24),
        epoch in any::<u64>(),
        raw in vec((vec(any::<u8>(), 0..16), vec(any::<u8>(), 0..12)), 1..8),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
        cut_seed in any::<u64>(),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0..8u32,
    ) {
        let frame = Frame::Migrate { id, trace: build_trace(raw_trace), op: build_op(tag, partition, &target, build_map(epoch, raw)) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let cut = (cut_seed % n as u64) as usize;
        match decode_frame(&buf[..cut]) {
            Err(pacsrv::wire::WireError::Incomplete { need }) => {
                prop_assert!(need > 0);
                if cut >= HEADER_LEN {
                    prop_assert_eq!(cut + need, n);
                } else {
                    prop_assert_eq!(cut + need, HEADER_LEN);
                }
            }
            other => panic!("truncated v4 frame at {cut}/{n} decoded as {other:?}"),
        }
        let pos = (flip_pos_seed % n as u64) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= 1 << flip_bit;
        prop_assert!(
            decode_frame(&bad).is_err(),
            "v4: bit {flip_bit} at byte {pos} went undetected"
        );
    }

    /// Pre-v4 clients are untouched by the cluster additions: plain
    /// request/reply frames encoded at wire v1, v2, and v3 still decode to
    /// the same operations on a v4 build.
    #[test]
    fn pre_v4_frames_decode_on_v4_build(
        id in any::<u64>(),
        raw_reqs in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 0..12),
        raw_resps in vec((any::<u8>(), any::<u64>(), any::<bool>()), 0..12),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>(), any::<u16>(), any::<u8>()),
    ) {
        let trace = build_trace(raw_trace);
        let reqs = build_requests(raw_reqs);
        let resps = build_responses(raw_resps);
        for version in 1..=3u8 {
            let frame = Frame::Request { id, trace, reqs: reqs.clone() };
            let mut buf = Vec::new();
            encode_frame_versioned(&frame, version, &mut buf);
            let (decoded, _) = decode_frame(&buf).expect("request decodes");
            let want_trace = if version >= 2 { pre_v4_view(trace) } else { TraceCtx::UNTRACED };
            prop_assert_eq!(decoded, Frame::Request { id, trace: want_trace, reqs: reqs.clone() });

            let reply = Frame::Reply { id, resps: resps.clone() };
            let mut buf = Vec::new();
            encode_frame_versioned(&reply, version, &mut buf);
            let (decoded, _) = decode_frame(&buf).expect("reply decodes");
            prop_assert_eq!(decoded, reply);
        }
    }
}
