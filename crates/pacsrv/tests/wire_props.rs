//! Property tests for the wire codec: round-trip identity, truncation
//! rejection, single-byte corruption rejection over randomized frames, and
//! v1 <-> v2 cross-version compatibility (a v1 frame decodes on a v2 build
//! with an untraced context; a v2 trace block round-trips exactly).

use obsv::trace::TraceCtx;
use pacsrv::wire::{
    decode_frame, encode_frame, encode_frame_versioned, Frame, Request, Response, HEADER_LEN,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Materializes a trace context from a generated raw tuple.
fn build_trace((trace_id, parent_span, sampled): (u64, u32, bool)) -> TraceCtx {
    TraceCtx {
        trace_id,
        parent_span,
        sampled,
    }
}

/// Materializes a request list from generated raw tuples.
fn build_requests(raw: Vec<(u8, Vec<u8>, u64)>) -> Vec<Request> {
    raw.into_iter()
        .map(|(op, key, value)| match op % 4 {
            0 => Request::Get { key },
            1 => Request::Put { key, value },
            2 => Request::Delete { key },
            _ => Request::Scan {
                start: key,
                count: (value % 10_000) as u32,
            },
        })
        .collect()
}

/// Materializes a response list from generated raw tuples.
fn build_responses(raw: Vec<(u8, u64, bool)>) -> Vec<Response> {
    raw.into_iter()
        .map(|(tag, v, some)| {
            let opt = if some { Some(v) } else { None };
            match tag % 8 {
                0 => Response::Ok,
                1 => Response::Value(opt),
                2 => Response::Removed(opt),
                3 => Response::ScanCount((v % 100_000) as u32),
                4 => Response::Overloaded,
                5 => Response::DeadlineExceeded,
                6 => Response::Aborted,
                _ => Response::Malformed,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_frames_round_trip(
        id in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>()),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..24),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        prop_assert_eq!(n, buf.len());
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn reply_frames_round_trip(
        id in any::<u64>(),
        raw in vec((any::<u8>(), any::<u64>(), any::<bool>()), 0..48),
    ) {
        let frame = Frame::Reply { id, resps: build_responses(raw) };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_ask_for_more(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        cut_seed in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>()),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let cut = (cut_seed % n as u64) as usize;
        match decode_frame(&buf[..cut]) {
            Err(pacsrv::wire::WireError::Incomplete { need }) => {
                prop_assert!(need > 0);
                // `need` never asks past the true frame end once the
                // header is visible; before that it asks for the header.
                if cut >= HEADER_LEN {
                    prop_assert_eq!(cut + need, n);
                } else {
                    prop_assert_eq!(cut + need, HEADER_LEN);
                }
            }
            other => panic!("truncated frame at {cut}/{n} decoded as {other:?}"),
        }
    }

    #[test]
    fn corrupted_frames_never_decode(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0..8u32,
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>()),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let pos = (flip_pos_seed % n as u64) as usize;
        buf[pos] ^= 1 << flip_bit;
        // A single flipped bit must never yield a successful decode:
        // magic/version/structure checks or the CRC must catch it (a flip
        // that grows the length field parks as Incomplete, which a stream
        // transport treats as "wait for bytes that never come").
        prop_assert!(
            decode_frame(&buf).is_err(),
            "bit {flip_bit} at byte {pos} went undetected"
        );
    }

    /// A v1-encoded request (no trace block) decodes on this v2 build as
    /// the same operations with an untraced context — old clients keep
    /// working against a new server.
    #[test]
    fn v1_request_decodes_on_v2_build_as_untraced(
        id in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>()),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..24),
    ) {
        let trace = build_trace(raw_trace);
        let reqs = build_requests(raw);
        let frame = Frame::Request { id, trace, reqs: reqs.clone() };
        let mut buf = Vec::new();
        let n = encode_frame_versioned(&frame, 1, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("v1 decodes");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, Frame::Request { id, trace: TraceCtx::UNTRACED, reqs });
    }

    /// The 13-byte v2 trace block round-trips exactly, and dropping to v1
    /// costs exactly those 13 bytes.
    #[test]
    fn v2_trace_context_round_trips(
        id in any::<u64>(),
        raw_trace in (any::<u64>(), any::<u32>(), any::<bool>()),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..8),
    ) {
        let trace = build_trace(raw_trace);
        let frame = Frame::Request { id, trace, reqs: build_requests(raw) };
        let mut v2 = Vec::new();
        let n2 = encode_frame_versioned(&frame, 2, &mut v2);
        let mut v1 = Vec::new();
        let n1 = encode_frame_versioned(&frame, 1, &mut v1);
        prop_assert_eq!(n2 - n1, 13);
        let (decoded, _) = decode_frame(&v2).expect("v2 decodes");
        prop_assert_eq!(decoded, frame);
    }

    /// Truncation and corruption detection hold for v1 frames too — the
    /// header checks and CRC are version-independent.
    #[test]
    fn v1_truncation_and_corruption_still_rejected(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        cut_seed in any::<u64>(),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0..8u32,
    ) {
        let frame = Frame::Request { id, trace: TraceCtx::UNTRACED, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame_versioned(&frame, 1, &mut buf);
        let cut = (cut_seed % n as u64) as usize;
        prop_assert!(matches!(
            decode_frame(&buf[..cut]),
            Err(pacsrv::wire::WireError::Incomplete { .. })
        ));
        let pos = (flip_pos_seed % n as u64) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= 1 << flip_bit;
        prop_assert!(
            decode_frame(&bad).is_err(),
            "v1: bit {flip_bit} at byte {pos} went undetected"
        );
    }
}
