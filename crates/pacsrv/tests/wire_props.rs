//! Property tests for the wire codec: round-trip identity, truncation
//! rejection, and single-byte corruption rejection over randomized frames.

use pacsrv::wire::{decode_frame, encode_frame, Frame, Request, Response, HEADER_LEN};
use proptest::collection::vec;
use proptest::prelude::*;

/// Materializes a request list from generated raw tuples.
fn build_requests(raw: Vec<(u8, Vec<u8>, u64)>) -> Vec<Request> {
    raw.into_iter()
        .map(|(op, key, value)| match op % 4 {
            0 => Request::Get { key },
            1 => Request::Put { key, value },
            2 => Request::Delete { key },
            _ => Request::Scan {
                start: key,
                count: (value % 10_000) as u32,
            },
        })
        .collect()
}

/// Materializes a response list from generated raw tuples.
fn build_responses(raw: Vec<(u8, u64, bool)>) -> Vec<Response> {
    raw.into_iter()
        .map(|(tag, v, some)| {
            let opt = if some { Some(v) } else { None };
            match tag % 8 {
                0 => Response::Ok,
                1 => Response::Value(opt),
                2 => Response::Removed(opt),
                3 => Response::ScanCount((v % 100_000) as u32),
                4 => Response::Overloaded,
                5 => Response::DeadlineExceeded,
                6 => Response::Aborted,
                _ => Response::Malformed,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_frames_round_trip(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..40), any::<u64>()), 0..24),
    ) {
        let frame = Frame::Request { id, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        prop_assert_eq!(n, buf.len());
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, n);
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn reply_frames_round_trip(
        id in any::<u64>(),
        raw in vec((any::<u8>(), any::<u64>(), any::<bool>()), 0..48),
    ) {
        let frame = Frame::Reply { id, resps: build_responses(raw) };
        let mut buf = Vec::new();
        encode_frame(&frame, &mut buf);
        let (decoded, consumed) = decode_frame(&buf).expect("round trip");
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_ask_for_more(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        cut_seed in any::<u64>(),
    ) {
        let frame = Frame::Request { id, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let cut = (cut_seed % n as u64) as usize;
        match decode_frame(&buf[..cut]) {
            Err(pacsrv::wire::WireError::Incomplete { need }) => {
                prop_assert!(need > 0);
                // `need` never asks past the true frame end once the
                // header is visible; before that it asks for the header.
                if cut >= HEADER_LEN {
                    prop_assert_eq!(cut + need, n);
                } else {
                    prop_assert_eq!(cut + need, HEADER_LEN);
                }
            }
            other => panic!("truncated frame at {cut}/{n} decoded as {other:?}"),
        }
    }

    #[test]
    fn corrupted_frames_never_decode(
        id in any::<u64>(),
        raw in vec((any::<u8>(), vec(any::<u8>(), 0..24), any::<u64>()), 1..12),
        flip_pos_seed in any::<u64>(),
        flip_bit in 0..8u32,
    ) {
        let frame = Frame::Request { id, reqs: build_requests(raw) };
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        let pos = (flip_pos_seed % n as u64) as usize;
        buf[pos] ^= 1 << flip_bit;
        // A single flipped bit must never yield a successful decode:
        // magic/version/structure checks or the CRC must catch it (a flip
        // that grows the length field parks as Incomplete, which a stream
        // transport treats as "wait for bytes that never come").
        prop_assert!(
            decode_frame(&buf).is_err(),
            "bit {flip_bit} at byte {pos} went undetected"
        );
    }
}
