//! End-to-end multi-version reads through the service layer: the wire v3
//! snapshot operations (`Snapshot`/`ScanAt`/`ReleaseSnapshot`) served by a
//! real PACTree behind `PacService`, plus the version-compatibility story
//! (old clients against a v3 server, unversioned indexes answering the new
//! operations gracefully).

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::MapIndex;
use obsv::trace::TraceCtx;
use pacsrv::wire::{decode_frame, encode_frame_versioned, Frame, Request, Response};
use pacsrv::{PacService, ServiceConfig};
use pactree::{PacTree, PacTreeConfig};

fn put(i: u64) -> Request {
    Request::Put {
        key: i.to_be_bytes().to_vec(),
        value: i,
    }
}

#[test]
fn snapshot_ops_end_to_end_through_service() {
    let tree = PacTree::create(PacTreeConfig::named("pacsrv-mvcc")).expect("create");
    let cfg = ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-mvcc-svc", 2)
    };
    let service = PacService::start(Arc::clone(&tree), cfg);

    for i in 0..100u64 {
        assert_eq!(service.call(put(i)), Response::Ok);
    }
    let snap = match service.call(Request::Snapshot) {
        Response::Snapshot(id) => id,
        other => panic!("expected snapshot id, got {other:?}"),
    };

    // Writes after the capture: more keys, plus deletions of captured ones.
    for i in 100..150u64 {
        assert_eq!(service.call(put(i)), Response::Ok);
    }
    for i in 0..20u64 {
        assert_eq!(
            service.call(Request::Delete {
                key: i.to_be_bytes().to_vec(),
            }),
            Response::Removed(Some(i))
        );
    }

    // The snapshot still sees exactly the 100 captured keys; the live
    // index sees the mutated state (130 keys).
    assert_eq!(
        service.call(Request::ScanAt {
            snap,
            start: Vec::new(),
            count: 1000,
        }),
        Response::ScanCount(100)
    );
    assert_eq!(
        service.call(Request::Scan {
            start: Vec::new(),
            count: 1000,
        }),
        Response::ScanCount(130)
    );
    // A bounded ScanAt respects its count and start key.
    assert_eq!(
        service.call(Request::ScanAt {
            snap,
            start: 90u64.to_be_bytes().to_vec(),
            count: 1000,
        }),
        Response::ScanCount(10)
    );

    // Unknown ids answer UnknownSnapshot, release is idempotent-visible.
    assert_eq!(
        service.call(Request::ScanAt {
            snap: snap + 999,
            start: Vec::new(),
            count: 10,
        }),
        Response::UnknownSnapshot
    );
    assert_eq!(
        service.call(Request::ReleaseSnapshot { snap }),
        Response::Released(true)
    );
    assert_eq!(
        service.call(Request::ReleaseSnapshot { snap }),
        Response::Released(false)
    );
    assert_eq!(
        service.call(Request::ScanAt {
            snap,
            start: Vec::new(),
            count: 10,
        }),
        Response::UnknownSnapshot
    );

    assert!(service.shutdown(Duration::from_secs(10)));
    drop(service);
    tree.destroy();
}

#[test]
fn snapshot_ops_against_unversioned_index_answer_gracefully() {
    let service = PacService::start(
        MapIndex::unversioned(),
        ServiceConfig {
            shards: 1,
            numa_pin: false,
            ..ServiceConfig::named("pacsrv-mvcc-map", 1)
        },
    );
    assert_eq!(service.call(Request::Snapshot), Response::UnknownSnapshot);
    assert_eq!(
        service.call(Request::ScanAt {
            snap: 1,
            start: Vec::new(),
            count: 10,
        }),
        Response::UnknownSnapshot
    );
    assert_eq!(
        service.call(Request::ReleaseSnapshot { snap: 1 }),
        Response::Released(false)
    );
    service.shutdown(Duration::from_secs(5));
}

#[test]
fn old_clients_still_roundtrip_against_a_v3_server() {
    let service = PacService::start(
        MapIndex::unversioned(),
        ServiceConfig {
            shards: 1,
            numa_pin: false,
            ..ServiceConfig::named("pacsrv-mvcc-compat", 1)
        },
    );
    // A v1 and a v2 client each speak their own version end to end: the
    // server must decode the old request AND answer with a frame the old
    // client's decoder (which rejects versions above its own) accepts.
    for version in [1u8, 2, 3] {
        let frame = Frame::Request {
            id: 40 + version as u64,
            trace: TraceCtx::UNTRACED,
            reqs: vec![
                Request::Put {
                    key: vec![version],
                    value: version as u64,
                },
                Request::Get { key: vec![version] },
            ],
        };
        let mut buf = Vec::new();
        encode_frame_versioned(&frame, version, &mut buf);
        let out = service.handle_frame(&buf);
        assert_eq!(
            out[2], version,
            "reply version must match the client's, got v{} for v{version}",
            out[2]
        );
        let (reply, _) = decode_frame(&out).expect("reply decodes");
        assert_eq!(
            reply,
            Frame::Reply {
                id: 40 + version as u64,
                resps: vec![Response::Ok, Response::Value(Some(version as u64))],
            }
        );
    }
    // A v3 client's snapshot ops roundtrip through the same frame path.
    let mut buf = Vec::new();
    encode_frame_versioned(
        &Frame::Request {
            id: 99,
            trace: TraceCtx::UNTRACED,
            reqs: vec![Request::Snapshot, Request::ReleaseSnapshot { snap: 5 }],
        },
        3,
        &mut buf,
    );
    let (reply, _) = decode_frame(&service.handle_frame(&buf)).expect("v3 reply decodes");
    assert_eq!(
        reply,
        Frame::Reply {
            id: 99,
            resps: vec![Response::UnknownSnapshot, Response::Released(false)],
        }
    );
    service.shutdown(Duration::from_secs(5));
}
