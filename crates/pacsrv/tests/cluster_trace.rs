//! Cross-node trace stitching end to end (feature `trace`): a traced
//! request fans across several nodes while a traced migration runs, the
//! per-node span dumps are fetched over the wire (`Stats` frames), and
//! [`obsv::trace::stitch`] reassembles each trace into a single tree —
//! one root, per-endpoint rpc spans, per-node remote brackets, and the
//! four migration phases.
//!
//! Retention is process-global, so tests serialize on a mutex and filter
//! span dumps down to their own trace ids before stitching.

#![cfg(feature = "trace")]

mod common;

use std::collections::BTreeSet;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use common::MapIndex;
use obsv::trace::{self, SpanKind, SpanRecord, TraceOutcome};
use pacsrv::cluster::{ClusterNode, RouterClient, PHASE_BULK, PHASE_DELTA, PHASE_FLIP, PHASE_SEAL};
use pacsrv::wire::{MigrateOp, PartitionMap, Request, Response};
use pacsrv::{PacService, ServiceConfig, TcpClient, TcpServer};

/// Serializes tests that touch the global retained-trace buffer.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

struct Cluster {
    nodes: Vec<Arc<ClusterNode<MapIndex>>>,
    servers: Vec<TcpServer>,
    endpoints: Vec<String>,
}

/// Binds `n` listeners first (so the map can name real ephemeral ports),
/// then attaches one service + cluster node per listener.
fn start_cluster(tag: &str, n: usize) -> Cluster {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let endpoints: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let map = PartitionMap::split_u64(&endpoints);
    let mut nodes = Vec::new();
    let mut servers = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = ServiceConfig {
            shards: 2,
            numa_pin: false,
            ..ServiceConfig::named(&format!("pacsrv-{tag}-{i}"), 2)
        };
        let service = PacService::start(MapIndex::default(), cfg);
        let node = ClusterNode::start(service, &endpoints[i], map.clone()).expect("cluster node");
        servers.push(TcpServer::serve(node.clone(), listener).expect("serve"));
        nodes.push(node);
    }
    Cluster {
        nodes,
        servers,
        endpoints,
    }
}

impl Cluster {
    fn stop(self) {
        for s in self.servers {
            s.stop();
        }
        for n in self.nodes {
            n.service().shutdown(Duration::from_secs(5));
        }
    }
}

/// A key in the first third of the u64 key space (partition 0 of 3).
fn p0_key(i: u64) -> Vec<u8> {
    let stride = u64::MAX / 3;
    (i % stride).to_be_bytes().to_vec()
}

/// A key anywhere in the u64 key space.
fn spread_key(i: u64) -> Vec<u8> {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes().to_vec()
}

/// Fetches every node's span dump over the wire and keeps only `trace_id`'s
/// spans — what `trace-report` does against a live cluster.
fn fetch_parts(endpoints: &[String], trace_id: u64) -> Vec<Vec<SpanRecord>> {
    endpoints
        .iter()
        .map(|ep| {
            let mut c = TcpClient::connect(ep).expect("stats conn");
            let stats = c.stats().expect("stats");
            trace::parse_span_dump(&stats)
                .into_iter()
                .filter(|s| s.trace_id == trace_id)
                .collect()
        })
        .collect()
}

/// Fraction of the root's wall time covered by the union of its direct
/// children's intervals.
fn root_coverage(tr: &trace::RetainedTrace) -> f64 {
    let root = &tr.spans[0];
    let mut ivals: Vec<(u64, u64)> = tr
        .spans
        .iter()
        .filter(|s| s.parent == root.span_id && s.span_id != root.span_id)
        .map(|s| (s.start_ns.max(root.start_ns), s.end_ns.min(root.end_ns)))
        .filter(|(a, b)| a < b)
        .collect();
    ivals.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = root.start_ns;
    for (a, b) in ivals {
        let a = a.max(cursor);
        if b > a {
            covered += b - a;
            cursor = b;
        }
    }
    if tr.root_ns == 0 {
        1.0
    } else {
        covered as f64 / tr.root_ns as f64
    }
}

#[test]
fn traced_fanout_during_migration_stitches_to_single_trees() {
    let _g = TRACE_LOCK.lock().unwrap();
    trace::set_keep_threshold_ns(0);
    trace::clear_retained();

    let cluster = start_cluster("trace", 3);
    let endpoints = cluster.endpoints.clone();
    let mut router = RouterClient::connect(&endpoints[..1]).expect("router");

    // Preload partition 0 so the migration has chunks to copy.
    let preload: Vec<Request> = (0..64)
        .map(|i| Request::Put {
            key: p0_key(i),
            value: i,
        })
        .collect();
    assert!(router
        .call(preload)
        .expect("preload")
        .iter()
        .all(|r| *r == Response::Ok));

    // Widen the migration window so the traced fan-out overlaps it.
    cluster.nodes[0].set_migration_hook(|_phase| std::thread::sleep(Duration::from_millis(1)));

    // Traced migration, driven the way `trace-report` drives one: stamp a
    // forced ctx, forward it to the source node (ordinal 1), and mint the
    // controller-side root once the Start call returns.
    let mig_target = endpoints[1].clone();
    let mig_ep = endpoints[0].clone();
    let mig = std::thread::spawn(move || {
        let mut ctl = TcpClient::connect(&mig_ep).expect("ctl conn");
        let mctx = trace::stamp_forced();
        ctl.set_trace(mctx.forwarded_to(1));
        let t0 = obsv::clock::now_ns();
        let (ok, detail) = ctl
            .migrate(MigrateOp::Start {
                partition: 0,
                target: mig_target,
            })
            .expect("migrate rpc");
        trace::finish_root(mctx, t0, TraceOutcome::Ok);
        (ok, detail, mctx.trace_id)
    });

    // Traced request fanning across all three partitions mid-migration.
    let rctx = trace::stamp_forced();
    router.set_trace(rctx);
    let reqs: Vec<Request> = (100..140)
        .map(|i| Request::Put {
            key: spread_key(i),
            value: i,
        })
        .collect();
    let resps = router.call(reqs).expect("traced fan-out");
    assert!(resps.iter().all(|r| *r == Response::Ok), "{resps:?}");

    let (mig_ok, mig_detail, mig_trace_id) = mig.join().expect("migration thread");
    assert!(mig_ok, "migration failed: {mig_detail}");

    // Stitch the request trace from the per-node wire dumps.
    let parts = fetch_parts(&endpoints, rctx.trace_id);
    assert!(parts.iter().any(|p| !p.is_empty()), "no spans dumped");
    let tree = trace::stitch(rctx.trace_id, &parts).expect("stitch request trace");
    assert_eq!(tree.spans[0].kind, SpanKind::Root);

    // The fan-out names at least two distinct endpoints, and at least two
    // node-side remote fragments came back under the same trace id.
    let rpc_eps: BTreeSet<u32> = tree
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::RpcCall)
        .map(|s| s.detail)
        .collect();
    assert!(rpc_eps.len() >= 2, "rpc endpoints: {rpc_eps:?}");
    let remote_nodes: BTreeSet<u32> = tree
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Remote)
        .map(|s| s.detail)
        .collect();
    assert!(remote_nodes.len() >= 2, "remote nodes: {remote_nodes:?}");

    // The root's direct children account for >= 90% of its wall time.
    let coverage = root_coverage(&tree);
    assert!(coverage >= 0.90, "root coverage {coverage:.3} < 0.90");

    // Stitch the migration trace: all four phases under one root.
    let mparts = fetch_parts(&endpoints, mig_trace_id);
    let mtree = trace::stitch(mig_trace_id, &mparts).expect("stitch migration trace");
    assert_eq!(mtree.spans[0].kind, SpanKind::Root);
    let phases: BTreeSet<u32> = mtree
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::MigratePhase)
        .map(|s| s.detail)
        .collect();
    for want in [PHASE_BULK, PHASE_DELTA, PHASE_SEAL, PHASE_FLIP] {
        assert!(
            phases.contains(&(want as u32)),
            "phase {want} missing from {phases:?}"
        );
    }

    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
    cluster.stop();
}

#[test]
fn bounce_resend_keeps_the_original_trace() {
    let _g = TRACE_LOCK.lock().unwrap();
    trace::set_keep_threshold_ns(0);
    trace::clear_retained();

    let cluster = start_cluster("bounce", 3);
    let endpoints = cluster.endpoints.clone();

    // Connect the router first so its cached map predates the migration.
    let mut router = RouterClient::connect(&endpoints[..1]).expect("router");
    let mut ctl = TcpClient::connect(&endpoints[0]).expect("ctl");
    let (ok, detail) = ctl
        .migrate(MigrateOp::Start {
            partition: 0,
            target: endpoints[1].clone(),
        })
        .expect("migrate rpc");
    assert!(ok, "{detail}");

    // First traced send hits the stale owner, bounces, refreshes, resends —
    // all under the one original trace id (satellite: bounce continuity).
    let ctx = trace::stamp_forced();
    router.set_trace(ctx);
    let resps = router
        .call(vec![Request::Put {
            key: p0_key(7),
            value: 7,
        }])
        .expect("bounced call");
    assert_eq!(resps, vec![Response::Ok]);

    let parts = fetch_parts(&endpoints, ctx.trace_id);
    let tree = trace::stitch(ctx.trace_id, &parts).expect("stitch bounced trace");
    let kinds: Vec<SpanKind> = tree.spans.iter().map(|s| s.kind).collect();
    assert!(
        kinds.contains(&SpanKind::BounceResend),
        "no bounce span: {kinds:?}"
    );
    assert!(
        kinds.contains(&SpanKind::MapRefresh),
        "no map-refresh span: {kinds:?}"
    );
    assert!(
        kinds.contains(&SpanKind::Remote),
        "no node fragment: {kinds:?}"
    );

    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
    cluster.stop();
}

#[test]
fn stitch_rejects_spans_from_another_trace() {
    let mine = SpanRecord {
        trace_id: 7,
        span_id: 1,
        parent: 0,
        kind: SpanKind::Root,
        detail: 0,
        tid: 0,
        start_ns: 10,
        end_ns: 90,
        stall_ns: [0; trace::STALL_KINDS],
    };
    let foreign = SpanRecord {
        trace_id: 8,
        span_id: 2,
        parent: 1,
        kind: SpanKind::RpcCall,
        detail: 1,
        tid: 0,
        start_ns: 20,
        end_ns: 30,
        stall_ns: [0; trace::STALL_KINDS],
    };
    let err = trace::stitch(7, &[vec![mine, foreign]]).expect_err("must reject");
    assert!(err.contains("trace 8"), "{err}");

    // And a dump with no (or several) roots is rejected too.
    let orphan = SpanRecord {
        kind: SpanKind::RpcCall,
        ..mine
    };
    let err = trace::stitch(7, &[vec![orphan]]).expect_err("no root");
    assert!(err.contains("root"), "{err}");
}
