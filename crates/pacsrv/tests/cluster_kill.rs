//! Crash-and-recover through the *cluster* boundary: live migration with a
//! mid-flight kill, checked by the durable-linearizability oracle.
//!
//! Two scenarios bracket the migration's commit point (the target acking
//! `ImportEnd`):
//!
//! * **Kill before the flip** — the source dies mid-bulk-copy. The map
//!   still names the source, so the recovered source must hold every
//!   write it acked (including writes acked *during* the frozen
//!   migration); the target's partial copy is fenced garbage.
//! * **Kill after the flip** — the target dies right after taking
//!   ownership. The recovered target must hold every migrated pair and
//!   every post-flip write it acked.

mod common;

use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::MapIndex;
use crashcheck::journal::Expectation;
use crashcheck::{adapter, oracle, IndexKind};
use pacsrv::cluster::{ClusterNode, PHASE_BULK};
use pacsrv::wire::{PartitionMap, Request, Response};
use pacsrv::{PacService, ServiceConfig, TcpClient, TcpServer};
use pactree::tree::{PacTree, PacTreeConfig};
use pmem::crash::{crash_all, evict_random_lines};
use pmem::AllocMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOL_SIZE: usize = 48 << 20;

fn crash_sim_config(name: &str) -> PacTreeConfig {
    PacTreeConfig {
        crash_sim: true,
        alloc_mode: AllocMode::CrashConsistent,
        ..PacTreeConfig::named(name)
    }
    .with_pool_size(POOL_SIZE)
    .with_numa_pools(1)
    .with_async_smo(false)
}

fn service_cfg(name: &str) -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named(name, 2)
    }
}

/// Acks `keys` through `client` in batches and records them as strict
/// oracle expectations (`value = key * 10 + 1`).
fn ack_puts(client: &mut TcpClient, keys: impl Iterator<Item = u64>, expect: &mut Expectation) {
    let keys: Vec<u64> = keys.collect();
    for chunk in keys.chunks(64) {
        let reqs: Vec<Request> = chunk
            .iter()
            .map(|k| Request::Put {
                key: k.to_be_bytes().to_vec(),
                value: k * 10 + 1,
            })
            .collect();
        let resps = client.call(reqs).expect("put batch");
        for (k, resp) in chunk.iter().zip(resps) {
            assert_eq!(resp, Response::Ok, "acked put {k} failed");
            expect.strict.insert(*k, Some(k * 10 + 1));
            expect.allowed.insert(*k, vec![Some(k * 10 + 1)]);
        }
    }
}

#[test]
fn mid_migration_source_kill_loses_no_acked_writes() {
    let name = "paccluster-kill-src";
    let tree = PacTree::create(crash_sim_config(name)).expect("create pactree");
    let pools = tree.pools();

    // Two nodes: the source serves the PACTree on crash-sim pools, the
    // target is a throwaway in-memory index (only the source crashes).
    let src_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let dst_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoints = vec![
        src_listener.local_addr().expect("addr").to_string(),
        dst_listener.local_addr().expect("addr").to_string(),
    ];
    let map = PartitionMap::split_u64(&endpoints);

    let src_service = PacService::start(Arc::clone(&tree), service_cfg("paccluster-kill-src-svc"));
    let src_node =
        ClusterNode::start(src_service.clone(), &endpoints[0], map.clone()).expect("src node");
    let src_server = TcpServer::serve(src_node.clone(), src_listener).expect("serve src");

    let dst_service =
        PacService::start(MapIndex::default(), service_cfg("paccluster-kill-dst-svc"));
    let dst_node = ClusterNode::start(dst_service.clone(), &endpoints[1], map).expect("dst node");
    let dst_server = TcpServer::serve(dst_node, dst_listener).expect("serve dst");

    // Phase 1: acked writes into partition 0 (all of 0..1500 sits in the
    // lower half of the u64 space, i.e. on the source).
    let mut expect = Expectation::default();
    let mut client = TcpClient::connect(endpoints[0].as_str()).expect("connect src");
    ack_puts(&mut client, 0..1500u64, &mut expect);

    // Freeze the migration after its first bulk chunk: the hook parks the
    // migration thread forever, leaving the handoff half-done.
    let frozen = Arc::new(AtomicBool::new(false));
    let bulk_fires = Arc::new(AtomicU64::new(0));
    {
        let frozen = frozen.clone();
        let bulk_fires = bulk_fires.clone();
        src_node.set_migration_hook(move |phase| {
            if phase == PHASE_BULK && bulk_fires.fetch_add(1, Ordering::AcqRel) + 1 == 2 {
                frozen.store(true, Ordering::Release);
                loop {
                    std::thread::park();
                }
            }
        });
    }
    let mig_node = src_node.clone();
    let mig_target = endpoints[1].clone();
    // Leaked on purpose: it is parked inside the hook and never touches
    // the crashed memory again.
    std::thread::spawn(move || {
        let _ = mig_node.migrate_out(0, &mig_target);
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    while !frozen.load(Ordering::Acquire) {
        assert!(Instant::now() < deadline, "migration never reached bulk");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Phase 2: writes acked *while the migration is mid-bulk* — the
    // partition is not sealed, the source still owns it.
    ack_puts(&mut client, 2000..2200u64, &mut expect);

    // Phase 3: in-flight writes the kill races.
    let mut inflight = Vec::new();
    for key in 3000..3064u64 {
        inflight.push(src_service.submit(
            vec![Request::Put {
                key: key.to_be_bytes().to_vec(),
                value: key * 10 + 1,
            }],
            None,
        ));
        expect.allowed.insert(key, vec![None, Some(key * 10 + 1)]);
    }

    // Abrupt source death mid-migration.
    src_service.kill();
    for rs in inflight {
        assert!(rs.is_done(), "kill left an in-flight slot unanswered");
        for resp in rs.wait() {
            assert!(
                matches!(resp, Response::Ok | Response::Aborted),
                "unexpected in-flight reply: {resp:?}"
            );
        }
    }
    drop(client);
    src_server.stop();
    dst_server.stop();
    dst_service.shutdown(Duration::from_secs(5));
    drop(src_node);
    drop(src_service);
    drop(tree);

    // Simulated power loss on the source's media.
    let mut rng = StdRng::seed_from_u64(0x9ac7);
    for p in &pools {
        evict_random_lines(p, (p.size() / pmem::CACHE_LINE) * 4, &mut rng);
    }
    crash_all(&pools, false);

    // The map never flipped (the migration died pre-commit), so the
    // recovered source must hold every acked write.
    let recovered = IndexKind::PacTree
        .recover(name, POOL_SIZE)
        .expect("recover pactree");
    recovered.quiesce();
    if let Err(v) = oracle::check(recovered.as_ref(), &expect) {
        panic!("durable-linearizability violation after mid-migration kill: {v:?}");
    }
    for key in (0..1500u64).chain(2000..2200) {
        assert_eq!(recovered.lookup(key), Some(key * 10 + 1), "key {key}");
    }
    adapter::destroy_pools(&recovered.pools());
}

#[test]
fn post_flip_target_kill_keeps_migrated_pairs() {
    let name = "paccluster-flip-dst";
    let tree = PacTree::create(crash_sim_config(name)).expect("create pactree");
    let pools = tree.pools();

    // The source is in-memory this time; the PACTree is the migration
    // *target* and it is the one that crashes — after the flip.
    let src_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let dst_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let endpoints = vec![
        src_listener.local_addr().expect("addr").to_string(),
        dst_listener.local_addr().expect("addr").to_string(),
    ];
    let map = PartitionMap::split_u64(&endpoints);

    let src_service =
        PacService::start(MapIndex::default(), service_cfg("paccluster-flip-src-svc"));
    let src_node =
        ClusterNode::start(src_service.clone(), &endpoints[0], map.clone()).expect("src node");
    let src_server = TcpServer::serve(src_node.clone(), src_listener).expect("serve src");

    let dst_service = PacService::start(Arc::clone(&tree), service_cfg("paccluster-flip-dst-svc"));
    let dst_node = ClusterNode::start(dst_service.clone(), &endpoints[1], map).expect("dst node");
    let dst_server = TcpServer::serve(dst_node.clone(), dst_listener).expect("serve dst");

    // Acked writes into partition 0 on the source; after the migration
    // these must live durably on the target.
    let mut expect = Expectation::default();
    let mut client = TcpClient::connect(endpoints[0].as_str()).expect("connect src");
    ack_puts(&mut client, 0..800u64, &mut expect);

    let report = src_node.migrate_out(0, &endpoints[1]).expect("migration");
    assert_eq!(report.new_epoch, 2);
    assert_eq!(report.moved_pairs, 800);
    assert_eq!(dst_node.map_epoch(), 2);

    // Post-flip acked writes land on the target (the new owner).
    let mut dst_client = TcpClient::connect(endpoints[1].as_str()).expect("connect dst");
    ack_puts(&mut dst_client, 800..900u64, &mut expect);

    // Kill the new owner and crash its media.
    dst_service.kill();
    drop(client);
    drop(dst_client);
    src_server.stop();
    dst_server.stop();
    src_service.shutdown(Duration::from_secs(5));
    drop(dst_node);
    drop(dst_service);
    drop(tree);

    let mut rng = StdRng::seed_from_u64(0x9ac8);
    for p in &pools {
        evict_random_lines(p, (p.size() / pmem::CACHE_LINE) * 4, &mut rng);
    }
    crash_all(&pools, false);

    let recovered = IndexKind::PacTree
        .recover(name, POOL_SIZE)
        .expect("recover pactree");
    recovered.quiesce();
    if let Err(v) = oracle::check(recovered.as_ref(), &expect) {
        panic!("durable-linearizability violation after post-flip kill: {v:?}");
    }
    for key in 0..900u64 {
        assert_eq!(recovered.lookup(key), Some(key * 10 + 1), "key {key}");
    }
    adapter::destroy_pools(&recovered.pools());
}
