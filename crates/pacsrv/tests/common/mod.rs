//! Shared fixtures for the pacsrv integration tests.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use ycsb::RangeIndex;

/// An in-memory index with an optional artificial per-op delay, so tests
/// can dial in an exact sustainable service rate. Snapshots are clones of
/// the whole map — O(n), fine for tests — which gives the cluster tests a
/// full MVCC surface (`scan_pairs_at` / `diff_pairs`) without persistent
/// memory pools.
type SnapStore = Arc<Mutex<HashMap<u64, BTreeMap<Vec<u8>, u64>>>>;

#[derive(Clone)]
pub struct MapIndex {
    map: Arc<RwLock<BTreeMap<Vec<u8>, u64>>>,
    snaps: SnapStore,
    next_snap: Arc<AtomicU64>,
    pub op_delay: Option<Duration>,
    /// When false, the snapshot methods keep the trait's "unsupported"
    /// defaults — for the tests that cover graceful degradation on
    /// unversioned indexes.
    pub versioned: bool,
}

impl Default for MapIndex {
    fn default() -> MapIndex {
        MapIndex {
            map: Arc::default(),
            snaps: Arc::default(),
            next_snap: Arc::default(),
            op_delay: None,
            versioned: true,
        }
    }
}

// Each integration test compiles its own copy of this module; not all of
// them use every constructor.
#[allow(dead_code)]
impl MapIndex {
    pub fn slow(op_delay: Duration) -> MapIndex {
        MapIndex {
            op_delay: Some(op_delay),
            ..MapIndex::default()
        }
    }

    pub fn unversioned() -> MapIndex {
        MapIndex {
            versioned: false,
            ..MapIndex::default()
        }
    }

    fn dally(&self) {
        if let Some(d) = self.op_delay {
            std::thread::sleep(d);
        }
    }
}

impl RangeIndex for MapIndex {
    fn name(&self) -> &'static str {
        "map"
    }
    fn insert(&self, key: &[u8], value: u64) {
        self.dally();
        self.map.write().unwrap().insert(key.to_vec(), value);
    }
    fn lookup(&self, key: &[u8]) -> Option<u64> {
        self.dally();
        self.map.read().unwrap().get(key).copied()
    }
    fn remove(&self, key: &[u8]) -> Option<u64> {
        self.dally();
        self.map.write().unwrap().remove(key)
    }
    fn scan(&self, start: &[u8], count: usize) -> usize {
        self.dally();
        self.map
            .read()
            .unwrap()
            .range(start.to_vec()..)
            .take(count)
            .count()
    }

    fn snapshot(&self) -> Option<u64> {
        if !self.versioned {
            return None;
        }
        let id = self.next_snap.fetch_add(1, Ordering::Relaxed) + 1;
        let frozen = self.map.read().unwrap().clone();
        self.snaps.lock().unwrap().insert(id, frozen);
        Some(id)
    }

    fn release_snapshot(&self, snap: u64) -> bool {
        self.snaps.lock().unwrap().remove(&snap).is_some()
    }

    fn scan_at(&self, snap: u64, start: &[u8], count: usize) -> Option<usize> {
        self.scan_pairs_at(snap, start, count).map(|p| p.len())
    }

    fn scan_pairs_at(&self, snap: u64, start: &[u8], count: usize) -> Option<Vec<(Vec<u8>, u64)>> {
        let snaps = self.snaps.lock().unwrap();
        let frozen = snaps.get(&snap)?;
        Some(
            frozen
                .range(start.to_vec()..)
                .take(count)
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        )
    }

    fn diff_pairs(&self, a: u64, b: u64) -> Option<Vec<ycsb::index::DiffPair>> {
        let snaps = self.snaps.lock().unwrap();
        let old = snaps.get(&a)?;
        let new = snaps.get(&b)?;
        let mut out = Vec::new();
        for (k, v) in new {
            match old.get(k) {
                None => out.push((k.clone(), None, Some(*v))),
                Some(ov) if ov != v => out.push((k.clone(), Some(*ov), Some(*v))),
                Some(_) => {}
            }
        }
        for (k, v) in old {
            if !new.contains_key(k) {
                out.push((k.clone(), Some(*v), None));
            }
        }
        out.sort_by(|x, y| x.0.cmp(&y.0));
        Some(out)
    }
}
