//! Shared fixtures for the pacsrv integration tests.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use ycsb::RangeIndex;

/// An in-memory index with an optional artificial per-op delay, so tests
/// can dial in an exact sustainable service rate.
#[derive(Clone, Default)]
pub struct MapIndex {
    map: Arc<RwLock<BTreeMap<Vec<u8>, u64>>>,
    pub op_delay: Option<Duration>,
}

impl MapIndex {
    // Each integration test compiles its own copy of this module; not all
    // of them use the delayed constructor.
    #[allow(dead_code)]
    pub fn slow(op_delay: Duration) -> MapIndex {
        MapIndex {
            map: Arc::default(),
            op_delay: Some(op_delay),
        }
    }

    fn dally(&self) {
        if let Some(d) = self.op_delay {
            std::thread::sleep(d);
        }
    }
}

impl RangeIndex for MapIndex {
    fn name(&self) -> &'static str {
        "map"
    }
    fn insert(&self, key: &[u8], value: u64) {
        self.dally();
        self.map.write().unwrap().insert(key.to_vec(), value);
    }
    fn lookup(&self, key: &[u8]) -> Option<u64> {
        self.dally();
        self.map.read().unwrap().get(key).copied()
    }
    fn remove(&self, key: &[u8]) -> Option<u64> {
        self.dally();
        self.map.write().unwrap().remove(key)
    }
    fn scan(&self, start: &[u8], count: usize) -> usize {
        self.dally();
        self.map
            .read()
            .unwrap()
            .range(start.to_vec()..)
            .take(count)
            .count()
    }
}
