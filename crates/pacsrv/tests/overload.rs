//! Backpressure under 2x sustainable load.
//!
//! The index is rate-limited by an artificial per-op delay, so the
//! sustainable throughput is known exactly; the test drives twice that in
//! open loop and asserts the service sheds explicitly (`Overloaded`),
//! keeps its queues bounded, and completes everything it admitted.

mod common;

use std::time::{Duration, Instant};

use common::MapIndex;
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};

#[test]
fn overload_sheds_and_stays_bounded() {
    // 2 shards x (1 op / 500us) = ~4000 ops/s sustainable.
    let index = MapIndex::slow(Duration::from_micros(500));
    let cfg = ServiceConfig {
        shards: 2,
        queue_capacity: 64,
        batch_max: 16,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-overload", 2)
    };
    let capacity_bound = cfg.shards * cfg.queue_capacity;
    let service = PacService::start(index, cfg);

    // Open loop at ~2x sustainable for one second: submit without waiting.
    let target_ops = 8_000u64;
    let interval = Duration::from_secs(1).div_f64(target_ops as f64);
    let started = Instant::now();
    let mut pending = Vec::new();
    let mut max_depth = 0usize;
    for i in 0..target_ops {
        let key = (i % 1024).to_be_bytes().to_vec();
        pending.push(service.submit(vec![Request::Put { key, value: i }], None));
        max_depth = max_depth.max(service.queue_depth());
        // Pace the open loop; fall behind silently if submission is slow.
        let due = interval * (i as u32 + 1);
        if let Some(sleep) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(sleep);
        }
    }

    let mut shed = 0u64;
    let mut done = 0u64;
    for rs in pending {
        for resp in rs.wait() {
            match resp {
                Response::Ok => done += 1,
                Response::Overloaded => shed += 1,
                other => panic!("unexpected reply under overload: {other:?}"),
            }
        }
    }

    // Every submission was answered one way or the other.
    assert_eq!(shed + done, target_ops);
    // 2x load must shed a real fraction, and must not shed everything.
    assert!(shed > target_ops / 20, "expected real shedding, got {shed}");
    assert!(done > target_ops / 20, "expected real progress, got {done}");
    // Bounded queues: depth never exceeded shards * capacity.
    assert!(
        max_depth <= capacity_bound,
        "queue depth {max_depth} exceeded bound {capacity_bound}"
    );
    // Metrics agree with the replies we counted.
    let m = service.metrics();
    assert_eq!(m.shed.load(std::sync::atomic::Ordering::Relaxed), shed);
    assert_eq!(m.completed.load(std::sync::atomic::Ordering::Relaxed), done);
    assert!(m.shed_rate() > 0.0);

    // The service recovers once load stops: a fresh call succeeds.
    assert!(matches!(
        service.call(Request::Get {
            key: 0u64.to_be_bytes().to_vec()
        }),
        Response::Value(_)
    ));
    assert!(service.shutdown(Duration::from_secs(5)));
}

#[test]
fn ingress_bucket_sheds_at_rate_limit() {
    // Fast index, tight ingress rate: the bucket (not the queues) sheds.
    let index = MapIndex::default();
    let cfg = ServiceConfig {
        shards: 2,
        queue_capacity: 4096,
        ingress_rate: Some(1),
        ingress_burst: 100,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-bucket-overload", 2)
    };
    let service = PacService::start(index, cfg);

    let mut pending = Vec::new();
    for i in 0..1_000u64 {
        let key = i.to_be_bytes().to_vec();
        pending.push(service.submit(vec![Request::Put { key, value: i }], None));
    }
    let mut shed = 0u64;
    let mut done = 0u64;
    for rs in pending {
        for resp in rs.wait() {
            match resp {
                Response::Ok => done += 1,
                Response::Overloaded => shed += 1,
                other => panic!("unexpected reply: {other:?}"),
            }
        }
    }
    // Burst of 100 admits ~100; a 1 op/s refill admits at most a handful
    // more over the test's runtime.
    assert!(done >= 100, "burst should admit at least 100, got {done}");
    assert!(done <= 150, "rate limit leaked: {done} admitted");
    assert_eq!(shed + done, 1_000);
    assert!(service.shutdown(Duration::from_secs(5)));
}
