//! End-to-end trace test (feature `trace`): a sampled request submitted
//! through [`PacService`] leaves a retained trace whose span tree covers
//! admission -> queue sojourn -> batch drain -> per-op index execution, and
//! tail sampling keeps only slow/errored traces.
//!
//! Runs single-threaded per test binary: retention is process-global, so
//! these tests serialize on a mutex and work with their own trace ids.

#![cfg(feature = "trace")]

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::MapIndex;
use obsv::trace::{self, SpanKind, TraceOutcome};
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};

/// Serializes tests that touch the global retained-trace buffer.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn spans_of_kind(tr: &trace::RetainedTrace, kind: SpanKind) -> usize {
    tr.spans.iter().filter(|s| s.kind == kind).count()
}

#[test]
fn sampled_request_retains_full_span_tree() {
    let _g = TRACE_LOCK.lock().unwrap();
    // Keep everything: threshold 0 retains every finished sampled trace.
    trace::set_keep_threshold_ns(0);
    trace::clear_retained();

    let svc = PacService::start(
        MapIndex::default(),
        ServiceConfig {
            shards: 2,
            numa_pin: false,
            ..ServiceConfig::named("trace-e2e", 2)
        },
    );
    let ctx = trace::stamp_forced();
    assert!(ctx.is_sampled());
    let reqs = vec![
        Request::Put {
            key: b"t1".to_vec(),
            value: 1,
        },
        Request::Get {
            key: b"t1".to_vec(),
        },
        Request::Scan {
            start: b"t".to_vec(),
            count: 8,
        },
    ];
    let resps = svc.submit_traced(reqs, None, ctx).wait();
    assert_eq!(resps[0], Response::Ok);

    let retained = trace::take_retained();
    let tr = retained
        .iter()
        .find(|t| t.trace_id == ctx.trace_id)
        .expect("trace retained at threshold 0");
    assert_eq!(tr.outcome, TraceOutcome::Ok);
    // Root + admission once, queue/batch/index-op once per operation.
    assert_eq!(spans_of_kind(tr, SpanKind::Root), 1, "{tr:?}");
    assert_eq!(spans_of_kind(tr, SpanKind::Admission), 1, "{tr:?}");
    assert_eq!(spans_of_kind(tr, SpanKind::Queue), 3, "{tr:?}");
    assert_eq!(spans_of_kind(tr, SpanKind::Batch), 3, "{tr:?}");
    assert_eq!(spans_of_kind(tr, SpanKind::IndexOp), 3, "{tr:?}");
    // Every span fits inside the root window and parents to the trace.
    let root = &tr.spans[0];
    assert_eq!(root.kind, SpanKind::Root);
    for s in &tr.spans[1..] {
        assert!(s.start_ns >= root.start_ns, "{s:?} starts before root");
        assert!(s.end_ns <= root.end_ns, "{s:?} ends after root");
        assert_eq!(s.trace_id, ctx.trace_id);
        assert_eq!(s.parent, root.span_id, "{s:?} not parented to root");
    }
    assert_eq!(tr.root_ns, root.end_ns - root.start_ns);

    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
    assert!(svc.shutdown(Duration::from_secs(5)));
}

#[test]
fn fast_ok_traces_are_dropped_by_tail_sampling() {
    let _g = TRACE_LOCK.lock().unwrap();
    // An hour-long threshold: nothing in this test is slow enough to keep.
    trace::set_keep_threshold_ns(3_600_000_000_000);
    trace::clear_retained();

    let svc = PacService::start(
        MapIndex::default(),
        ServiceConfig {
            shards: 1,
            numa_pin: false,
            ..ServiceConfig::named("trace-tail", 1)
        },
    );
    let ctx = trace::stamp_forced();
    let resps = svc
        .submit_traced(
            vec![Request::Put {
                key: b"f".to_vec(),
                value: 9,
            }],
            None,
            ctx,
        )
        .wait();
    assert_eq!(resps, vec![Response::Ok]);
    assert!(
        !trace::retained_traces()
            .iter()
            .any(|t| t.trace_id == ctx.trace_id),
        "fast Ok trace must be tail-dropped"
    );

    // ...but an errored trace is kept regardless of latency: shut down and
    // submit again, which sheds with Overloaded.
    assert!(svc.shutdown(Duration::from_secs(5)));
    let ctx2 = trace::stamp_forced();
    let resps = svc
        .submit_traced(vec![Request::Get { key: b"f".to_vec() }], None, ctx2)
        .wait();
    assert_eq!(resps, vec![Response::Overloaded]);
    let retained = trace::take_retained();
    let tr = retained
        .iter()
        .find(|t| t.trace_id == ctx2.trace_id)
        .expect("errored trace kept despite fast root");
    assert_eq!(tr.outcome, TraceOutcome::Overloaded);
    // The shed path still records the admission span.
    assert_eq!(spans_of_kind(tr, SpanKind::Admission), 1, "{tr:?}");
    assert_eq!(spans_of_kind(tr, SpanKind::IndexOp), 0, "{tr:?}");

    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
}

#[test]
fn index_stalls_attribute_to_the_op_span() {
    let _g = TRACE_LOCK.lock().unwrap();
    trace::set_keep_threshold_ns(0);
    trace::clear_retained();

    let svc = PacService::start(
        MapIndex::default(),
        ServiceConfig {
            shards: 1,
            numa_pin: false,
            ..ServiceConfig::named("trace-stall", 1)
        },
    );
    // Prime the key so the traced op takes the in-place-update path.
    svc.call(Request::Put {
        key: b"s".to_vec(),
        value: 1,
    });
    let ctx = trace::stamp_forced();
    let resps = svc
        .submit_traced(
            vec![Request::Put {
                key: b"s".to_vec(),
                value: 2,
            }],
            None,
            ctx,
        )
        .wait();
    assert_eq!(resps, vec![Response::Ok]);
    let retained = trace::take_retained();
    let tr = retained
        .iter()
        .find(|t| t.trace_id == ctx.trace_id)
        .expect("retained");
    // MapIndex never touches pmem, so stall totals must be zero — the
    // accumulators exist but nothing feeds them. (Nonzero attribution is
    // exercised by trace-report against the real indexes.)
    assert_eq!(tr.stall_totals(), [0u64; trace::STALL_KINDS]);

    trace::set_keep_threshold_ns(trace::DEFAULT_KEEP_THRESHOLD_NS);
    assert!(svc.shutdown(Duration::from_secs(5)));
}
