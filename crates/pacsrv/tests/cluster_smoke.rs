//! Three-node cluster end to end: smart routing, live migration with
//! concurrent writers, epoch convergence, pre-v4 downgrades, and the
//! transparent read-reconnect satellite.

mod common;

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use common::MapIndex;
use pacsrv::cluster::{ClusterNode, RouterClient, PHASE_BULK};
use pacsrv::wire::{decode_frame, MigrateOp, PartitionMap, Request, Response, WireError};
use pacsrv::{PacService, ServiceConfig, TcpClient, TcpServer};
use ycsb::RangeIndex;

struct Cluster {
    nodes: Vec<Arc<ClusterNode<MapIndex>>>,
    servers: Vec<TcpServer>,
    endpoints: Vec<String>,
}

/// Binds `n` listeners first (so the map can name real ephemeral ports),
/// then attaches one service + cluster node per listener.
fn start_cluster(tag: &str, n: usize) -> Cluster {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let endpoints: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").to_string())
        .collect();
    let map = PartitionMap::split_u64(&endpoints);
    let mut nodes = Vec::new();
    let mut servers = Vec::new();
    for (i, listener) in listeners.into_iter().enumerate() {
        let cfg = ServiceConfig {
            shards: 2,
            numa_pin: false,
            ..ServiceConfig::named(&format!("pacsrv-{tag}-{i}"), 2)
        };
        let service = PacService::start(MapIndex::default(), cfg);
        let node = ClusterNode::start(service, &endpoints[i], map.clone()).expect("cluster node");
        servers.push(TcpServer::serve(node.clone(), listener).expect("serve"));
        nodes.push(node);
    }
    Cluster {
        nodes,
        servers,
        endpoints,
    }
}

impl Cluster {
    fn stop(self) {
        for s in self.servers {
            s.stop();
        }
        for n in self.nodes {
            n.service().shutdown(Duration::from_secs(5));
        }
    }
}

/// A key in the first third of the u64 key space (partition 0 of 3).
fn p0_key(i: u64) -> Vec<u8> {
    let stride = u64::MAX / 3;
    (i % stride).to_be_bytes().to_vec()
}

/// A key anywhere in the u64 key space.
fn spread_key(i: u64) -> Vec<u8> {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes().to_vec()
}

#[test]
fn router_routes_across_partitions() {
    let cluster = start_cluster("route", 3);
    let mut router = RouterClient::connect(&cluster.endpoints[..1]).expect("router");
    assert_eq!(router.map_epoch(), 1);

    // One batch mixing all three partitions: the router splits it, the
    // replies come back in request order.
    let reqs: Vec<Request> = (0..60u64)
        .map(|i| Request::Put {
            key: spread_key(i),
            value: i,
        })
        .collect();
    let resps = router.call(reqs).expect("puts");
    assert!(resps.iter().all(|r| *r == Response::Ok));
    for i in 0..60u64 {
        let resps = router
            .call(vec![Request::Get { key: spread_key(i) }])
            .expect("get");
        assert_eq!(resps, vec![Response::Value(Some(i))], "key {i}");
    }
    // A fresh map never bounces.
    assert_eq!(router.wrong_partition_seen(), 0);
    assert_eq!(router.refreshes(), 0);

    // Cross-partition range scan: all 60 pairs, starting from the empty key.
    assert_eq!(router.scan(&[], 1000).expect("scan"), 60);

    cluster.stop();
}

#[test]
fn live_migration_with_concurrent_writers_loses_nothing() {
    let cluster = start_cluster("migrate", 3);
    let seeds = cluster.endpoints.clone();
    let mut router = RouterClient::connect(&seeds).expect("router");

    // Preload partition 0 (and some spread keys for realism).
    let preload: Vec<Request> = (0..400u64)
        .map(|i| Request::Put {
            key: p0_key(i * 7919),
            value: i,
        })
        .collect();
    assert!(router
        .call(preload)
        .expect("preload")
        .iter()
        .all(|r| *r == Response::Ok));

    // Move partition 0 from node 0 to node 1 while a writer hammers it.
    let src = cluster.endpoints[0].clone();
    let target = cluster.endpoints[1].clone();
    let mig = std::thread::spawn(move || {
        let mut ctl = TcpClient::connect(src.as_str()).expect("ctl connect");
        ctl.migrate(MigrateOp::Start {
            partition: 0,
            target,
        })
        .expect("migrate rpc")
    });
    let writer_seeds = seeds.clone();
    let writer = std::thread::spawn(move || {
        let mut w = RouterClient::connect(&writer_seeds).expect("writer router");
        let mut acked = Vec::new();
        for i in 0..300u64 {
            let key = p0_key(1_000_000 + i * 131);
            match w.call(vec![Request::Put {
                key: key.clone(),
                value: i,
            }]) {
                Ok(resps) if resps == vec![Response::Ok] => acked.push((key, i)),
                other => panic!("write not acked: {other:?}"),
            }
        }
        (acked, w.wrong_partition_seen())
    });

    let (ok, detail) = mig.join().expect("migration thread");
    assert!(ok, "migration failed: {detail}");
    assert!(detail.contains("\"new_epoch\":2"), "{detail}");
    let (acked, writer_bounces) = writer.join().expect("writer thread");
    assert_eq!(acked.len(), 300);

    // Every acked write (and the preload) reads back through a fresh
    // router — zero acked-write loss across the handoff.
    let mut check = RouterClient::connect(&seeds).expect("check router");
    assert_eq!(check.map_epoch(), 2, "fresh router sees the flipped map");
    for (key, v) in &acked {
        let resps = check
            .call(vec![Request::Get { key: key.clone() }])
            .expect("get");
        assert_eq!(resps, vec![Response::Value(Some(*v))]);
    }

    // Epochs converged everywhere (node 2 learned via gossip).
    for node in &cluster.nodes {
        assert_eq!(node.map_epoch(), 2, "node {}", node.endpoint());
    }

    // The stale router refreshes once and stops bouncing: after the next
    // call lands, further traffic adds no WrongPartition replies.
    let before_refresh = router.map_epoch();
    assert_eq!(before_refresh, 1);
    let resps = router
        .call(vec![Request::Get {
            key: acked[0].0.clone(),
        }])
        .expect("stale router get");
    assert_eq!(resps, vec![Response::Value(Some(acked[0].1))]);
    assert_eq!(router.map_epoch(), 2);
    let settled = router.wrong_partition_seen();
    for (key, v) in acked.iter().take(50) {
        let resps = router
            .call(vec![Request::Get { key: key.clone() }])
            .expect("settled get");
        assert_eq!(resps, vec![Response::Value(Some(*v))]);
    }
    assert_eq!(
        router.wrong_partition_seen(),
        settled,
        "no WrongPartition storm after the refresh"
    );
    if writer_bounces > 0 {
        // The writer raced the seal window at least once and recovered.
        assert!(check.map_epoch() == 2);
    }

    // The source retired its copy: a local scan of the whole space on
    // node 0 sees only what it still owns.
    let n0_scan = cluster.nodes[0]
        .service()
        .index()
        .scan(&[], usize::MAX >> 1);
    assert_eq!(n0_scan, 0, "node 0 still holds migrated pairs");

    // Stale maps are fenced: replaying the epoch-1 map is refused.
    let mut ctl = TcpClient::connect(cluster.endpoints[2].as_str()).expect("ctl");
    let old_map = PartitionMap::split_u64(&seeds);
    let (ok, _) = ctl
        .migrate(MigrateOp::Install { map: old_map })
        .expect("rpc");
    assert!(!ok, "stale epoch must be rejected");
    assert_eq!(cluster.nodes[2].map_epoch(), 2);

    cluster.stop();
}

#[test]
fn pre_v4_clients_see_overloaded_instead_of_wrong_partition() {
    let cluster = start_cluster("downgrade", 3);
    // A key owned by node 2, asked of node 0.
    let key = u64::MAX.to_be_bytes().to_vec();
    for version in 1..=3u8 {
        let mut old = TcpClient::connect(cluster.endpoints[0].as_str()).expect("connect");
        old.set_wire_version(version);
        let resps = old
            .call(vec![Request::Get { key: key.clone() }])
            .expect("call");
        assert_eq!(resps, vec![Response::Overloaded], "wire v{version}");
    }
    // A v4 client gets the real status with the epoch for its refresh.
    let mut new = TcpClient::connect(cluster.endpoints[0].as_str()).expect("connect");
    let resps = new.call(vec![Request::Get { key }]).expect("call");
    assert_eq!(resps, vec![Response::WrongPartition { map_epoch: 1 }]);
    assert_eq!(cluster.nodes[0].wrong_partition_total(), 4);
    cluster.stop();
}

/// An aborted import clears importing mode and wipes the partial copy:
/// the target stops accepting the partition and holds none of its keys.
#[test]
fn import_abort_clears_mode_and_wipes_partial_copy() {
    let cluster = start_cluster("abort", 2);
    let target = cluster.endpoints[1].clone();
    let mut ctl = TcpClient::connect(target.as_str()).expect("ctl");
    let (ok, _) = ctl
        .migrate(MigrateOp::ImportBegin { partition: 0 })
        .expect("rpc");
    assert!(ok, "target must accept the import");

    // A partial "bulk copy" lands on the target while importing.
    let key = p0_key(42);
    let resps = ctl
        .call(vec![Request::Put {
            key: key.clone(),
            value: 7,
        }])
        .expect("import put");
    assert_eq!(
        resps,
        vec![Response::Ok],
        "importing target accepts the copy"
    );

    // The migration fails; the source aborts the import.
    let (ok, _) = ctl
        .migrate(MigrateOp::ImportAbort { partition: 0 })
        .expect("rpc");
    assert!(ok);
    // The partial copy is gone and the partition bounces again.
    assert_eq!(
        cluster.nodes[1]
            .service()
            .index()
            .scan(&[], usize::MAX >> 1),
        0
    );
    let resps = ctl
        .call(vec![Request::Put { key, value: 8 }])
        .expect("post-abort put");
    assert_eq!(resps, vec![Response::WrongPartition { map_epoch: 1 }]);
    // Nonsense imports are refused outright.
    let (ok, detail) = ctl
        .migrate(MigrateOp::ImportBegin { partition: 1 })
        .expect("rpc");
    assert!(
        !ok,
        "importing an owned partition must be refused: {detail}"
    );
    let (ok, _) = ctl
        .migrate(MigrateOp::ImportBegin { partition: 99 })
        .expect("rpc");
    assert!(!ok, "importing an unknown partition must be refused");
    cluster.stop();
}

/// A key bulk-copied by a *failed* migration attempt and then deleted on
/// the source must not be resurrected by a later successful migration:
/// `ImportBegin` wipes the stale partial copy before the fresh one.
#[test]
fn retried_migration_does_not_resurrect_stale_keys() {
    let cluster = start_cluster("retry", 2);
    let seeds = cluster.endpoints.clone();
    let mut router = RouterClient::connect(&seeds).expect("router");

    let stale = p0_key(1000);
    let live = p0_key(2000);
    let resps = router
        .call(vec![
            Request::Put {
                key: stale.clone(),
                value: 1,
            },
            Request::Put {
                key: live.clone(),
                value: 2,
            },
        ])
        .expect("preload");
    assert!(resps.iter().all(|r| *r == Response::Ok));

    // A previous migration attempt got as far as copying `stale` to the
    // target, then its source died without sending ImportAbort.
    let mut ctl = TcpClient::connect(cluster.endpoints[1].as_str()).expect("ctl");
    let (ok, _) = ctl
        .migrate(MigrateOp::ImportBegin { partition: 0 })
        .expect("rpc");
    assert!(ok);
    let resps = ctl
        .call(vec![Request::Put {
            key: stale.clone(),
            value: 1,
        }])
        .expect("partial copy");
    assert_eq!(resps, vec![Response::Ok]);

    // The source deletes the key before the retry.
    let resps = router
        .call(vec![Request::Delete { key: stale.clone() }])
        .expect("delete");
    assert_eq!(resps, vec![Response::Removed(Some(1))]);

    // The retried migration succeeds; the deleted key must stay deleted.
    let report = cluster.nodes[0]
        .migrate_out(0, &cluster.endpoints[1])
        .expect("retried migration");
    assert_eq!(report.new_epoch, 2);
    let mut check = RouterClient::connect(&seeds).expect("check router");
    assert_eq!(
        check.call(vec![Request::Get { key: stale }]).expect("get"),
        vec![Response::Value(None)],
        "stale partial-copy key was resurrected by the retry"
    );
    assert_eq!(
        check.call(vec![Request::Get { key: live }]).expect("get"),
        vec![Response::Value(Some(2))]
    );
    cluster.stop();
}

/// Only one migration runs per source node: a second `migrate_out` fails
/// fast instead of racing the first one to a divergent same-epoch map.
#[test]
fn concurrent_migrations_are_mutually_excluded() {
    let cluster = start_cluster("mutex", 2);
    let resps = RouterClient::connect(&cluster.endpoints)
        .expect("router")
        .call(
            (0..64u64)
                .map(|i| Request::Put {
                    key: p0_key(i * 37),
                    value: i,
                })
                .collect(),
        )
        .expect("preload");
    assert!(resps.iter().all(|r| *r == Response::Ok));

    // Park the first migration inside its first bulk chunk.
    let (reached_tx, reached_rx) = std::sync::mpsc::channel();
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let release_rx = std::sync::Mutex::new(release_rx);
    let fired = std::sync::atomic::AtomicBool::new(false);
    cluster.nodes[0].set_migration_hook(move |phase| {
        if phase == PHASE_BULK && !fired.swap(true, std::sync::atomic::Ordering::AcqRel) {
            let _ = reached_tx.send(());
            let _ = release_rx.lock().unwrap().recv();
        }
    });
    let node = cluster.nodes[0].clone();
    let target = cluster.endpoints[1].clone();
    let first = std::thread::spawn(move || node.migrate_out(0, &target));
    reached_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("first migration never reached bulk");

    // The second migration is rejected while the first is in flight.
    let err = cluster.nodes[0]
        .migrate_out(0, &cluster.endpoints[1])
        .expect_err("concurrent migration must be rejected");
    assert!(err.contains("already in progress"), "{err}");

    release_tx.send(()).expect("release");
    let report = first.join().expect("join").expect("first migration");
    assert_eq!(report.new_epoch, 2);
    cluster.stop();
}

/// A target that fences the handoff map (its epoch is already newer)
/// refuses `ImportEnd`; the source rolls back cleanly — unsealed, still
/// serving — and the target's partial copy is aborted and wiped.
#[test]
fn refused_handoff_rolls_back_and_source_keeps_serving() {
    let cluster = start_cluster("refuse", 2);
    let seeds = cluster.endpoints.clone();
    let mut router = RouterClient::connect(&seeds).expect("router");
    let key = p0_key(5);
    let resps = router
        .call(vec![Request::Put {
            key: key.clone(),
            value: 50,
        }])
        .expect("preload");
    assert_eq!(resps, vec![Response::Ok]);

    // The target holds a (divergent) newer map with the same ownership, so
    // it accepts the import but fences the epoch-2 handoff map.
    let mut newer = PartitionMap::split_u64(&seeds);
    newer.epoch = 9;
    let mut ctl = TcpClient::connect(cluster.endpoints[1].as_str()).expect("ctl");
    let (ok, _) = ctl.migrate(MigrateOp::Install { map: newer }).expect("rpc");
    assert!(ok);

    let err = cluster.nodes[0]
        .migrate_out(0, &cluster.endpoints[1])
        .expect_err("the fenced handoff must fail");
    assert!(err.contains("refused handoff"), "{err}");

    // Source: unsealed, still the owner, still serving the partition.
    let mut direct = TcpClient::connect(cluster.endpoints[0].as_str()).expect("direct");
    assert_eq!(
        direct.call(vec![Request::Get { key }]).expect("get"),
        vec![Response::Value(Some(50))],
        "the source must keep serving after a refused handoff"
    );
    // Target: import aborted, partial copy wiped.
    assert_eq!(
        cluster.nodes[1]
            .service()
            .index()
            .scan(&[], usize::MAX >> 1),
        0
    );
    cluster.stop();
}

/// A server that answers exactly one frame per connection, then closes it:
/// the worst polite cycler a client-side connection cache can meet.
fn one_shot_server(
    service: Arc<PacService<MapIndex>>,
) -> (std::net::SocketAddr, Arc<std::sync::atomic::AtomicBool>) {
    use std::io::{Read as _, Write as _};
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(std::sync::atomic::Ordering::Acquire) {
                break;
            }
            let Ok(mut sock) = conn else { break };
            let mut acc = Vec::new();
            let mut buf = [0u8; 4096];
            loop {
                match decode_frame(&acc) {
                    Ok((_, used)) => {
                        let reply = service.handle_frame(&acc[..used]);
                        let _ = sock.write_all(&reply);
                        break; // close the connection after one frame
                    }
                    Err(WireError::Incomplete { .. }) => match sock.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => acc.extend_from_slice(&buf[..n]),
                    },
                    Err(_) => break,
                }
            }
        }
    });
    (addr, stop)
}

#[test]
fn idempotent_reads_reconnect_once_and_surface_it() {
    let cfg = ServiceConfig {
        shards: 1,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-flaky", 1)
    };
    let service = PacService::start(MapIndex::default(), cfg);
    service.index().insert(&7u64.to_be_bytes(), 70);
    let (addr, stop) = one_shot_server(service.clone());

    let mut client = TcpClient::connect(addr).expect("connect");
    // First read rides the fresh connection: no retry needed.
    let (resps, retried) = client
        .call_idempotent(vec![Request::Get {
            key: 7u64.to_be_bytes().to_vec(),
        }])
        .expect("first read");
    assert_eq!(resps, vec![Response::Value(Some(70))]);
    assert!(!retried);
    // The server closed that connection; the next read reconnects
    // transparently, exactly once, and says so.
    let (resps, retried) = client
        .call_idempotent(vec![Request::Get {
            key: 7u64.to_be_bytes().to_vec(),
        }])
        .expect("retried read");
    assert_eq!(resps, vec![Response::Value(Some(70))]);
    assert!(retried, "the reconnect must be surfaced as RetriedOnce");

    // A write on the now-dead connection surfaces the transport error —
    // never a silent resend (the op may or may not have executed).
    let err = client
        .call(vec![Request::Put {
            key: 8u64.to_be_bytes().to_vec(),
            value: 80,
        }])
        .expect_err("write must surface the broken connection");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::WriteZero
        ),
        "{err:?}"
    );
    // Mixed batches containing a write take the non-idempotent path too.
    client.reconnect().expect("manual reconnect");
    let (resps, retried) = client
        .call_idempotent(vec![
            Request::Get {
                key: 7u64.to_be_bytes().to_vec(),
            },
            Request::Put {
                key: 9u64.to_be_bytes().to_vec(),
                value: 90,
            },
        ])
        .expect("mixed batch on a fresh connection");
    assert_eq!(resps.len(), 2);
    assert!(!retried, "a batch with a write is never auto-retried");

    stop.store(true, std::sync::atomic::Ordering::Release);
    let _ = std::net::TcpStream::connect(addr); // unblock the accept loop
    assert!(service.shutdown(Duration::from_secs(5)));
}
