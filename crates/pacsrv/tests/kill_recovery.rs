//! Crash-and-recover through the service boundary.
//!
//! A PACTree instance on crash-simulating pools is put behind a
//! `PacService`; a client stream of Puts is acked through the service;
//! then the server is killed abruptly (queued work abandoned, no drain),
//! the pools crash with random cache-line eviction, and recovery runs the
//! same `PacTree::recover` path the crashcheck campaigns exercise. The
//! durable-linearizability oracle must find every acked write and may see
//! in-flight writes either way — zero acked-write loss.

use std::sync::Arc;
use std::time::Duration;

use crashcheck::journal::Expectation;
use crashcheck::{adapter, oracle, IndexKind};
use pacsrv::wire::{Request, Response};
use pacsrv::{PacService, ServiceConfig};
use pactree::tree::{PacTree, PacTreeConfig};
use pmem::crash::{crash_all, evict_random_lines};
use pmem::AllocMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOL_SIZE: usize = 48 << 20;

fn crash_sim_config(name: &str) -> PacTreeConfig {
    PacTreeConfig {
        crash_sim: true,
        alloc_mode: AllocMode::CrashConsistent,
        ..PacTreeConfig::named(name)
    }
    .with_pool_size(POOL_SIZE)
    .with_numa_pools(1)
    .with_async_smo(false)
}

#[test]
fn killed_server_recovers_with_zero_acked_write_loss() {
    let name = "pacsrv-kill-recovery";
    let tree = PacTree::create(crash_sim_config(name)).expect("create pactree");
    let pools = tree.pools();

    let cfg = ServiceConfig {
        shards: 2,
        queue_capacity: 256,
        batch_max: 8,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-kill", 2)
    };
    let service = PacService::start(Arc::clone(&tree), cfg);

    // Phase 1: acked writes — submit and wait for the Ok reply. Replies
    // only arrive after the index op (and its persist fences) returned, so
    // these are durably acked.
    let mut expect = Expectation::default();
    for key in 0..200u64 {
        let resp = service.call(Request::Put {
            key: key.to_be_bytes().to_vec(),
            value: key * 10 + 1,
        });
        assert_eq!(resp, Response::Ok, "acked put {key} failed");
        // The oracle consults `allowed`; a single admissible state makes
        // the key "determined" (must survive exactly).
        expect.strict.insert(key, Some(key * 10 + 1));
        expect.allowed.insert(key, vec![Some(key * 10 + 1)]);
    }

    // Phase 2: in-flight writes — submitted but the server is killed before
    // we look at the replies. Each may or may not have reached the index.
    let mut inflight = Vec::new();
    for key in 200..264u64 {
        inflight.push(service.submit(
            vec![Request::Put {
                key: key.to_be_bytes().to_vec(),
                value: key * 10 + 1,
            }],
            None,
        ));
        expect.allowed.insert(key, vec![None, Some(key * 10 + 1)]);
    }

    // Abrupt server death: queued jobs are abandoned (answered `Aborted`,
    // never executed), nothing drains.
    service.kill();
    // kill() fills every admitted slot before returning, so no client
    // thread can be left hanging in wait(): each in-flight put either
    // executed before the kill (Ok, durably acked) or was abandoned.
    let mut aborted = 0u64;
    for (i, rs) in inflight.into_iter().enumerate() {
        assert!(rs.is_done(), "kill left an in-flight slot unanswered");
        let key = 200 + i as u64;
        for resp in rs.wait() {
            match resp {
                Response::Ok => {}
                Response::Aborted => aborted += 1,
                other => panic!("unexpected reply for in-flight put {key}: {other:?}"),
            }
        }
    }
    // (aborted counts queued-at-kill jobs; the exact split between
    // executed and abandoned is racy, so don't assert a value.)
    let _ = aborted;
    drop(service);
    drop(tree);

    // Simulated power loss on the surviving media.
    let mut rng = StdRng::seed_from_u64(0x9ac5);
    for p in &pools {
        evict_random_lines(p, (p.size() / pmem::CACHE_LINE) * 4, &mut rng);
    }
    crash_all(&pools, false);

    // Restart path: the same recovery the crashcheck campaigns run.
    let recovered = IndexKind::PacTree
        .recover(name, POOL_SIZE)
        .expect("recover pactree");
    recovered.quiesce();

    if let Err(v) = oracle::check(recovered.as_ref(), &expect) {
        panic!("durable-linearizability violation after kill: {v:?}");
    }

    // Sanity: the oracle really had teeth — all 200 acked keys survive.
    for key in 0..200u64 {
        assert_eq!(recovered.lookup(key), Some(key * 10 + 1));
    }
    adapter::destroy_pools(&recovered.pools());
}

#[test]
fn graceful_shutdown_drains_then_recovers_cleanly() {
    let name = "pacsrv-drain-recovery";
    let tree = PacTree::create(crash_sim_config(name)).expect("create pactree");
    let pools = tree.pools();

    let cfg = ServiceConfig {
        shards: 2,
        numa_pin: false,
        ..ServiceConfig::named("pacsrv-drain", 2)
    };
    let service = PacService::start(Arc::clone(&tree), cfg);

    let mut expect = Expectation::default();
    let mut pending = Vec::new();
    for key in 0..300u64 {
        pending.push(service.submit(
            vec![Request::Put {
                key: key.to_be_bytes().to_vec(),
                value: key + 7,
            }],
            None,
        ));
    }
    // Graceful shutdown waits for every queued op, then drains the index.
    assert!(service.shutdown(Duration::from_secs(30)), "drain timed out");
    for (key, rs) in pending.into_iter().enumerate() {
        assert_eq!(rs.wait(), vec![Response::Ok], "put {key} not drained");
        expect.strict.insert(key as u64, Some(key as u64 + 7));
        expect
            .allowed
            .insert(key as u64, vec![Some(key as u64 + 7)]);
    }
    drop(service);
    drop(tree);

    // Even a post-drain crash must keep every drained write.
    let mut rng = StdRng::seed_from_u64(0x9ac6);
    for p in &pools {
        evict_random_lines(p, (p.size() / pmem::CACHE_LINE) * 4, &mut rng);
    }
    crash_all(&pools, false);

    let recovered = IndexKind::PacTree
        .recover(name, POOL_SIZE)
        .expect("recover pactree");
    recovered.quiesce();
    if let Err(v) = oracle::check(recovered.as_ref(), &expect) {
        panic!("durable-linearizability violation after drain: {v:?}");
    }
    adapter::destroy_pools(&recovered.pools());
}
