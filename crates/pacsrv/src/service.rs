//! The sharded request-processing service ("pacd" core).
//!
//! A [`PacService`] fronts any [`RangeIndex`] with `shards` worker threads,
//! each owning one bounded [`BatchQueue`]. Requests route to shards by key
//! hash (scans by start key), so per-key ordering is preserved: two
//! operations on the same key land in the same FIFO queue and execute in
//! submission order.
//!
//! Admission control happens *before* a request touches a queue, in the
//! submitter's thread:
//!
//! 1. lifecycle gate — a draining/stopped service sheds immediately;
//! 2. ingress token bucket (optional) — sustained-rate throttle reusing
//!    `pmem`'s debt-based [`TokenBucket`] in non-blocking mode;
//! 3. bounded queue — a full shard queue sheds that operation.
//!
//! Shedding is an explicit [`Response::Overloaded`] reply, never an
//! unbounded queue: total buffered work is capped at
//! `shards * queue_capacity` regardless of offered load. Admitted
//! operations carry an absolute deadline; a worker that dequeues an
//! already-expired operation drops it with [`Response::DeadlineExceeded`]
//! without executing it, so queue time cannot silently turn into index
//! load during overload (the paper-adjacent tail-latency failure mode).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use obsv::clock;
use obsv::trace::{self, SpanKind, TraceCtx};
use pmem::model::TokenBucket;
use ycsb::RangeIndex;

use crate::metrics::ServiceMetrics;
use crate::queue::{BatchQueue, PopStatus};
use crate::reply::ReplySet;
use crate::wire::{Request, Response};

/// No deadline sentinel.
const NO_DEADLINE: u64 = u64::MAX;

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads / request queues (thread-per-core sizing).
    pub shards: usize,
    /// Per-shard queue bound; the backpressure limit.
    pub queue_capacity: usize,
    /// Maximum operations a worker drains per wakeup.
    pub batch_max: usize,
    /// Sustained admission rate in ops/sec (`None` = queue bound only).
    pub ingress_rate: Option<u64>,
    /// Burst allowance of the ingress bucket, in ops. Admission requires
    /// the balance to cover a whole submitted batch, so this must be at
    /// least the largest batch size a client submits in one call — a
    /// larger batch is always shed.
    pub ingress_burst: u64,
    /// Default per-op deadline applied at admission (`None` = none).
    pub default_deadline: Option<Duration>,
    /// Metric-name prefix; also names the worker threads.
    pub name: String,
    /// Pin worker threads round-robin over NUMA nodes.
    pub numa_pin: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: 1024,
            batch_max: 32,
            ingress_rate: None,
            ingress_burst: 256,
            default_deadline: None,
            name: "pacsrv".to_string(),
            numa_pin: true,
        }
    }
}

impl ServiceConfig {
    /// A config named `name` with `shards` workers.
    pub fn named(name: &str, shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards: shards.max(1),
            name: name.to_string(),
            ..Default::default()
        }
    }
}

/// One queued operation.
struct Job {
    req: Request,
    /// The batch's trace context; unsampled for untraced submissions, so
    /// workers pay one branch per op.
    trace: TraceCtx,
    enqueue_ns: u64,
    deadline_ns: u64,
    slot: usize,
    done: Arc<ReplySet>,
}

/// Lifecycle states.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// The sharded, batched request service.
pub struct PacService<I: RangeIndex + Clone + 'static> {
    index: I,
    cfg: ServiceConfig,
    shards: Arc<Vec<Arc<BatchQueue<Job>>>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    metrics: Arc<ServiceMetrics>,
    bucket: Option<TokenBucket>,
    origin: Instant,
    state: AtomicU8,
    /// Correlation ids for [`handle_frame`](Self::handle_frame) replies.
    next_id: AtomicU64,
    /// SLO engine whose alert states the health endpoint exposes
    /// (none until [`set_slo_engine`](Self::set_slo_engine)).
    slo: Mutex<Option<Arc<obsv::SloEngine>>>,
    _registrations: Vec<obsv::Registration>,
}

fn shard_of(key: &[u8], shards: usize) -> usize {
    // FNV-1a; cheap, stable, and good enough spread for short keys.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards as u64) as usize
}

fn kind_of(req: &Request) -> obsv::OpKind {
    match req {
        Request::Get { .. } => obsv::OpKind::Lookup,
        Request::Put { .. } => obsv::OpKind::Insert,
        Request::Delete { .. } => obsv::OpKind::Remove,
        Request::Scan { .. } | Request::ScanAt { .. } => obsv::OpKind::Scan,
        // Snapshot lifecycle ops are O(1) control operations; account them
        // with the cheap point-op bucket rather than a new histogram row.
        Request::Snapshot | Request::ReleaseSnapshot { .. } => obsv::OpKind::Lookup,
    }
}

/// The `detail` value of an index-op span (which operation ran).
fn op_detail(req: &Request) -> u32 {
    match req {
        Request::Get { .. } => 0,
        Request::Put { .. } => 1,
        Request::Delete { .. } => 2,
        Request::Scan { .. } => 3,
        Request::Snapshot => 4,
        Request::ScanAt { .. } => 5,
        Request::ReleaseSnapshot { .. } => 6,
    }
}

fn execute<I: RangeIndex>(index: &I, req: &Request) -> Response {
    match req {
        Request::Get { key } => Response::Value(index.lookup(key)),
        Request::Put { key, value } => {
            index.insert(key, *value);
            Response::Ok
        }
        Request::Delete { key } => Response::Removed(index.remove(key)),
        Request::Scan { start, count } => {
            Response::ScanCount(index.scan(start, *count as usize) as u32)
        }
        Request::Snapshot => match index.snapshot() {
            Some(id) => Response::Snapshot(id),
            None => Response::UnknownSnapshot,
        },
        Request::ScanAt { snap, start, count } => {
            match index.scan_at(*snap, start, *count as usize) {
                Some(n) => Response::ScanCount(n as u32),
                None => Response::UnknownSnapshot,
            }
        }
        Request::ReleaseSnapshot { snap } => Response::Released(index.release_snapshot(*snap)),
    }
}

impl<I: RangeIndex + Clone + 'static> PacService<I> {
    /// Starts the service: spawns one worker per shard and registers the
    /// obsv gauges/histograms under `cfg.name`.
    pub fn start(index: I, cfg: ServiceConfig) -> Arc<PacService<I>> {
        let cfg = ServiceConfig {
            shards: cfg.shards.max(1),
            batch_max: cfg.batch_max.max(1),
            ..cfg
        };
        let shards: Arc<Vec<Arc<BatchQueue<Job>>>> = Arc::new(
            (0..cfg.shards)
                .map(|_| Arc::new(BatchQueue::new(cfg.queue_capacity)))
                .collect(),
        );
        let metrics = Arc::new(ServiceMetrics::default());
        let registrations = ServiceMetrics::register(&cfg.name, &metrics, &shards, |q| q.len());

        let mut workers = Vec::with_capacity(cfg.shards);
        for (i, queue) in shards.iter().enumerate() {
            let index = index.clone();
            let queue = Arc::clone(queue);
            let metrics = Arc::clone(&metrics);
            let batch_max = cfg.batch_max;
            let numa_pin = cfg.numa_pin;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("{}-shard{i}", cfg.name))
                    .spawn(move || {
                        if numa_pin {
                            pmem::numa::pin_thread_round_robin();
                        }
                        worker_loop(&index, &queue, &metrics, batch_max);
                    })
                    .expect("spawn shard worker"),
            );
        }

        let bucket = cfg
            .ingress_rate
            .map(|rate| TokenBucket::with_burst(rate, cfg.ingress_burst));
        Arc::new(PacService {
            index,
            cfg,
            shards,
            workers: Mutex::new(workers),
            metrics,
            bucket,
            origin: Instant::now(),
            state: AtomicU8::new(RUNNING),
            next_id: AtomicU64::new(1),
            slo: Mutex::new(None),
            _registrations: registrations,
        })
    }

    /// The service's metrics (shed/timeout counters, sojourn histograms,
    /// batch-size distribution).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The config the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Total queued operations across all shards right now.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Submits a batch. Never blocks: every operation is either enqueued
    /// or instantly answered `Overloaded`. The returned [`ReplySet`] is
    /// complete once all operations have replies.
    ///
    /// `deadline` overrides the config default for this batch; it is
    /// measured from admission (queue time + execution must fit).
    ///
    /// Stamps a fresh trace context (tail-sampled; a no-op unless the
    /// `trace` feature is compiled in). Transports that carry a context on
    /// the wire use [`submit_traced`](Self::submit_traced) instead.
    pub fn submit(&self, reqs: Vec<Request>, deadline: Option<Duration>) -> Arc<ReplySet> {
        self.submit_traced(reqs, deadline, trace::stamp())
    }

    /// [`submit`](Self::submit) with a caller-provided trace context (e.g.
    /// decoded from a v2 wire frame). If `ctx` is sampled, the batch's
    /// admission, queue sojourn, batch drain, and index execution all
    /// record spans under it, and the root span closes when the last
    /// operation replies — kept only if slow or errored (tail sampling).
    pub fn submit_traced(
        &self,
        reqs: Vec<Request>,
        deadline: Option<Duration>,
        ctx: TraceCtx,
    ) -> Arc<ReplySet> {
        let n = reqs.len();
        let rs = ReplySet::new(n);
        if n == 0 {
            return rs;
        }
        let traced = ctx.is_sampled();
        let admit_ns = if traced { clock::now_ns() } else { 0 };
        if traced {
            // Before any complete() can run: the last complete closes the
            // root span, and sheds below complete synchronously.
            rs.set_trace(ctx, admit_ns);
        }
        if self.state.load(Ordering::Acquire) != RUNNING {
            self.metrics.shed.fetch_add(n as u64, Ordering::Relaxed);
            if traced {
                trace::record_span(
                    ctx,
                    SpanKind::Admission,
                    n as u32,
                    admit_ns,
                    clock::now_ns(),
                );
            }
            for slot in 0..n {
                rs.complete(slot, Response::Overloaded);
            }
            return rs;
        }
        if let Some(bucket) = &self.bucket {
            if !bucket.try_acquire(n as u64, &self.origin) {
                self.metrics.shed.fetch_add(n as u64, Ordering::Relaxed);
                if traced {
                    trace::record_span(
                        ctx,
                        SpanKind::Admission,
                        n as u32,
                        admit_ns,
                        clock::now_ns(),
                    );
                }
                for slot in 0..n {
                    rs.complete(slot, Response::Overloaded);
                }
                return rs;
            }
        }
        let now = clock::now_ns();
        if traced {
            // Covers the lifecycle gate + token bucket; recorded before the
            // first push so the harvest (triggered by the last complete,
            // possibly on a worker thread) cannot miss it.
            trace::record_span(ctx, SpanKind::Admission, n as u32, admit_ns, now);
        }
        let deadline_ns = deadline
            .or(self.cfg.default_deadline)
            .map(|d| now.saturating_add(d.as_nanos() as u64))
            .unwrap_or(NO_DEADLINE);
        for (slot, req) in reqs.into_iter().enumerate() {
            let shard = shard_of(req.key(), self.shards.len());
            let job = Job {
                req,
                trace: ctx,
                enqueue_ns: now,
                deadline_ns,
                slot,
                done: Arc::clone(&rs),
            };
            match self.shards[shard].try_push(job) {
                Ok(()) => {
                    self.metrics.admitted.fetch_add(1, Ordering::Relaxed);
                }
                Err(job) => {
                    self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    job.done.complete(job.slot, Response::Overloaded);
                }
            }
        }
        rs
    }

    /// Convenience: submit one operation and wait for its reply.
    pub fn call(&self, req: Request) -> Response {
        self.submit(vec![req], None).wait()[0]
    }

    /// The shared frame path of every transport: decode, submit, wait,
    /// encode. A malformed buffer gets a `Reply` with one `Malformed`
    /// status (correlation id 0 if the header never decoded).
    ///
    /// A request carrying a sampled v2 trace context keeps it (the server's
    /// spans parent to the client's root); otherwise — v1 frames, untraced
    /// v2 clients — the service stamps its own, exactly like local submits.
    ///
    /// The reply is encoded at the *request's* wire version, so old
    /// clients keep decoding against a v3 server: an old request cannot
    /// name a snapshot operation, so its reply never needs a v3 status.
    pub fn handle_frame(&self, bytes: &[u8]) -> Vec<u8> {
        let reply = match crate::wire::decode_frame(bytes) {
            Ok((crate::wire::Frame::Request { id, trace, reqs }, _)) => {
                let ctx = if trace.is_sampled() {
                    trace
                } else {
                    trace::stamp()
                };
                let resps = self.submit_traced(reqs, None, ctx).wait();
                crate::wire::Frame::Reply { id, resps }
            }
            Ok((crate::wire::Frame::Ping { id }, _)) => crate::wire::Frame::Pong { id },
            Ok((crate::wire::Frame::Stats { id }, _)) => crate::wire::Frame::StatsReply {
                id,
                json: self.stats_json(),
            },
            Ok((crate::wire::Frame::Health { id }, _)) => crate::wire::Frame::HealthReply {
                id,
                text: self.health_text(),
            },
            Ok((frame, _)) => crate::wire::Frame::Reply {
                id: frame.id(),
                resps: vec![Response::Malformed],
            },
            Err(_) => crate::wire::Frame::Reply {
                id: 0,
                resps: vec![Response::Malformed],
            },
        };
        // Byte 2 is the already-validated version of a decoded frame; for
        // undecodable buffers fall back to the build's version.
        let version = match bytes.get(2) {
            Some(&v) if (crate::wire::MIN_VERSION..=crate::wire::VERSION).contains(&v) => v,
            _ => crate::wire::VERSION,
        };
        let mut out = Vec::new();
        crate::wire::encode_frame_versioned(&reply, version, &mut out);
        out
    }

    /// The live-stats document answered to a [`crate::wire::Frame::Stats`]
    /// request: service counters, a full metrics-registry sample, the
    /// retained-trace digest, and a flight-recorder dump — one JSON object,
    /// assembled without stopping the server.
    pub fn stats_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema\":\"pacsrv_stats/v1\",\"ts_ns\":{},\"name\":\"{}\",",
                "\"queue_depth\":{},\"admitted\":{},\"shed\":{},\"completed\":{},",
                "\"timeouts\":{},\"registry\":{},\"traces\":{},\"span_dump\":{},",
                "\"flight\":\"{}\"}}"
            ),
            clock::now_ns(),
            trace::json_escape(&self.cfg.name),
            self.queue_depth(),
            self.metrics.admitted.load(Ordering::Relaxed),
            self.metrics.shed.load(Ordering::Relaxed),
            self.metrics.completed.load(Ordering::Relaxed),
            self.metrics.timeouts.load(Ordering::Relaxed),
            obsv::global().sample().to_json(1.0),
            trace::digest_json(),
            trace::span_dump_json(),
            trace::json_escape(&obsv::flight::dump_now()),
        )
    }

    /// Attaches an SLO engine: its alert states (firing flags and
    /// burn rates) are appended to every health scrape from now on. The
    /// engine is typically also registered as registry gauges and driven
    /// by an [`obsv::Scraper`], so the states appear in sampled time
    /// series too; this hook is what puts them on the wire.
    pub fn set_slo_engine(&self, engine: Arc<obsv::SloEngine>) {
        *self.slo.lock().unwrap() = Some(engine);
    }

    /// The health document answered to a [`crate::wire::Frame::Health`]
    /// request and served by the plain-TCP health listener: a live
    /// metrics-registry sample plus any attached SLO alert states,
    /// rendered in Prometheus text exposition format.
    pub fn health_text(&self) -> String {
        let slo_status = self
            .slo
            .lock()
            .unwrap()
            .as_ref()
            .map(|e| e.status())
            .unwrap_or_default();
        obsv::prom::render(&obsv::global().sample(), &slo_status)
    }

    /// A fresh correlation id (transports that multiplex need them unique
    /// per in-flight frame).
    pub fn next_frame_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Graceful shutdown: stop admitting, drain every queue (queued
    /// operations still execute and reply), join workers, then drain the
    /// index itself (SMO replay, epoch reclamation) within `timeout`.
    /// Returns whether the index reported a complete drain. Idempotent.
    pub fn shutdown(&self, timeout: Duration) -> bool {
        if self
            .state
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return self.state.load(Ordering::Acquire) == STOPPED;
        }
        for q in self.shards.iter() {
            q.close();
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        let drained = self.index.drain(timeout);
        self.state.store(STOPPED, Ordering::Release);
        drained
    }

    /// Abrupt shutdown simulating a process kill: workers stop at their
    /// next wakeup, queued-but-unexecuted operations never reach the index,
    /// and the index is not drained or quiesced. Used by the kill-recovery
    /// test; a real deployment calls [`shutdown`](Self::shutdown).
    ///
    /// The abandoned operations are answered [`Response::Aborted`] (the
    /// index never executed them, so nothing was acked), which unblocks any
    /// thread waiting in [`ReplySet::wait`] or [`call`](Self::call) —
    /// `wait` has no timeout, so leaving the slots unfilled would deadlock
    /// concurrent callers forever.
    pub fn kill(&self) {
        self.state.store(DRAINING, Ordering::Release);
        let mut abandoned = Vec::new();
        for q in self.shards.iter() {
            abandoned.extend(q.kill());
        }
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        // Workers are gone: every job is either completed (executed,
        // timed out, or shed at admission) or in `abandoned` — fill those
        // slots so no waiter hangs.
        for job in abandoned {
            job.done.complete(job.slot, Response::Aborted);
        }
        self.state.store(STOPPED, Ordering::Release);
    }

    /// Whether the service still admits requests.
    pub fn is_running(&self) -> bool {
        self.state.load(Ordering::Acquire) == RUNNING
    }

    /// The index this service fronts. Migration drives snapshot reads
    /// (`snapshot`/`scan_pairs_at`/`diff_pairs`) directly against it —
    /// those are read-only against frozen views, so they don't race the
    /// shard workers.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Waits until every operation enqueued before this call has executed:
    /// pushes one no-op marker through each shard's FIFO and waits for all
    /// of them. Because each queue is FIFO and workers drain in order, the
    /// markers' completion implies every earlier op's completion.
    ///
    /// Returns `false` if the service stopped running before all markers
    /// executed (the barrier guarantee then comes from the shutdown/kill
    /// path instead: workers are joined).
    pub fn drain_barrier(&self) -> bool {
        let n = self.shards.len();
        let rs = ReplySet::new(n);
        let now = clock::now_ns();
        for (i, queue) in self.shards.iter().enumerate() {
            let mut job = Job {
                req: Request::Scan {
                    start: Vec::new(),
                    count: 0,
                },
                trace: TraceCtx::UNTRACED,
                enqueue_ns: now,
                deadline_ns: NO_DEADLINE,
                slot: i,
                done: Arc::clone(&rs),
            };
            loop {
                match queue.try_push(job) {
                    Ok(()) => {
                        self.metrics.admitted.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(j) => {
                        if self.state.load(Ordering::Acquire) != RUNNING {
                            // Closed or killed queue: the marker can never
                            // land; answer its slot so the wait terminates.
                            j.done.complete(j.slot, Response::Aborted);
                            break;
                        }
                        job = j;
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }
        rs.wait()
            .iter()
            .all(|r| matches!(r, Response::ScanCount(_)))
    }
}

impl<I: RangeIndex + Clone + 'static> Drop for PacService<I> {
    fn drop(&mut self) {
        // Defensive: a service dropped without an explicit shutdown still
        // stops its workers (graceful, so queued work is answered).
        if self.state.load(Ordering::Acquire) == RUNNING {
            self.state.store(DRAINING, Ordering::Release);
            for q in self.shards.iter() {
                q.close();
            }
        }
        for h in self.workers.get_mut().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// The shard worker: drain a batch, execute it under the index's batch
/// guard, reply. One `clock::now_ns` read per operation (the completion
/// stamp doubles as the next op's deadline check), amortized across the
/// batch instead of a start/stop pair per op.
fn worker_loop<I: RangeIndex>(
    index: &I,
    queue: &BatchQueue<Job>,
    metrics: &ServiceMetrics,
    batch_max: usize,
) {
    let mut batch: Vec<Job> = Vec::with_capacity(batch_max);
    loop {
        batch.clear();
        if queue.pop_batch(batch_max, &mut batch) == PopStatus::Done {
            return;
        }
        metrics.batch_sizes.record(batch.len() as u64);
        let batch_len = batch.len() as u32;
        let jobs = &mut batch;
        index.with_batch(&mut || {
            let mut now = clock::now_ns();
            let drain_ns = now;
            for job in jobs.drain(..) {
                let traced = job.trace.is_sampled();
                if traced {
                    // Queue sojourn: admission stamp to batch drain. Spans
                    // are recorded before the op's complete() so the root
                    // harvest (under the ReplySet mutex) sees them.
                    trace::record_span(
                        job.trace,
                        SpanKind::Queue,
                        job.slot as u32,
                        job.enqueue_ns,
                        drain_ns,
                    );
                }
                if job.deadline_ns < now {
                    metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                    job.done.complete(job.slot, Response::DeadlineExceeded);
                    continue;
                }
                let resp = if traced {
                    let _op_span = trace::span(job.trace, SpanKind::IndexOp, op_detail(&job.req));
                    execute(index, &job.req)
                } else {
                    execute(index, &job.req)
                };
                now = clock::now_ns();
                if traced {
                    // Batch residency: drain to this op's completion, with
                    // the batch size as detail (head-of-line time within
                    // the batch is the gap to the nested index-op span).
                    trace::record_span(job.trace, SpanKind::Batch, batch_len, drain_ns, now);
                }
                metrics
                    .ops
                    .record(kind_of(&job.req), now.saturating_sub(job.enqueue_ns), 0);
                metrics.completed.fetch_add(1, Ordering::Relaxed);
                job.done.complete(job.slot, resp);
            }
        });
        // Batch boundary: advance the index's version counter so snapshot
        // versions align with batch edges (a snapshot taken between two
        // batches never splits either). No-op for unversioned indexes.
        index.advance_version();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::RwLock;

    /// A tiny in-memory index for service-layer unit tests (the real
    /// indexes are exercised by the integration tests and the bench).
    #[derive(Clone, Default)]
    struct MapIndex {
        map: Arc<RwLock<BTreeMap<Vec<u8>, u64>>>,
        /// Artificial per-op latency, to make overload reproducible.
        op_delay: Option<Duration>,
    }

    impl RangeIndex for MapIndex {
        fn name(&self) -> &'static str {
            "MapIndex"
        }
        fn insert(&self, key: &[u8], value: u64) {
            if let Some(d) = self.op_delay {
                std::thread::sleep(d);
            }
            self.map.write().unwrap().insert(key.to_vec(), value);
        }
        fn lookup(&self, key: &[u8]) -> Option<u64> {
            if let Some(d) = self.op_delay {
                std::thread::sleep(d);
            }
            self.map.read().unwrap().get(key).copied()
        }
        fn remove(&self, key: &[u8]) -> Option<u64> {
            self.map.write().unwrap().remove(key)
        }
        fn scan(&self, start: &[u8], count: usize) -> usize {
            self.map
                .read()
                .unwrap()
                .range(start.to_vec()..)
                .take(count)
                .count()
        }
    }

    #[test]
    fn basic_ops_roundtrip_through_service() {
        let svc = PacService::start(MapIndex::default(), ServiceConfig::named("svc-basic", 2));
        assert_eq!(
            svc.call(Request::Put {
                key: b"a".to_vec(),
                value: 1
            }),
            Response::Ok
        );
        assert_eq!(
            svc.call(Request::Get { key: b"a".to_vec() }),
            Response::Value(Some(1))
        );
        assert_eq!(
            svc.call(Request::Scan {
                start: b"".to_vec(),
                count: 10
            }),
            Response::ScanCount(1)
        );
        assert_eq!(
            svc.call(Request::Delete { key: b"a".to_vec() }),
            Response::Removed(Some(1))
        );
        assert_eq!(
            svc.call(Request::Get { key: b"a".to_vec() }),
            Response::Value(None)
        );
        assert!(svc.shutdown(Duration::from_secs(5)));
        // Idempotent, and post-shutdown submissions shed.
        assert!(svc.shutdown(Duration::from_secs(5)));
        assert_eq!(
            svc.call(Request::Get { key: b"a".to_vec() }),
            Response::Overloaded
        );
    }

    #[test]
    fn batch_replies_preserve_operation_order() {
        let svc = PacService::start(MapIndex::default(), ServiceConfig::named("svc-order", 4));
        let reqs: Vec<Request> = (0..64u64)
            .map(|i| Request::Put {
                key: i.to_be_bytes().to_vec(),
                value: i,
            })
            .collect();
        assert!(svc
            .submit(reqs, None)
            .wait()
            .iter()
            .all(|r| *r == Response::Ok));
        let gets: Vec<Request> = (0..64u64)
            .map(|i| Request::Get {
                key: i.to_be_bytes().to_vec(),
            })
            .collect();
        let replies = svc.submit(gets, None).wait();
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(*r, Response::Value(Some(i as u64)), "slot {i}");
        }
        svc.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn same_key_operations_execute_in_submission_order() {
        let svc = PacService::start(
            MapIndex::default(),
            ServiceConfig::named("svc-key-order", 4),
        );
        let key = b"hot".to_vec();
        let mut last = None;
        for v in 0..200u64 {
            svc.submit(
                vec![Request::Put {
                    key: key.clone(),
                    value: v,
                }],
                None,
            );
            last = Some(v);
        }
        // All puts routed to one shard FIFO: after the queue drains the
        // final value must be the last submitted one.
        assert!(svc.shutdown(Duration::from_secs(5)));
        let map = svc.index.map.read().unwrap();
        assert_eq!(map.get(&key).copied(), last);
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        let svc = PacService::start(
            MapIndex {
                op_delay: Some(Duration::from_millis(5)),
                ..Default::default()
            },
            ServiceConfig {
                shards: 1,
                queue_capacity: 2,
                ..ServiceConfig::named("svc-shed", 1)
            },
        );
        let reqs: Vec<Request> = (0..50u64)
            .map(|i| Request::Put {
                key: i.to_be_bytes().to_vec(),
                value: i,
            })
            .collect();
        let replies = svc.submit(reqs, None).wait();
        let shed = replies
            .iter()
            .filter(|r| **r == Response::Overloaded)
            .count();
        assert!(shed > 0, "2-deep queue must shed a 50-op burst");
        assert!(
            replies
                .iter()
                .all(|r| matches!(r, Response::Ok | Response::Overloaded)),
            "{replies:?}"
        );
        assert_eq!(svc.metrics().shed.load(Ordering::Relaxed), shed as u64);
        svc.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn expired_deadline_is_dropped_not_executed() {
        let svc = PacService::start(
            MapIndex {
                op_delay: Some(Duration::from_millis(20)),
                ..Default::default()
            },
            ServiceConfig {
                shards: 1,
                ..ServiceConfig::named("svc-deadline", 1)
            },
        );
        // First op occupies the worker; the rest expire in-queue.
        let reqs: Vec<Request> = (0..5u64)
            .map(|i| Request::Put {
                key: i.to_be_bytes().to_vec(),
                value: i,
            })
            .collect();
        let replies = svc.submit(reqs, Some(Duration::from_millis(1))).wait();
        assert!(replies.contains(&Response::DeadlineExceeded), "{replies:?}");
        let timeouts = svc.metrics().timeouts.load(Ordering::Relaxed);
        assert!(timeouts > 0);
        // A timed-out put must not have reached the index.
        let executed = svc.index.map.read().unwrap().len();
        assert_eq!(
            executed as u64 + timeouts,
            5,
            "every op either executed or timed out"
        );
        svc.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn ingress_bucket_sheds_beyond_burst() {
        let svc = PacService::start(
            MapIndex::default(),
            ServiceConfig {
                ingress_rate: Some(1), // ~no refill during the test
                ingress_burst: 8,
                ..ServiceConfig::named("svc-bucket", 2)
            },
        );
        let mut admitted = 0;
        for i in 0..100u64 {
            let r = svc.call(Request::Put {
                key: i.to_be_bytes().to_vec(),
                value: i,
            });
            if r == Response::Ok {
                admitted += 1;
            } else {
                assert_eq!(r, Response::Overloaded);
            }
        }
        assert!((1..=16).contains(&admitted), "admitted {admitted}");
        assert!(svc.metrics().shed.load(Ordering::Relaxed) >= 84);
        svc.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn kill_answers_abandoned_work_with_aborted() {
        let svc = PacService::start(
            MapIndex {
                op_delay: Some(Duration::from_millis(10)),
                ..Default::default()
            },
            ServiceConfig {
                shards: 1,
                batch_max: 1,
                queue_capacity: 64,
                ..ServiceConfig::named("svc-kill", 1)
            },
        );
        // The first op occupies the worker; the rest sit in the queue.
        let sets: Vec<_> = (0..16u64)
            .map(|i| {
                svc.submit(
                    vec![Request::Put {
                        key: i.to_be_bytes().to_vec(),
                        value: i,
                    }],
                    None,
                )
            })
            .collect();
        svc.kill();
        // kill() must fill every admitted slot before returning, so these
        // waits return instead of hanging forever (`wait` has no timeout).
        let mut aborted = 0;
        for rs in sets {
            assert!(rs.is_done(), "kill left a slot unanswered");
            for r in rs.wait() {
                match r {
                    Response::Ok => {}
                    Response::Aborted => aborted += 1,
                    other => panic!("unexpected reply after kill: {other:?}"),
                }
            }
        }
        assert!(aborted > 0, "kill with a busy worker must abandon work");
        // Post-kill calls shed immediately instead of blocking.
        assert_eq!(
            svc.call(Request::Get { key: b"x".to_vec() }),
            Response::Overloaded
        );
    }

    #[test]
    fn handle_frame_roundtrip_and_malformed() {
        use crate::wire::{decode_frame, encode_frame, Frame};
        let svc = PacService::start(MapIndex::default(), ServiceConfig::named("svc-frame", 2));
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Request {
                id: 42,
                trace: TraceCtx::UNTRACED,
                reqs: vec![
                    Request::Put {
                        key: b"k".to_vec(),
                        value: 5,
                    },
                    Request::Get { key: b"k".to_vec() },
                ],
            },
            &mut buf,
        );
        let out = svc.handle_frame(&buf);
        let (reply, _) = decode_frame(&out).unwrap();
        assert_eq!(
            reply,
            Frame::Reply {
                id: 42,
                resps: vec![Response::Ok, Response::Value(Some(5))]
            }
        );
        // Ping -> Pong.
        buf.clear();
        encode_frame(&Frame::Ping { id: 9 }, &mut buf);
        let (pong, _) = decode_frame(&svc.handle_frame(&buf)).unwrap();
        assert_eq!(pong, Frame::Pong { id: 9 });
        // Garbage -> Malformed reply, id 0.
        let (mal, _) =
            decode_frame(&svc.handle_frame(b"garbage-bytes-here-longer-than-header")).unwrap();
        assert_eq!(
            mal,
            Frame::Reply {
                id: 0,
                resps: vec![Response::Malformed]
            }
        );
        svc.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn stats_frame_answers_with_live_json() {
        use crate::wire::{decode_frame, encode_frame, Frame};
        let svc = PacService::start(MapIndex::default(), ServiceConfig::named("svc-stats", 1));
        svc.call(Request::Put {
            key: b"s".to_vec(),
            value: 1,
        });
        let mut buf = Vec::new();
        encode_frame(&Frame::Stats { id: 77 }, &mut buf);
        let (reply, _) = decode_frame(&svc.handle_frame(&buf)).unwrap();
        match reply {
            Frame::StatsReply { id, json } => {
                assert_eq!(id, 77);
                assert!(
                    json.starts_with("{\"schema\":\"pacsrv_stats/v1\""),
                    "{json}"
                );
                assert!(json.contains("\"name\":\"svc-stats\""), "{json}");
                assert!(json.contains("\"completed\":1"), "{json}");
                assert!(json.contains("\"traces\":{"), "{json}");
            }
            other => panic!("expected stats reply, got {other:?}"),
        }
        svc.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn health_frame_answers_with_prometheus_text() {
        use crate::wire::{decode_frame, encode_frame, Frame};
        let svc = PacService::start(MapIndex::default(), ServiceConfig::named("svc-health", 1));
        svc.call(Request::Put {
            key: b"h".to_vec(),
            value: 1,
        });
        let mut buf = Vec::new();
        encode_frame(&Frame::Health { id: 31 }, &mut buf);
        let (reply, _) = decode_frame(&svc.handle_frame(&buf)).unwrap();
        match reply {
            Frame::HealthReply { id, text } => {
                assert_eq!(id, 31);
                assert!(
                    text.contains("# TYPE obsv_scrape_timestamp_ns gauge"),
                    "{text}"
                );
                assert!(text.contains("svc_health_queue_depth"), "{text}");
                // No SLO engine attached: no slo families yet.
                assert!(!text.contains("slo_firing"), "{text}");
            }
            other => panic!("expected health reply, got {other:?}"),
        }
        // Attach an SLO engine; its states join the scrape.
        let tsdb = obsv::Tsdb::new(16);
        let engine = obsv::SloEngine::new(
            tsdb,
            vec![obsv::SloSpec::ratio(
                "svc-health-shed",
                "svc-health.shed.total",
                "svc-health.admitted.total",
                0.01,
            )],
        );
        svc.set_slo_engine(engine);
        let (reply, _) = decode_frame(&svc.handle_frame(&buf)).unwrap();
        match reply {
            Frame::HealthReply { text, .. } => {
                assert!(
                    text.contains("slo_firing{slo=\"svc-health-shed\"} 0"),
                    "{text}"
                );
                assert!(
                    text.contains("slo_burn_rate{slo=\"svc-health-shed\",window=\"fast\"}"),
                    "{text}"
                );
            }
            other => panic!("expected health reply, got {other:?}"),
        }
        svc.shutdown(Duration::from_secs(5));
    }
}
