//! Transports: zero-copy in-process and TCP over `std::net`.
//!
//! Both feed the same [`PacService`] submission path, and the TCP path
//! reuses the exact bytes the in-process codec path produces, so the cost
//! ladder is measurable in isolation:
//!
//! 1. [`LocalClient::call_direct`] — no codec, no socket: request structs
//!    move straight into the shard queues (the zero-copy transport);
//! 2. [`LocalClient::call`] — encode + checksum + decode, no socket
//!    (protocol cost);
//! 3. [`TcpClient::call`] — the same frames over a loopback/real socket
//!    (protocol + network cost).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use obsv::trace::TraceCtx;
use ycsb::RangeIndex;

use crate::service::PacService;
use crate::wire::{
    decode_frame, encode_frame, encode_frame_versioned, Frame, MigrateOp, PartitionMap, Request,
    Response, WireError, VERSION,
};

/// The server-side contract a TCP front-end serves: one wire frame in, one
/// reply frame out (both as raw bytes). [`PacService`] answers directly;
/// [`crate::cluster::ClusterNode`] wraps a service with partition-ownership
/// checks before delegating. `health_text` feeds the plain-HTTP
/// [`HealthServer`].
pub trait FrameHandler: Send + Sync + 'static {
    /// Decodes `bytes`, executes, and returns the encoded reply frame.
    fn handle_frame(&self, bytes: &[u8]) -> Vec<u8>;

    /// The Prometheus text document the health endpoint serves.
    fn health_text(&self) -> String;
}

impl<I: RangeIndex + Clone + 'static> FrameHandler for PacService<I> {
    fn handle_frame(&self, bytes: &[u8]) -> Vec<u8> {
        PacService::handle_frame(self, bytes)
    }

    fn health_text(&self) -> String {
        PacService::health_text(self)
    }
}

impl<H: FrameHandler> FrameHandler for Arc<H> {
    fn handle_frame(&self, bytes: &[u8]) -> Vec<u8> {
        H::handle_frame(self, bytes)
    }

    fn health_text(&self) -> String {
        H::health_text(self)
    }
}

/// In-process client: submits to the service on the caller's thread.
pub struct LocalClient<I: RangeIndex + Clone + 'static> {
    service: Arc<PacService<I>>,
    buf: Vec<u8>,
}

impl<I: RangeIndex + Clone + 'static> LocalClient<I> {
    pub fn new(service: Arc<PacService<I>>) -> Self {
        LocalClient {
            service,
            buf: Vec::with_capacity(4096),
        }
    }

    /// Zero-copy path: no encode/decode, requests move into the queues.
    pub fn call_direct(&self, reqs: Vec<Request>) -> Vec<Response> {
        self.service.submit(reqs, None).wait()
    }

    /// Codec path: the request batch is encoded to wire bytes, handed to
    /// the server's shared frame handler, and the reply frame is decoded —
    /// everything a TCP round-trip does except the socket.
    pub fn call(&mut self, reqs: Vec<Request>) -> Vec<Response> {
        self.buf.clear();
        let id = self.service.next_frame_id();
        // Untraced on the wire: the service stamps its own context, the
        // same as call_direct (tracing covers both transports equally).
        encode_frame(
            &Frame::Request {
                id,
                trace: TraceCtx::UNTRACED,
                reqs,
            },
            &mut self.buf,
        );
        let out = self.service.handle_frame(&self.buf);
        match decode_frame(&out) {
            Ok((Frame::Reply { id: rid, resps }, _)) if rid == id => resps,
            _ => vec![Response::Malformed],
        }
    }
}

/// A TCP front-end for a service: an accept loop plus one handler thread
/// per connection (the heavy lifting stays in the shard workers).
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// Joins (and drops) every finished handle in `conns`, keeping the live
/// ones. Called by the accept loop before each new connection so handles
/// of long-gone connections don't accumulate for the server's lifetime.
fn reap_finished(conns: &Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let mut conns = conns.lock().unwrap();
    let mut i = 0;
    while i < conns.len() {
        if conns[i].is_finished() {
            let _ = conns.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn start<H: FrameHandler>(
        service: Arc<H>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<TcpServer> {
        TcpServer::serve(service, TcpListener::bind(addr)?)
    }

    /// Starts accepting on an already-bound listener. Lets callers learn an
    /// ephemeral port before constructing the frame handler — the cluster
    /// fixtures bind first, build the partition map from the bound
    /// addresses, then attach the nodes.
    pub fn serve<H: FrameHandler>(
        service: Arc<H>,
        listener: TcpListener,
    ) -> std::io::Result<TcpServer> {
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conns2 = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("pacsrv-accept".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Reap before growing: the handle list stays
                            // proportional to *live* connections, not to
                            // every connection ever accepted.
                            reap_finished(&conns2);
                            let service = Arc::clone(&service);
                            let stop = Arc::clone(&stop2);
                            let h = std::thread::Builder::new()
                                .name("pacsrv-conn".to_string())
                                .spawn(move || {
                                    let _ = handle_conn(stream, &service, &stop);
                                })
                                .expect("spawn conn handler");
                            conns2.lock().unwrap().push(h);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
                for h in conns2.lock().unwrap().drain(..) {
                    let _ = h.join();
                }
            })?;
        Ok(TcpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Handler threads whose connections are still open (reaps finished
    /// ones first). Primarily for tests and the stats endpoint.
    pub fn open_conns(&self) -> usize {
        reap_finished(&self.conns);
        self.conns.lock().unwrap().len()
    }

    /// Stops accepting and joins the accept loop (open connections finish
    /// their current frame, then see EOF/closed sockets).
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Per-connection loop: accumulate bytes, peel off complete frames, answer
/// each through the shared frame path. Returns on EOF, socket error, or
/// server stop.
fn handle_conn<H: FrameHandler>(
    mut stream: TcpStream,
    service: &H,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut acc: Vec<u8> = Vec::with_capacity(8192);
    let mut chunk = [0u8; 8192];
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(()), // EOF
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) => return Err(e),
        }
        let mut consumed = 0;
        while consumed < acc.len() {
            match decode_frame(&acc[consumed..]) {
                Ok((_, n)) => {
                    let reply = service.handle_frame(&acc[consumed..consumed + n]);
                    stream.write_all(&reply)?;
                    consumed += n;
                }
                Err(WireError::Incomplete { .. }) => break,
                Err(_) => {
                    // Unrecoverable framing error: answer once, drop the
                    // connection (we cannot resynchronize a corrupt stream).
                    let reply = service.handle_frame(&acc[consumed..]);
                    stream.write_all(&reply)?;
                    return Ok(());
                }
            }
        }
        acc.drain(..consumed);
    }
}

/// A plain-TCP health endpoint speaking just enough HTTP that `curl`
/// and Prometheus can scrape a running server without the binary wire
/// protocol: any request line starting with `GET` is answered with a
/// `200 OK` carrying [`PacService::health_text`] in the Prometheus text
/// exposition format, then the connection closes (HTTP/1.0 style).
/// Anything else gets a `400`. One scrape = one connection; handled
/// inline on the accept thread, which is fine at scrape cadence.
pub struct HealthServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HealthServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts answering scrapes.
    pub fn start<H: FrameHandler>(
        service: Arc<H>,
        addr: impl ToSocketAddrs,
    ) -> std::io::Result<HealthServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("pacsrv-health".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let _ = answer_scrape(stream, &service);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(HealthServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins the accept thread.
    pub fn stop(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HealthServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Answers one HTTP-style scrape on `stream` and closes it. Reads until
/// the request's blank line (tolerating a bare `GET /metrics` with no
/// headers from hand-rolled pollers) under a short timeout, so a stalled
/// client cannot wedge the accept loop for long.
fn answer_scrape<H: FrameHandler>(mut stream: TcpStream, service: &H) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut req = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Enough to classify: a full request line plus optional headers.
        if req.windows(2).any(|w| w == b"\n\n") || req.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if req.len() >= 8192 {
            break; // refuse to buffer an unbounded request
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => req.extend_from_slice(&chunk[..n]),
            // A poller that sends `GET /metrics\n` and then just waits for
            // the reply never sends a blank line: answer on timeout too.
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if req.contains(&b'\n') {
                    break;
                }
                return Ok(()); // nothing readable at all: drop it
            }
            Err(e) => return Err(e),
        }
    }
    let reply = if req.starts_with(b"GET") {
        let body = service.health_text();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        "HTTP/1.0 400 Bad Request\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_string()
    };
    stream.write_all(reply.as_bytes())?;
    stream.flush()
}

/// A blocking TCP client speaking one frame at a time.
pub struct TcpClient {
    stream: TcpStream,
    /// The resolved peer address, kept for transparent reconnects.
    addr: SocketAddr,
    acc: Vec<u8>,
    next_id: u64,
    wire_version: u8,
    trace: TraceCtx,
}

impl TcpClient {
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(TcpClient {
            stream,
            addr,
            acc: Vec::with_capacity(8192),
            next_id: 1,
            wire_version: VERSION,
            trace: TraceCtx::UNTRACED,
        })
    }

    /// The peer this client dials (and re-dials on reconnect).
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the broken stream with a fresh connection to the same
    /// peer, discarding any half-received reply bytes.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.acc.clear();
        Ok(())
    }

    /// Encodes outgoing frames at `version` (within
    /// [`crate::wire::MIN_VERSION`]`..=`[`VERSION`]) — how the compat tests
    /// exercise a v1 client against a v2 server.
    pub fn set_wire_version(&mut self, version: u8) {
        self.wire_version = version;
    }

    /// Trace context stamped into subsequent [`call`](Self::call)s (v2
    /// frames only; v1 cannot carry one). Use
    /// [`obsv::trace::stamp_forced`] to trace a specific request
    /// end-to-end.
    pub fn set_trace(&mut self, ctx: TraceCtx) {
        self.trace = ctx;
    }

    fn roundtrip(&mut self, frame: &Frame) -> std::io::Result<Frame> {
        let mut buf = Vec::with_capacity(256);
        encode_frame_versioned(frame, self.wire_version, &mut buf);
        self.stream.write_all(&buf)?;
        let mut chunk = [0u8; 8192];
        loop {
            match decode_frame(&self.acc) {
                Ok((reply, n)) => {
                    self.acc.drain(..n);
                    return Ok(reply);
                }
                Err(WireError::Incomplete { .. }) => {}
                Err(e) => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("bad reply frame: {e}"),
                    ))
                }
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(ErrorKind::UnexpectedEof.into());
            }
            self.acc.extend_from_slice(&chunk[..n]);
        }
    }

    /// Sends one request batch and waits for its replies.
    pub fn call(&mut self, reqs: Vec<Request>) -> std::io::Result<Vec<Response>> {
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.trace;
        match self.roundtrip(&Frame::Request { id, trace, reqs })? {
            Frame::Reply { id: rid, resps } if rid == id => Ok(resps),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Whether a connection failure mid-call may hide a half-delivered
    /// request (vs. definitely-broken-before or definitely-broken-after).
    fn is_conn_broken(e: &std::io::Error) -> bool {
        matches!(
            e.kind(),
            ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
                | ErrorKind::UnexpectedEof
        )
    }

    /// Like [`call`](Self::call), but if the connection broke mid-call
    /// **and every request in the batch is an idempotent read**
    /// (`Get`/`Scan`/`ScanAt`), reconnects once and resends. The returned
    /// flag is `true` iff a retry happened (`RetriedOnce`), so callers can
    /// count failovers. Batches containing writes are NEVER silently
    /// retried — a broken connection surfaces as the error, because the
    /// server may or may not have executed the write.
    pub fn call_idempotent(
        &mut self,
        reqs: Vec<Request>,
    ) -> std::io::Result<(Vec<Response>, bool)> {
        let idempotent = reqs.iter().all(|r| {
            matches!(
                r,
                Request::Get { .. } | Request::Scan { .. } | Request::ScanAt { .. }
            )
        });
        if !idempotent {
            return self.call(reqs).map(|resps| (resps, false));
        }
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.trace;
        let frame = Frame::Request { id, trace, reqs };
        let reply = match self.roundtrip(&frame) {
            Ok(reply) => return Self::expect_reply(reply, id).map(|resps| (resps, false)),
            Err(e) if Self::is_conn_broken(&e) => {
                self.reconnect()?;
                self.roundtrip(&frame)?
            }
            Err(e) => return Err(e),
        };
        Self::expect_reply(reply, id).map(|resps| (resps, true))
    }

    fn expect_reply(reply: Frame, id: u64) -> std::io::Result<Vec<Response>> {
        match reply {
            Frame::Reply { id: rid, resps } if rid == id => Ok(resps),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected reply {other:?}"),
            )),
        }
    }

    /// Fetches the node's currently installed partition map (wire v4 only).
    /// Carries the client's trace context so a map refresh triggered inside
    /// a traced request stays attributed to that trace.
    pub fn fetch_map(&mut self) -> std::io::Result<PartitionMap> {
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.trace;
        match self.roundtrip(&Frame::MapFetch { id, trace })? {
            Frame::MapReply { id: rid, map } if rid == id => Ok(map),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected map reply {other:?}"),
            )),
        }
    }

    /// Sends one migration control operation (wire v4 only) and returns
    /// the node's `(ok, detail)` answer.
    pub fn migrate(&mut self, op: MigrateOp) -> std::io::Result<(bool, String)> {
        let id = self.next_id;
        self.next_id += 1;
        let trace = self.trace;
        match self.roundtrip(&Frame::Migrate { id, trace, op })? {
            Frame::MigrateReply {
                id: rid,
                ok,
                detail,
            } if rid == id => Ok((ok, detail)),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected migrate reply {other:?}"),
            )),
        }
    }

    /// Fetches the server's live-stats JSON document (wire v2 only).
    pub fn stats(&mut self) -> std::io::Result<String> {
        let id = self.next_id;
        self.next_id += 1;
        match self.roundtrip(&Frame::Stats { id })? {
            Frame::StatsReply { id: rid, json } if rid == id => Ok(json),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected stats reply {other:?}"),
            )),
        }
    }

    /// Fetches the server's health document — a Prometheus-text-format
    /// metrics scrape with SLO alert states (wire v3 only).
    pub fn health(&mut self) -> std::io::Result<String> {
        let id = self.next_id;
        self.next_id += 1;
        match self.roundtrip(&Frame::Health { id })? {
            Frame::HealthReply { id: rid, text } if rid == id => Ok(text),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected health reply {other:?}"),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        let id = self.next_id;
        self.next_id += 1;
        match self.roundtrip(&Frame::Ping { id })? {
            Frame::Pong { id: rid } if rid == id => Ok(()),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("unexpected pong {other:?}"),
            )),
        }
    }
}
