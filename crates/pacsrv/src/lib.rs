//! pacsrv — a sharded, batched request service ("pacd") for the PAC indexes.
//!
//! The embedded benchmarks drive indexes as libraries; real deployments put
//! an index behind a service boundary. This crate is that boundary, built to
//! keep the PAC guidelines intact end to end:
//!
//! * **Sharding** ([`service`]) — thread-per-core workers, requests routed
//!   by key hash so per-key FIFO order is preserved and shard state stays
//!   core-local.
//! * **Batching** ([`queue`]) — bounded per-shard queues drained up to a
//!   configurable batch size per wakeup; one epoch pin and one clock read
//!   per operation are amortized across the drained batch.
//! * **Admission control** — a debt-free token-bucket ingress throttle plus
//!   bounded queues; overload answers [`wire::Response::Overloaded`]
//!   immediately instead of letting queues grow, and per-op deadlines drop
//!   expired work with [`wire::Response::DeadlineExceeded`].
//! * **Wire codec** ([`wire`]) — compact, versioned, checksummed binary
//!   frames usable over TCP or in process.
//! * **Transports** ([`transport`]) — a zero-copy in-process client, a
//!   codec-path in-process client, and a `std::net` TCP server/client pair
//!   sharing one frame handler.
//! * **Health exposition** — a v3 `Health`/`HealthReply` frame pair and a
//!   plain-TCP [`transport::HealthServer`] answering `GET` with the live
//!   registry plus SLO alert states in Prometheus text format, so `curl`
//!   (or `pacsrv-top`) can scrape a running server.
//! * **Lifecycle** — graceful drain-on-shutdown via the index's `drain`
//!   hook, or [`service::PacService::kill`] to simulate an abrupt crash for
//!   recovery testing.
//!
//! * **Clustering** ([`cluster`]) — a range-partitioned key space across
//!   multiple nodes: a versioned [`wire::PartitionMap`] with an epoch
//!   number, per-node ownership enforcement answering
//!   [`wire::Response::WrongPartition`] (v4), a map-caching
//!   [`cluster::RouterClient`], and live partition migration built on the
//!   MVCC snapshot/diff primitives.
//!
//! Metrics ([`metrics`]) feed the always-on `obsv` registry, so `pacsrv`
//! runs show up in the same flight-recorder/report pipeline as embedded
//! runs.

pub mod cluster;
pub mod metrics;
pub mod queue;
pub mod reply;
pub mod service;
pub mod transport;
pub mod wire;

pub use cluster::{ClusterNode, MigrationReport, RouterClient};
pub use metrics::ServiceMetrics;
pub use queue::{BatchQueue, PopStatus};
pub use reply::ReplySet;
pub use service::{PacService, ServiceConfig};
pub use transport::{FrameHandler, HealthServer, LocalClient, TcpClient, TcpServer};
pub use wire::{
    decode_frame, encode_frame, Frame, MigrateOp, Partition, PartitionMap, Request, Response,
    WireError,
};
