//! Completion slots connecting submitters to shard workers.
//!
//! Every submitted batch gets one [`ReplySet`] with a slot per operation.
//! Operations fan out to different shards; each worker fills its slot on
//! completion and the last fill wakes the waiter. This is the zero-copy
//! in-process reply path — no channel per request, one `Arc` per batch.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use obsv::trace::{TraceCtx, TraceOutcome};

use crate::wire::Response;

struct State {
    replies: Vec<Option<Response>>,
    remaining: usize,
    /// Sampled trace context and root start time, if this batch is traced.
    /// The last [`complete`](ReplySet::complete) closes the root span —
    /// the mutex gives every worker's span a happens-before edge to that
    /// harvest.
    trace: Option<(TraceCtx, u64)>,
}

/// The root outcome a batch's replies imply, worst first: a kill beats a
/// deadline miss beats admission shedding beats a decode error.
fn worst_outcome(replies: &[Option<Response>]) -> TraceOutcome {
    let mut worst = TraceOutcome::Ok;
    for r in replies.iter().flatten() {
        let o = match r {
            Response::Aborted => TraceOutcome::Aborted,
            Response::DeadlineExceeded => TraceOutcome::DeadlineExceeded,
            Response::Overloaded => TraceOutcome::Overloaded,
            Response::Malformed => TraceOutcome::Error,
            _ => TraceOutcome::Ok,
        };
        if rank(o) > rank(worst) {
            worst = o;
        }
    }
    worst
}

fn rank(o: TraceOutcome) -> u8 {
    match o {
        TraceOutcome::Ok => 0,
        TraceOutcome::Error => 1,
        TraceOutcome::Overloaded => 2,
        TraceOutcome::DeadlineExceeded => 3,
        TraceOutcome::Aborted => 4,
    }
}

/// Completion state of one submitted batch.
pub struct ReplySet {
    state: Mutex<State>,
    cv: Condvar,
}

impl ReplySet {
    /// A set awaiting `n` replies.
    pub(crate) fn new(n: usize) -> Arc<ReplySet> {
        Arc::new(ReplySet {
            state: Mutex::new(State {
                replies: vec![None; n],
                remaining: n,
                trace: None,
            }),
            cv: Condvar::new(),
        })
    }

    /// Attaches a sampled trace context; the last `complete` then closes
    /// the root span with the batch's worst outcome. Must be called before
    /// any slot can complete (i.e. before the jobs are enqueued).
    pub(crate) fn set_trace(&self, ctx: TraceCtx, start_ns: u64) {
        self.state.lock().unwrap().trace = Some((ctx, start_ns));
    }

    /// Fills `slot`; the final fill wakes waiters. Filling a slot twice is
    /// a logic error and panics (each op has exactly one completer).
    pub(crate) fn complete(&self, slot: usize, resp: Response) {
        let mut st = self.state.lock().unwrap();
        assert!(st.replies[slot].is_none(), "slot {slot} completed twice");
        st.replies[slot] = Some(resp);
        st.remaining -= 1;
        if st.remaining == 0 {
            let trace = st.trace.take();
            let outcome = trace.map(|_| worst_outcome(&st.replies));
            drop(st);
            if let Some((ctx, start_ns)) = trace {
                // Every worker recorded its spans before its `complete`
                // call took this mutex, so the harvest sees them all.
                obsv::trace::finish_root(ctx, start_ns, outcome.unwrap());
            }
            self.cv.notify_all();
        }
    }

    /// Whether every slot has been filled.
    pub fn is_done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }

    /// Blocks until every slot is filled and returns the replies in
    /// operation order.
    pub fn wait(&self) -> Vec<Response> {
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.cv.wait(st).unwrap();
        }
        st.replies.iter().map(|r| r.unwrap()).collect()
    }

    /// Like [`wait`](Self::wait) with a bound; `None` on timeout (slots may
    /// still complete later — the set stays valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Vec<Response>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        while st.remaining > 0 {
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, res) = self.cv.wait_timeout(st, left).unwrap();
            st = guard;
            if res.timed_out() && st.remaining > 0 {
                return None;
            }
        }
        Some(st.replies.iter().map(|r| r.unwrap()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_in_any_order_and_wakes_waiter() {
        let rs = ReplySet::new(3);
        let rs2 = Arc::clone(&rs);
        let h = std::thread::spawn(move || rs2.wait());
        rs.complete(2, Response::Ok);
        rs.complete(0, Response::Value(Some(1)));
        assert!(!rs.is_done());
        rs.complete(1, Response::Overloaded);
        let replies = h.join().unwrap();
        assert_eq!(
            replies,
            vec![Response::Value(Some(1)), Response::Overloaded, Response::Ok]
        );
    }

    #[test]
    fn wait_timeout_expires_then_completes() {
        let rs = ReplySet::new(1);
        assert_eq!(rs.wait_timeout(Duration::from_millis(10)), None);
        rs.complete(0, Response::Ok);
        assert_eq!(
            rs.wait_timeout(Duration::from_millis(10)),
            Some(vec![Response::Ok])
        );
    }
}
