//! Bounded MPSC batch queue backing each shard.
//!
//! Producers are admission-controlled callers; the single consumer is the
//! shard's worker thread, which drains up to `batch_max` items per wakeup
//! (opportunistic batching: under light load batches are size 1 and
//! latency is one handoff; under heavy load batches grow toward the cap
//! and per-item overhead amortizes).
//!
//! The queue is the backpressure primitive: [`try_push`](BatchQueue::try_push)
//! never blocks and fails when the queue is at capacity, which the service
//! turns into an explicit `Overloaded` reply. Memory is therefore bounded
//! by `capacity * shards` jobs no matter the offered load.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why [`BatchQueue::pop_batch`] returned without items.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopStatus {
    /// `out` holds 1..=max items.
    Items,
    /// The queue is closed and fully drained (graceful shutdown), or was
    /// killed (abrupt shutdown; remaining items were handed back to the
    /// killer by [`BatchQueue::kill`]).
    Done,
}

struct Inner<T> {
    items: VecDeque<T>,
    /// No further pushes; consumer drains what remains.
    closed: bool,
    /// Consumer stops immediately, abandoning queued items.
    killed: bool,
}

/// A bounded multi-producer, single-consumer queue with batched pops.
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
    /// Mirror of `items.len()` readable without the lock (depth gauge).
    depth: AtomicUsize,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `capacity` items (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BatchQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(4096)),
                closed: false,
                killed: false,
            }),
            notify: Condvar::new(),
            capacity,
            depth: AtomicUsize::new(0),
        }
    }

    /// Non-blocking push. `Err(item)` when the queue is full or closed —
    /// the caller sheds the item instead of waiting.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.killed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        self.depth.store(inner.items.len(), Ordering::Relaxed);
        drop(inner);
        self.notify.notify_one();
        Ok(())
    }

    /// Blocks until items are available (or the queue is done), then moves
    /// up to `max` of them into `out`.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> PopStatus {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.killed || (inner.closed && inner.items.is_empty()) {
                return PopStatus::Done;
            }
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max.max(1));
                out.extend(inner.items.drain(..n));
                self.depth.store(inner.items.len(), Ordering::Relaxed);
                return PopStatus::Items;
            }
            inner = self.notify.wait(inner).unwrap();
        }
    }

    /// Graceful shutdown: rejects new pushes; the consumer drains the rest.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.notify.notify_all();
    }

    /// Abrupt shutdown: the consumer stops at its next wakeup, and the
    /// queued items it will never see are handed back to the killer
    /// (which must answer or drop them — they are no longer reachable
    /// through the queue, so leaving their completions unfilled would
    /// hang any thread waiting on them).
    #[must_use = "abandoned items carry reply slots that must be completed"]
    pub fn kill(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.killed = true;
        let abandoned: Vec<T> = inner.items.drain(..).collect();
        self.depth.store(0, Ordering::Relaxed);
        drop(inner);
        self.notify.notify_all();
        abandoned
    }

    /// Current queue depth (lock-free; may lag the truth by one update).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_and_batched_pop() {
        let q = BatchQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(99), Err(99), "fifth push must shed");
        assert_eq!(q.len(), 4);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(3, &mut out), PopStatus::Items);
        assert_eq!(out, vec![0, 1, 2], "drains up to max, FIFO");
        out.clear();
        assert_eq!(q.pop_batch(3, &mut out), PopStatus::Items);
        assert_eq!(out, vec![3]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn close_drains_then_done() {
        let q = BatchQueue::new(8);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2), "closed queue rejects pushes");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(8, &mut out), PopStatus::Items);
        assert_eq!(out, vec![1]);
        out.clear();
        assert_eq!(q.pop_batch(8, &mut out), PopStatus::Done);
    }

    #[test]
    fn kill_returns_abandoned_items_to_the_killer() {
        let q = BatchQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.kill(), vec![1, 2]);
        assert_eq!(q.len(), 0);
        assert_eq!(q.try_push(3), Err(3), "killed queue rejects pushes");
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(8, &mut out), PopStatus::Done);
        assert!(out.is_empty(), "killed queue hands out nothing");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            let s = q2.pop_batch(4, &mut out);
            (s, out)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7u32).unwrap();
        let (s, out) = h.join().unwrap();
        assert_eq!(s, PopStatus::Items);
        assert_eq!(out, vec![7]);
    }
}
