//! The pacsrv binary wire codec.
//!
//! One frame = a 20-byte header plus a length-prefixed payload:
//!
//! | offset | size | field                                              |
//! |--------|------|----------------------------------------------------|
//! | 0      | 2    | magic `0xAC51` (little-endian)                     |
//! | 2      | 1    | protocol version (1 through 4, see [`VERSION`])    |
//! | 3      | 1    | frame kind (1 request, 2 reply, 3 ping, 4 pong,    |
//! |        |      | 5 stats, 6 stats-reply — 5/6 are v2-only —         |
//! |        |      | 7 health, 8 health-reply — 7/8 are v3-only —       |
//! |        |      | 9 map-fetch, 10 map-reply, 11 migrate,             |
//! |        |      | 12 migrate-reply — 9..12 are v4-only)              |
//! | 4      | 8    | correlation id (echoed verbatim in the reply)      |
//! | 12     | 4    | payload length in bytes                            |
//! | 16     | 4    | CRC32 over bytes `0..16` plus the payload          |
//! | 20     | n    | payload                                            |
//!
//! All integers are little-endian. A request payload is a `u32` operation
//! count followed by that many operations (`Get`/`Put`/`Delete`/`Scan`,
//! each with a `u16`-length-prefixed key); a reply payload mirrors it with
//! one status per operation. Batching is therefore first-class at the frame
//! level: a frame with `count > 1` is the batch, and the reply preserves
//! operation order.
//!
//! ## Version 2: trace context and the stats endpoint
//!
//! A v2 request payload prepends a 13-byte trace block before the count:
//! `trace_id: u64`, `parent_span: u32`, `flags: u8` (bit 0 = sampled) —
//! the [`obsv::trace::TraceCtx`] the server records spans under. The
//! change is backward compatible both ways:
//!
//! * the decoder accepts version 1 and 2 frames side by side — a v1
//!   request simply decodes with [`TraceCtx::UNTRACED`] (the service then
//!   stamps its own fresh context, exactly as for local submissions);
//! * [`encode_frame_versioned`] can still emit v1 frames (dropping the
//!   trace block) for talking to old servers and for compat tests.
//!
//! v2 also adds the `Stats`/`StatsReply` frame pair (kinds 5/6): a live
//! introspection request answered with a JSON document (registry sample +
//! retained-trace digest + flight-recorder tail) without stopping the
//! server. Stats kinds inside a v1 frame are rejected as malformed.
//!
//! ## Version 3: snapshot operations
//!
//! v3 adds three operation tags to the request payload (and two status
//! tags to the reply payload) for PACTree's multi-version reads:
//!
//! * `Snapshot` (tag 5) — capture an O(1) point-in-time view; answered
//!   with `Snapshot(id)` (status tag 11);
//! * `ScanAt` (tag 6: `snap: u64`, key, `count: u32`) — a range scan
//!   served from the captured view, isolated from concurrent writers;
//!   answered with `ScanCount` like a plain scan, or `UnknownSnapshot`
//!   (status tag 13) if the id was never issued or already released;
//! * `ReleaseSnapshot` (tag 7: `snap: u64`) — drop the view so its pinned
//!   epochs and frozen nodes can be reclaimed; answered with
//!   `Released(bool)` (status tag 12).
//!
//! The framing is unchanged, so the compatibility story mirrors v2's: v1
//! and v2 frames decode exactly as before (none of them can carry the new
//! tags), a v3 server answers old clients with old-version replies, and
//! encoding a snapshot operation at version < 3 panics rather than
//! emitting bytes an old decoder would misread.
//!
//! v3 also adds the `Health`/`HealthReply` frame pair (kinds 7/8): a
//! scrape request answered with the server's live metrics in Prometheus
//! text exposition format (registry sample + SLO alert states), the same
//! document the plain-TCP health listener serves to `curl`. Health kinds
//! inside a v1/v2 frame are rejected as malformed, exactly like stats
//! kinds in v1.
//!
//! ## Version 4: cluster routing and live migration
//!
//! v4 makes the wire cluster-aware. A [`PartitionMap`] — an epoch number
//! plus a sorted list of `(partition id, start key, owner endpoint)`
//! entries covering the whole key space — travels in two new frame pairs:
//!
//! * `MapFetch`/`MapReply` (kinds 9/10) — a router bootstraps or refreshes
//!   its cached map from any node;
//! * `Migrate`/`MigrateReply` (kinds 11/12) — the migration control plane:
//!   a [`MigrateOp`] (`Start`, `ImportBegin`, `ImportEnd`, `ImportAbort`,
//!   `Install`) answered with an ok flag and a detail string.
//!
//! One status tag joins the reply payload: `WrongPartition { map_epoch }`
//! (tag 14) — the node does not own the key's partition under the map
//! epoch it reports. Like `Overloaded`, the operation was **never
//! executed**, so a router may refresh its map and resend (even writes)
//! without double-applying. Servers answering v1–v3 clients downgrade the
//! status to `Overloaded`, which those clients already treat as
//! retry-with-backoff.
//!
//! v4 also extends the trace block for cross-node stitching: after the
//! v2 fields (`trace_id: u64`, `parent_span: u32`, `flags: u8`) a v4
//! block appends `node: u16` (which node's spans the context attributes
//! to — the router stamps each fan-out copy with the target endpoint's
//! 1-based ordinal) and `hop: u8` (network hops taken; bumped per bounce
//! resend), for 16 bytes total. v2/v3 requests keep the 13-byte block
//! bit-for-bit, decoding with `node = 0, hop = 0`. The same 16-byte v4
//! block prepends `MapFetch` and `Migrate` payloads, so router map
//! refreshes and migration phases record under the request's trace
//! instead of a per-node re-stamp.
//!
//! The same bytes travel over TCP and through the in-process transport, so
//! benchmarks can isolate protocol cost (encode + checksum + decode) from
//! network cost by switching transports.

use obsv::trace::TraceCtx;

/// Protocol version this build speaks (and emits by default).
pub const VERSION: u8 = 4;

/// Oldest protocol version the decoder still accepts.
pub const MIN_VERSION: u8 = 1;

/// Frame magic (bytes `0x51 0xAC` on the wire).
pub const MAGIC: u16 = 0xAC51;

/// Header bytes before the payload.
pub const HEADER_LEN: usize = 20;

/// Upper bound on a payload: a decoder must be able to reject a corrupt
/// length field without attempting a giant allocation.
pub const MAX_PAYLOAD: usize = 16 << 20;

/// Upper bound on operations per frame.
pub const MAX_BATCH: usize = 1 << 16;

/// Upper bound on partitions in a wire-encoded [`PartitionMap`]: a decoder
/// must be able to reject a corrupt count without a giant allocation.
pub const MAX_PARTS: usize = 4096;

/// One entry of a [`PartitionMap`]: the half-open key range
/// `[start, next.start)` (the last partition is unbounded above) owned by
/// the node at `endpoint`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Stable partition id — survives ownership changes.
    pub id: u32,
    /// Inclusive lower bound of the partition's key range; the first
    /// partition's start is the empty key.
    pub start: Vec<u8>,
    /// `host:port` of the owning node's wire listener.
    pub endpoint: String,
}

/// A versioned assignment of the whole key space to node endpoints.
///
/// Entries are sorted by `start`; the key `k` belongs to the last
/// partition with `start <= k`. The `epoch` increments on every ownership
/// change and fences stale routers: a node answering `WrongPartition`
/// reports its epoch so the router knows whether refreshing can help.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    pub epoch: u64,
    pub parts: Vec<Partition>,
}

/// A migration control operation (v4 `Migrate` frame payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MigrateOp {
    /// Sent to the **source** node: move `partition` to the node at
    /// `target`, driving the whole bulk/delta/seal/flip state machine.
    Start { partition: u32, target: String },
    /// Source → target: accept writes for `partition` from now on (the
    /// bulk copy and delta replay arrive as ordinary `Put`/`Delete`).
    ImportBegin { partition: u32 },
    /// Source → target: the handoff is complete; adopt `map` (whose epoch
    /// names the target as the new owner) and drop import mode.
    ImportEnd { partition: u32, map: PartitionMap },
    /// Source → target: the migration failed before the handoff committed;
    /// drop import mode and discard the partial copy of the partition's
    /// range (it is fenced garbage a later retry must not resurrect).
    ImportAbort { partition: u32 },
    /// Best-effort map gossip to any node: adopt `map` if its epoch is
    /// newer than the locally installed one.
    Install { map: PartitionMap },
}

/// One client operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get { key: Vec<u8> },
    /// Upsert.
    Put { key: Vec<u8>, value: u64 },
    /// Delete.
    Delete { key: Vec<u8> },
    /// Range scan of up to `count` pairs from `start`.
    Scan { start: Vec<u8>, count: u32 },
    /// Capture an O(1) point-in-time view of the index (v3 only).
    Snapshot,
    /// Range scan served from a captured view instead of the live index
    /// (v3 only): snapshot-isolated from concurrent writers.
    ScanAt {
        snap: u64,
        start: Vec<u8>,
        count: u32,
    },
    /// Release a captured view so its resources can be reclaimed (v3 only).
    ReleaseSnapshot { snap: u64 },
}

impl Request {
    /// The key the request routes by (scans route by their start key;
    /// snapshot lifecycle ops carry no key and route to a fixed shard).
    pub fn key(&self) -> &[u8] {
        match self {
            Request::Get { key } | Request::Put { key, .. } | Request::Delete { key } => key,
            Request::Scan { start, .. } | Request::ScanAt { start, .. } => start,
            Request::Snapshot | Request::ReleaseSnapshot { .. } => &[],
        }
    }

    /// Whether this operation exists only in wire v3.
    pub fn requires_v3(&self) -> bool {
        matches!(
            self,
            Request::Snapshot | Request::ScanAt { .. } | Request::ReleaseSnapshot { .. }
        )
    }
}

/// One per-operation reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Response {
    /// Put acknowledged (the write is durable in the index).
    Ok,
    /// Get result.
    Value(Option<u64>),
    /// Delete result (the removed value, if the key existed).
    Removed(Option<u64>),
    /// Number of pairs a scan observed.
    ScanCount(u32),
    /// Shed at admission: queue full or ingress throttle empty. The
    /// operation was never executed; the client may retry with backoff.
    Overloaded,
    /// The operation's deadline passed while it sat in a queue; it was
    /// dropped without executing.
    DeadlineExceeded,
    /// The server was killed while the operation sat in a queue; it was
    /// never executed. Distinct from `Overloaded` so a client can tell
    /// "retry with backoff" from "the server is gone".
    Aborted,
    /// The server could not decode the operation.
    Malformed,
    /// A captured view's id, answering [`Request::Snapshot`] (v3 only).
    Snapshot(u64),
    /// Whether a [`Request::ReleaseSnapshot`] found and released its view
    /// (v3 only).
    Released(bool),
    /// A [`Request::ScanAt`] named a snapshot id that was never issued or
    /// was already released (v3 only). The operation executed; there was
    /// simply no view to serve it from.
    UnknownSnapshot,
    /// The node does not own the key's partition under the partition map
    /// epoch it reports (v4 only). The operation was never executed; the
    /// client should refresh its map (at least to `map_epoch`) and
    /// re-route — resending is safe, even for writes.
    WrongPartition { map_epoch: u64 },
}

impl Response {
    /// Whether this reply means the operation executed against the index.
    pub fn executed(&self) -> bool {
        !matches!(
            self,
            Response::Overloaded
                | Response::DeadlineExceeded
                | Response::Aborted
                | Response::Malformed
                | Response::WrongPartition { .. }
        )
    }

    /// Whether this status exists only in wire v3.
    pub fn requires_v3(&self) -> bool {
        matches!(
            self,
            Response::Snapshot(_) | Response::Released(_) | Response::UnknownSnapshot
        )
    }

    /// Whether this status exists only in wire v4.
    pub fn requires_v4(&self) -> bool {
        matches!(self, Response::WrongPartition { .. })
    }
}

/// A decoded frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A batch of operations to execute in order. `trace` is the request's
    /// trace context ([`TraceCtx::UNTRACED`] when decoded from a v1 frame
    /// or when nobody is tracing).
    Request {
        id: u64,
        trace: TraceCtx,
        reqs: Vec<Request>,
    },
    /// The batch's replies, one per operation, in operation order.
    Reply { id: u64, resps: Vec<Response> },
    /// Liveness probe.
    Ping { id: u64 },
    /// Liveness answer.
    Pong { id: u64 },
    /// Live-introspection request (v2 only).
    Stats { id: u64 },
    /// The stats answer: a JSON document (v2 only).
    StatsReply { id: u64, json: String },
    /// Health-scrape request (v3 only).
    Health { id: u64 },
    /// The health answer: a Prometheus-text-format document (v3 only).
    HealthReply { id: u64, text: String },
    /// Partition-map fetch request (v4 only). `trace` ties a router's
    /// mid-request map refresh to the request's trace
    /// ([`TraceCtx::UNTRACED`] for untraced control traffic).
    MapFetch { id: u64, trace: TraceCtx },
    /// The node's currently installed partition map (v4 only).
    MapReply { id: u64, map: PartitionMap },
    /// A migration control operation (v4 only). `trace` lets the source
    /// node record its migration-phase spans under the initiator's trace.
    Migrate {
        id: u64,
        trace: TraceCtx,
        op: MigrateOp,
    },
    /// The migration answer: success plus a human/machine detail string
    /// (v4 only).
    MigrateReply { id: u64, ok: bool, detail: String },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Request { .. } => 1,
            Frame::Reply { .. } => 2,
            Frame::Ping { .. } => 3,
            Frame::Pong { .. } => 4,
            Frame::Stats { .. } => 5,
            Frame::StatsReply { .. } => 6,
            Frame::Health { .. } => 7,
            Frame::HealthReply { .. } => 8,
            Frame::MapFetch { .. } => 9,
            Frame::MapReply { .. } => 10,
            Frame::Migrate { .. } => 11,
            Frame::MigrateReply { .. } => 12,
        }
    }

    /// The correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Request { id, .. }
            | Frame::Reply { id, .. }
            | Frame::Ping { id }
            | Frame::Pong { id }
            | Frame::Stats { id }
            | Frame::StatsReply { id, .. }
            | Frame::Health { id }
            | Frame::HealthReply { id, .. }
            | Frame::MapFetch { id, .. }
            | Frame::MapReply { id, .. }
            | Frame::Migrate { id, .. }
            | Frame::MigrateReply { id, .. } => *id,
        }
    }
}

/// Why a buffer failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes yet; `need` more would allow progress. Stream
    /// transports keep reading; datagram-style callers treat it as a
    /// truncated frame.
    Incomplete { need: usize },
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Version byte this build does not speak.
    BadVersion { got: u8 },
    /// The CRC32 did not match: the frame was corrupted in flight.
    BadChecksum,
    /// Structurally invalid (unknown kind/op tag, length field out of
    /// bounds, payload/count mismatch).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Incomplete { need } => write!(f, "incomplete frame: need {need} more bytes"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion { got } => write!(f, "unsupported version {got}"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// CRC32 (IEEE, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 of `parts` concatenated (IEEE polynomial, as used by gzip).
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = !0u32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over an immutable payload; every read is bounds-checked.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed("payload shorter than its fields"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn key(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u16()? as usize;
        Ok(self.take(len)?.to_vec())
    }
    fn str16(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| WireError::Malformed("string field is not UTF-8"))
    }
    fn map(&mut self) -> Result<PartitionMap, WireError> {
        let epoch = self.u64()?;
        let count = self.u32()? as usize;
        if count > MAX_PARTS {
            return Err(WireError::Malformed("partition count over MAX_PARTS"));
        }
        let mut parts = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            parts.push(Partition {
                id: self.u32()?,
                start: self.key()?,
                endpoint: self.str16()?,
            });
        }
        Ok(PartitionMap { epoch, parts })
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Writes `key` with its `u16` length prefix, refusing keys whose length
/// the prefix cannot represent (a truncated length would checksum fine
/// and then mis-parse on decode, far from the bug that caused it).
fn put_key(out: &mut Vec<u8>, key: &[u8]) {
    assert!(
        key.len() <= u16::MAX as usize,
        "key length {} exceeds the wire format's u16 limit",
        key.len()
    );
    put_u16(out, key.len() as u16);
    out.extend_from_slice(key);
}

/// Writes `s` with a `u16` length prefix, mirroring [`put_key`].
fn put_str(out: &mut Vec<u8>, s: &str) {
    assert!(
        s.len() <= u16::MAX as usize,
        "string length {} exceeds the wire format's u16 limit",
        s.len()
    );
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Writes a [`PartitionMap`], mirroring [`Reader::map`].
fn put_map(out: &mut Vec<u8>, map: &PartitionMap) {
    assert!(
        map.parts.len() <= MAX_PARTS,
        "map of {} partitions exceeds MAX_PARTS ({MAX_PARTS})",
        map.parts.len()
    );
    put_u64(out, map.epoch);
    put_u32(out, map.parts.len() as u32);
    for p in &map.parts {
        put_u32(out, p.id);
        put_key(out, &p.start);
        put_str(out, &p.endpoint);
    }
}

/// `flags` bit of a v2 trace block: the context is sampled.
const TRACE_FLAG_SAMPLED: u8 = 1;

/// Writes a trace block: 13 bytes through v3 (bit-for-bit the v2 layout),
/// 16 bytes from v4 (adds `node: u16`, `hop: u8`).
fn put_trace(out: &mut Vec<u8>, trace: &TraceCtx, version: u8) {
    put_u64(out, trace.trace_id);
    put_u32(out, trace.parent_span);
    out.push(if trace.sampled { TRACE_FLAG_SAMPLED } else { 0 });
    if version >= 4 {
        put_u16(out, trace.node);
        out.push(trace.hop);
    }
}

/// Reads a trace block, mirroring [`put_trace`].
fn read_trace(r: &mut Reader<'_>, version: u8) -> Result<TraceCtx, WireError> {
    let trace_id = r.u64()?;
    let parent_span = r.u32()?;
    let flags = r.u8()?;
    let (node, hop) = if version >= 4 {
        (r.u16()?, r.u8()?)
    } else {
        (0, 0)
    };
    Ok(TraceCtx {
        trace_id,
        parent_span,
        sampled: flags & TRACE_FLAG_SAMPLED != 0,
        node,
        hop,
    })
}

fn encode_payload(frame: &Frame, version: u8, out: &mut Vec<u8>) {
    match frame {
        Frame::Request { trace, reqs, .. } => {
            assert!(
                reqs.len() <= MAX_BATCH,
                "batch of {} requests exceeds MAX_BATCH ({MAX_BATCH})",
                reqs.len()
            );
            if version >= 2 {
                put_trace(out, trace, version);
            }
            put_u32(out, reqs.len() as u32);
            for r in reqs {
                match r {
                    Request::Get { key } => {
                        out.push(1);
                        put_key(out, key);
                    }
                    Request::Put { key, value } => {
                        out.push(2);
                        put_key(out, key);
                        put_u64(out, *value);
                    }
                    Request::Delete { key } => {
                        out.push(3);
                        put_key(out, key);
                    }
                    Request::Scan { start, count } => {
                        out.push(4);
                        put_key(out, start);
                        put_u32(out, *count);
                    }
                    Request::Snapshot => out.push(5),
                    Request::ScanAt { snap, start, count } => {
                        out.push(6);
                        put_u64(out, *snap);
                        put_key(out, start);
                        put_u32(out, *count);
                    }
                    Request::ReleaseSnapshot { snap } => {
                        out.push(7);
                        put_u64(out, *snap);
                    }
                }
            }
        }
        Frame::Reply { resps, .. } => {
            assert!(
                resps.len() <= MAX_BATCH,
                "batch of {} responses exceeds MAX_BATCH ({MAX_BATCH})",
                resps.len()
            );
            put_u32(out, resps.len() as u32);
            for r in resps {
                match r {
                    Response::Ok => out.push(1),
                    Response::Value(Some(v)) => {
                        out.push(2);
                        put_u64(out, *v);
                    }
                    Response::Value(None) => out.push(3),
                    Response::Removed(Some(v)) => {
                        out.push(4);
                        put_u64(out, *v);
                    }
                    Response::Removed(None) => out.push(5),
                    Response::ScanCount(n) => {
                        out.push(6);
                        put_u32(out, *n);
                    }
                    Response::Overloaded => out.push(7),
                    Response::DeadlineExceeded => out.push(8),
                    Response::Malformed => out.push(9),
                    Response::Aborted => out.push(10),
                    Response::Snapshot(id) => {
                        out.push(11);
                        put_u64(out, *id);
                    }
                    Response::Released(found) => {
                        out.push(12);
                        out.push(u8::from(*found));
                    }
                    Response::UnknownSnapshot => out.push(13),
                    Response::WrongPartition { map_epoch } => {
                        out.push(14);
                        put_u64(out, *map_epoch);
                    }
                }
            }
        }
        Frame::StatsReply { json, .. } => {
            assert!(
                json.len() <= MAX_PAYLOAD - 8,
                "stats JSON of {} bytes exceeds MAX_PAYLOAD",
                json.len()
            );
            put_u32(out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        Frame::HealthReply { text, .. } => {
            assert!(
                text.len() <= MAX_PAYLOAD - 8,
                "health text of {} bytes exceeds MAX_PAYLOAD",
                text.len()
            );
            put_u32(out, text.len() as u32);
            out.extend_from_slice(text.as_bytes());
        }
        Frame::MapReply { map, .. } => put_map(out, map),
        Frame::MapFetch { trace, .. } => put_trace(out, trace, version),
        Frame::Migrate { trace, op, .. } => {
            put_trace(out, trace, version);
            match op {
                MigrateOp::Start { partition, target } => {
                    out.push(1);
                    put_u32(out, *partition);
                    put_str(out, target);
                }
                MigrateOp::ImportBegin { partition } => {
                    out.push(2);
                    put_u32(out, *partition);
                }
                MigrateOp::ImportEnd { partition, map } => {
                    out.push(3);
                    put_u32(out, *partition);
                    put_map(out, map);
                }
                MigrateOp::Install { map } => {
                    out.push(4);
                    put_map(out, map);
                }
                MigrateOp::ImportAbort { partition } => {
                    out.push(5);
                    put_u32(out, *partition);
                }
            }
        }
        Frame::MigrateReply { ok, detail, .. } => {
            out.push(u8::from(*ok));
            put_str(out, detail);
        }
        Frame::Ping { .. } | Frame::Pong { .. } | Frame::Stats { .. } | Frame::Health { .. } => {}
    }
}

/// Appends the encoded frame to `out` at the current protocol version
/// ([`VERSION`]) and returns the encoded length.
///
/// # Panics
///
/// If the frame is unrepresentable on the wire — a key longer than
/// `u16::MAX` bytes or more than [`MAX_BATCH`] operations/statuses per
/// frame. These mirror the decoder's structural checks; encoding such a
/// frame would otherwise produce bytes whose CRC validates but whose
/// payload mis-parses, so the caller's bug is surfaced here instead.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) -> usize {
    encode_frame_versioned(frame, VERSION, out)
}

/// Like [`encode_frame`] with an explicit protocol version — how a client
/// talks to an old server (and how the compat tests produce genuine v1
/// bytes). Encoding a request at v1 drops its trace block.
///
/// # Panics
///
/// As [`encode_frame`]; additionally if `version` is outside
/// [`MIN_VERSION`]`..=`[`VERSION`] or the frame kind does not exist in
/// `version` (stats frames are v2-only).
pub fn encode_frame_versioned(frame: &Frame, version: u8, out: &mut Vec<u8>) -> usize {
    assert!(
        (MIN_VERSION..=VERSION).contains(&version),
        "cannot encode protocol version {version}"
    );
    assert!(
        version >= 2 || !matches!(frame, Frame::Stats { .. } | Frame::StatsReply { .. }),
        "stats frames are not representable in wire v1"
    );
    assert!(
        version >= 3 || !matches!(frame, Frame::Health { .. } | Frame::HealthReply { .. }),
        "health frames are not representable below wire v3"
    );
    assert!(
        version >= 4
            || !matches!(
                frame,
                Frame::MapFetch { .. }
                    | Frame::MapReply { .. }
                    | Frame::Migrate { .. }
                    | Frame::MigrateReply { .. }
            ),
        "cluster frames are not representable below wire v4"
    );
    let has_v3_op = match frame {
        Frame::Request { reqs, .. } => reqs.iter().any(Request::requires_v3),
        Frame::Reply { resps, .. } => resps.iter().any(Response::requires_v3),
        _ => false,
    };
    assert!(
        version >= 3 || !has_v3_op,
        "snapshot operations are not representable below wire v3"
    );
    let has_v4_status = match frame {
        Frame::Reply { resps, .. } => resps.iter().any(Response::requires_v4),
        _ => false,
    };
    assert!(
        version >= 4 || !has_v4_status,
        "cluster statuses are not representable below wire v4"
    );
    let start = out.len();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(version);
    out.push(frame.kind());
    out.extend_from_slice(&frame.id().to_le_bytes());
    let len_at = out.len();
    put_u32(out, 0); // payload length, patched below
    let crc_at = out.len();
    put_u32(out, 0); // crc, patched below
    let payload_at = out.len();
    encode_payload(frame, version, out);
    let payload_len = (out.len() - payload_at) as u32;
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    let crc = {
        let (head, rest) = out[start..].split_at(crc_at - start);
        crc32(&[head, &rest[4..]])
    };
    out[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

fn decode_payload(version: u8, kind: u8, id: u64, payload: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let frame = match kind {
        3 => Frame::Ping { id },
        4 => Frame::Pong { id },
        5 if version >= 2 => Frame::Stats { id },
        6 if version >= 2 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let json = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("stats JSON is not UTF-8"))?
                .to_string();
            Frame::StatsReply { id, json }
        }
        5 | 6 => return Err(WireError::Malformed("stats frames require wire v2")),
        7 if version >= 3 => Frame::Health { id },
        8 if version >= 3 => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed("health text is not UTF-8"))?
                .to_string();
            Frame::HealthReply { id, text }
        }
        7 | 8 => return Err(WireError::Malformed("health frames require wire v3")),
        9 if version >= 4 => Frame::MapFetch {
            id,
            trace: read_trace(&mut r, version)?,
        },
        10 if version >= 4 => Frame::MapReply { id, map: r.map()? },
        11 if version >= 4 => {
            let trace = read_trace(&mut r, version)?;
            let op = match r.u8()? {
                1 => MigrateOp::Start {
                    partition: r.u32()?,
                    target: r.str16()?,
                },
                2 => MigrateOp::ImportBegin {
                    partition: r.u32()?,
                },
                3 => MigrateOp::ImportEnd {
                    partition: r.u32()?,
                    map: r.map()?,
                },
                4 => MigrateOp::Install { map: r.map()? },
                5 => MigrateOp::ImportAbort {
                    partition: r.u32()?,
                },
                _ => return Err(WireError::Malformed("unknown migrate op tag")),
            };
            Frame::Migrate { id, trace, op }
        }
        12 if version >= 4 => {
            let ok = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("migrate ok flag is not 0/1")),
            };
            Frame::MigrateReply {
                id,
                ok,
                detail: r.str16()?,
            }
        }
        9..=12 => return Err(WireError::Malformed("cluster frames require wire v4")),
        1 => {
            let trace = if version >= 2 {
                read_trace(&mut r, version)?
            } else {
                // v1 carries no trace block: the server stamps its own
                // context, exactly as for local submissions.
                TraceCtx::UNTRACED
            };
            let count = r.u32()? as usize;
            if count > MAX_BATCH {
                return Err(WireError::Malformed("batch count over MAX_BATCH"));
            }
            let mut reqs = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let req = match r.u8()? {
                    1 => Request::Get { key: r.key()? },
                    2 => Request::Put {
                        key: r.key()?,
                        value: r.u64()?,
                    },
                    3 => Request::Delete { key: r.key()? },
                    4 => Request::Scan {
                        start: r.key()?,
                        count: r.u32()?,
                    },
                    5 if version >= 3 => Request::Snapshot,
                    6 if version >= 3 => Request::ScanAt {
                        snap: r.u64()?,
                        start: r.key()?,
                        count: r.u32()?,
                    },
                    7 if version >= 3 => Request::ReleaseSnapshot { snap: r.u64()? },
                    5..=7 => return Err(WireError::Malformed("snapshot ops require wire v3")),
                    _ => return Err(WireError::Malformed("unknown request op tag")),
                };
                reqs.push(req);
            }
            Frame::Request { id, trace, reqs }
        }
        2 => {
            let count = r.u32()? as usize;
            if count > MAX_BATCH {
                return Err(WireError::Malformed("batch count over MAX_BATCH"));
            }
            let mut resps = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let resp = match r.u8()? {
                    1 => Response::Ok,
                    2 => Response::Value(Some(r.u64()?)),
                    3 => Response::Value(None),
                    4 => Response::Removed(Some(r.u64()?)),
                    5 => Response::Removed(None),
                    6 => Response::ScanCount(r.u32()?),
                    7 => Response::Overloaded,
                    8 => Response::DeadlineExceeded,
                    9 => Response::Malformed,
                    10 => Response::Aborted,
                    11 if version >= 3 => Response::Snapshot(r.u64()?),
                    12 if version >= 3 => match r.u8()? {
                        0 => Response::Released(false),
                        1 => Response::Released(true),
                        _ => return Err(WireError::Malformed("released flag is not 0/1")),
                    },
                    13 if version >= 3 => Response::UnknownSnapshot,
                    11..=13 => {
                        return Err(WireError::Malformed("snapshot statuses require wire v3"))
                    }
                    14 if version >= 4 => Response::WrongPartition {
                        map_epoch: r.u64()?,
                    },
                    14 => return Err(WireError::Malformed("cluster statuses require wire v4")),
                    _ => return Err(WireError::Malformed("unknown response status tag")),
                };
                resps.push(resp);
            }
            Frame::Reply { id, resps }
        }
        _ => return Err(WireError::Malformed("unknown frame kind")),
    };
    if !r.done() {
        return Err(WireError::Malformed("trailing bytes after payload fields"));
    }
    Ok(frame)
}

/// Decodes one frame from the front of `buf`, returning it and the number
/// of bytes consumed. [`WireError::Incomplete`] means "read more and call
/// again" for stream transports.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Incomplete {
            need: HEADER_LEN - buf.len(),
        });
    }
    if u16::from_le_bytes([buf[0], buf[1]]) != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = buf[2];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::BadVersion { got: version });
    }
    let kind = buf[3];
    let id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let payload_len = u32::from_le_bytes(buf[12..16].try_into().unwrap()) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Malformed("payload length over MAX_PAYLOAD"));
    }
    let total = HEADER_LEN + payload_len;
    if buf.len() < total {
        return Err(WireError::Incomplete {
            need: total - buf.len(),
        });
    }
    let crc_stored = u32::from_le_bytes(buf[16..20].try_into().unwrap());
    let payload = &buf[HEADER_LEN..total];
    if crc32(&[&buf[..16], payload]) != crc_stored {
        return Err(WireError::BadChecksum);
    }
    Ok((decode_payload(version, kind, id, payload)?, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        let n = encode_frame(&frame, &mut buf);
        assert_eq!(n, buf.len());
        let (decoded, consumed) = decode_frame(&buf).expect("decode");
        assert_eq!(consumed, n);
        assert_eq!(decoded, frame);
    }

    #[test]
    fn roundtrip_every_frame_kind() {
        roundtrip(Frame::Ping { id: 7 });
        roundtrip(Frame::Pong { id: u64::MAX });
        roundtrip(Frame::Request {
            id: 1,
            trace: TraceCtx::UNTRACED,
            reqs: vec![
                Request::Get {
                    key: b"k1".to_vec(),
                },
                Request::Put {
                    key: vec![],
                    value: u64::MAX,
                },
                Request::Delete {
                    key: vec![0xFF; 300],
                },
                Request::Scan {
                    start: b"a".to_vec(),
                    count: 100,
                },
            ],
        });
        roundtrip(Frame::Reply {
            id: 2,
            resps: vec![
                Response::Ok,
                Response::Value(Some(0)),
                Response::Value(None),
                Response::Removed(Some(9)),
                Response::Removed(None),
                Response::ScanCount(42),
                Response::Overloaded,
                Response::DeadlineExceeded,
                Response::Aborted,
                Response::Malformed,
            ],
        });
    }

    #[test]
    #[should_panic(expected = "u16 limit")]
    fn encode_rejects_oversize_key() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Request {
                id: 1,
                trace: TraceCtx::UNTRACED,
                reqs: vec![Request::Get {
                    key: vec![0; u16::MAX as usize + 1],
                }],
            },
            &mut buf,
        );
    }

    #[test]
    #[should_panic(expected = "MAX_BATCH")]
    fn encode_rejects_oversize_batch() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Request {
                id: 1,
                trace: TraceCtx::UNTRACED,
                reqs: vec![Request::Get { key: vec![] }; MAX_BATCH + 1],
            },
            &mut buf,
        );
    }

    #[test]
    fn two_frames_back_to_back() {
        let mut buf = Vec::new();
        encode_frame(&Frame::Ping { id: 1 }, &mut buf);
        let first_len = buf.len();
        encode_frame(
            &Frame::Request {
                id: 2,
                trace: TraceCtx::UNTRACED,
                reqs: vec![Request::Get { key: b"x".to_vec() }],
            },
            &mut buf,
        );
        let (f1, n1) = decode_frame(&buf).unwrap();
        assert_eq!(f1, Frame::Ping { id: 1 });
        assert_eq!(n1, first_len);
        let (f2, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(f2.id(), 2);
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn rejects_corruption_truncation_and_bad_header() {
        let mut buf = Vec::new();
        encode_frame(
            &Frame::Request {
                id: 3,
                trace: TraceCtx::UNTRACED,
                reqs: vec![Request::Put {
                    key: b"key".to_vec(),
                    value: 11,
                }],
            },
            &mut buf,
        );
        // Truncation at every length short of the full frame.
        for cut in 0..buf.len() {
            assert!(
                matches!(decode_frame(&buf[..cut]), Err(WireError::Incomplete { .. })),
                "cut={cut}"
            );
        }
        // Any single flipped payload byte trips the checksum.
        for i in HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode_frame(&bad), Err(WireError::BadChecksum), "byte {i}");
        }
        // Bad magic / version are rejected before the checksum runs.
        let mut bad = buf.clone();
        bad[0] = 0;
        assert_eq!(decode_frame(&bad), Err(WireError::BadMagic));
        let mut bad = buf.clone();
        bad[2] = VERSION + 1;
        assert_eq!(
            decode_frame(&bad),
            Err(WireError::BadVersion { got: VERSION + 1 })
        );
    }

    #[test]
    fn roundtrip_stats_frames() {
        roundtrip(Frame::Stats { id: 99 });
        roundtrip(Frame::StatsReply {
            id: 99,
            json: r#"{"schema":"pacsrv_stats/v1","queue_depth":3}"#.to_string(),
        });
        roundtrip(Frame::StatsReply {
            id: 0,
            json: String::new(),
        });
    }

    #[test]
    fn roundtrip_sampled_trace_context() {
        roundtrip(Frame::Request {
            id: 5,
            trace: TraceCtx {
                trace_id: 0xDEAD_BEEF_CAFE_F00D,
                parent_span: 0x1234_5678,
                sampled: true,
                node: 3,
                hop: 2,
            },
            reqs: vec![Request::Get { key: b"k".to_vec() }],
        });
    }

    #[test]
    fn v4_trace_block_adds_node_and_hop() {
        let frame = Frame::Request {
            id: 6,
            trace: TraceCtx {
                trace_id: 11,
                parent_span: 22,
                sampled: true,
                node: 7,
                hop: 3,
            },
            reqs: vec![Request::Get { key: b"k".to_vec() }],
        };
        let mut v2 = Vec::new();
        let n2 = encode_frame_versioned(&frame, 2, &mut v2);
        let mut v4 = Vec::new();
        let n4 = encode_frame_versioned(&frame, 4, &mut v4);
        // The v4 block is exactly node (u16) + hop (u8) longer.
        assert_eq!(n4 - n2, 3);
        match decode_frame(&v4).unwrap().0 {
            Frame::Request { trace, .. } => {
                assert_eq!(trace.node, 7);
                assert_eq!(trace.hop, 3);
            }
            other => panic!("expected request, got {other:?}"),
        }
        // Down-versioned encodings drop node/hop but keep the v2 fields.
        match decode_frame(&v2).unwrap().0 {
            Frame::Request { trace, .. } => {
                assert_eq!(trace.trace_id, 11);
                assert_eq!(trace.parent_span, 22);
                assert!(trace.sampled);
                assert_eq!(trace.node, 0);
                assert_eq!(trace.hop, 0);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn v1_request_decodes_with_untraced_context() {
        let frame = Frame::Request {
            id: 8,
            trace: TraceCtx {
                trace_id: 42,
                parent_span: 7,
                sampled: true,
                node: 0,
                hop: 0,
            },
            reqs: vec![Request::Put {
                key: b"pk".to_vec(),
                value: 3,
            }],
        };
        let mut v1 = Vec::new();
        let n1 = encode_frame_versioned(&frame, 1, &mut v1);
        let mut v2 = Vec::new();
        let n2 = encode_frame_versioned(&frame, 2, &mut v2);
        // v1 bytes are exactly the trace block (13 bytes) shorter.
        assert_eq!(n2 - n1, 13);
        let (decoded, consumed) = decode_frame(&v1).expect("v1 frame decodes on a v2 build");
        assert_eq!(consumed, n1);
        match decoded {
            Frame::Request { id, trace, reqs } => {
                assert_eq!(id, 8);
                assert_eq!(trace, TraceCtx::UNTRACED);
                assert_eq!(
                    reqs,
                    vec![Request::Put {
                        key: b"pk".to_vec(),
                        value: 3,
                    }]
                );
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "stats frames are not representable in wire v1")]
    fn v1_cannot_encode_stats() {
        let mut buf = Vec::new();
        encode_frame_versioned(&Frame::Stats { id: 1 }, 1, &mut buf);
    }

    #[test]
    fn stats_kind_inside_v1_frame_is_malformed() {
        // Hand-build a v1 header claiming kind 5 (stats) with an empty
        // payload and a valid CRC: structurally impossible in v1.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(1); // version 1
        buf.push(5); // kind: stats
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&[&buf[..16]]);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("stats frames require wire v2"))
        );
    }

    #[test]
    fn roundtrip_snapshot_ops() {
        roundtrip(Frame::Request {
            id: 21,
            trace: TraceCtx::UNTRACED,
            reqs: vec![
                Request::Snapshot,
                Request::ScanAt {
                    snap: 7,
                    start: b"m".to_vec(),
                    count: 64,
                },
                Request::ReleaseSnapshot { snap: 7 },
            ],
        });
        roundtrip(Frame::Reply {
            id: 21,
            resps: vec![
                Response::Snapshot(7),
                Response::ScanCount(64),
                Response::UnknownSnapshot,
                Response::Released(true),
                Response::Released(false),
            ],
        });
    }

    #[test]
    fn v1_and_v2_frames_decode_on_a_v3_build() {
        // A v2 client's request (trace block, classic ops) and a v1
        // client's request must both decode bit-for-bit as before.
        let frame = Frame::Request {
            id: 31,
            trace: TraceCtx {
                trace_id: 9,
                parent_span: 4,
                sampled: true,
                node: 0,
                hop: 0,
            },
            reqs: vec![
                Request::Get { key: b"g".to_vec() },
                Request::Put {
                    key: b"p".to_vec(),
                    value: 2,
                },
                Request::Scan {
                    start: b"s".to_vec(),
                    count: 10,
                },
            ],
        };
        for version in [1u8, 2] {
            let mut buf = Vec::new();
            let n = encode_frame_versioned(&frame, version, &mut buf);
            assert_eq!(buf[2], version);
            let (decoded, consumed) = decode_frame(&buf).expect("old frame decodes");
            assert_eq!(consumed, n);
            match decoded {
                Frame::Request { id, trace, reqs } => {
                    assert_eq!(id, 31);
                    if version >= 2 {
                        assert!(trace.sampled);
                    } else {
                        assert_eq!(trace, TraceCtx::UNTRACED);
                    }
                    assert_eq!(reqs.len(), 3);
                }
                other => panic!("expected request, got {other:?}"),
            }
        }
        // Replies an old server could emit still decode too.
        let reply = Frame::Reply {
            id: 31,
            resps: vec![Response::Value(Some(2)), Response::Ok],
        };
        for version in [1u8, 2] {
            let mut buf = Vec::new();
            encode_frame_versioned(&reply, version, &mut buf);
            assert_eq!(decode_frame(&buf).unwrap().0, reply);
        }
    }

    #[test]
    #[should_panic(expected = "not representable below wire v3")]
    fn v2_cannot_encode_snapshot_ops() {
        let mut buf = Vec::new();
        encode_frame_versioned(
            &Frame::Request {
                id: 1,
                trace: TraceCtx::UNTRACED,
                reqs: vec![Request::Snapshot],
            },
            2,
            &mut buf,
        );
    }

    #[test]
    fn snapshot_tag_inside_v2_frame_is_malformed() {
        // Hand-build a v2 request whose payload smuggles op tag 5
        // (snapshot): structurally impossible below v3.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // trace id
        put_u32(&mut payload, 0); // parent span
        payload.push(0); // flags
        put_u32(&mut payload, 1); // count
        payload.push(5); // op tag: snapshot
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(2); // version 2
        buf.push(1); // kind: request
        buf.extend_from_slice(&9u64.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32(&[&buf[..16], &payload]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("snapshot ops require wire v3"))
        );
    }

    #[test]
    fn roundtrip_health_frames() {
        roundtrip(Frame::Health { id: 77 });
        roundtrip(Frame::HealthReply {
            id: 77,
            text: "# TYPE pacsrv_queue_depth gauge\npacsrv_queue_depth 3\n".to_string(),
        });
        roundtrip(Frame::HealthReply {
            id: 0,
            text: String::new(),
        });
    }

    #[test]
    #[should_panic(expected = "health frames are not representable below wire v3")]
    fn v2_cannot_encode_health() {
        let mut buf = Vec::new();
        encode_frame_versioned(&Frame::Health { id: 1 }, 2, &mut buf);
    }

    #[test]
    fn health_kind_inside_v2_frame_is_malformed() {
        // Hand-build a v2 header claiming kind 7 (health) with an empty
        // payload and a valid CRC: structurally impossible below v3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(2); // version 2
        buf.push(7); // kind: health
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&[&buf[..16]]);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("health frames require wire v3"))
        );
    }

    fn sample_map() -> PartitionMap {
        PartitionMap {
            epoch: 3,
            parts: vec![
                Partition {
                    id: 0,
                    start: vec![],
                    endpoint: "127.0.0.1:7000".to_string(),
                },
                Partition {
                    id: 1,
                    start: 500u64.to_be_bytes().to_vec(),
                    endpoint: "127.0.0.1:7001".to_string(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_cluster_frames() {
        let traced = TraceCtx {
            trace_id: 77,
            parent_span: 5,
            sampled: true,
            node: 2,
            hop: 1,
        };
        roundtrip(Frame::MapFetch {
            id: 40,
            trace: TraceCtx::UNTRACED,
        });
        roundtrip(Frame::MapFetch {
            id: 40,
            trace: traced,
        });
        roundtrip(Frame::MapReply {
            id: 40,
            map: sample_map(),
        });
        roundtrip(Frame::MapReply {
            id: 41,
            map: PartitionMap {
                epoch: 0,
                parts: vec![],
            },
        });
        roundtrip(Frame::Migrate {
            id: 42,
            trace: traced,
            op: MigrateOp::Start {
                partition: 1,
                target: "10.0.0.2:7000".to_string(),
            },
        });
        roundtrip(Frame::Migrate {
            id: 43,
            trace: TraceCtx::UNTRACED,
            op: MigrateOp::ImportBegin { partition: 1 },
        });
        roundtrip(Frame::Migrate {
            id: 44,
            trace: TraceCtx::UNTRACED,
            op: MigrateOp::ImportEnd {
                partition: 1,
                map: sample_map(),
            },
        });
        roundtrip(Frame::Migrate {
            id: 45,
            trace: TraceCtx::UNTRACED,
            op: MigrateOp::Install { map: sample_map() },
        });
        roundtrip(Frame::Migrate {
            id: 47,
            trace: TraceCtx::UNTRACED,
            op: MigrateOp::ImportAbort { partition: 1 },
        });
        roundtrip(Frame::MigrateReply {
            id: 46,
            ok: true,
            detail: r#"{"moved_pairs":128}"#.to_string(),
        });
        roundtrip(Frame::MigrateReply {
            id: 47,
            ok: false,
            detail: "not the owner".to_string(),
        });
    }

    #[test]
    fn roundtrip_wrong_partition_status() {
        roundtrip(Frame::Reply {
            id: 50,
            resps: vec![
                Response::Ok,
                Response::WrongPartition { map_epoch: 9 },
                Response::Value(None),
            ],
        });
    }

    #[test]
    #[should_panic(expected = "cluster frames are not representable below wire v4")]
    fn v3_cannot_encode_map_fetch() {
        let mut buf = Vec::new();
        encode_frame_versioned(
            &Frame::MapFetch {
                id: 1,
                trace: TraceCtx::UNTRACED,
            },
            3,
            &mut buf,
        );
    }

    #[test]
    #[should_panic(expected = "cluster statuses are not representable below wire v4")]
    fn v3_cannot_encode_wrong_partition() {
        let mut buf = Vec::new();
        encode_frame_versioned(
            &Frame::Reply {
                id: 1,
                resps: vec![Response::WrongPartition { map_epoch: 1 }],
            },
            3,
            &mut buf,
        );
    }

    #[test]
    fn cluster_kind_inside_v3_frame_is_malformed() {
        // Hand-build a v3 header claiming kind 9 (map-fetch) with an empty
        // payload and a valid CRC: structurally impossible below v4.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(3); // version 3
        buf.push(9); // kind: map-fetch
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32(&[&buf[..16]]);
        buf.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("cluster frames require wire v4"))
        );
    }

    #[test]
    fn wrong_partition_tag_inside_v3_frame_is_malformed() {
        // Hand-build a v3 reply smuggling status tag 14: structurally
        // impossible below v4.
        let mut payload = Vec::new();
        put_u32(&mut payload, 1); // count
        payload.push(14); // status tag: wrong-partition
        put_u64(&mut payload, 5); // map epoch
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(3); // version 3
        buf.push(2); // kind: reply
        buf.extend_from_slice(&9u64.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32(&[&buf[..16], &payload]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("cluster statuses require wire v4"))
        );
    }

    #[test]
    fn oversize_partition_count_is_malformed() {
        // A map claiming MAX_PARTS+1 entries must be rejected before any
        // attempt to materialize them.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // epoch
        put_u32(&mut payload, (MAX_PARTS + 1) as u32); // count
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(10); // kind: map-reply
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32(&[&buf[..16], &payload]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("partition count over MAX_PARTS"))
        );
    }

    #[test]
    fn non_utf8_endpoint_is_malformed() {
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // epoch
        put_u32(&mut payload, 1); // count
        put_u32(&mut payload, 0); // partition id
        put_u16(&mut payload, 0); // empty start key
        put_u16(&mut payload, 2); // endpoint length
        payload.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(10); // kind: map-reply
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let crc = crc32(&[&buf[..16], &payload]);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&payload);
        assert_eq!(
            decode_frame(&buf),
            Err(WireError::Malformed("string field is not UTF-8"))
        );
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
    }
}
