//! Service metrics wired into the `obsv` registry.
//!
//! All counters are plain relaxed atomics bumped by submitters and shard
//! workers; the registry pulls them through `Weak`-captured gauges so a
//! dropped service vanishes from samples instead of dangling. Registered
//! names (prefix = the service's configured name):
//!
//! * `{name}.queue.depth` — operations queued across all shards;
//! * `{name}.shed.total` — operations answered `Overloaded` at admission;
//! * `{name}.timeout.total` — operations dropped at their deadline;
//! * `{name}.admitted.total` / `{name}.completed.total`;
//! * `{name}.batch.mean` / `{name}.batch.p99` — drained-batch sizes;
//! * hist source `{name}` — per-op-kind *sojourn* latency (admission to
//!   completion, i.e. queue time + execution), the service-level
//!   distribution the tail experiments read p50/p99/p999 from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use obsv::hist::Histogram;
use obsv::{OpHistograms, Registration};

/// Counters and distributions of one service instance.
#[derive(Default)]
pub struct ServiceMetrics {
    /// Per-op-kind sojourn latency (admission -> completion), exact counts.
    pub ops: OpHistograms,
    /// Sizes of batches drained by shard workers.
    pub batch_sizes: Histogram,
    /// Operations accepted into a shard queue.
    pub admitted: AtomicU64,
    /// Operations shed at admission (bucket or full queue or not running).
    pub shed: AtomicU64,
    /// Operations dropped because their deadline expired in-queue.
    pub timeouts: AtomicU64,
    /// Operations executed against the index.
    pub completed: AtomicU64,
}

impl ServiceMetrics {
    /// Shed fraction of all admission decisions so far:
    /// `shed / (shed + admitted)`. Deadline timeouts are *not* included —
    /// a timed-out op was admitted (it is in the denominator) and is
    /// counted separately in [`timeouts`](Self::timeouts).
    pub fn shed_rate(&self) -> f64 {
        let shed = self.shed.load(Ordering::Relaxed) as f64;
        let total = shed + self.admitted.load(Ordering::Relaxed) as f64;
        if total == 0.0 {
            0.0
        } else {
            shed / total
        }
    }

    /// Registers every gauge/histogram of this service in the global obsv
    /// registry. `queue_len` extracts the live depth from one shard queue;
    /// the gauge sums it over `shards`. Returns the RAII registrations
    /// (drop = unregister).
    pub fn register<Q: Send + Sync + 'static>(
        name: &str,
        metrics: &Arc<ServiceMetrics>,
        shards: &Arc<Vec<Arc<Q>>>,
        queue_len: impl Fn(&Q) -> usize + Send + Sync + Copy + 'static,
    ) -> Vec<Registration> {
        let reg = obsv::global();
        let mut out = Vec::new();
        let shards_w: Weak<Vec<Arc<Q>>> = Arc::downgrade(shards);
        out.push(reg.register_gauge(format!("{name}.queue.depth"), move || {
            shards_w
                .upgrade()
                .map(|s| s.iter().map(|q| queue_len(q)).sum::<usize>() as f64)
        }));
        type Field = fn(&ServiceMetrics) -> &AtomicU64;
        let counters: [(&str, Field); 4] = [
            ("shed.total", |m| &m.shed),
            ("timeout.total", |m| &m.timeouts),
            ("admitted.total", |m| &m.admitted),
            ("completed.total", |m| &m.completed),
        ];
        for (suffix, field) in counters {
            let w = Arc::downgrade(metrics);
            out.push(reg.register_gauge(format!("{name}.{suffix}"), move || {
                w.upgrade()
                    .map(|m| field(&m).load(Ordering::Relaxed) as f64)
            }));
        }
        let w = Arc::downgrade(metrics);
        out.push(reg.register_gauge(format!("{name}.batch.mean"), move || {
            w.upgrade().map(|m| m.batch_sizes.snapshot().mean())
        }));
        let w = Arc::downgrade(metrics);
        out.push(reg.register_gauge(format!("{name}.batch.p99"), move || {
            w.upgrade()
                .map(|m| m.batch_sizes.snapshot().quantile(0.99) as f64)
        }));
        let w = Arc::downgrade(metrics);
        out.push(reg.register_hists(name.to_string(), move || {
            w.upgrade().map(|m| m.ops.snapshot())
        }));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_register_and_vanish_with_owner() {
        let metrics = Arc::new(ServiceMetrics::default());
        let shards: Arc<Vec<Arc<AtomicU64>>> = Arc::new(vec![
            Arc::new(AtomicU64::new(3)),
            Arc::new(AtomicU64::new(4)),
        ]);
        let regs = ServiceMetrics::register("pacsrv-test-metrics", &metrics, &shards, |q| {
            q.load(Ordering::Relaxed) as usize
        });
        metrics.shed.fetch_add(2, Ordering::Relaxed);
        metrics.batch_sizes.record(8);
        let s = obsv::global().sample();
        assert_eq!(s.gauges.get("pacsrv-test-metrics.queue.depth"), Some(&7.0));
        assert_eq!(s.gauges.get("pacsrv-test-metrics.shed.total"), Some(&2.0));
        assert!(s.gauges.contains_key("pacsrv-test-metrics.batch.mean"));
        assert!(s.hists.contains_key("pacsrv-test-metrics"));
        drop(regs);
        let s = obsv::global().sample();
        assert!(!s.gauges.contains_key("pacsrv-test-metrics.queue.depth"));
    }

    #[test]
    fn shed_rate_math() {
        let m = ServiceMetrics::default();
        assert_eq!(m.shed_rate(), 0.0);
        m.admitted.store(75, Ordering::Relaxed);
        m.shed.store(25, Ordering::Relaxed);
        assert!((m.shed_rate() - 0.25).abs() < 1e-9);
    }
}
