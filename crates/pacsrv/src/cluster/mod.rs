//! The cluster layer: range-partitioned multi-node pacsrv.
//!
//! One process = one [`ClusterNode`] wrapping one [`PacService`]. The node
//! holds the locally installed [`PartitionMap`] and enforces ownership at
//! the frame boundary: an operation whose key routes to a partition this
//! node does not own is answered [`Response::WrongPartition`] with the
//! installed map's epoch — **without executing it** — so a
//! [`RouterClient`] can refresh its cached map and resend safely.
//!
//! Ownership is per partition, with two modifiers:
//!
//! * **sealed** — a partition mid-migration on its source: still named in
//!   the map, but the source has stopped accepting writes for it (the
//!   final delta is being drained). Sealed-window operations bounce with
//!   the *current* epoch, telling routers "back off and retry" (the flip
//!   is imminent).
//! * **importing** — a partition mid-migration on its target: not yet
//!   named in the map, but the target accepts the bulk copy and delta
//!   replay (and any early-routed client writes) for it.
//!
//! Live migration ([`migrate`]) moves a partition between nodes with no
//! acked-write loss; the state machine and its crash points are documented
//! in DESIGN.md §15.

pub mod map;
pub mod migrate;
pub mod router;

pub use migrate::MigrationReport;
pub use router::RouterClient;

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use obsv::trace;
use obsv::Histogram;
use ycsb::RangeIndex;

use crate::service::PacService;
use crate::transport::FrameHandler;
use crate::wire::{self, Frame, MigrateOp, PartitionMap, Request, Response, MIN_VERSION, VERSION};

/// Migration phase gauge values (`<name>.cluster.migration.phase`).
pub const PHASE_IDLE: u8 = 0;
/// Bulk-copying a frozen snapshot of the partition to the target.
pub const PHASE_BULK: u8 = 1;
/// Replaying the writes that landed during the bulk copy.
pub const PHASE_DELTA: u8 = 2;
/// Partition sealed; draining in-flight ops and shipping the final delta.
pub const PHASE_SEAL: u8 = 3;
/// Installing and gossiping the flipped map.
pub const PHASE_FLIP: u8 = 4;

/// A migration phase observer (test hook): called with each phase gauge
/// value as the state machine enters it.
pub type PhaseHook = Arc<dyn Fn(u8) + Send + Sync>;

/// Per-partition load counters, maintained at the frame boundary for every
/// locally executed operation (bounced ops are not heat — they cost the
/// node a map lookup, not index work). Indexed by partition id; the
/// partition *count* is fixed for a map lineage (migrations move
/// ownership, they never split), so the vector never resizes.
struct HeatCell {
    ops: Arc<AtomicU64>,
    /// Approximate payload bytes: key length plus a fixed 9 (8-byte value
    /// word + op tag) per operation.
    bytes: Arc<AtomicU64>,
    /// Batch service latency observed by ops of this partition (each op
    /// records its whole batch's frame-boundary wall time — an upper
    /// bound, exact for single-partition batches).
    hist: Arc<Histogram>,
}

/// One partition's heat reading: `(ops, approx_bytes, p99_ns)`.
pub type PartitionHeat = (u64, u64, u64);

/// A partition-aware front for one [`PacService`] instance.
pub struct ClusterNode<I: RangeIndex + Clone + 'static> {
    service: Arc<PacService<I>>,
    endpoint: String,
    map: RwLock<Arc<PartitionMap>>,
    /// Source-side: partitions we still own in the map but no longer
    /// accept operations for (mid-migration seal window).
    sealed: Mutex<BTreeSet<u32>>,
    /// Target-side: partitions we accept operations for ahead of the map
    /// naming us (mid-migration import).
    importing: Mutex<BTreeSet<u32>>,
    /// Source-side: held for the whole of `migrate_out` so concurrent
    /// `MigrateOp::Start`s cannot build divergent same-epoch successor
    /// maps from one base (the second caller errs instead of racing).
    pub(crate) migrating: Mutex<()>,
    // Gauge cells, shared with the registry closures.
    epoch_gauge: Arc<AtomicU64>,
    owned_gauge: Arc<AtomicU64>,
    phase_gauge: Arc<AtomicU64>,
    handoff_lag: Arc<AtomicU64>,
    wrong_partition: Arc<AtomicU64>,
    /// Per-partition heat telemetry (`cluster.partition.<i>.*` gauges).
    heat: Vec<HeatCell>,
    /// Test hook observing migration phase transitions (runs on the
    /// migration thread; it may block to freeze the state machine).
    hook: Mutex<Option<PhaseHook>>,
    _registrations: Vec<obsv::Registration>,
}

impl<I: RangeIndex + Clone + 'static> ClusterNode<I> {
    /// Wraps `service` as the cluster node at `endpoint` (the address its
    /// wire listener is reachable at — must match the map's entries) with
    /// `map` installed. Registers per-partition gauges under the service's
    /// metric name.
    pub fn start(
        service: Arc<PacService<I>>,
        endpoint: &str,
        map: PartitionMap,
    ) -> Result<Arc<ClusterNode<I>>, String> {
        map.validate()?;
        let name = service.config().name.clone();
        let epoch_gauge = Arc::new(AtomicU64::new(map.epoch));
        let owned_gauge = Arc::new(AtomicU64::new(0));
        let phase_gauge = Arc::new(AtomicU64::new(PHASE_IDLE as u64));
        let handoff_lag = Arc::new(AtomicU64::new(0));
        let wrong_partition = Arc::new(AtomicU64::new(0));
        let reg = obsv::global();
        let cells: [(&str, &Arc<AtomicU64>); 5] = [
            ("cluster.map_epoch", &epoch_gauge),
            ("cluster.partitions.owned", &owned_gauge),
            ("cluster.migration.phase", &phase_gauge),
            ("cluster.migration.handoff_lag", &handoff_lag),
            ("cluster.wrong_partition.total", &wrong_partition),
        ];
        let mut registrations: Vec<obsv::Registration> = cells
            .iter()
            .map(|(suffix, cell)| {
                let w = Arc::downgrade(cell);
                reg.register_gauge(format!("{name}.{suffix}"), move || {
                    w.upgrade().map(|c| c.load(Ordering::Relaxed) as f64)
                })
            })
            .collect();
        let heat: Vec<HeatCell> = (0..map.parts.len())
            .map(|_| HeatCell {
                ops: Arc::new(AtomicU64::new(0)),
                bytes: Arc::new(AtomicU64::new(0)),
                hist: Arc::new(Histogram::new()),
            })
            .collect();
        for (i, cell) in heat.iter().enumerate() {
            let counters = [("ops", &cell.ops), ("bytes", &cell.bytes)];
            for (kind, c) in counters {
                let w = Arc::downgrade(c);
                registrations.push(
                    reg.register_gauge(format!("{name}.cluster.partition.{i}.{kind}"), move || {
                        w.upgrade().map(|c| c.load(Ordering::Relaxed) as f64)
                    }),
                );
            }
            let w = Arc::downgrade(&cell.hist);
            registrations.push(
                reg.register_gauge(format!("{name}.cluster.partition.{i}.p99"), move || {
                    w.upgrade().map(|h| h.snapshot().quantile(0.99) as f64)
                }),
            );
        }
        let node = Arc::new(ClusterNode {
            service,
            endpoint: endpoint.to_string(),
            map: RwLock::new(Arc::new(map)),
            sealed: Mutex::new(BTreeSet::new()),
            importing: Mutex::new(BTreeSet::new()),
            migrating: Mutex::new(()),
            epoch_gauge,
            owned_gauge,
            phase_gauge,
            handoff_lag,
            wrong_partition,
            heat,
            hook: Mutex::new(None),
            _registrations: registrations,
        });
        node.refresh_owned_gauge();
        Ok(node)
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<PacService<I>> {
        &self.service
    }

    /// The endpoint this node answers at.
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The currently installed map (cheap: an `Arc` clone).
    pub fn map(&self) -> Arc<PartitionMap> {
        Arc::clone(&self.map.read().unwrap())
    }

    /// The installed map's epoch.
    pub fn map_epoch(&self) -> u64 {
        self.map.read().unwrap().epoch
    }

    /// Operations bounced with `WrongPartition` so far.
    pub fn wrong_partition_total(&self) -> u64 {
        self.wrong_partition.load(Ordering::Relaxed)
    }

    /// Per-partition heat readings, indexed by partition id:
    /// `(ops served, approximate bytes, p99 batch latency in ns)`.
    /// Partitions this node never served read `(0, 0, 0)`.
    pub fn partition_heat(&self) -> Vec<PartitionHeat> {
        self.heat
            .iter()
            .map(|c| {
                (
                    c.ops.load(Ordering::Relaxed),
                    c.bytes.load(Ordering::Relaxed),
                    c.hist.snapshot().quantile(0.99),
                )
            })
            .collect()
    }

    /// Installs `new` if its epoch is strictly newer than the installed
    /// one (epoch fencing: replayed or stale maps are ignored). Seals for
    /// partitions this node no longer owns under the new map are dropped.
    pub fn install_map(&self, new: PartitionMap) -> bool {
        self.install_map_when(new, None)
    }

    /// [`install_map`](Self::install_map) with an epoch compare-and-swap:
    /// additionally requires the installed epoch to still be `expected`.
    /// `false` means a concurrent install won the race — the caller must
    /// re-derive its successor map from the new current map instead of
    /// publishing one built from a stale base.
    pub(crate) fn install_map_cas(&self, expected: u64, new: PartitionMap) -> bool {
        self.install_map_when(new, Some(expected))
    }

    fn install_map_when(&self, new: PartitionMap, expected: Option<u64>) -> bool {
        if new.validate().is_err() {
            return false;
        }
        {
            let mut cur = self.map.write().unwrap();
            if new.epoch <= cur.epoch || expected.is_some_and(|e| cur.epoch != e) {
                return false;
            }
            self.epoch_gauge.store(new.epoch, Ordering::Relaxed);
            let owned: BTreeSet<u32> = new
                .parts
                .iter()
                .filter(|p| p.endpoint == self.endpoint)
                .map(|p| p.id)
                .collect();
            self.sealed.lock().unwrap().retain(|id| owned.contains(id));
            *cur = Arc::new(new);
        }
        self.refresh_owned_gauge();
        true
    }

    /// Observes migration phase transitions; see [`migrate`] for when it
    /// fires. Test-only in spirit (the kill test freezes mid-bulk with it).
    pub fn set_migration_hook(&self, f: impl Fn(u8) + Send + Sync + 'static) {
        *self.hook.lock().unwrap() = Some(Arc::new(f));
    }

    pub(crate) fn enter_phase(&self, phase: u8) {
        self.phase_gauge.store(phase as u64, Ordering::Relaxed);
        // Clone out of the lock before calling: a hook that parks its
        // thread (the kill test does) must not hold the mutex and
        // deadlock every other phase transition on the node.
        let hook = self.hook.lock().unwrap().clone();
        if let Some(f) = hook {
            f(phase);
        }
    }

    pub(crate) fn set_handoff_lag(&self, pairs: u64) {
        self.handoff_lag.store(pairs, Ordering::Relaxed);
    }

    pub(crate) fn add_handoff_lag(&self, pairs: u64) {
        self.handoff_lag.fetch_add(pairs, Ordering::Relaxed);
    }

    pub(crate) fn seal(&self, partition: u32) {
        self.sealed.lock().unwrap().insert(partition);
        self.refresh_owned_gauge();
    }

    pub(crate) fn unseal(&self, partition: u32) {
        self.sealed.lock().unwrap().remove(&partition);
        self.refresh_owned_gauge();
    }

    fn refresh_owned_gauge(&self) {
        let map = self.map();
        let sealed = self.sealed.lock().unwrap();
        let importing = self.importing.lock().unwrap();
        let owned = map
            .parts
            .iter()
            .filter(|p| p.endpoint == self.endpoint && !sealed.contains(&p.id))
            .count()
            + importing.len();
        self.owned_gauge.store(owned as u64, Ordering::Relaxed);
    }

    /// Executes one decoded request batch with ownership enforcement:
    /// owned operations go to the service as one sub-batch (preserving
    /// their relative order, hence per-key FIFO), unowned slots are
    /// answered `WrongPartition` (downgraded to `Overloaded` for pre-v4
    /// clients, which cannot decode tag 14 but treat `Overloaded` as
    /// retryable-not-executed).
    ///
    /// The ownership check and the service enqueue happen atomically
    /// under the `sealed`/`importing` locks (the wait does not):
    /// [`seal`](Self::seal) takes the same lock, so a migration's
    /// seal + drain barrier cannot slip between an op passing the check
    /// and reaching the shard queues. Every op that passed is enqueued
    /// before `seal` returns, hence flushed by the drain barrier and
    /// captured by the final-delta snapshot — no acked write can land
    /// after the handoff's last diff.
    fn dispatch(&self, reqs: Vec<Request>, ctx: trace::TraceCtx, version: u8) -> Vec<Response> {
        let map = self.map();
        let epoch = map.epoch;
        let n = reqs.len();
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        let mut slots = Vec::with_capacity(n);
        let mut touched: BTreeSet<u32> = BTreeSet::new();
        let t0 = obsv::clock::now_ns();
        let pending = {
            let sealed = self.sealed.lock().unwrap();
            let importing = self.importing.lock().unwrap();
            let mut local = Vec::with_capacity(n);
            for (i, req) in reqs.into_iter().enumerate() {
                // Snapshot lifecycle ops carry no key: always local (and
                // not partition heat — they touch node state, not a range).
                let owned = match &req {
                    Request::Snapshot | Request::ReleaseSnapshot { .. } => true,
                    other => {
                        let p = map.owner_of(other.key());
                        let owned = (p.endpoint == self.endpoint && !sealed.contains(&p.id))
                            || importing.contains(&p.id);
                        if owned {
                            if let Some(cell) = self.heat.get(p.id as usize) {
                                cell.ops.fetch_add(1, Ordering::Relaxed);
                                cell.bytes
                                    .fetch_add(other.key().len() as u64 + 9, Ordering::Relaxed);
                                touched.insert(p.id);
                            }
                        }
                        owned
                    }
                };
                if owned {
                    slots.push(i);
                    local.push(req);
                } else {
                    self.wrong_partition.fetch_add(1, Ordering::Relaxed);
                    out[i] = Some(if version >= 4 {
                        Response::WrongPartition { map_epoch: epoch }
                    } else {
                        Response::Overloaded
                    });
                }
            }
            if local.is_empty() {
                None
            } else {
                // submit_traced never blocks (full queues shed), so the
                // locks are held for a bounded enqueue, not for service
                // time.
                Some(self.service.submit_traced(local, None, ctx))
            }
        };
        if let Some(rs) = pending {
            for (slot, resp) in slots.into_iter().zip(rs.wait()) {
                out[slot] = Some(resp);
            }
            let dt = obsv::clock::now_ns().saturating_sub(t0);
            for pid in touched {
                if let Some(cell) = self.heat.get(pid as usize) {
                    cell.hist.record(dt);
                }
            }
        }
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Handles one migration control operation. `ctx` is the trace context
    /// off the `Migrate` frame: a controller that stamps (and forwards) a
    /// sampled context gets the migration's four phase spans recorded
    /// under its trace id — stitched by `trace-report` from this node's
    /// span dump.
    fn migrate_ctl(&self, op: MigrateOp, ctx: trace::TraceCtx) -> (bool, String) {
        match op {
            MigrateOp::Start { partition, target } => {
                let t0 = obsv::clock::now_ns();
                let (ok, detail) = match self.migrate_out_traced(partition, &target, ctx) {
                    Ok(report) => (true, report.to_json()),
                    Err(e) => (false, e),
                };
                // Harvest the phase spans into the retained store so the
                // stats span dump carries them. With a forwarded (hop > 0)
                // context this records a Remote bracket, never a second
                // root; an error outcome forces retention past the tail
                // threshold.
                trace::finish_root(
                    ctx,
                    t0,
                    if ok {
                        trace::TraceOutcome::Ok
                    } else {
                        trace::TraceOutcome::Error
                    },
                );
                (ok, detail)
            }
            MigrateOp::ImportBegin { partition } => {
                let map = self.map();
                let Some(part) = map.partition(partition) else {
                    return (false, format!("unknown partition {partition}"));
                };
                if part.endpoint == self.endpoint {
                    return (false, format!("already the owner of partition {partition}"));
                }
                // Discard fenced garbage left by a previous failed import
                // before accepting a fresh copy: the bulk copy only
                // re-sends keys live at its snapshot, so a leftover key
                // meanwhile deleted on the source would otherwise be
                // resurrected by the flip.
                let start = part.start.clone();
                let end = map.end_of(partition).map(<[u8]>::to_vec);
                self.retire_range(&start, end.as_deref());
                self.importing.lock().unwrap().insert(partition);
                self.refresh_owned_gauge();
                (true, String::new())
            }
            MigrateOp::ImportEnd { partition, map } => {
                let adopted = self.install_map(map);
                self.importing.lock().unwrap().remove(&partition);
                self.refresh_owned_gauge();
                (
                    adopted,
                    if adopted {
                        String::new()
                    } else {
                        "stale or invalid handoff map".to_string()
                    },
                )
            }
            MigrateOp::ImportAbort { partition } => {
                self.importing.lock().unwrap().remove(&partition);
                let map = self.map();
                // Wipe the partial copy — unless the map meanwhile made
                // this node the owner (an Install raced the abort): then
                // the range is live data, not garbage.
                if let Some(part) = map.partition(partition) {
                    if part.endpoint != self.endpoint {
                        let start = part.start.clone();
                        let end = map.end_of(partition).map(<[u8]>::to_vec);
                        self.retire_range(&start, end.as_deref());
                    }
                }
                self.refresh_owned_gauge();
                (true, String::new())
            }
            MigrateOp::Install { map } => (self.install_map(map), String::new()),
        }
    }
}

impl<I: RangeIndex + Clone + 'static> FrameHandler for ClusterNode<I> {
    fn handle_frame(&self, bytes: &[u8]) -> Vec<u8> {
        let reply = match wire::decode_frame(bytes) {
            Ok((Frame::Request { id, trace, reqs }, _)) => {
                let ctx = if trace.is_sampled() {
                    trace
                } else {
                    trace::stamp()
                };
                // Byte 2 was validated by decode_frame.
                let version = bytes[2];
                Frame::Reply {
                    id,
                    resps: self.dispatch(reqs, ctx, version),
                }
            }
            Ok((Frame::MapFetch { id, trace }, _)) => {
                // Attribute the fetch to the router's map_refresh span
                // when it rides a traced request (inert otherwise).
                let _span = trace::span(trace, trace::SpanKind::MapRefresh, 0);
                Frame::MapReply {
                    id,
                    map: (*self.map()).clone(),
                }
            }
            Ok((Frame::Migrate { id, trace, op }, _)) => {
                let (ok, detail) = self.migrate_ctl(op, trace);
                Frame::MigrateReply { id, ok, detail }
            }
            Ok((Frame::Ping { id }, _)) => Frame::Pong { id },
            Ok((Frame::Stats { id }, _)) => Frame::StatsReply {
                id,
                json: self.service.stats_json(),
            },
            Ok((Frame::Health { id }, _)) => Frame::HealthReply {
                id,
                text: self.service.health_text(),
            },
            Ok((frame, _)) => Frame::Reply {
                id: frame.id(),
                resps: vec![Response::Malformed],
            },
            Err(_) => Frame::Reply {
                id: 0,
                resps: vec![Response::Malformed],
            },
        };
        let version = match bytes.get(2) {
            Some(&v) if (MIN_VERSION..=VERSION).contains(&v) => v,
            _ => VERSION,
        };
        let mut out = Vec::new();
        wire::encode_frame_versioned(&reply, version, &mut out);
        out
    }

    fn health_text(&self) -> String {
        self.service.health_text()
    }
}
