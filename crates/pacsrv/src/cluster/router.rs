//! The map-caching smart router.
//!
//! A [`RouterClient`] bootstraps its [`PartitionMap`] from any reachable
//! seed node and thereafter routes every operation client-side: group the
//! batch by owning endpoint, send each group as one wire batch, stitch the
//! replies back into request order. The map is refreshed only when a node
//! disagrees — a [`Response::WrongPartition`] bounce carries the node's
//! installed epoch, the router re-fetches (adopting the highest epoch any
//! node reports) and resends just the bounced slots. Bounced operations
//! were **not executed**, so the resend is safe even for writes.
//!
//! During a migration's seal window the source bounces at the *current*
//! epoch (the flip has not happened yet); the router backs off between
//! rounds so the handful of writes racing the seal land on the target
//! right after the flip instead of hot-looping.
//!
//! # Tracing
//!
//! The router is where a cross-node trace is rooted. Each [`call`]
//! stamps (or adopts, after [`set_trace`]) a context and records:
//!
//! * one `rpc_call` span per endpoint group, bracketing send-to-reply —
//!   the stitcher aligns that node's clock inside this bracket;
//! * a `map_refresh` span around every bounce-triggered refresh;
//! * a `bounce_resend` span around every retry round (backoff included),
//!   so resent work stays attributed to the original trace.
//!
//! The context put on the wire is the *router's* stamped context,
//! node-stamped via [`obsv::trace::TraceCtx::forwarded_to`] with the hop
//! counter bumped once per resend round — nodes keep a sampled incoming
//! context instead of re-stamping, which is what makes one trace id span
//! the whole fan-out.
//!
//! [`call`]: RouterClient::call
//! [`set_trace`]: RouterClient::set_trace

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::time::Duration;

use obsv::clock;
use obsv::trace::{self, SpanKind, TraceCtx, TraceOutcome};

use crate::transport::TcpClient;
use crate::wire::{PartitionMap, Request, Response};

/// Routing rounds before giving up on a batch (each round after a bounce
/// refreshes the map and backs off exponentially, capped at 64ms).
const MAX_ATTEMPTS: u32 = 12;

/// A cluster client that caches the partition map and routes per key.
pub struct RouterClient {
    map: PartitionMap,
    conns: HashMap<String, TcpClient>,
    seeds: Vec<String>,
    refreshes: u64,
    wrong_partition_seen: u64,
    retried_reads: u64,
    trace: TraceCtx,
}

impl RouterClient {
    /// Fetches the partition map from the first reachable seed.
    pub fn connect(seeds: &[String]) -> io::Result<RouterClient> {
        let mut last_err = None;
        for seed in seeds {
            let fetched =
                TcpClient::connect(seed.as_str()).and_then(|mut c| c.fetch_map().map(|m| (c, m)));
            match fetched {
                Ok((client, map)) => {
                    if let Err(e) = map.validate() {
                        last_err = Some(io::Error::new(io::ErrorKind::InvalidData, e));
                        continue;
                    }
                    let mut conns = HashMap::new();
                    conns.insert(seed.clone(), client);
                    return Ok(RouterClient {
                        map,
                        conns,
                        seeds: seeds.to_vec(),
                        refreshes: 0,
                        wrong_partition_seen: 0,
                        retried_reads: 0,
                        trace: TraceCtx::UNTRACED,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "no seed endpoints given")
        }))
    }

    /// The cached map's epoch.
    pub fn map_epoch(&self) -> u64 {
        self.map.epoch
    }

    /// The cached map.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Map refreshes performed (bootstrap excluded).
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// `WrongPartition` bounces observed.
    pub fn wrong_partition_seen(&self) -> u64 {
        self.wrong_partition_seen
    }

    /// Read batches that went through a transparent single-retry reconnect
    /// (`RetriedOnce` surfaced by [`TcpClient::call_idempotent`]).
    pub fn retried_reads(&self) -> u64 {
        self.retried_reads
    }

    /// Trace context adopted by subsequent [`call`](Self::call)s instead
    /// of the router's own ambient-rate stamping. Use
    /// [`obsv::trace::stamp_forced`] to trace a specific batch across the
    /// whole cluster; reset with [`TraceCtx::UNTRACED`].
    pub fn set_trace(&mut self, ctx: TraceCtx) {
        self.trace = ctx;
    }

    /// 1-based ordinal of `ep` among the cached map's endpoints (stable
    /// while the membership is: `endpoints()` sorts) — the node stamp for
    /// forwarded trace contexts and the `rpc_call` span detail. `0` for an
    /// endpoint the map does not name (a seed that lost its partitions).
    fn endpoint_ordinal(&self, ep: &str) -> u16 {
        self.map
            .endpoints()
            .iter()
            .position(|e| *e == ep)
            .map_or(0, |i| i as u16 + 1)
    }

    /// The cached (or fresh) connection to `ep`.
    fn conn(&mut self, ep: &str) -> io::Result<&mut TcpClient> {
        if !self.conns.contains_key(ep) {
            let client = TcpClient::connect(ep)?;
            self.conns.insert(ep.to_string(), client);
        }
        Ok(self.conns.get_mut(ep).expect("just inserted"))
    }

    /// Re-fetches the map from every known endpoint (cached map's nodes
    /// plus the seeds) and adopts the highest valid epoch seen. `Ok(true)`
    /// if the epoch advanced; `Err` only if no endpoint was reachable.
    pub fn refresh_map(&mut self) -> io::Result<bool> {
        self.refresh_map_traced(TraceCtx::UNTRACED, 0)
    }

    /// [`refresh_map`](Self::refresh_map) under a trace context: the whole
    /// sweep is one `map_refresh` span (detail = the routing attempt that
    /// triggered it) and each `MapFetch` frame carries the forwarded
    /// context, so refreshes triggered inside a traced request stay
    /// attributed to it.
    fn refresh_map_traced(&mut self, ctx: TraceCtx, attempt: u32) -> io::Result<bool> {
        let (_span, child) = trace::span_ctx(ctx, SpanKind::MapRefresh, attempt);
        let mut candidates: Vec<String> =
            self.map.parts.iter().map(|p| p.endpoint.clone()).collect();
        candidates.extend(self.seeds.iter().cloned());
        candidates.sort_unstable();
        candidates.dedup();
        let mut best: Option<PartitionMap> = None;
        let mut reached = false;
        for ep in candidates {
            let ord = self.endpoint_ordinal(&ep);
            let Ok(conn) = self.conn(&ep) else { continue };
            conn.set_trace(child.forwarded_to(ord));
            match conn.fetch_map() {
                Ok(m) => {
                    reached = true;
                    if m.validate().is_ok() && best.as_ref().is_none_or(|b| m.epoch > b.epoch) {
                        best = Some(m);
                    }
                }
                Err(_) => {
                    // A stale connection is worthless; reconnect lazily.
                    self.conns.remove(&ep);
                }
            }
        }
        if !reached {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no cluster endpoint reachable for a map refresh",
            ));
        }
        self.refreshes += 1;
        let advanced = best.as_ref().is_some_and(|b| b.epoch > self.map.epoch);
        if let Some(b) = best {
            if b.epoch > self.map.epoch {
                self.map = b;
            }
        }
        Ok(advanced)
    }

    /// Executes a batch against the cluster, routing each operation to its
    /// owner and resending `WrongPartition` bounces after a map refresh.
    /// Replies come back in request order. Keyless operations (`Snapshot`,
    /// `ReleaseSnapshot`) route to partition 0's owner — snapshots are
    /// per-node, so a caller wanting cluster-wide snapshot reads should
    /// talk to one node directly.
    ///
    /// # Partial execution on error
    ///
    /// A batch spanning several nodes is sent as one wire batch per node,
    /// sequentially. `Err` means one of those sends failed (the error
    /// names the endpoint) — but groups dispatched *before* the failure
    /// already executed, and their effects (including writes) stand; their
    /// responses are discarded with the error. This mirrors single-node
    /// semantics, where a transport error mid-call also leaves the batch's
    /// outcome unknown: on any `Err`, a caller that needs certainty must
    /// re-read. Callers wanting all-or-nothing dispatch should keep a
    /// batch within one partition.
    pub fn call(&mut self, reqs: Vec<Request>) -> io::Result<Vec<Response>> {
        // Adopt a forced context, else stamp at the ambient trace rate:
        // the router is the natural root of a cross-node trace.
        let ctx = if self.trace.is_sampled() {
            self.trace
        } else {
            trace::stamp()
        };
        let t0 = clock::now_ns();
        let out = self.call_routed(reqs, ctx);
        // The router owns the trace root unless the caller forwarded a
        // remote context (then whoever stamped it finishes it).
        if !ctx.is_remote() {
            trace::finish_root(
                ctx,
                t0,
                if out.is_ok() {
                    TraceOutcome::Ok
                } else {
                    TraceOutcome::Error
                },
            );
        }
        out
    }

    fn call_routed(&mut self, reqs: Vec<Request>, ctx: TraceCtx) -> io::Result<Vec<Response>> {
        let n = reqs.len();
        let mut out: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<(usize, Request)> = reqs.into_iter().enumerate().collect();
        for attempt in 0..MAX_ATTEMPTS {
            if pending.is_empty() {
                break;
            }
            // Resend rounds are one `bounce_resend` span each — backoff
            // and refresh included, so the root's wall time stays covered.
            let (_round, round_ctx) = if attempt > 0 {
                let (guard, round_ctx) = trace::span_ctx(ctx, SpanKind::BounceResend, attempt);
                // A bounce during a seal window clears only after the
                // flip: back off, then chase the new epoch.
                std::thread::sleep(Duration::from_millis(2u64 << attempt.min(5)));
                let _ = self.refresh_map_traced(round_ctx, attempt);
                (guard, round_ctx)
            } else {
                (
                    trace::span(TraceCtx::UNTRACED, SpanKind::BounceResend, 0),
                    ctx,
                )
            };
            let mut groups: BTreeMap<String, Vec<(usize, Request)>> = BTreeMap::new();
            for (slot, req) in pending.drain(..) {
                let ep = self.map.owner_of(req.key()).endpoint.clone();
                groups.entry(ep).or_default().push((slot, req));
            }
            for (ep, group) in groups {
                let (slots, batch): (Vec<usize>, Vec<Request>) = group.into_iter().unzip();
                let sent = batch.clone();
                let ord = self.endpoint_ordinal(&ep);
                // The rpc_call span is the send-to-reply clock bracket the
                // stitcher aligns this node's spans inside; the wire
                // context is node-stamped with the hop bumped once per
                // resend round (bounce continuity: a resent op carries the
                // original trace id, never a fresh stamp).
                let (rpc_span, child) = trace::span_ctx(round_ctx, SpanKind::RpcCall, ord as u32);
                let mut wire_ctx = child.forwarded_to(ord);
                wire_ctx.hop = wire_ctx.hop.saturating_add(attempt.min(250) as u8);
                let (resps, retried) = match self.conn(&ep) {
                    Ok(conn) => {
                        conn.set_trace(wire_ctx);
                        match conn.call_idempotent(batch) {
                            Ok(r) => r,
                            Err(e) => {
                                // Writes must surface transport errors —
                                // the op may or may not have executed.
                                self.conns.remove(&ep);
                                return Err(io::Error::new(
                                    e.kind(),
                                    format!("cluster call to {ep} failed (operations routed to other nodes in this batch may have executed): {e}"),
                                ));
                            }
                        }
                    }
                    Err(e) => {
                        return Err(io::Error::new(
                            e.kind(),
                            format!("cluster connect to {ep} failed (operations routed to other nodes in this batch may have executed): {e}"),
                        ));
                    }
                };
                drop(rpc_span);
                if retried {
                    self.retried_reads += 1;
                }
                if resps.len() != sent.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "cluster reply length mismatch",
                    ));
                }
                for ((slot, req), resp) in slots.into_iter().zip(sent).zip(resps) {
                    match resp {
                        Response::WrongPartition { .. } => {
                            // Not executed: safe to resend once the map
                            // catches up.
                            self.wrong_partition_seen += 1;
                            pending.push((slot, req));
                        }
                        r => out[slot] = Some(r),
                    }
                }
            }
        }
        if !pending.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "partition map did not converge (ops still bouncing)",
            ));
        }
        Ok(out.into_iter().map(|r| r.expect("slot filled")).collect())
    }

    /// Routes a range scan across partitions: starts at the owner of
    /// `start` and, while the count is unsatisfied and that node's data is
    /// exhausted, continues from the next partition boundary. Exact when
    /// every node's owned partitions are contiguous in key order (always
    /// true for `split_u64` maps and single-partition migrations); a node
    /// owning disjoint ranges may count pairs from its later range early,
    /// because the server-side scan is count-bounded, not range-bounded.
    pub fn scan(&mut self, start: &[u8], count: u32) -> io::Result<u32> {
        let mut total = 0u32;
        let mut cursor = start.to_vec();
        loop {
            let remaining = count - total;
            if remaining == 0 {
                return Ok(total);
            }
            let owner_id = self.map.owner_of(&cursor).id;
            let resps = self.call(vec![Request::Scan {
                start: cursor.clone(),
                count: remaining,
            }])?;
            match resps[0] {
                Response::ScanCount(got) => total += got.min(remaining),
                ref other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected scan reply: {other:?}"),
                    ));
                }
            }
            // This owner ran out of local pairs; hop to the next
            // partition's range (if any) owned by a different node.
            let mut next = None;
            let mut id = owner_id;
            while let Some(end) = self.map.end_of(id) {
                let end = end.to_vec();
                let p = self.map.owner_of(&end);
                if p.endpoint != self.map.partition(owner_id).expect("owner exists").endpoint {
                    next = Some(end);
                    break;
                }
                id = p.id;
            }
            match next {
                Some(boundary) if total < count => cursor = boundary,
                _ => return Ok(total),
            }
        }
    }
}
