//! Partition-map logic: key routing, validation, ownership flips.
//!
//! The data types ([`PartitionMap`], [`Partition`]) live in [`crate::wire`]
//! because they travel in v4 frames; this module gives them behavior. A map
//! is a sorted list of start keys covering the whole key space: key `k`
//! belongs to the last partition whose `start <= k` (ranges are half-open,
//! `[start, next.start)`, the last one unbounded above). The epoch number
//! fences stale routers — every ownership change increments it, and a node
//! only ever adopts a map with a strictly newer epoch.

use crate::wire::{Partition, PartitionMap};

impl PartitionMap {
    /// An even split of the 8-byte big-endian `u64` key space over
    /// `endpoints`, one partition per endpoint, at epoch 1. Partition 0
    /// starts at the empty key so every possible key (including short or
    /// string keys) has an owner.
    pub fn split_u64(endpoints: &[String]) -> PartitionMap {
        assert!(!endpoints.is_empty(), "cannot split over zero endpoints");
        let n = endpoints.len() as u64;
        let stride = u64::MAX / n;
        let parts = endpoints
            .iter()
            .enumerate()
            .map(|(i, ep)| Partition {
                id: i as u32,
                start: if i == 0 {
                    Vec::new()
                } else {
                    (stride.saturating_mul(i as u64)).to_be_bytes().to_vec()
                },
                endpoint: ep.clone(),
            })
            .collect();
        PartitionMap { epoch: 1, parts }
    }

    /// Structural checks: at least one partition, the first starting at the
    /// empty key, starts strictly increasing, ids unique, endpoints
    /// non-empty. Every map a node installs passes through this.
    pub fn validate(&self) -> Result<(), String> {
        if self.parts.is_empty() {
            return Err("partition map has no partitions".to_string());
        }
        if !self.parts[0].start.is_empty() {
            return Err("first partition must start at the empty key".to_string());
        }
        let mut ids = std::collections::BTreeSet::new();
        for (i, p) in self.parts.iter().enumerate() {
            if p.endpoint.is_empty() {
                return Err(format!("partition {} has an empty endpoint", p.id));
            }
            if !ids.insert(p.id) {
                return Err(format!("duplicate partition id {}", p.id));
            }
            if i > 0 && self.parts[i - 1].start >= p.start {
                return Err(format!(
                    "partition starts not strictly increasing at index {i}"
                ));
            }
        }
        Ok(())
    }

    /// The partition owning `key`: the last one with `start <= key`.
    /// A validated map always has one (the first start is empty).
    pub fn owner_of(&self, key: &[u8]) -> &Partition {
        let idx = self.parts.partition_point(|p| p.start.as_slice() <= key);
        &self.parts[idx.saturating_sub(1)]
    }

    /// The partition with this id.
    pub fn partition(&self, id: u32) -> Option<&Partition> {
        self.parts.iter().find(|p| p.id == id)
    }

    /// The exclusive upper bound of partition `id`'s key range: the next
    /// partition's start, or `None` if `id` is last (unbounded above).
    pub fn end_of(&self, id: u32) -> Option<&[u8]> {
        let pos = self.parts.iter().position(|p| p.id == id)?;
        self.parts.get(pos + 1).map(|p| p.start.as_slice())
    }

    /// A successor map with partition `id` reassigned to `endpoint` and
    /// the epoch incremented — what a completed migration installs.
    pub fn with_owner(&self, id: u32, endpoint: &str) -> PartitionMap {
        let mut next = self.clone();
        next.epoch += 1;
        for p in &mut next.parts {
            if p.id == id {
                p.endpoint = endpoint.to_string();
            }
        }
        next
    }

    /// Every distinct endpoint in the map, sorted.
    pub fn endpoints(&self) -> Vec<&str> {
        let mut eps: Vec<&str> = self.parts.iter().map(|p| p.endpoint.as_str()).collect();
        eps.sort_unstable();
        eps.dedup();
        eps
    }
}

/// Whether `key` falls inside `[start, end)` (`end = None` = unbounded).
pub(crate) fn in_range(key: &[u8], start: &[u8], end: Option<&[u8]>) -> bool {
    key >= start && end.is_none_or(|e| key < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_way() -> PartitionMap {
        PartitionMap::split_u64(&["a:1".to_string(), "b:2".to_string(), "c:3".to_string()])
    }

    #[test]
    fn split_covers_the_key_space() {
        let map = three_way();
        map.validate().expect("valid");
        assert_eq!(map.epoch, 1);
        assert_eq!(map.parts.len(), 3);
        assert_eq!(map.owner_of(b"").id, 0);
        assert_eq!(map.owner_of(&0u64.to_be_bytes()).id, 0);
        assert_eq!(map.owner_of(&u64::MAX.to_be_bytes()).id, 2);
        // A boundary key belongs to the partition it starts.
        let boundary = map.parts[1].start.clone();
        assert_eq!(map.owner_of(&boundary).id, 1);
        // Just below the boundary still belongs to partition 0.
        let mut below = boundary.clone();
        *below.last_mut().unwrap() = below.last().unwrap().wrapping_sub(1);
        assert_eq!(map.owner_of(&below).id, 0);
    }

    #[test]
    fn end_of_is_the_next_start() {
        let map = three_way();
        assert_eq!(map.end_of(0), Some(map.parts[1].start.as_slice()));
        assert_eq!(map.end_of(1), Some(map.parts[2].start.as_slice()));
        assert_eq!(map.end_of(2), None);
        assert_eq!(map.end_of(99), None);
    }

    #[test]
    fn with_owner_bumps_the_epoch() {
        let map = three_way();
        let next = map.with_owner(1, "d:4");
        assert_eq!(next.epoch, map.epoch + 1);
        assert_eq!(next.partition(1).unwrap().endpoint, "d:4");
        assert_eq!(next.partition(0).unwrap().endpoint, "a:1");
        next.validate().expect("still valid");
    }

    #[test]
    fn validate_rejects_broken_maps() {
        assert!(PartitionMap {
            epoch: 1,
            parts: vec![]
        }
        .validate()
        .is_err());
        // First partition not starting at the empty key.
        assert!(PartitionMap {
            epoch: 1,
            parts: vec![Partition {
                id: 0,
                start: vec![1],
                endpoint: "a".into()
            }]
        }
        .validate()
        .is_err());
        // Duplicate ids.
        let mut dup = three_way();
        dup.parts[2].id = 0;
        assert!(dup.validate().is_err());
        // Non-increasing starts.
        let mut unsorted = three_way();
        unsorted.parts[2].start = unsorted.parts[1].start.clone();
        assert!(unsorted.validate().is_err());
        // Empty endpoint.
        let mut noep = three_way();
        noep.parts[1].endpoint.clear();
        assert!(noep.validate().is_err());
    }

    #[test]
    fn in_range_is_half_open() {
        assert!(in_range(b"b", b"b", Some(b"c")));
        assert!(!in_range(b"c", b"b", Some(b"c")));
        assert!(!in_range(b"a", b"b", Some(b"c")));
        assert!(in_range(b"zzz", b"b", None));
    }
}
