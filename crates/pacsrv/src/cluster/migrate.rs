//! Live partition migration, driven by the source node.
//!
//! `migrate_out` moves one partition to a target node while both keep
//! serving, in four phases (gauge `<name>.cluster.migration.phase`):
//!
//! 1. **Bulk** — capture an O(1) MVCC snapshot and page the partition's
//!    range through `scan_pairs_at`, bulk-loading the target with acked
//!    `Put` batches. Writers keep landing on the source.
//! 2. **Delta** — capture a second snapshot and replay
//!    `diff_pairs(snap1, snap2)` (restricted to the range) on the target:
//!    everything that changed during the bulk copy.
//! 3. **Seal** — stop accepting the partition (new ops bounce with
//!    `WrongPartition` at the current epoch), run the service's drain
//!    barrier so every already-admitted op has executed, then ship the
//!    final `diff(snap2, snap3)`. After this the target is byte-identical
//!    for the range.
//! 4. **Flip** — derive the successor map from the *current* map
//!    (epoch+1, target owns the partition), send it to the target as
//!    `ImportEnd` (acked — the commit point), install it locally with an
//!    epoch compare-and-swap, and gossip it best-effort to every other
//!    node. Finally the source retires its local copy of the range — the
//!    new map fences point operations away from it, but leftover pairs
//!    would pollute local scans and hold memory.
//!
//! At most one migration runs per source node (`migrate_out` holds the
//! node's migration mutex for its whole run): two concurrent `Start` ops
//! would otherwise both derive epoch+1 from the same base and publish
//! divergent same-epoch maps that epoch fencing cannot reconcile.
//!
//! Failure paths: every error after `ImportBegin` but before the commit
//! point sends a best-effort `ImportAbort` so the target drops import
//! mode and wipes its partial copy (`ImportBegin` wipes the range again
//! on the next attempt regardless, covering a source that died without
//! aborting). If the `ImportEnd` connection breaks mid-call the outcome
//! is resolved by re-reading the target's installed map; if the target
//! is unreachable the outcome is unknown and the partition **stays
//! sealed** — unsealing could split-brain acked writes — until a retried
//! migration resolves it either way.
//!
//! Crash safety (the crashcheck oracle's contract): every client-acked
//! write is durable on whichever node acked it. A crash before the flip
//! leaves the map naming the source, which holds every write it acked
//! (sealed-window bounces were never acked); the target's partial copy is
//! garbage, aborted or wiped on the next import. A crash after the flip
//! leaves the target owning the range, and every pair it holds was acked
//! durable by its own index before `ImportEnd` was sent. There is no
//! window where an acked write lives only on a node the map does not (or
//! will not) name.

use std::time::{Duration, Instant};

use obsv::trace::{self, SpanKind, TraceCtx};
use ycsb::RangeIndex;

use super::map::in_range;
use super::{ClusterNode, PHASE_BULK, PHASE_DELTA, PHASE_FLIP, PHASE_IDLE, PHASE_SEAL};
use crate::transport::TcpClient;
use crate::wire::{MigrateOp, Request};

/// Pairs per bulk-copy / delta-replay batch. Kept small so foreground
/// client ops never queue behind a long migration batch on either node's
/// shard workers (the migration-window p99 gate in paccluster-bench).
const CHUNK: usize = 128;

/// Pause between bulk-copy chunks: yields both services' queues to
/// foreground traffic. Stretches the (fully available) bulk phase a
/// little; the sealed window is never paced.
const BULK_PACE: Duration = Duration::from_millis(1);

/// What a completed migration measured; also the `detail` JSON of the
/// `MigrateReply` answering `MigrateOp::Start`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationReport {
    pub partition: u32,
    /// Pairs bulk-copied from the frozen snapshot.
    pub moved_pairs: u64,
    /// Pairs replayed from the two delta rounds.
    pub delta_pairs: u64,
    /// Unavailability window: seal to flip, in milliseconds.
    pub seal_ms: u64,
    /// Whole migration, in milliseconds.
    pub total_ms: u64,
    /// The flipped map's epoch.
    pub new_epoch: u64,
}

impl MigrationReport {
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"partition\":{},\"moved_pairs\":{},\"delta_pairs\":{},",
                "\"seal_ms\":{},\"total_ms\":{},\"new_epoch\":{}}}"
            ),
            self.partition,
            self.moved_pairs,
            self.delta_pairs,
            self.seal_ms,
            self.total_ms,
            self.new_epoch
        )
    }
}

/// Releases every snapshot taken during a migration when it ends, on both
/// the success and every error path.
struct SnapGuard<'a, I: RangeIndex> {
    index: &'a I,
    ids: Vec<u64>,
}

impl<'a, I: RangeIndex> SnapGuard<'a, I> {
    fn take(&mut self) -> Result<u64, String> {
        let id = self
            .index
            .snapshot()
            .ok_or_else(|| "index has no snapshot support".to_string())?;
        self.ids.push(id);
        Ok(id)
    }
}

impl<I: RangeIndex> Drop for SnapGuard<'_, I> {
    fn drop(&mut self) {
        for id in self.ids.drain(..) {
            self.index.release_snapshot(id);
        }
    }
}

/// Sends `batch` to the target and insists every op executed. Ops the
/// target shed (`Overloaded`/`DeadlineExceeded` — never executed, safe to
/// resend verbatim) are retried with backoff; persistent shedding fails
/// the migration rather than silently dropping pairs.
fn apply_batch(client: &mut TcpClient, mut batch: Vec<Request>) -> Result<(), String> {
    for attempt in 0..10u32 {
        if batch.is_empty() {
            return Ok(());
        }
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(5u64 << attempt.min(4)));
        }
        let resps = client
            .call(batch.clone())
            .map_err(|e| format!("apply to target: {e}"))?;
        if resps.len() != batch.len() {
            return Err("target reply length mismatch".to_string());
        }
        batch = batch
            .into_iter()
            .zip(&resps)
            .filter(|(_, r)| !r.executed())
            .map(|(req, _)| req)
            .collect();
    }
    Err("target kept shedding the migration batch".to_string())
}

/// Whether the node at `target` shows an installed map naming it the
/// owner of `partition` at `epoch` or newer — the post-hoc resolution for
/// an `ImportEnd` whose connection broke mid-call. `None` when the target
/// cannot be reached (the outcome stays unknown).
fn target_adopted(target: &str, partition: u32, epoch: u64) -> Option<bool> {
    let mut c = TcpClient::connect(target).ok()?;
    let map = c.fetch_map().ok()?;
    Some(
        map.epoch >= epoch
            && map
                .partition(partition)
                .is_some_and(|p| p.endpoint == target),
    )
}

impl<I: RangeIndex + Clone + 'static> ClusterNode<I> {
    /// Migrates `partition` from this node to `target`, returning the
    /// report on success. On error the partition is unsealed (unless the
    /// handoff may have committed — see the module docs), the target is
    /// told to abort the import, and all snapshots are released, so the
    /// source keeps serving it. At most one migration runs per node;
    /// a concurrent call fails fast instead of racing the epoch.
    pub fn migrate_out(&self, partition: u32, target: &str) -> Result<MigrationReport, String> {
        self.migrate_out_traced(partition, target, TraceCtx::UNTRACED)
    }

    /// [`migrate_out`](Self::migrate_out) under a trace context: each of
    /// the four phases records a [`SpanKind::MigratePhase`] span (detail =
    /// the phase gauge value) parented to `ctx`, and the wire frames sent
    /// to the target carry the forwarded context.
    pub fn migrate_out_traced(
        &self,
        partition: u32,
        target: &str,
        ctx: TraceCtx,
    ) -> Result<MigrationReport, String> {
        let _guard = match self.migrating.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                return Err("a migration is already in progress on this node".to_string());
            }
        };
        let out = self.migrate_run(partition, target, ctx);
        self.set_handoff_lag(0);
        self.enter_phase(PHASE_IDLE);
        out
    }

    /// Best-effort `ImportAbort` to the target after a failed migration:
    /// without it the target sits in importing mode forever, and a later
    /// successful migration could resurrect stale keys from the partial
    /// copy (the bulk copy only re-sends keys live at its snapshot).
    fn abort_import(&self, client: &mut TcpClient, target: &str, partition: u32) {
        if matches!(
            client.migrate(MigrateOp::ImportAbort { partition }),
            Ok((true, _))
        ) {
            return;
        }
        // The primary connection may be the thing that failed.
        if let Ok(mut c) = TcpClient::connect(target) {
            let _ = c.migrate(MigrateOp::ImportAbort { partition });
        }
    }

    fn migrate_run(
        &self,
        partition: u32,
        target: &str,
        ctx: TraceCtx,
    ) -> Result<MigrationReport, String> {
        let t0 = Instant::now();
        let map = self.map();
        let part = map
            .partition(partition)
            .ok_or_else(|| format!("unknown partition {partition}"))?;
        if part.endpoint != self.endpoint() {
            return Err(format!(
                "not the owner of partition {partition} ({} is)",
                part.endpoint
            ));
        }
        if target == self.endpoint() {
            return Err("target is the source".to_string());
        }
        let range_start = part.start.clone();
        let range_end: Option<Vec<u8>> = map.end_of(partition).map(<[u8]>::to_vec);
        let mut snaps = SnapGuard {
            index: self.service().index(),
            ids: Vec::new(),
        };

        let mut client =
            TcpClient::connect(target).map_err(|e| format!("connect {target}: {e}"))?;
        // Forward the migration's trace context to the target: its import
        // work (bulk Puts, delta replays, the handoff ops) shows up under
        // the same trace id, node-stamped with the target's ordinal.
        let tgt_ord = map
            .endpoints()
            .iter()
            .position(|e| *e == target)
            .map_or(0, |i| i as u16 + 1);
        client.set_trace(ctx.forwarded_to(tgt_ord));
        match client.migrate(MigrateOp::ImportBegin { partition }) {
            Ok((true, _)) => {}
            Ok((false, detail)) => return Err(format!("target refused import: {detail}")),
            Err(e) => return Err(format!("import-begin: {e}")),
        }

        // Phase 1: bulk-copy a frozen view of the range. Writers keep
        // landing on the source; the snapshot does not see them.
        // Phase 2: replay what landed during the bulk copy.
        self.enter_phase(PHASE_BULK);
        let copy_run: Result<(u64, u64, u64), String> = (|| {
            let snap1 = snaps.take()?;
            let bulk_span = trace::span(ctx, SpanKind::MigratePhase, PHASE_BULK as u32);
            let moved = self.copy_range(&mut client, snap1, &range_start, range_end.as_deref())?;
            drop(bulk_span);
            self.enter_phase(PHASE_DELTA);
            let _delta_span = trace::span(ctx, SpanKind::MigratePhase, PHASE_DELTA as u32);
            let snap2 = snaps.take()?;
            let d1 = self.apply_diff(
                &mut client,
                snap1,
                snap2,
                &range_start,
                range_end.as_deref(),
            )?;
            Ok((moved, d1, snap2))
        })();
        let (moved_pairs, d1, snap2) = match copy_run {
            Ok(v) => v,
            Err(e) => {
                self.abort_import(&mut client, target, partition);
                return Err(e);
            }
        };

        // Phase 3: seal (new ops bounce un-acked), drain what was already
        // admitted, ship the final delta. This is the unavailability
        // window; it covers only writes that raced the seal.
        let t_seal = Instant::now();
        self.seal(partition);
        self.enter_phase(PHASE_SEAL);
        let sealed_run: Result<u64, String> = (|| {
            let _seal_span = trace::span(ctx, SpanKind::MigratePhase, PHASE_SEAL as u32);
            self.service().drain_barrier();
            let snap3 = snaps.take()?;
            self.apply_diff(
                &mut client,
                snap2,
                snap3,
                &range_start,
                range_end.as_deref(),
            )
        })();
        let d2 = match sealed_run {
            Ok(d) => d,
            Err(e) => {
                self.unseal(partition);
                self.abort_import(&mut client, target, partition);
                return Err(e);
            }
        };

        // Phase 4: flip. The successor is derived from the *current* map,
        // not the one captured at the start — a newer map may have been
        // installed mid-migration, and a successor built from a stale base
        // would fork the epoch lineage. The target adopting the new map
        // (acked) is the commit point; installing locally drops our seal
        // because the partition is no longer ours.
        self.enter_phase(PHASE_FLIP);
        let flip_span = trace::span(ctx, SpanKind::MigratePhase, PHASE_FLIP as u32);
        let flip_base = self.map();
        if flip_base
            .partition(partition)
            .is_none_or(|p| p.endpoint != self.endpoint())
        {
            self.unseal(partition);
            self.abort_import(&mut client, target, partition);
            return Err(format!(
                "lost ownership of partition {partition} mid-migration (map epoch {})",
                flip_base.epoch
            ));
        }
        let mut new_map = flip_base.with_owner(partition, target);
        match client.migrate(MigrateOp::ImportEnd {
            partition,
            map: new_map.clone(),
        }) {
            Ok((true, _)) => {}
            Ok((false, detail)) => {
                // Definitely not adopted: roll back cleanly.
                self.unseal(partition);
                self.abort_import(&mut client, target, partition);
                return Err(format!("target refused handoff: {detail}"));
            }
            Err(e) => {
                // The connection broke mid-ImportEnd: the target may or
                // may not have adopted. Resolve by re-reading its
                // installed map on a fresh connection.
                match target_adopted(target, partition, new_map.epoch) {
                    Some(true) => {} // committed: fall through to the install
                    Some(false) => {
                        self.unseal(partition);
                        self.abort_import(&mut client, target, partition);
                        return Err(format!("import-end: {e}"));
                    }
                    None => {
                        // Unknown outcome: unsealing could split-brain
                        // acked writes (the target may already own the
                        // partition). Stay sealed; a retried migration to
                        // the same target resolves it either way.
                        return Err(format!(
                            "import-end outcome unknown (target unreachable): {e}; \
                             partition {partition} stays sealed pending a retry"
                        ));
                    }
                }
            }
        }
        let seal_ms = t_seal.elapsed().as_millis() as u64;
        // Local install with an epoch CAS: if a gossiped map slipped in
        // between the derive and here, re-derive the successor from it so
        // the published lineage stays single-parented.
        if !self.install_map_cas(flip_base.epoch, new_map.clone()) {
            let mut installed = false;
            for _ in 0..4 {
                let base = self.map();
                match base.partition(partition) {
                    Some(p) if p.endpoint == self.endpoint() => {
                        let next = base.with_owner(partition, target);
                        if self.install_map_cas(base.epoch, next.clone()) {
                            new_map = next;
                            installed = true;
                            break;
                        }
                    }
                    _ => {
                        // The concurrent map already moved the partition
                        // off this node (e.g. our flip gossiped back):
                        // nothing left to install.
                        new_map = (*base).clone();
                        installed = true;
                        break;
                    }
                }
            }
            if !installed {
                return Err(format!(
                    "handoff of partition {partition} committed on the target but the \
                     local map install kept losing epoch races"
                ));
            }
        }
        // Best-effort gossip to every other node, the target included (on
        // the re-derive and unknown-outcome paths the map it adopted may
        // be stale); routers bouncing off stale nodes learn the epoch on
        // their next refresh anyway.
        for ep in new_map.endpoints() {
            if ep != self.endpoint() {
                if let Ok(mut c) = TcpClient::connect(ep) {
                    let _ = c.migrate(MigrateOp::Install {
                        map: new_map.clone(),
                    });
                }
            }
        }
        // Retire the source's copy: unreachable through the new map, but
        // it would overcount local scans and pin memory. A crash here is
        // benign — the pairs are already fenced garbage either way.
        drop(flip_span);
        self.retire_range(&range_start, range_end.as_deref());
        Ok(MigrationReport {
            partition,
            moved_pairs,
            delta_pairs: d1 + d2,
            seal_ms,
            total_ms: t0.elapsed().as_millis() as u64,
            new_epoch: new_map.epoch,
        })
    }

    /// Pages `[start, end)` out of snapshot `snap` in `CHUNK`-sized acked
    /// `Put` batches. Fires the phase hook after every chunk, so a kill
    /// test can freeze the migration mid-bulk.
    fn copy_range(
        &self,
        client: &mut TcpClient,
        snap: u64,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<u64, String> {
        let mut cursor = start.to_vec();
        let mut moved = 0u64;
        loop {
            let pairs = self
                .service()
                .index()
                .scan_pairs_at(snap, &cursor, CHUNK)
                .ok_or_else(|| "snapshot scan unsupported or released".to_string())?;
            let scanned = pairs.len();
            let in_part: Vec<(Vec<u8>, u64)> = pairs
                .into_iter()
                .filter(|(k, _)| in_range(k, start, end))
                .collect();
            // Crossed the range end, or exhausted the whole index.
            let done = in_part.len() < scanned || scanned < CHUNK;
            if let Some((last, _)) = in_part.last() {
                // The scan is inclusive of its start key: resume from the
                // lexicographic successor (append one zero byte).
                cursor = last.clone();
                cursor.push(0);
            }
            if !in_part.is_empty() {
                moved += in_part.len() as u64;
                self.add_handoff_lag(in_part.len() as u64);
                let batch: Vec<Request> = in_part
                    .into_iter()
                    .map(|(key, value)| Request::Put { key, value })
                    .collect();
                apply_batch(client, batch)?;
            }
            self.enter_phase(PHASE_BULK);
            if done {
                return Ok(moved);
            }
            std::thread::sleep(BULK_PACE);
        }
    }

    /// Removes every local pair in `[start, end)` after a completed
    /// handoff — and, on the target side, before accepting an import or
    /// after aborting one (a stale partial copy must never survive into a
    /// later successful flip). Best-effort: pages the range through a
    /// fresh snapshot (isolated from its own removals) and deletes
    /// directly on the index.
    pub(super) fn retire_range(&self, start: &[u8], end: Option<&[u8]>) {
        let index = self.service().index();
        let Some(snap) = index.snapshot() else { return };
        let mut cursor = start.to_vec();
        while let Some(pairs) = index.scan_pairs_at(snap, &cursor, CHUNK) {
            let scanned = pairs.len();
            let keys: Vec<Vec<u8>> = pairs
                .into_iter()
                .map(|(k, _)| k)
                .filter(|k| in_range(k, start, end))
                .collect();
            let done = keys.len() < scanned || scanned < CHUNK;
            if let Some(last) = keys.last() {
                cursor = last.clone();
                cursor.push(0);
            }
            for k in &keys {
                index.remove(k);
            }
            if done {
                break;
            }
        }
        index.release_snapshot(snap);
    }

    /// Replays `diff_pairs(a, b)` restricted to `[start, end)` on the
    /// target: additions/changes as `Put`, removals as `Delete`.
    fn apply_diff(
        &self,
        client: &mut TcpClient,
        a: u64,
        b: u64,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<u64, String> {
        let entries = self
            .service()
            .index()
            .diff_pairs(a, b)
            .ok_or_else(|| "snapshot diff unsupported or released".to_string())?;
        let batch: Vec<Request> = entries
            .into_iter()
            .filter(|(k, _, _)| in_range(k, start, end))
            .map(|(key, _old, new)| match new {
                Some(value) => Request::Put { key, value },
                None => Request::Delete { key },
            })
            .collect();
        let n = batch.len() as u64;
        self.add_handoff_lag(n);
        for chunk in batch.chunks(CHUNK) {
            apply_batch(client, chunk.to_vec())?;
        }
        Ok(n)
    }
}
